//! # quantum-db
//!
//! Facade crate for the quantum database workspace — a from-scratch Rust
//! reproduction of *Quantum Databases* (Roy, Kot, Koch — CIDR 2013).
//!
//! A quantum database defers the binding of values read from the database:
//! a *resource transaction* ("book me any available seat, preferably next to
//! Goofy") commits immediately, but the concrete seat is chosen only when an
//! observation — a read — forces the choice. Until then the database is in a
//! superposition of possible worlds, represented intensionally as an
//! extensional store plus a list of committed-but-pending transactions.
//!
//! ## The statement API
//!
//! Every operation goes through [`QuantumDb::execute`] (or a [`Session`]
//! over the thread-safe [`SharedQuantumDb`]) as one SQL dialect, and comes
//! back as a typed [`Response`]:
//!
//! ```
//! use quantum_db::{QuantumDb, QuantumDbConfig, Response};
//!
//! let mut qdb = QuantumDb::new(QuantumDbConfig::default())?;
//! qdb.execute("CREATE TABLE Available (flight INT, seat TEXT)")?;
//! qdb.execute("CREATE TABLE Bookings (name TEXT, flight INT, seat TEXT)")?;
//! qdb.execute("INSERT INTO Available VALUES (123, '5A'), (123, '5B')")?;
//!
//! // Figure 1: book *a* seat without choosing which.
//! let r = qdb.execute(
//!     "SELECT @s FROM Available(123, @s) CHOOSE 1 \
//!      FOLLOWED BY (DELETE (123, @s) FROM Available; \
//!                   INSERT ('Mickey', 123, @s) INTO Bookings)",
//! )?;
//! assert!(matches!(r, Response::Committed(_)));
//!
//! // The read observes — and thereby fixes — Mickey's seat.
//! let rows = qdb.execute("SELECT @s FROM Bookings('Mickey', 123, @s)")?;
//! assert_eq!(rows.rows().unwrap().len(), 1);
//! # Ok::<(), quantum_db::core::EngineError>(())
//! ```
//!
//! Statement classes: DDL (`CREATE TABLE` / `CREATE INDEX`), blind writes
//! (`INSERT INTO … VALUES` / `DELETE FROM … VALUES`), reads (`SELECT`,
//! with `PEEK` / `POSSIBLE` modifiers for the §3.2.2 uncertainty
//! semantics and `LIMIT`), resource transactions (`SELECT … CHOOSE 1
//! FOLLOWED BY (…)`) and control (`GROUND <id>`, `GROUND ALL`,
//! `CHECKPOINT`, `SHOW METRICS`, `SHOW PENDING`).
//!
//! Hot paths prepare once and re-bind positional `?` parameters:
//!
//! ```
//! use quantum_db::{QuantumDb, QuantumDbConfig, Value};
//!
//! let mut qdb = QuantumDb::new(QuantumDbConfig::default())?;
//! qdb.execute("CREATE TABLE Available (flight INT, seat TEXT)")?;
//! let session = qdb.into_shared().session();
//! let insert = session.prepare("INSERT INTO Available VALUES (?, ?)")?;
//! for seat in ["5A", "5B", "5C"] {
//!     insert.bind(&[Value::from(123), Value::from(seat)])?.run()?;
//! }
//! let n = session.execute("SELECT * FROM Available(123, @s)")?;
//! assert_eq!(n.rows().unwrap().len(), 3);
//! // Three bound runs, but the parser ran only for CREATE TABLE, the
//! // prepare, the SELECT above, and this SHOW — never inside the loop.
//! let m = session.execute("SHOW METRICS")?;
//! assert_eq!(m.metrics().unwrap().parses, 4);
//! # Ok::<(), quantum_db::core::EngineError>(())
//! ```
//!
//! ## Client/server
//!
//! The same statement surface is reachable over TCP: [`server`] puts a
//! worker-pool service in front of a [`SharedQuantumDb`] speaking the
//! [`core::wire`] frame protocol, and [`client`] provides blocking
//! connections with remote prepared statements, pipelining and a small
//! pool. See `examples/remote_booking.rs` for the §2 scenario running
//! across a socket.
//!
//! See the individual crates for internals:
//! * [`storage`] — the relational substrate (tables, indexes, WAL).
//! * [`logic`] — terms, unification, the statement grammar ([`logic::stmt`]).
//! * [`solver`] — the consistent-grounding search and solution cache.
//! * [`core`] — the quantum database engine and the `execute()` layer.
//! * [`server`] / [`client`] — the network service layer ([`core::wire`]).
//! * [`workload`] — experiment workloads, the intelligent-social baseline,
//!   and the networked load driver ([`workload::remote`]).

pub use qdb_client as client;
pub use qdb_core as core;
pub use qdb_logic as logic;
pub use qdb_server as server;
pub use qdb_solver as solver;
pub use qdb_storage as storage;
pub use qdb_workload as workload;

// The most commonly used items, re-exported flat for examples and quick use.
pub use qdb_core::{
    Bound, GroundingPolicy, Prepared, QuantumDb, QuantumDbConfig, Response, Serializability,
    Session, SharedQuantumDb, SubmitOutcome,
};
pub use qdb_logic::{
    parse_query, parse_sql_transaction, parse_statement, parse_transaction, ParsedStatement,
    Statement,
};
pub use qdb_storage::{Database, Schema, Tuple, Value, ValueType};
