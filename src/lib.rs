//! # quantum-db
//!
//! Facade crate for the quantum database workspace — a from-scratch Rust
//! reproduction of *Quantum Databases* (Roy, Kot, Koch — CIDR 2013).
//!
//! A quantum database defers the binding of values read from the database:
//! a *resource transaction* ("book me any available seat, preferably next to
//! Goofy") commits immediately, but the concrete seat is chosen only when an
//! observation — a read — forces the choice. Until then the database is in a
//! superposition of possible worlds, represented intensionally as an
//! extensional store plus a list of committed-but-pending transactions.
//!
//! See the individual crates for details:
//! * [`storage`] — the relational substrate (tables, indexes, WAL).
//! * [`logic`] — terms, unification, composed-body formulas.
//! * [`solver`] — the consistent-grounding search and solution cache.
//! * [`core`] — the quantum database engine itself.
//! * [`workload`] — experiment workloads and the intelligent-social baseline.

pub use qdb_core as core;
pub use qdb_logic as logic;
pub use qdb_solver as solver;
pub use qdb_storage as storage;
pub use qdb_workload as workload;

// The most commonly used items, re-exported flat for examples and quick use.
pub use qdb_core::{GroundingPolicy, QuantumDb, QuantumDbConfig, Serializability, SubmitOutcome};
pub use qdb_logic::{parse_query, parse_transaction};
pub use qdb_storage::{Database, Schema, Tuple, Value, ValueType};
