//! WAL crash-recovery as a tier-1 integration test (promoted from
//! `examples/crash_recovery.rs` so durability is asserted on every test
//! run, not just demonstrated).
//!
//! The engine serializes every committed-but-unground transaction into
//! the WAL *before* acknowledging the commit (§4 "Recovery"); recovery
//! from a torn log must rebuild both the extensional database and the
//! in-memory quantum state, honouring every acknowledged commitment.

use quantum_db::core::{QuantumDb, QuantumDbConfig};
use quantum_db::logic::parse_transaction;
use quantum_db::storage::wal::MemorySink;
use quantum_db::storage::{tuple, Schema, ValueType, Wal};
use quantum_db::SubmitOutcome;

/// Build an engine with two pending bookings and return its WAL image.
fn engine_with_two_pending() -> (QuantumDb, Vec<u8>) {
    let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
    qdb.create_table(Schema::new(
        "Available",
        vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
    ))
    .unwrap();
    qdb.create_table(Schema::new(
        "Bookings",
        vec![
            ("name", ValueType::Str),
            ("flight", ValueType::Int),
            ("seat", ValueType::Str),
        ],
    ))
    .unwrap();
    qdb.bulk_insert(
        "Available",
        vec![tuple![1, "1A"], tuple![1, "1B"], tuple![1, "1C"]],
    )
    .unwrap();
    for user in ["Mickey", "Donald"] {
        let t = parse_transaction(&format!(
            "-Available(f, s), +Bookings('{user}', f, s) :-1 Available(f, s)"
        ))
        .unwrap();
        assert!(qdb.submit(&t).unwrap().is_committed());
    }
    assert_eq!(qdb.pending_count(), 2);
    let image = qdb.wal_image();
    (qdb, image)
}

fn recover(image: Vec<u8>) -> QuantumDb {
    let wal = Wal::with_sink(Box::new(MemorySink::from_bytes(image)));
    QuantumDb::recover(wal, QuantumDbConfig::default()).expect("recovery succeeds")
}

#[test]
fn pending_transactions_survive_a_clean_crash() {
    let (_qdb, image) = engine_with_two_pending();
    let mut recovered = recover(image);
    // Both acknowledged commits are honoured across the failure.
    assert_eq!(recovered.pending_count(), 2);
    let rows = recovered.query("Bookings('Mickey', f, s)").unwrap();
    assert_eq!(rows.len(), 1, "Mickey's commitment must be kept");
    let rows = recovered.query("Bookings('Donald', f, s)").unwrap();
    assert_eq!(rows.len(), 1, "Donald's commitment must be kept");
    // Reads ground the recovered pending state: nothing is pending now,
    // and the two grounded seats are distinct.
    assert_eq!(recovered.pending_count(), 0);
    let seats = recovered.query("Bookings(n, f, s)").unwrap();
    assert_eq!(seats.len(), 2);
}

#[test]
fn a_torn_tail_loses_only_the_unacknowledged_record() {
    let (_qdb, image) = engine_with_two_pending();
    // 💥 The machine dies mid-write: chop 3 bytes off the last frame.
    let torn_at = image.len() - 3;
    let mut recovered = recover(image[..torn_at].to_vec());

    // Donald's commit record was torn — it is as if the commit was never
    // acknowledged, so exactly one pending transaction survives.
    assert_eq!(recovered.pending_count(), 1);
    let rows = recovered.query("Bookings('Mickey', f, s)").unwrap();
    assert_eq!(rows.len(), 1, "the surviving commitment is honoured");
    assert_eq!(
        recovered.query("Bookings('Donald', f, s)").unwrap().len(),
        0
    );

    // The recovered engine keeps serving: a new booking is admitted.
    let t = parse_transaction("-Available(f, s), +Bookings('Daisy', f, s) :-1 Available(f, s)")
        .unwrap();
    assert!(matches!(
        recovered.submit(&t).unwrap(),
        SubmitOutcome::Committed { .. }
    ));
    recovered.ground_all().unwrap();
    assert_eq!(recovered.pending_count(), 0);
    assert_eq!(recovered.query("Bookings(n, f, s)").unwrap().len(), 2);
}

#[test]
fn every_truncation_point_recovers_without_panicking() {
    let (_qdb, image) = engine_with_two_pending();
    let mut seen_pending = std::collections::BTreeSet::new();
    for cut in 0..=image.len() {
        let wal = Wal::with_sink(Box::new(MemorySink::from_bytes(image[..cut].to_vec())));
        // Torn frames must never panic; any prefix of a valid log is a
        // valid (shorter) history.
        let recovered =
            QuantumDb::recover(wal, QuantumDbConfig::default()).expect("prefix recovers");
        seen_pending.insert(recovered.pending_count());
    }
    // The full sweep crosses all three histories: no bookings, Mickey
    // only, and both.
    assert_eq!(seen_pending.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
}
