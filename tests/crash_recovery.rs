//! WAL crash-recovery as a tier-1 integration test (promoted from
//! `examples/crash_recovery.rs` so durability is asserted on every test
//! run, not just demonstrated).
//!
//! The engine serializes every committed-but-unground transaction into
//! the WAL *before* acknowledging the commit (§4 "Recovery"); recovery
//! from a torn log must rebuild both the extensional database and the
//! in-memory quantum state, honouring every acknowledged commitment.

use quantum_db::core::{QuantumDb, QuantumDbConfig};
use quantum_db::logic::parse_transaction;
use quantum_db::storage::wal::MemorySink;
use quantum_db::storage::{tuple, Schema, ValueType, Wal};
use quantum_db::SubmitOutcome;

/// Build an engine with two pending bookings and return its WAL image.
fn engine_with_two_pending() -> (QuantumDb, Vec<u8>) {
    let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
    qdb.create_table(Schema::new(
        "Available",
        vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
    ))
    .unwrap();
    qdb.create_table(Schema::new(
        "Bookings",
        vec![
            ("name", ValueType::Str),
            ("flight", ValueType::Int),
            ("seat", ValueType::Str),
        ],
    ))
    .unwrap();
    qdb.bulk_insert(
        "Available",
        vec![tuple![1, "1A"], tuple![1, "1B"], tuple![1, "1C"]],
    )
    .unwrap();
    for user in ["Mickey", "Donald"] {
        let t = parse_transaction(&format!(
            "-Available(f, s), +Bookings('{user}', f, s) :-1 Available(f, s)"
        ))
        .unwrap();
        assert!(qdb.submit(&t).unwrap().is_committed());
    }
    assert_eq!(qdb.pending_count(), 2);
    let image = qdb.wal_image();
    (qdb, image)
}

fn recover(image: Vec<u8>) -> QuantumDb {
    let wal = Wal::with_sink(Box::new(MemorySink::from_bytes(image)));
    QuantumDb::recover(wal, QuantumDbConfig::default()).expect("recovery succeeds")
}

#[test]
fn pending_transactions_survive_a_clean_crash() {
    let (_qdb, image) = engine_with_two_pending();
    let mut recovered = recover(image);
    // Both acknowledged commits are honoured across the failure.
    assert_eq!(recovered.pending_count(), 2);
    let rows = recovered.query("Bookings('Mickey', f, s)").unwrap();
    assert_eq!(rows.len(), 1, "Mickey's commitment must be kept");
    let rows = recovered.query("Bookings('Donald', f, s)").unwrap();
    assert_eq!(rows.len(), 1, "Donald's commitment must be kept");
    // Reads ground the recovered pending state: nothing is pending now,
    // and the two grounded seats are distinct.
    assert_eq!(recovered.pending_count(), 0);
    let seats = recovered.query("Bookings(n, f, s)").unwrap();
    assert_eq!(seats.len(), 2);
}

#[test]
fn a_torn_tail_loses_only_the_unacknowledged_record() {
    let (_qdb, image) = engine_with_two_pending();
    // 💥 The machine dies mid-write: chop 3 bytes off the last frame.
    let torn_at = image.len() - 3;
    let mut recovered = recover(image[..torn_at].to_vec());

    // Donald's commit record was torn — it is as if the commit was never
    // acknowledged, so exactly one pending transaction survives.
    assert_eq!(recovered.pending_count(), 1);
    let rows = recovered.query("Bookings('Mickey', f, s)").unwrap();
    assert_eq!(rows.len(), 1, "the surviving commitment is honoured");
    assert_eq!(
        recovered.query("Bookings('Donald', f, s)").unwrap().len(),
        0
    );

    // The recovered engine keeps serving: a new booking is admitted.
    let t = parse_transaction("-Available(f, s), +Bookings('Daisy', f, s) :-1 Available(f, s)")
        .unwrap();
    assert!(matches!(
        recovered.submit(&t).unwrap(),
        SubmitOutcome::Committed { .. }
    ));
    recovered.ground_all().unwrap();
    assert_eq!(recovered.pending_count(), 0);
    assert_eq!(recovered.query("Bookings(n, f, s)").unwrap().len(), 2);
}

#[test]
fn truncation_inside_ground_all_leaves_each_txn_grounded_xor_pending() {
    // A crash in the middle of GROUND ALL tears the run of Ground records.
    // Every cut must recover to a state where each committed transaction
    // is *either* fully grounded *or* still pending — never half-applied,
    // never dropped (commits must not roll back, §2).
    let (mut qdb, pre_ground_image) = engine_with_two_pending();
    let pre_ground_len = pre_ground_image.len();
    qdb.ground_all().unwrap();
    assert_eq!(qdb.pending_count(), 0);
    let image = qdb.wal_image();
    assert!(image.len() > pre_ground_len, "GROUND ALL appended records");

    let mut grounded_counts = std::collections::BTreeSet::new();
    for cut in pre_ground_len..=image.len() {
        let recovered = recover(image[..cut].to_vec());
        let db = recovered.database();
        let bookings = db.table("Bookings").unwrap().len();
        let available = db.table("Available").unwrap().len();
        let pending = recovered.pending_count();
        // Both commits were acknowledged before the crash: each one is
        // grounded XOR pending, so the two populations always sum to 2.
        assert_eq!(
            bookings + pending,
            2,
            "cut {cut}: grounded {bookings} + pending {pending}"
        );
        // Seat conservation holds in every recovered world: a grounded
        // booking consumes exactly the Available row its Ground record
        // deletes.
        assert_eq!(available + bookings, 3, "cut {cut}: seats not conserved");
        grounded_counts.insert(bookings);
    }
    // The sweep crosses every ground state: none, first only, both.
    assert_eq!(
        grounded_counts.into_iter().collect::<Vec<_>>(),
        vec![0, 1, 2]
    );
}

#[test]
fn a_crash_tearing_a_group_commit_batch_recovers_the_record_prefix() {
    // With a large group limit the entire history — schema, seats, three
    // bookings, checkpoint — reaches the sink as ONE buffered write. A
    // crash can therefore tear anywhere inside a multi-record batch;
    // recovery must replay record-by-record, keeping exactly the records
    // whose frames are wholly inside the surviving prefix and losing the
    // (acknowledged but undurable) suffix — the documented group-commit
    // durability window.
    let mut wal = Wal::in_memory();
    wal.set_group_limit(1 << 20);
    let mut qdb = QuantumDb::with_wal(QuantumDbConfig::default(), wal);
    qdb.create_table(Schema::new(
        "Available",
        vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
    ))
    .unwrap();
    qdb.create_table(Schema::new(
        "Bookings",
        vec![
            ("name", ValueType::Str),
            ("flight", ValueType::Int),
            ("seat", ValueType::Str),
        ],
    ))
    .unwrap();
    qdb.bulk_insert(
        "Available",
        vec![
            tuple![1, "1A"],
            tuple![1, "1B"],
            tuple![1, "1C"],
            tuple![1, "1D"],
        ],
    )
    .unwrap();
    for user in ["Mickey", "Donald", "Daisy"] {
        let t = parse_transaction(&format!(
            "-Available(f, s), +Bookings('{user}', f, s) :-1 Available(f, s)"
        ))
        .unwrap();
        assert!(qdb.submit(&t).unwrap().is_committed());
    }
    // One drain pushes the whole batch; the image below is that single
    // sink write.
    qdb.checkpoint().unwrap();
    let image = qdb.wal_image();

    for cut in 0..=image.len() {
        let prefix = &image[..cut];
        // Independent ground truth: the records whose frames fit in the
        // prefix, per the storage layer's own tolerant replay.
        let (records, consumed) =
            quantum_db::storage::wal::replay_bytes(prefix).expect("torn prefix replays");
        assert!(consumed <= cut as u64);
        let expected_pending = records
            .iter()
            .filter(|r| matches!(r, quantum_db::storage::LogRecord::PendingAdd { .. }))
            .count();
        let recovered = recover(prefix.to_vec());
        assert_eq!(
            recovered.pending_count(),
            expected_pending,
            "cut {cut}: exactly the wholly-framed commits survive"
        );
    }

    // The worst tear — one byte short of the full batch — still leaves a
    // serving engine that can admit and ground new work.
    let mut recovered = recover(image[..image.len() - 1].to_vec());
    let t = parse_transaction("-Available(f, s), +Bookings('Goofy', f, s) :-1 Available(f, s)")
        .unwrap();
    assert!(recovered.submit(&t).unwrap().is_committed());
    recovered.ground_all().unwrap();
    assert_eq!(recovered.pending_count(), 0);
}

#[test]
fn flipping_any_mid_log_byte_cuts_recovery_at_that_frame_boundary() {
    // Promotes the storage-layer `corrupt_byte_stops_replay_at_frame_
    // boundary` unit test to a full-system check: for EVERY byte
    // position of EVERY frame, a single bit-complemented byte (injected
    // through the same `FaultSink` the simulator's WAL mutations use)
    // must make engine recovery land exactly where truncating the log at
    // that frame's start would — the longest checksum-valid prefix, no
    // garbage applied, no later frame resurrected.
    use quantum_db::core::world_fingerprint;
    use quantum_db::storage::wal::{frame_spans, replay_bytes, FaultSink, SinkFault};

    let (_qdb, image) = engine_with_two_pending();
    let spans = frame_spans(&image);
    assert!(spans.len() >= 4, "schema + seats + two commits");
    assert_eq!(
        spans.last().unwrap().1,
        image.len() as u64,
        "frames tile the image"
    );
    for &(start, end) in &spans {
        // Ground truth for every flip inside this frame: recovery from
        // the log truncated at the frame boundary.
        let truncated = recover(image[..start as usize].to_vec());
        let truncated_fp = world_fingerprint(truncated.database());
        let (records, consumed) = replay_bytes(&image[..start as usize]).unwrap();
        assert_eq!(consumed, start, "whole frames replay exactly");
        for offset in start..end {
            let wal = Wal::with_sink(Box::new(FaultSink::new(
                Box::new(MemorySink::from_bytes(image.clone())),
                vec![SinkFault::FlipByte { offset }],
            )));
            let recovered = QuantumDb::recover(wal, QuantumDbConfig::default())
                .expect("a corrupt log recovers to its valid prefix");
            assert_eq!(
                recovered.pending_count(),
                truncated.pending_count(),
                "flip at byte {offset}: pending set differs from prefix truncation"
            );
            assert_eq!(
                world_fingerprint(recovered.database()),
                truncated_fp,
                "flip at byte {offset}: extensional state differs from prefix truncation"
            );
            // Metrics identity: the tolerant replay of the faulted bytes
            // consumes exactly the bytes before the corrupt frame and
            // yields exactly the prefix records.
            let faulted: Vec<u8> = image
                .iter()
                .enumerate()
                .map(|(i, b)| if i as u64 == offset { !b } else { *b })
                .collect();
            let (frecords, fconsumed) = replay_bytes(&faulted).unwrap();
            assert_eq!(fconsumed, start, "flip at byte {offset}: wrong stop offset");
            assert_eq!(
                frecords.len(),
                records.len(),
                "flip at byte {offset}: record count differs"
            );
        }
    }
}

#[test]
fn every_truncation_point_recovers_without_panicking() {
    let (_qdb, image) = engine_with_two_pending();
    let mut seen_pending = std::collections::BTreeSet::new();
    for cut in 0..=image.len() {
        let wal = Wal::with_sink(Box::new(MemorySink::from_bytes(image[..cut].to_vec())));
        // Torn frames must never panic; any prefix of a valid log is a
        // valid (shorter) history.
        let recovered =
            QuantumDb::recover(wal, QuantumDbConfig::default()).expect("prefix recovers");
        seen_pending.insert(recovered.pending_count());
    }
    // The full sweep crosses all three histories: no bookings, Mickey
    // only, and both.
    assert_eq!(seen_pending.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
}
