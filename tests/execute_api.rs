//! The unified statement API end to end: every statement class through
//! `QuantumDb::execute()`, typed `Response`s, sessions and prepared
//! statements.

use quantum_db::{QuantumDb, QuantumDbConfig, Response, Value};

fn engine() -> QuantumDb {
    let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
    for ddl in [
        "CREATE TABLE Available (flight INT, seat TEXT)",
        "CREATE TABLE Bookings (name TEXT, flight INT, seat TEXT)",
        "CREATE TABLE Adjacent (s1 TEXT, s2 TEXT)",
    ] {
        assert_eq!(qdb.execute(ddl).unwrap(), Response::Ack);
    }
    assert_eq!(
        qdb.execute("INSERT INTO Available VALUES (123, '1A'), (123, '1B'), (123, '1C')")
            .unwrap(),
        Response::Written(true)
    );
    assert_eq!(
        qdb.execute(
            "INSERT INTO Adjacent VALUES ('1A', '1B'), ('1B', '1A'), ('1B', '1C'), ('1C', '1B')"
        )
        .unwrap(),
        Response::Written(true)
    );
    qdb
}

/// The acceptance round-trip: DDL, blind writes, resource transactions,
/// reads (including one that collapses pending state) and control
/// statements, all through `execute()`, all asserted on the typed
/// `Response` variants.
#[test]
fn all_five_statement_classes_round_trip() {
    let mut qdb = engine();

    // DDL beyond the setup: a secondary index, by column name.
    assert_eq!(
        qdb.execute("CREATE INDEX ON Available (flight)").unwrap(),
        Response::Ack
    );

    // Resource transactions. Goofy pins seat 1B; Mickey wants any seat,
    // preferably adjacent to Goofy.
    let goofy = qdb
        .execute(
            "SELECT @s FROM Available(123, @s) WHERE @s = '1B' CHOOSE 1 \
             FOLLOWED BY (DELETE (123, @s) FROM Available; \
                          INSERT ('Goofy', 123, @s) INTO Bookings)",
        )
        .unwrap();
    let goofy_id = goofy.committed_id().expect("Goofy commits");
    // Fix Goofy's seat so Mickey's preference targets extensional state
    // (otherwise partner-arrival grounding would collapse the pair at
    // Mickey's submit and nothing would stay pending to observe).
    assert_eq!(
        qdb.execute("GROUND ALL").unwrap(),
        Response::Grounded(1),
        "Goofy was the only pending transaction"
    );
    let mickey = qdb
        .execute(
            "SELECT @f, @s \
             FROM Available(@f, @s), \
                  OPTIONAL Bookings('Goofy', @f, @s2), \
                  OPTIONAL Adjacent(@s, @s2) \
             CHOOSE 1 \
             FOLLOWED BY (DELETE (@f, @s) FROM Available; \
                          INSERT ('Mickey', @f, @s) INTO Bookings)",
        )
        .unwrap();
    let mickey_id = mickey.committed_id().expect("Mickey commits");
    assert_ne!(goofy_id, mickey_id);

    // Control: the pending set is visible.
    let pending = qdb.execute("SHOW PENDING").unwrap();
    assert_eq!(pending, Response::Pending(vec![mickey_id]));

    // Peek does not collapse anything.
    let peek = qdb
        .execute("SELECT PEEK @s FROM Bookings('Mickey', 123, @s)")
        .unwrap();
    assert_eq!(peek.rows().unwrap().len(), 1);
    assert_eq!(qdb.pending_count(), 1, "peek must not ground");

    // The collapsing read: observing Mickey's booking forces the choice.
    let rows = qdb
        .execute("SELECT @s FROM Bookings('Mickey', 123, @s)")
        .unwrap();
    let rows = rows.rows().expect("typed rows");
    assert_eq!(rows.len(), 1);
    let seat = rows[0]
        .iter()
        .next()
        .unwrap()
        .1
        .as_str()
        .unwrap()
        .to_string();
    assert_eq!(qdb.pending_count(), 0, "read collapsed the quantum state");
    // Adjacency honored: Goofy sits on 1B, Mickey next to it.
    assert!(
        qdb.database().contains(
            "Adjacent",
            &quantum_db::storage::tuple![seat.as_str(), "1B"]
        ),
        "Mickey got {seat}, not adjacent to Goofy's 1B"
    );

    // Blind write: retire the remaining free seat.
    let free = qdb.execute("SELECT @s FROM Available(123, @s)").unwrap();
    assert_eq!(free.rows().unwrap().len(), 1);
    let left = free.rows().unwrap()[0]
        .iter()
        .next()
        .unwrap()
        .1
        .as_str()
        .unwrap()
        .to_string();
    assert_eq!(
        qdb.execute(&format!("DELETE FROM Available VALUES (123, '{left}')"))
            .unwrap(),
        Response::Written(true)
    );

    // Control: ground-by-id on an absent txn, checkpoint, metrics.
    assert_eq!(
        qdb.execute(&format!("GROUND {mickey_id}")).unwrap(),
        Response::Grounded(0),
        "already grounded by the read"
    );
    assert_eq!(qdb.execute("GROUND ALL").unwrap(), Response::Grounded(0));
    assert_eq!(qdb.execute("CHECKPOINT").unwrap(), Response::Ack);
    let m = qdb.execute("SHOW METRICS").unwrap();
    let m = m.metrics().expect("typed metrics");
    assert_eq!(m.submitted, 2);
    assert_eq!(m.committed, 2);
    assert!(m.parses >= 10, "every execute() above parsed once");
    // The solver hot-path counters surface through SHOW METRICS: the two
    // admissions above searched (nodes), streamed their candidates, and
    // never materialized a candidate vector.
    assert!(m.solver_nodes > 0);
    assert!(m.solver_candidates_streamed > 0);
    assert!(m.solver_index_lookups + m.solver_scan_lookups > 0);
    assert_eq!(m.solver_candidate_vecs, 0);
}

#[test]
fn blind_write_that_invalidates_pending_state_reports_written_false() {
    let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
    qdb.execute("CREATE TABLE Available (flight INT, seat TEXT)")
        .unwrap();
    qdb.execute("CREATE TABLE Bookings (name TEXT, flight INT, seat TEXT)")
        .unwrap();
    qdb.execute("INSERT INTO Available VALUES (123, '1A')")
        .unwrap();
    // Mickey holds a pending claim on the only seat.
    let r = qdb
        .execute(
            "SELECT @s FROM Available(123, @s) CHOOSE 1 \
             FOLLOWED BY (DELETE (123, @s) FROM Available; \
                          INSERT ('Mickey', 123, @s) INTO Bookings)",
        )
        .unwrap();
    assert!(matches!(r, Response::Committed(_)));
    // Deleting that seat out from under him would empty the possible
    // worlds: rejected, typed as Written(false), state intact.
    let r = qdb
        .execute("DELETE FROM Available VALUES (123, '1A')")
        .unwrap();
    assert_eq!(r, Response::Written(false));
    assert_eq!(qdb.pending_count(), 1);
    assert!(qdb
        .database()
        .contains("Available", &quantum_db::storage::tuple![123, "1A"]));
}

#[test]
fn select_possible_exposes_uncertainty_as_worlds() {
    let mut qdb = engine();
    qdb.execute(
        "SELECT @s FROM Available(123, @s) CHOOSE 1 \
         FOLLOWED BY (DELETE (123, @s) FROM Available; \
                      INSERT ('Mickey', 123, @s) INTO Bookings)",
    )
    .unwrap();
    let r = qdb
        .execute("SELECT POSSIBLE @s FROM Bookings('Mickey', 123, @s)")
        .unwrap();
    let worlds = r.worlds().expect("typed worlds");
    assert_eq!(worlds.len(), 3, "three candidate seats, three answers");
    assert_eq!(qdb.pending_count(), 1, "POSSIBLE must not ground");
    // A LIMIT bounds the world enumeration (truncation may leave one
    // world past the bound, but never the full fan-out).
    let r = qdb
        .execute("SELECT POSSIBLE @s FROM Bookings('Mickey', 123, @s) LIMIT 1")
        .unwrap();
    assert!(r.worlds().unwrap().len() < 3);
}

#[test]
fn aborted_transactions_are_typed_not_errors() {
    let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
    qdb.execute("CREATE TABLE Available (flight INT, seat TEXT)")
        .unwrap();
    qdb.execute("CREATE TABLE Bookings (name TEXT, flight INT, seat TEXT)")
        .unwrap();
    qdb.execute("INSERT INTO Available VALUES (123, '1A')")
        .unwrap();
    let book = "SELECT @s FROM Available(123, @s) CHOOSE 1 \
                FOLLOWED BY (DELETE (123, @s) FROM Available; \
                             INSERT ('X', 123, @s) INTO Bookings)";
    assert!(matches!(qdb.execute(book).unwrap(), Response::Committed(_)));
    // No seat can serve a second claim: admission refuses it.
    assert_eq!(qdb.execute(book).unwrap(), Response::Aborted);
}

#[test]
fn sessions_prepare_once_and_rebind() {
    let qdb = engine();
    let session = qdb.into_shared().session();
    let baseline = session
        .execute("SHOW METRICS")
        .unwrap()
        .metrics()
        .unwrap()
        .parses;

    let book = session
        .prepare(
            "SELECT @s FROM Available(?, @s) CHOOSE 1 \
             FOLLOWED BY (DELETE (?, @s) FROM Available; \
                          INSERT (?, ?, @s) INTO Bookings)",
        )
        .unwrap();
    assert_eq!(book.param_count(), 4);
    let flight = Value::from(123);
    for user in ["Mickey", "Goofy", "Donald"] {
        let r = book
            .bind(&[
                flight.clone(),
                flight.clone(),
                Value::from(user),
                flight.clone(),
            ])
            .unwrap()
            .run()
            .unwrap();
        assert!(matches!(r, Response::Committed(_)), "{user}: {r:?}");
    }
    let after = session
        .execute("SHOW METRICS")
        .unwrap()
        .metrics()
        .unwrap()
        .parses;
    // The baseline SHOW already counted itself; since then only the
    // prepare parsed — the three bound runs never touched the parser,
    // and the second SHOW was served from the session's statement cache.
    assert_eq!(after, baseline + 1);

    // Unbound or mis-bound parameters are typed errors.
    assert!(book.run().is_err());
    assert!(book.bind(std::slice::from_ref(&flight)).is_err());
}

#[test]
fn ground_by_id_reports_the_full_cascade() {
    // With partner-arrival grounding off, an entangled pair stays pending;
    // grounding one id pulls in its coordination partner, and the typed
    // response counts both.
    let cfg = QuantumDbConfig {
        ground_on_partner_arrival: false,
        ..QuantumDbConfig::default()
    };
    let mut qdb = QuantumDb::new(cfg).unwrap();
    qdb.execute("CREATE TABLE Available (flight INT, seat TEXT)")
        .unwrap();
    qdb.execute("CREATE TABLE Bookings (name TEXT, flight INT, seat TEXT)")
        .unwrap();
    qdb.execute("CREATE TABLE Adjacent (s1 TEXT, s2 TEXT)")
        .unwrap();
    qdb.execute("INSERT INTO Available VALUES (1, '1A'), (1, '1B')")
        .unwrap();
    qdb.execute("INSERT INTO Adjacent VALUES ('1A', '1B'), ('1B', '1A')")
        .unwrap();
    let book = |user: &str, partner: &str| {
        format!(
            "SELECT @s FROM Available(1, @s), \
                  OPTIONAL Bookings('{partner}', 1, @s2), \
                  OPTIONAL Adjacent(@s, @s2) \
             CHOOSE 1 \
             FOLLOWED BY (DELETE (1, @s) FROM Available; \
                          INSERT ('{user}', 1, @s) INTO Bookings)"
        )
    };
    let mickey = qdb
        .execute(&book("Mickey", "Goofy"))
        .unwrap()
        .committed_id()
        .unwrap();
    qdb.execute(&book("Goofy", "Mickey")).unwrap();
    assert_eq!(qdb.pending_count(), 2);
    assert_eq!(
        qdb.execute(&format!("GROUND {mickey}")).unwrap(),
        Response::Grounded(2),
        "grounding Mickey must pull in his coordination partner"
    );
    assert_eq!(qdb.pending_count(), 0);
}

#[test]
fn executing_a_parameterized_statement_directly_is_an_error() {
    let mut qdb = engine();
    let err = qdb
        .execute("INSERT INTO Available VALUES (?, ?)")
        .unwrap_err();
    assert!(
        err.to_string().contains("parameter"),
        "unhelpful error: {err}"
    );
    // And the engine is still healthy afterwards.
    assert_eq!(
        qdb.execute("INSERT INTO Available VALUES (124, '9X')")
            .unwrap(),
        Response::Written(true)
    );
}

#[test]
fn execute_stmt_bypasses_the_parser() {
    let mut qdb = engine();
    let parsed = quantum_db::parse_statement("SELECT @s FROM Available(123, @s)").unwrap();
    let stmt = parsed.statement().unwrap().clone();
    let before = qdb.metrics().parses;
    let r = qdb.execute_stmt(stmt).unwrap();
    assert_eq!(r.rows().unwrap().len(), 3);
    assert_eq!(qdb.metrics().parses, before, "execute_stmt must not parse");
}
