//! Backpressure end-to-end: a pipelining client that stops reading must
//! stall *bounded* — the server parks the connection's work instead of
//! buffering replies without limit — and must resume cleanly, in order,
//! once the client drains.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use qdb_core::wire::{self, Frame, Request};
use qdb_server::{Server, ServerConfig};

fn execute_frame(id: u32, sql: &str) -> Vec<u8> {
    wire::encode_request(
        id,
        &Request::Execute {
            sql: sql.to_string(),
        },
    )
}

fn roundtrip(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    id: u32,
    sql: &str,
) -> Frame {
    stream.write_all(&execute_frame(id, sql)).unwrap();
    let frame = wire::read_frame(reader).unwrap().expect("setup reply");
    assert_eq!(frame.request_id, id);
    assert_ne!(frame.kind, wire::resp::ERROR, "setup statement failed");
    frame
}

#[test]
fn non_reading_pipeliner_stalls_bounded_then_resumes_in_order() {
    // A deliberately tiny outbox, and enough fat replies to dwarf what the
    // kernel's socket buffers can absorb on their own (~17 MiB of rows
    // against a few MiB of autotuned loopback buffering).
    const OUTBOX_LIMIT: usize = 2048;
    const REQUESTS: u32 = 2000;
    const ROWS: usize = 40;
    const ROW_BYTES: usize = 200;

    let server = Server::spawn(&ServerConfig {
        workers: 2,
        outbox_limit: OUTBOX_LIMIT,
        ..ServerConfig::default()
    })
    .expect("loopback server");

    let stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut stream = stream;

    // Seed a relation whose full scan is ~8 KiB per reply.
    roundtrip(&mut stream, &mut reader, 1, "CREATE TABLE Blob (t TEXT)");
    let values: Vec<String> = (0..ROWS)
        .map(|i| format!("('{}{}')", i, "x".repeat(ROW_BYTES)))
        .collect();
    roundtrip(
        &mut stream,
        &mut reader,
        2,
        &format!("INSERT INTO Blob VALUES {}", values.join(", ")),
    );

    // Pipeline every request up front and read nothing back. The requests
    // themselves are tiny (tens of KiB total), so this write cannot block
    // even after the server pauses reading our socket.
    let mut batch = Vec::new();
    for id in 1..=REQUESTS {
        batch.extend_from_slice(&execute_frame(1000 + id, "SELECT @t FROM Blob(@t)"));
    }
    stream.write_all(&batch).unwrap();

    // The executor must hit the full outbox and park the connection.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = server.stats();
        if stats.outbox_full_stalls >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no outbox stall recorded: {stats}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Stalled means bounded: per-connection state is outbox-limit plus
    // read-buffer sized, not proportional to the number of unread replies
    // (2000 × ~8 KiB would be ~16 MiB if the server buffered them all).
    let mem = server.conn_memory();
    assert!(mem.conns >= 1);
    assert!(
        mem.bytes < 256 * 1024,
        "per-connection state should stay bounded while stalled, got {} bytes \
         across {} connections",
        mem.bytes,
        mem.conns
    );

    // Drain: every reply arrives, in pipeline order, with nothing dropped
    // or duplicated across the stall/resume cycles.
    for expect in 1..=REQUESTS {
        let reply = wire::read_frame(&mut reader)
            .unwrap()
            .unwrap_or_else(|| panic!("connection closed before reply {expect}"));
        assert_eq!(
            reply.request_id,
            1000 + expect,
            "replies must stay in order"
        );
        assert_eq!(reply.kind, wire::resp::ROWS);
    }

    let stats = server.stats();
    assert!(stats.outbox_full_stalls >= 1);
    assert!(stats.frames_decoded >= REQUESTS as u64);
    server.shutdown();
}
