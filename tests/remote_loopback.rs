//! Loopback integration tests for the network service layer: a real
//! `qdb-server` on a loopback port, driven by real `qdb-client`
//! connections — every [`Response`] variant crosses the wire, every
//! statement class surfaces at least one typed error, pipelined batches
//! preserve per-connection order, and ≥8 concurrent connections run mixed
//! EXECUTE/PREPARE/BIND/RUN traffic against a ≥4-worker pool.

use qdb_client::{ClientError, Connection};
use qdb_core::wire;
use qdb_core::{QuantumDb, QuantumDbConfig, Response};
use qdb_server::{Server, ServerConfig, ServerHandle};
use qdb_storage::Value;

fn spawn(workers: usize) -> ServerHandle {
    Server::spawn(&ServerConfig {
        workers,
        ..ServerConfig::default()
    })
    .expect("loopback server")
}

/// Unwrap a server-reported error, panicking on transport problems.
fn server_error(result: Result<Response, ClientError>, context: &str) -> (u8, String) {
    match result {
        Err(ClientError::Server { code, message }) => (code, message),
        other => panic!("{context}: expected a server error, got {other:?}"),
    }
}

#[test]
fn every_response_variant_roundtrips_over_the_wire() {
    let server = spawn(4);
    let mut conn = Connection::connect(server.addr()).unwrap();

    // Ack (DDL).
    let r = conn
        .execute("CREATE TABLE Available (flight INT, seat TEXT)")
        .unwrap();
    assert_eq!(r, Response::Ack);
    conn.execute("CREATE TABLE Bookings (name TEXT, flight INT, seat TEXT)")
        .unwrap();
    assert_eq!(
        conn.execute("CREATE INDEX ON Available (flight)").unwrap(),
        Response::Ack
    );

    // Written(true) (blind insert).
    let r = conn
        .execute("INSERT INTO Available VALUES (1, '1A'), (1, '1B')")
        .unwrap();
    assert_eq!(r, Response::Written(true));

    // Rows (collapse and peek reads).
    let r = conn.execute("SELECT * FROM Available(1, @s)").unwrap();
    assert_eq!(r.rows().unwrap().len(), 2);
    let r = conn
        .execute("SELECT PEEK @s FROM Available(1, @s)")
        .unwrap();
    assert_eq!(r.rows().unwrap().len(), 2);

    // Committed (resource transaction).
    let r = conn
        .execute(
            "SELECT @s FROM Available(1, @s) CHOOSE 1 \
             FOLLOWED BY (DELETE (1, @s) FROM Available; \
                          INSERT ('Mickey', 1, @s) INTO Bookings)",
        )
        .unwrap();
    assert!(matches!(r, Response::Committed(0)));

    // Worlds (possible-worlds read while a booking is pending).
    let r = conn
        .execute("SELECT POSSIBLE @s FROM Available(1, @s)")
        .unwrap();
    let worlds = r.worlds().unwrap();
    assert_eq!(worlds.len(), 2, "either seat may remain");

    // Pending.
    let r = conn.execute("SHOW PENDING").unwrap();
    assert_eq!(r, Response::Pending(vec![0]));

    // Written(false): with only '1B' left after this delete, removing it
    // would strand the pending booking — the engine must reject.
    assert_eq!(
        conn.execute("DELETE FROM Available VALUES (1, '1A')")
            .unwrap(),
        Response::Written(true)
    );
    assert_eq!(
        conn.execute("DELETE FROM Available VALUES (1, '1B')")
            .unwrap(),
        Response::Written(false)
    );

    // Grounded.
    let r = conn.execute("GROUND ALL").unwrap();
    assert_eq!(r, Response::Grounded(1));
    let r = conn
        .execute("SELECT @s FROM Bookings('Mickey', 1, @s)")
        .unwrap();
    assert_eq!(r.rows().unwrap().len(), 1);

    // Aborted: no seats remain, a new booking cannot be admitted.
    let r = conn
        .execute(
            "SELECT @s FROM Available(1, @s) CHOOSE 1 \
             FOLLOWED BY (DELETE (1, @s) FROM Available)",
        )
        .unwrap();
    assert_eq!(r, Response::Aborted);

    // Ack (CHECKPOINT).
    assert_eq!(conn.execute("CHECKPOINT").unwrap(), Response::Ack);

    // Metrics, with the server's counters riding along.
    let (engine, stats) = conn.server_stats().unwrap();
    assert_eq!(engine.committed, 1);
    assert_eq!(engine.aborted, 1);
    assert_eq!(engine.writes_rejected, 1);
    assert!(stats.frames_decoded >= 15);
    assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
    assert_eq!(stats.connections, 1);
    assert_eq!(stats.class("SELECT … CHOOSE 1"), Some(2));
    assert!(stats.class("SELECT").unwrap() >= 3);

    server.shutdown();
}

#[test]
fn every_statement_class_surfaces_a_typed_error() {
    let server = spawn(4);
    let mut conn = Connection::connect(server.addr()).unwrap();
    conn.execute("CREATE TABLE T (a INT, b TEXT)").unwrap();

    // DDL: duplicate table / index on a missing table.
    let (code, msg) = server_error(conn.execute("CREATE TABLE T (a INT)"), "dup table");
    assert_eq!(code, wire::code::STORAGE, "{msg}");
    let (code, _) = server_error(conn.execute("CREATE INDEX ON Missing (0)"), "index");
    assert_eq!(code, wire::code::STORAGE);

    // Blind writes: missing relation / arity mismatch.
    let (code, _) = server_error(conn.execute("INSERT INTO Missing VALUES (1)"), "insert");
    assert_eq!(code, wire::code::STORAGE);
    let (code, msg) = server_error(conn.execute("DELETE FROM T VALUES (1)"), "delete arity");
    assert_eq!(code, wire::code::STORAGE, "{msg}");

    // Reads: missing relation.
    let (code, _) = server_error(conn.execute("SELECT * FROM Missing(@x)"), "select");
    assert_eq!(code, wire::code::STORAGE);

    // Resource transactions: missing relation in the body.
    let (code, _) = server_error(
        conn.execute(
            "SELECT @s FROM Missing(1, @s) CHOOSE 1 \
             FOLLOWED BY (DELETE (1, @s) FROM Missing)",
        ),
        "txn",
    );
    assert_eq!(code, wire::code::STORAGE);

    // Control statements: parse failures are logic errors.
    let (code, _) = server_error(conn.execute("GROUND banana"), "ground");
    assert_eq!(code, wire::code::LOGIC);
    let (code, _) = server_error(conn.execute("SHOW NONSENSE"), "show");
    assert_eq!(code, wire::code::LOGIC);

    // EXECUTE of a parameterized statement is refused with a dedicated
    // code pointing at PREPARE/BIND/RUN.
    let (code, msg) = server_error(conn.execute("INSERT INTO T VALUES (?, ?)"), "params");
    assert_eq!(code, wire::code::PARAMS);
    assert!(msg.contains("PREPARE"), "{msg}");

    // BIND with the wrong parameter count.
    let insert = conn.prepare("INSERT INTO T VALUES (?, ?)").unwrap();
    let err = conn.bind(&insert, &[Value::from(1)]).unwrap_err();
    let (code, msg) = match err {
        ClientError::Server { code, message } => (code, message),
        other => panic!("bind count: {other:?}"),
    };
    assert_eq!(code, wire::code::LOGIC, "{msg}");

    // RUN of an id this connection never bound (raw frame: the typed
    // client cannot even express this).
    let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
    std::io::Write::write_all(
        &mut raw,
        &wire::encode_request(77, &wire::Request::Run { bound: 999 }),
    )
    .unwrap();
    let frame = wire::read_frame(&mut raw).unwrap().unwrap();
    assert_eq!(frame.request_id, 77);
    let reply = wire::decode_reply(&frame).unwrap();
    assert!(matches!(
        reply,
        wire::Reply::Error {
            code: wire::code::UNKNOWN_ID,
            ..
        }
    ));

    // The original connection survived the whole gauntlet.
    assert_eq!(
        conn.execute("INSERT INTO T VALUES (1, 'x')").unwrap(),
        Response::Written(true)
    );
    server.shutdown();
}

#[test]
fn pipelined_batches_preserve_per_connection_order() {
    let server = spawn(4);
    let mut conn = Connection::connect(server.addr()).unwrap();
    conn.execute("CREATE TABLE P (v INT)").unwrap();

    // Alternate writes and reads: if the server reordered anything, some
    // read would observe the wrong prefix length (and the client itself
    // verifies request-id echo order).
    let statements: Vec<String> = (0..10)
        .flat_map(|i| {
            [
                format!("INSERT INTO P VALUES ({i})"),
                "SELECT * FROM P(@v)".to_string(),
            ]
        })
        .collect();
    let refs: Vec<&str> = statements.iter().map(String::as_str).collect();
    let results = conn.pipeline(&refs).unwrap();
    assert_eq!(results.len(), 20);
    for (i, pair) in results.chunks(2).enumerate() {
        assert!(matches!(pair[0], Ok(Response::Written(true))));
        let rows = pair[1].as_ref().unwrap().rows().unwrap();
        assert_eq!(rows.len(), i + 1, "read {i} saw the wrong write prefix");
    }

    // An error mid-batch fails that statement only; order holds after it.
    let results = conn
        .pipeline(&[
            "INSERT INTO P VALUES (100)",
            "THIS IS NOT SQL",
            "SELECT * FROM P(@v)",
        ])
        .unwrap();
    assert!(matches!(results[0], Ok(Response::Written(true))));
    assert!(matches!(results[1], Err(ClientError::Server { .. })));
    assert_eq!(results[2].as_ref().unwrap().rows().unwrap().len(), 11);
    server.shutdown();
}

#[test]
fn eight_concurrent_connections_of_mixed_traffic_on_four_workers() {
    const CONNECTIONS: usize = 8;
    // One flight with plenty of seats for eight users.
    let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
    qdb_workload::flights::install(
        &mut qdb,
        &qdb_workload::FlightsConfig {
            flights: 1,
            rows_per_flight: 4,
        },
    )
    .unwrap();
    let server = Server::spawn_with_db("127.0.0.1:0", 4, qdb.into_shared()).unwrap();

    std::thread::scope(|scope| {
        for i in 0..CONNECTIONS {
            let addr = server.addr();
            scope.spawn(move || {
                let mut conn = Connection::connect(addr).unwrap();
                // PREPARE/BIND/RUN: the entangled booking, partner = the
                // neighbouring thread's user, all on flight 0.
                let book = conn.prepare(qdb_workload::runner::BOOKING_SQL).unwrap();
                let flight = Value::from(1);
                let user = format!("user-{i}");
                let partner = format!("user-{}", i ^ 1);
                let r = conn
                    .bind_run(
                        &book,
                        &[
                            flight.clone(),
                            Value::from(partner.as_str()),
                            flight.clone(),
                            flight.clone(),
                            Value::from(user.as_str()),
                            flight,
                        ],
                    )
                    .unwrap();
                assert!(matches!(r, Response::Committed(_)), "{user}: {r:?}");

                // EXECUTE: reads and introspection, interleaved.
                let rows = conn
                    .execute("SELECT PEEK @s FROM Available(1, @s)")
                    .unwrap();
                assert!(rows.rows().is_some());
                assert!(matches!(
                    conn.execute("SHOW PENDING").unwrap(),
                    Response::Pending(_)
                ));

                // A pipelined batch per connection: order must hold even
                // under cross-connection contention.
                let batch = conn
                    .pipeline(&[
                        "SHOW PENDING",
                        "SELECT PEEK * FROM Available(1, @s)",
                        "SHOW METRICS",
                    ])
                    .unwrap();
                assert!(matches!(batch[0], Ok(Response::Pending(_))));
                assert!(matches!(batch[1], Ok(Response::Rows(_))));
                assert!(matches!(batch[2], Ok(Response::Metrics(_))));

                // Prepared read, re-run without re-parsing.
                let read = conn.prepare(qdb_workload::runner::READ_SQL).unwrap();
                for _ in 0..3 {
                    let r = conn.bind_run(&read, &[Value::from(user.as_str())]).unwrap();
                    assert!(r.rows().is_some());
                }
            });
        }
    });

    // All eight booked; collapse and verify.
    let mut admin = Connection::connect(server.addr()).unwrap();
    admin.execute("GROUND ALL").unwrap();
    let rows = admin.execute("SELECT * FROM Bookings(@n, @f, @s)").unwrap();
    assert_eq!(rows.rows().unwrap().len(), CONNECTIONS);

    let (engine, stats) = admin.server_stats().unwrap();
    assert_eq!(engine.committed, CONNECTIONS as u64);
    assert_eq!(engine.aborted, 0);
    assert_eq!(stats.connections, (CONNECTIONS + 1) as u64);
    assert_eq!(stats.class("SELECT … CHOOSE 1"), Some(CONNECTIONS as u64));
    // 8 × (PREPARE + BIND + RUN + …) plus the admin conversation.
    assert!(stats.frames_decoded >= (CONNECTIONS * 10) as u64);
    server.shutdown();
}
