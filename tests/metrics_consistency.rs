//! Regression test for torn metrics snapshots.
//!
//! Once metrics left the engine's big lock and became atomics, a `SHOW
//! METRICS` taken mid-`GROUND ALL` could observe *some* of a multi-counter
//! transition — e.g. `grounded_explicit` already incremented while
//! `pending` still counts the transaction — making `committed −
//! grounded_total ≠ pending`. The sharded engine closes this with a
//! seqlock: writers publish whole transitions, and a snapshot is a single
//! `SeqCst` epoch read, the cell reads, and an epoch re-check. This test
//! pins the guarantee by hammering snapshots from observer threads while a
//! writer thread alternates bursts of submits with `GROUND ALL`.
//!
//! The observers also pull `SHOW PROFILE` and `SHOW EVENTS` on every
//! lap: the observability layer records histograms and ring events on
//! the same statements the writer is executing, and neither that
//! recording nor the lock-free profile snapshot may disturb the seqlock
//! identity — or return an incoherent histogram (percentiles out of
//! order) mid-write.

use std::sync::atomic::{AtomicBool, Ordering};

use quantum_db::{QuantumDb, QuantumDbConfig, Response, Session};

const LANES: i64 = 6;
const ROUNDS: usize = 15;

fn build_session() -> Session {
    let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
    qdb.execute("CREATE TABLE Free (lane INT, slot TEXT)")
        .unwrap();
    qdb.execute("CREATE TABLE Taken (who TEXT, lane INT, slot TEXT)")
        .unwrap();
    let shared = qdb.into_shared();
    let session = shared.session();
    let insert = session.prepare("INSERT INTO Free VALUES (?, ?)").unwrap();
    for lane in 0..LANES {
        for slot in 0..ROUNDS as i64 {
            insert
                .bind(&[lane.into(), format!("s{slot:02}").into()])
                .unwrap()
                .run()
                .unwrap();
        }
    }
    session
}

#[test]
fn show_metrics_mid_ground_all_never_observes_torn_counters() {
    let session = build_session();
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // Writer: bursts of one pending booking per lane, then a global
        // collapse — every round moves (committed, pending) and then
        // (grounded, pending) through multi-counter transitions.
        let writer_session = session.clone();
        let done_ref = &done;
        scope.spawn(move || {
            let book = writer_session
                .prepare(
                    "SELECT @s FROM Free(?, @s) CHOOSE 1 \
                     FOLLOWED BY (DELETE (?, @s) FROM Free; \
                                  INSERT (?, ?, @s) INTO Taken)",
                )
                .unwrap();
            for round in 0..ROUNDS {
                for lane in 0..LANES {
                    let who = format!("r{round}-l{lane}");
                    let r = book
                        .bind(&[lane.into(), lane.into(), who.as_str().into(), lane.into()])
                        .unwrap()
                        .run()
                        .unwrap();
                    assert!(matches!(r, Response::Committed(_)));
                }
                writer_session.execute("GROUND ALL").unwrap();
            }
            done_ref.store(true, Ordering::SeqCst);
        });

        // Observers: consistent snapshots must balance at every instant,
        // both through the typed API and through `SHOW METRICS`.
        for _ in 0..2 {
            let obs = session.clone();
            let done_ref = &done;
            scope.spawn(move || {
                let mut samples = 0u64;
                while !done_ref.load(Ordering::SeqCst) {
                    let (m, pending) = obs.shared().metrics_with_pending();
                    assert!(
                        m.committed >= m.grounded_total(),
                        "snapshot tore: grounded {} > committed {}",
                        m.grounded_total(),
                        m.committed
                    );
                    assert_eq!(
                        m.committed - m.grounded_total(),
                        pending,
                        "snapshot tore: committed {} − grounded {} ≠ pending {}",
                        m.committed,
                        m.grounded_total(),
                        pending
                    );
                    let wire = obs.execute("SHOW METRICS").unwrap();
                    let wm = wire.metrics().expect("typed metrics");
                    assert!(
                        wm.committed >= wm.grounded_total(),
                        "SHOW METRICS tore: grounded {} > committed {}",
                        wm.grounded_total(),
                        wm.committed
                    );
                    // Histograms are recorded lock-free by the writer's
                    // statements while we read them; a snapshot must still
                    // be internally ordered.
                    let profile = obs.execute("SHOW PROFILE").unwrap();
                    let p = profile.profile().expect("typed profile");
                    for (name, s) in p.classes.iter().chain(p.phases.iter()) {
                        assert!(s.count > 0, "{name}: empty summary reported");
                        assert!(s.p99_ns >= s.p50_ns, "{name}: p99 < p50");
                        assert!(s.p999_ns >= s.p99_ns, "{name}: p999 < p99");
                        assert!(s.max_ns >= s.p999_ns, "{name}: max < p999");
                    }
                    let events = obs.execute("SHOW EVENTS LIMIT 16").unwrap();
                    assert!(events.events().expect("typed events").len() <= 16);
                    samples += 1;
                }
                assert!(samples > 0, "observer never sampled");
            });
        }
    });

    // Quiesced: everything grounded, books balanced.
    let (m, pending) = session.shared().metrics_with_pending();
    let expected = (LANES as u64) * (ROUNDS as u64);
    assert_eq!(m.committed, expected);
    assert_eq!(m.grounded_total(), expected);
    assert_eq!(pending, 0);
}

/// `reset_metrics` taken while transactions are pending must not break
/// the accounting identity: `committed` restarts at the pending count
/// (the commits the new epoch inherits), so `committed − grounded_total
/// == pending` keeps holding for every later snapshot — including ones
/// taken after the inherited transactions ground.
#[test]
fn reset_mid_pending_keeps_the_accounting_identity() {
    let session = build_session();
    let book = session
        .prepare(
            "SELECT @s FROM Free(?, @s) CHOOSE 1 \
             FOLLOWED BY (DELETE (?, @s) FROM Free; \
                          INSERT (?, ?, @s) INTO Taken)",
        )
        .unwrap();
    for lane in 0..LANES {
        let who = format!("pre-reset-l{lane}");
        let r = book
            .bind(&[lane.into(), lane.into(), who.as_str().into(), lane.into()])
            .unwrap()
            .run()
            .unwrap();
        assert!(matches!(r, Response::Committed(_)));
    }
    let shared = session.shared();
    assert_eq!(shared.pending_count() as i64, LANES);

    shared.reset_metrics();
    let (m, pending) = shared.metrics_with_pending();
    assert_eq!(pending as i64, LANES, "pending is live state, not a stat");
    assert_eq!(m.committed, pending, "reset inherits pending as committed");
    assert_eq!(
        m.max_pending, pending,
        "inherited pending is the high-water"
    );
    assert_eq!(m.grounded_total(), 0);
    assert_eq!(m.submitted, 0);

    // Grounding the inherited transactions keeps the identity balanced…
    shared.ground_all().unwrap();
    let (m, pending) = shared.metrics_with_pending();
    assert_eq!(pending, 0);
    assert_eq!(m.committed - m.grounded_total(), pending);

    // …and so does post-reset traffic.
    let r = book
        .bind(&[0i64.into(), 0i64.into(), "post-reset".into(), 0i64.into()])
        .unwrap()
        .run()
        .unwrap();
    assert!(matches!(r, Response::Committed(_)));
    let (m, pending) = shared.metrics_with_pending();
    assert_eq!(m.committed - m.grounded_total(), pending);
    assert_eq!(pending, 1);
}
