//! The SQL surface syntax (Figure 1) driving a live quantum database —
//! end-to-end through the facade.

use quantum_db::core::{QuantumDb, QuantumDbConfig};
use quantum_db::logic::{parse_query, parse_sql_transaction};
use quantum_db::storage::{tuple, Schema, ValueType};

fn engine() -> QuantumDb {
    let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
    qdb.create_table(Schema::new(
        "Available",
        vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
    ))
    .unwrap();
    qdb.create_table(Schema::new(
        "Bookings",
        vec![
            ("name", ValueType::Str),
            ("flight", ValueType::Int),
            ("seat", ValueType::Str),
        ],
    ))
    .unwrap();
    qdb.create_table(Schema::new(
        "Adjacent",
        vec![("s1", ValueType::Str), ("s2", ValueType::Str)],
    ))
    .unwrap();
    qdb.bulk_insert(
        "Available",
        vec![tuple![123, "1A"], tuple![123, "1B"], tuple![123, "1C"]],
    )
    .unwrap();
    qdb.bulk_insert(
        "Adjacent",
        vec![
            tuple!["1A", "1B"],
            tuple!["1B", "1A"],
            tuple!["1B", "1C"],
            tuple!["1C", "1B"],
        ],
    )
    .unwrap();
    qdb
}

#[test]
fn figure1_sql_transaction_books_and_coordinates() {
    let mut qdb = engine();
    // Goofy books a concrete seat first.
    let goofy = parse_sql_transaction(
        "SELECT @s \
         FROM Available(123, @s) \
         WHERE @s = '1B' \
         CHOOSE 1 \
         FOLLOWED BY ( \
            DELETE (123, @s) FROM Available; \
            INSERT ('Goofy', 123, @s) INTO Bookings; \
         )",
    )
    .unwrap();
    assert!(qdb.submit(&goofy).unwrap().is_committed());
    qdb.ground_all().unwrap();

    // Mickey's Figure-1 request: any seat, preferably next to Goofy.
    let mickey = parse_sql_transaction(
        "SELECT @f, @s \
         FROM Available(@f, @s), \
              OPTIONAL Bookings('Goofy', @f, @s2), \
              OPTIONAL Adjacent(@s, @s2) \
         CHOOSE 1 \
         FOLLOWED BY ( \
            DELETE (@f, @s) FROM Available; \
            INSERT ('Mickey', @f, @s) INTO Bookings; \
         )",
    )
    .unwrap();
    assert!(qdb.submit(&mickey).unwrap().is_committed());

    // Collapse and check adjacency was honored (1A or 1C, next to 1B).
    let q = parse_query("Bookings('Mickey', f, s)").unwrap();
    let rows = qdb.read_parsed(&q, None).unwrap();
    let seat = rows[0]
        .get(q.var("s").unwrap())
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert!(
        qdb.database()
            .contains("Adjacent", &tuple![seat.as_str(), "1B"]),
        "Mickey got {seat}, not adjacent to Goofy's 1B"
    );
}

#[test]
fn sql_and_datalog_forms_are_interchangeable() {
    let sql = parse_sql_transaction(
        "SELECT @s FROM Available(123, @s) CHOOSE 1 \
         FOLLOWED BY (DELETE (123, @s) FROM Available; \
                      INSERT ('Pluto', 123, @s) INTO Bookings)",
    )
    .unwrap();
    let datalog = quantum_db::logic::parse_transaction(
        "-Available(123, s), +Bookings('Pluto', 123, s) :-1 Available(123, s)",
    )
    .unwrap();
    assert_eq!(sql.to_string(), datalog.to_string());
    // Both run identically against a fresh engine.
    for txn in [&sql, &datalog] {
        let mut qdb = engine();
        assert!(qdb.submit(txn).unwrap().is_committed());
        qdb.ground_all().unwrap();
        assert_eq!(qdb.database().table("Bookings").unwrap().len(), 1);
    }
}
