//! The SQL surface syntax (Figure 1) driving a live quantum database —
//! end-to-end through the facade — plus the parser's error paths: every
//! malformed statement class returns a positioned `LogicError`, never a
//! panic.

use quantum_db::core::{QuantumDb, QuantumDbConfig};
use quantum_db::logic::{parse_query, parse_sql_transaction, parse_statement, LogicError};
use quantum_db::storage::{tuple, Schema, ValueType};

fn engine() -> QuantumDb {
    let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
    qdb.create_table(Schema::new(
        "Available",
        vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
    ))
    .unwrap();
    qdb.create_table(Schema::new(
        "Bookings",
        vec![
            ("name", ValueType::Str),
            ("flight", ValueType::Int),
            ("seat", ValueType::Str),
        ],
    ))
    .unwrap();
    qdb.create_table(Schema::new(
        "Adjacent",
        vec![("s1", ValueType::Str), ("s2", ValueType::Str)],
    ))
    .unwrap();
    qdb.bulk_insert(
        "Available",
        vec![tuple![123, "1A"], tuple![123, "1B"], tuple![123, "1C"]],
    )
    .unwrap();
    qdb.bulk_insert(
        "Adjacent",
        vec![
            tuple!["1A", "1B"],
            tuple!["1B", "1A"],
            tuple!["1B", "1C"],
            tuple!["1C", "1B"],
        ],
    )
    .unwrap();
    qdb
}

#[test]
fn figure1_sql_transaction_books_and_coordinates() {
    let mut qdb = engine();
    // Goofy books a concrete seat first.
    let goofy = parse_sql_transaction(
        "SELECT @s \
         FROM Available(123, @s) \
         WHERE @s = '1B' \
         CHOOSE 1 \
         FOLLOWED BY ( \
            DELETE (123, @s) FROM Available; \
            INSERT ('Goofy', 123, @s) INTO Bookings; \
         )",
    )
    .unwrap();
    assert!(qdb.submit(&goofy).unwrap().is_committed());
    qdb.ground_all().unwrap();

    // Mickey's Figure-1 request: any seat, preferably next to Goofy.
    let mickey = parse_sql_transaction(
        "SELECT @f, @s \
         FROM Available(@f, @s), \
              OPTIONAL Bookings('Goofy', @f, @s2), \
              OPTIONAL Adjacent(@s, @s2) \
         CHOOSE 1 \
         FOLLOWED BY ( \
            DELETE (@f, @s) FROM Available; \
            INSERT ('Mickey', @f, @s) INTO Bookings; \
         )",
    )
    .unwrap();
    assert!(qdb.submit(&mickey).unwrap().is_committed());

    // Collapse and check adjacency was honored (1A or 1C, next to 1B).
    let q = parse_query("Bookings('Mickey', f, s)").unwrap();
    let rows = qdb.read_parsed(&q, None).unwrap();
    let seat = rows[0]
        .get(q.var("s").unwrap())
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert!(
        qdb.database()
            .contains("Adjacent", &tuple![seat.as_str(), "1B"]),
        "Mickey got {seat}, not adjacent to Goofy's 1B"
    );
}

#[test]
fn sql_and_datalog_forms_are_interchangeable() {
    let sql = parse_sql_transaction(
        "SELECT @s FROM Available(123, @s) CHOOSE 1 \
         FOLLOWED BY (DELETE (123, @s) FROM Available; \
                      INSERT ('Pluto', 123, @s) INTO Bookings)",
    )
    .unwrap();
    let datalog = quantum_db::logic::parse_transaction(
        "-Available(123, s), +Bookings('Pluto', 123, s) :-1 Available(123, s)",
    )
    .unwrap();
    assert_eq!(sql.to_string(), datalog.to_string());
    // Both run identically against a fresh engine.
    for txn in [&sql, &datalog] {
        let mut qdb = engine();
        assert!(qdb.submit(txn).unwrap().is_committed());
        qdb.ground_all().unwrap();
        assert_eq!(qdb.database().table("Bookings").unwrap().len(), 1);
    }
}

// ---------------------------------------------------------------------------
// Parser error paths: one malformed statement per failure mode, per class.
// Every one must come back as a `LogicError::Parse` with a byte offset
// inside the input and a non-empty human-readable reason — never a panic.
// ---------------------------------------------------------------------------

#[track_caller]
fn assert_positioned_parse_error(input: &str, expect_in_message: &str) {
    match parse_statement(input) {
        Err(LogicError::Parse { at, reason }) => {
            assert!(
                at <= input.len(),
                "offset {at} outside input (len {}): {input:?}",
                input.len()
            );
            assert!(!reason.is_empty(), "empty reason for {input:?}");
            let msg = LogicError::Parse { at, reason }.to_string();
            assert!(
                msg.to_ascii_lowercase()
                    .contains(&expect_in_message.to_ascii_lowercase()),
                "{input:?}: message {msg:?} does not mention {expect_in_message:?}"
            );
            assert!(msg.contains("byte"), "message lacks the offset: {msg:?}");
        }
        other => panic!("{input:?}: expected a parse error, got {other:?}"),
    }
}

#[test]
fn ddl_error_paths() {
    assert_positioned_parse_error("CREATE", "expected TABLE or INDEX");
    assert_positioned_parse_error("CREATE TABLE", "relation");
    assert_positioned_parse_error("CREATE TABLE T", "'('");
    assert_positioned_parse_error("CREATE TABLE T ()", "column name");
    assert_positioned_parse_error("CREATE TABLE T (x)", "column type");
    assert_positioned_parse_error("CREATE TABLE T (x FLOAT)", "unknown column type");
    assert_positioned_parse_error("CREATE TABLE T (x INT", "')'");
    assert_positioned_parse_error("CREATE TABLE SELECT (x INT)", "reserved");
    assert_positioned_parse_error("CREATE TABLE T (values INT)", "reserved");
    assert_positioned_parse_error("CREATE INDEX T (0)", "expected ON");
    assert_positioned_parse_error("CREATE INDEX ON T (@x)", "column name or position");
    assert_positioned_parse_error("CREATE INDEX ON T (-1)", "column name or position");
}

#[test]
fn blind_write_error_paths() {
    assert_positioned_parse_error("INSERT INTO T", "expected VALUES");
    assert_positioned_parse_error("INSERT INTO T VALUES", "'('");
    assert_positioned_parse_error("INSERT INTO T VALUES (1", "')'");
    assert_positioned_parse_error("INSERT INTO T VALUES (@x)", "literals or '?' parameters");
    assert_positioned_parse_error("INSERT (1) INTO T", "only valid inside FOLLOWED BY");
    assert_positioned_parse_error("DELETE (1) FROM T", "only valid inside FOLLOWED BY");
    assert_positioned_parse_error("DELETE FROM T", "expected VALUES");
    assert_positioned_parse_error("DELETE FROM T VALUES (1,)", "term");
}

#[test]
fn read_error_paths() {
    assert_positioned_parse_error("SELECT", "term");
    assert_positioned_parse_error("SELECT @s", "expected FROM");
    assert_positioned_parse_error("SELECT @s FROM", "relation");
    assert_positioned_parse_error("SELECT @s FROM A(@s", "')'");
    assert_positioned_parse_error("SELECT @s FROM A(@s) LIMIT", "non-negative integer");
    assert_positioned_parse_error("SELECT @s FROM A(@s) LIMIT -1", "non-negative integer");
    assert_positioned_parse_error("SELECT @s FROM A(@s), OPTIONAL B(@s)", "OPTIONAL");
    assert_positioned_parse_error("SELECT ? FROM A(@s)", "projected");
    // Aliasing a projected variable to a parameter through WHERE is the
    // same mistake in disguise: the column would silently vanish.
    assert_positioned_parse_error("SELECT @n, @f FROM B(@n, @f) WHERE @n = ?", "projected");
    assert_positioned_parse_error("SELECT @s FROM A(@s) WHERE ? = ?", "parameters");
    assert_positioned_parse_error("SELECT @s FROM A(@s) WHERE ? = 1", "variable");
    assert_positioned_parse_error(
        "SELECT @s FROM A(@s) WHERE @s = 1 AND @s = 2",
        "contradictory",
    );
    assert_positioned_parse_error("SELECT @s FROM A(@s) trailing", "trailing");
}

#[test]
fn resource_transaction_error_paths() {
    assert_positioned_parse_error("SELECT @s FROM A(@s) CHOOSE", "CHOOSE 1");
    assert_positioned_parse_error("SELECT @s FROM A(@s) CHOOSE 2", "CHOOSE 1");
    assert_positioned_parse_error("SELECT @s FROM A(@s) CHOOSE 1", "FOLLOWED");
    assert_positioned_parse_error("SELECT @s FROM A(@s) CHOOSE 1 FOLLOWED", "BY");
    assert_positioned_parse_error(
        "SELECT @s FROM A(@s) CHOOSE 1 FOLLOWED BY ()",
        "at least one write",
    );
    assert_positioned_parse_error(
        "SELECT @s FROM A(@s) CHOOSE 1 FOLLOWED BY (SELECT @s)",
        "not permitted",
    );
    assert_positioned_parse_error(
        "SELECT PEEK @s FROM A(@s) CHOOSE 1 FOLLOWED BY (DELETE (@s) FROM A)",
        "read modifiers",
    );
}

#[test]
fn control_error_paths() {
    assert_positioned_parse_error("GROUND", "transaction id or ALL");
    assert_positioned_parse_error("GROUND -3", "transaction id or ALL");
    assert_positioned_parse_error("GROUND x", "transaction id or ALL");
    assert_positioned_parse_error("SHOW", "METRICS, PENDING, PROFILE, EVENTS and REPLICATION");
    assert_positioned_parse_error(
        "SHOW TABLES",
        "METRICS, PENDING, PROFILE, EVENTS and REPLICATION",
    );
    assert_positioned_parse_error("CHECKPOINT now", "trailing");
    assert_positioned_parse_error("EXPLAIN SELECT", "expected a statement");
}

#[test]
fn lexer_error_paths() {
    assert_positioned_parse_error("SELECT @ FROM A(@s)", "variable name");
    assert_positioned_parse_error("SELECT @s FROM A('unterminated", "unterminated");
    assert_positioned_parse_error("SELECT @s FROM A(#)", "unexpected character");
}

/// No prefix of a valid statement may panic the parser — every truncation
/// either parses (a shorter valid statement) or errors cleanly.
#[test]
fn truncations_never_panic() {
    let full = "SELECT @f, @s FROM Available(@f, @s), \
                OPTIONAL Bookings('Goofy', @f, @s2), OPTIONAL Adjacent(@s, @s2) \
                WHERE @f = 123 CHOOSE 1 \
                FOLLOWED BY (DELETE (@f, @s) FROM Available; \
                             INSERT ('Mickey', @f, @s) INTO Bookings;)";
    for cut in 0..=full.len() {
        if !full.is_char_boundary(cut) {
            continue;
        }
        let _ = parse_statement(&full[..cut]); // must return, never panic
    }
    for stmt in [
        "CREATE TABLE T (a INT, b TEXT, c BOOL)",
        "INSERT INTO T VALUES (1, 'x', true)",
        "SELECT POSSIBLE @s FROM A(@s) LIMIT 5",
        "GROUND ALL",
        "SHOW METRICS",
    ] {
        for cut in 0..=stmt.len() {
            let _ = parse_statement(&stmt[..cut]);
        }
    }
}
