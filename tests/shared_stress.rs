//! Multi-threaded stress test for [`SharedQuantumDb`]: N threads hammer
//! one engine through [`Session`] clones — submits, reads, blind writes
//! and explicit grounding, concurrently — asserting the handle never
//! deadlocks or poisons and that pending-transaction accounting stays
//! consistent throughout.

use quantum_db::storage::Value;
use quantum_db::{QuantumDb, QuantumDbConfig, Response, Session};

const THREADS: usize = 8;
const BOOKINGS_PER_THREAD: usize = 12;

/// Build a schema where each thread owns one "flight" worth of resources,
/// so admissions contend on the engine lock but not on the seats.
fn stressed_session() -> Session {
    let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
    qdb.execute("CREATE TABLE Free (lane INT, slot TEXT)")
        .unwrap();
    qdb.execute("CREATE TABLE Taken (who TEXT, lane INT, slot TEXT)")
        .unwrap();
    qdb.execute("CREATE TABLE Audit (who TEXT, lane INT)")
        .unwrap();
    let shared = qdb.into_shared();
    let session = shared.session();
    let insert = session.prepare("INSERT INTO Free VALUES (?, ?)").unwrap();
    for lane in 0..THREADS as i64 {
        for slot in 0..BOOKINGS_PER_THREAD as i64 {
            insert
                .bind(&[Value::from(lane), Value::from(format!("s{slot}"))])
                .unwrap()
                .run()
                .unwrap();
        }
    }
    session
}

#[test]
fn concurrent_sessions_never_deadlock_and_accounting_stays_consistent() {
    let session = stressed_session();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let session = session.clone();
            scope.spawn(move || {
                let lane = Value::from(t as i64);
                let book = session
                    .prepare(
                        "SELECT @s FROM Free(?, @s) CHOOSE 1 \
                         FOLLOWED BY (DELETE (?, @s) FROM Free; \
                                      INSERT (?, ?, @s) INTO Taken)",
                    )
                    .unwrap();
                let read = session.prepare("SELECT @s FROM Taken(?, ?, @s)").unwrap();
                for i in 0..BOOKINGS_PER_THREAD {
                    let who = Value::from(format!("t{t}-{i}"));
                    let r = book
                        .bind(&[lane.clone(), lane.clone(), who.clone(), lane.clone()])
                        .unwrap()
                        .run()
                        .unwrap();
                    assert!(
                        matches!(r, Response::Committed(_)),
                        "thread {t} booking {i}: {r:?}"
                    );
                    // Interleave the other operation classes.
                    match i % 4 {
                        0 => {
                            // A read of this thread's own bookings forces
                            // read-induced grounding of its pending txns.
                            let rows = read
                                .bind(&[who.clone(), lane.clone()])
                                .unwrap()
                                .run()
                                .unwrap();
                            assert_eq!(rows.rows().unwrap().len(), 1);
                        }
                        1 => {
                            // Blind write on an unrelated table is always
                            // admitted.
                            let w = session
                                .execute(&format!("INSERT INTO Audit VALUES ('t{t}', {t})"))
                                .unwrap();
                            assert_eq!(w, Response::Written(true));
                        }
                        2 => {
                            // Introspection under contention.
                            let p = session.execute("SHOW PENDING").unwrap();
                            assert!(matches!(p, Response::Pending(_)));
                        }
                        _ => {
                            let m = session.execute("SHOW METRICS").unwrap();
                            assert!(m.metrics().is_some());
                        }
                    }
                    // The core accounting invariant, sampled mid-flight
                    // from one seqlock window so the numbers are from the
                    // same instant: every committed transaction is either
                    // still pending or has been grounded — never lost,
                    // never duplicated.
                    let (m, pending) = session.shared().metrics_with_pending();
                    assert!(
                        m.committed >= m.grounded_total(),
                        "grounded more than committed"
                    );
                    assert_eq!(
                        m.committed - m.grounded_total(),
                        pending,
                        "pending accounting diverged mid-flight"
                    );
                }
            });
        }
    });

    // Quiesced: the books must balance exactly.
    let shared = session.shared();
    let metrics = shared.metrics();
    let expected = (THREADS * BOOKINGS_PER_THREAD) as u64;
    assert_eq!(metrics.submitted, expected, "lost submissions");
    assert_eq!(metrics.committed, expected, "every booking had capacity");
    assert_eq!(metrics.aborted, 0);
    assert_eq!(
        metrics.committed - metrics.grounded_total(),
        shared.pending_count() as u64,
        "pending accounting diverged"
    );

    shared.ground_all().unwrap();
    assert_eq!(shared.pending_count(), 0);
    let metrics = shared.metrics();
    assert_eq!(metrics.grounded_total(), expected, "a booking never landed");
    // Solver hot-path counters flow into the sharded metrics block: the
    // concurrent admissions searched and streamed, and the fast path
    // never materialized a candidate vector.
    assert!(metrics.solver_nodes > 0);
    assert!(metrics.solver_candidates_streamed > 0);
    assert_eq!(metrics.solver_candidate_vecs, 0);

    // Every slot ended up taken exactly once.
    let rows = session.execute("SELECT * FROM Taken(@w, @l, @s)").unwrap();
    assert_eq!(rows.rows().unwrap().len(), THREADS * BOOKINGS_PER_THREAD);
    let free = session.execute("SELECT * FROM Free(@l, @s)").unwrap();
    assert_eq!(free.rows().unwrap().len(), 0, "slots left behind");
}

#[test]
fn pending_ids_snapshots_are_exact_sorted_and_dedup_free_under_churn() {
    use quantum_db::logic::parse_transaction;
    use quantum_db::storage::{tuple, Schema, ValueType};

    let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
    qdb.create_table(Schema::new(
        "Available",
        vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
    ))
    .unwrap();
    qdb.create_table(Schema::new(
        "Bookings",
        vec![
            ("name", ValueType::Str),
            ("flight", ValueType::Int),
            ("seat", ValueType::Str),
        ],
    ))
    .unwrap();
    let lanes = 4i64;
    let per_lane = 8i64;
    let mut seats = Vec::new();
    for lane in 0..lanes {
        for s in 0..per_lane {
            seats.push(tuple![lane, format!("s{s}")]);
        }
    }
    qdb.bulk_insert("Available", seats).unwrap();
    let shared = qdb.into_shared();

    let book = |lane: i64, who: &str| {
        parse_transaction(&format!(
            "-Available({lane}, s), +Bookings('{who}', {lane}, s) :-1 Available({lane}, s)"
        ))
        .unwrap()
    };

    // Quiescent exactness: the snapshot is exactly the committed,
    // not-yet-ground ids, in ascending order.
    let mut ids = Vec::new();
    for i in 0..lanes * 2 {
        let out = shared.submit(&book(i % lanes, &format!("u{i}"))).unwrap();
        ids.push(out.id().unwrap());
    }
    let mut expected = ids.clone();
    expected.sort_unstable();
    assert_eq!(shared.pending_ids(), expected);
    // Ground every other id: the snapshot tracks removals exactly.
    for id in ids.iter().step_by(2) {
        assert!(shared.ground(*id).unwrap());
    }
    let expected: Vec<_> = ids.iter().copied().skip(1).step_by(2).collect();
    assert_eq!(shared.pending_ids(), expected);

    // Churn: writers submit into disjoint lanes (splitting and re-merging
    // partitions) while a scanner asserts every snapshot is sorted and
    // duplicate-free — the consistency the retry loop must provide even
    // while slots die mid-scan.
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let writers: Vec<_> = (0..lanes)
            .map(|lane| {
                let shared = shared.clone();
                let book = &book;
                scope.spawn(move || {
                    for i in 0..per_lane - 2 {
                        let out = shared.submit(&book(lane, &format!("w{lane}-{i}"))).unwrap();
                        let id = out.id().unwrap();
                        if i % 2 == 0 {
                            assert!(shared.ground(id).unwrap());
                        }
                    }
                })
            })
            .collect();
        let scanner = {
            let shared = shared.clone();
            let stop = &stop;
            scope.spawn(move || {
                let mut scans = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) || scans == 0 {
                    let snap = shared.pending_ids();
                    assert!(
                        snap.windows(2).all(|w| w[0] < w[1]),
                        "snapshot not strictly ascending: {snap:?}"
                    );
                    scans += 1;
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        scanner.join().unwrap();
    });

    // Quiesced again: snapshot matches the accounting identity.
    let (m, pending) = shared.metrics_with_pending();
    assert_eq!(m.committed - m.grounded_total(), pending);
    assert_eq!(shared.pending_ids().len() as u64, pending);
}

#[test]
fn a_panicking_session_user_does_not_poison_the_engine() {
    let session = stressed_session();
    let clone = session.clone();
    let result = std::thread::spawn(move || {
        let _r = clone.execute("SHOW METRICS").unwrap();
        panic!("user code panics while holding nothing");
    })
    .join();
    assert!(result.is_err());
    // The shared handle still serves.
    assert!(session.execute("SHOW PENDING").is_ok());
    assert_eq!(session.shared().pending_count(), 0);
}
