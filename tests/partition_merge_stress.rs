//! Lock-discipline stress test for the partition-sharded engine
//! (loom-style: manually interleaved via seeded schedules, not exhaustive
//! model checking — the offline build has no loom).
//!
//! Eight threads submit bookings that are mostly disjoint (each thread
//! owns a lane = one §4 partition) but, on a deterministic per-thread
//! schedule, submit *wildcard* bookings whose lane is unconstrained. A
//! wildcard unifies with every lane, so admitting it forces the engine to
//! merge every live partition — the two-phase reservation/drain path —
//! while other threads race reads, explicit grounds and introspection
//! against it. The test asserts:
//!
//! * no deadlock (a watchdog fails the test if the scope wedges),
//! * the accounting invariant `committed − grounded == pending` at every
//!   consistent snapshot taken mid-flight from every thread,
//! * conservation after quiescing: every committed booking took exactly
//!   one slot, none lost, none duplicated.

use std::sync::mpsc;
use std::time::Duration;

use quantum_db::storage::Value;
use quantum_db::{QuantumDb, QuantumDbConfig, Response, Session};

const THREADS: usize = 8;
const BOOKINGS_PER_THREAD: usize = 10;
/// Wildcard (merge-forcing) bookings per thread.
const WILDCARDS_PER_THREAD: usize = 2;
/// Extra capacity per lane: even if the solver funnels *every* wildcard
/// into one lane (FirstFit may), no lane can exhaust and abort a booking.
const SPARE_SLOTS: usize = THREADS * WILDCARDS_PER_THREAD;

/// Deterministic per-thread schedule source (splitmix-ish LCG).
fn next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn build_session() -> Session {
    let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
    qdb.execute("CREATE TABLE Free (lane INT, slot TEXT)")
        .unwrap();
    qdb.execute("CREATE TABLE Taken (who TEXT, lane INT, slot TEXT)")
        .unwrap();
    let shared = qdb.into_shared();
    let session = shared.session();
    let insert = session.prepare("INSERT INTO Free VALUES (?, ?)").unwrap();
    for lane in 0..THREADS as i64 {
        for slot in 0..(BOOKINGS_PER_THREAD + SPARE_SLOTS) as i64 {
            insert
                .bind(&[Value::from(lane), Value::from(format!("s{slot:02}"))])
                .unwrap()
                .run()
                .unwrap();
        }
    }
    session
}

fn run_stress(seed: u64) {
    let session = build_session();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let session = session.clone();
            scope.spawn(move || {
                let mut rng = seed ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                // Seeded wildcard positions (at most WILDCARDS_PER_THREAD,
                // so capacity can never run out wherever they land).
                let wildcard_at: Vec<usize> = (0..WILDCARDS_PER_THREAD)
                    .map(|_| (next(&mut rng) as usize) % BOOKINGS_PER_THREAD)
                    .collect();
                let lane = Value::from(t as i64);
                // Lane-local booking: stays inside this thread's partition.
                let own = session
                    .prepare(
                        "SELECT @s FROM Free(?, @s) CHOOSE 1 \
                         FOLLOWED BY (DELETE (?, @s) FROM Free; \
                                      INSERT (?, ?, @s) INTO Taken)",
                    )
                    .unwrap();
                // Wildcard booking: lane unconstrained — unifies with every
                // partition and forces a global merge on admission.
                let any = session
                    .prepare(
                        "SELECT @l, @s FROM Free(@l, @s) CHOOSE 1 \
                         FOLLOWED BY (DELETE (@l, @s) FROM Free; \
                                      INSERT (?, @l, @s) INTO Taken)",
                    )
                    .unwrap();
                for i in 0..BOOKINGS_PER_THREAD {
                    let who = Value::from(format!("t{t}-{i}"));
                    // Seeded interleaving points: stagger threads so
                    // different runs explore different overlap timings.
                    for _ in 0..(next(&mut rng) % 3) {
                        std::thread::yield_now();
                    }
                    let wildcard = wildcard_at.contains(&i);
                    let r = if wildcard {
                        any.bind(std::slice::from_ref(&who)).unwrap().run().unwrap()
                    } else {
                        own.bind(&[lane.clone(), lane.clone(), who.clone(), lane.clone()])
                            .unwrap()
                            .run()
                            .unwrap()
                    };
                    assert!(
                        matches!(r, Response::Committed(_)),
                        "thread {t} booking {i} (wildcard={wildcard}): {r:?}"
                    );
                    // Interleave the other statement classes on schedule.
                    match next(&mut rng) % 4 {
                        0 => {
                            let rows = session
                                .execute(&format!("SELECT @s FROM Taken('t{t}-{i}', @l, @s)"))
                                .unwrap();
                            assert_eq!(
                                rows.rows().unwrap().len(),
                                1,
                                "thread {t}'s own booking must be observable"
                            );
                        }
                        1 => {
                            if let Response::Committed(id) = r {
                                session.execute(&format!("GROUND {id}")).unwrap();
                            }
                        }
                        2 => {
                            let p = session.execute("SHOW PENDING").unwrap();
                            assert!(matches!(p, Response::Pending(_)));
                        }
                        _ => {}
                    }
                    // The accounting invariant, from one seqlock window.
                    let (m, pending) = session.shared().metrics_with_pending();
                    assert!(m.committed >= m.grounded_total());
                    assert_eq!(
                        m.committed - m.grounded_total(),
                        pending,
                        "pending accounting diverged mid-flight (thread {t})"
                    );
                }
            });
        }
    });

    // Quiesced: the books balance exactly.
    let shared = session.shared();
    let expected = (THREADS * BOOKINGS_PER_THREAD) as u64;
    let (metrics, pending) = shared.metrics_with_pending();
    assert_eq!(metrics.submitted, expected, "lost submissions");
    assert_eq!(metrics.committed, expected, "capacity was sufficient");
    assert_eq!(metrics.aborted, 0);
    assert_eq!(metrics.committed - metrics.grounded_total(), pending);

    // Whether the racing wildcards hit a multi-partition moment is
    // schedule-dependent; force one *deterministic* merge so every run
    // exercises the reservation/drain path: collapse everything, open two
    // disjoint partitions, then drop a wildcard across both.
    shared.ground_all().unwrap();
    for (lane, who) in [(0i64, "merge-a"), (1, "merge-b")] {
        let r = session
            .execute(&format!(
                "SELECT @s FROM Free({lane}, @s) CHOOSE 1 \
                 FOLLOWED BY (DELETE ({lane}, @s) FROM Free; \
                              INSERT ('{who}', {lane}, @s) INTO Taken)"
            ))
            .unwrap();
        assert!(matches!(r, Response::Committed(_)));
    }
    let merges_before = shared.metrics().partition_merges;
    let r = session
        .execute(
            "SELECT @l, @s FROM Free(@l, @s) CHOOSE 1 \
             FOLLOWED BY (DELETE (@l, @s) FROM Free; \
                          INSERT ('merge-w', @l, @s) INTO Taken)",
        )
        .unwrap();
    assert!(matches!(r, Response::Committed(_)));
    assert_eq!(
        shared.metrics().partition_merges,
        merges_before + 1,
        "the wildcard must merge the two open partitions"
    );
    let expected = expected + 3;

    shared.ground_all().unwrap();
    assert_eq!(shared.pending_count(), 0);
    let metrics = shared.metrics();
    assert_eq!(metrics.grounded_total(), expected, "a booking never landed");

    // Conservation: every booking took exactly one slot.
    let taken = session.execute("SELECT * FROM Taken(@w, @l, @s)").unwrap();
    assert_eq!(taken.rows().unwrap().len(), expected as usize);
    let free = session.execute("SELECT * FROM Free(@l, @s)").unwrap();
    assert_eq!(
        free.rows().unwrap().len(),
        THREADS * SPARE_SLOTS - 3,
        "slots lost or double-booked"
    );
}

/// Run one seeded schedule under a watchdog: if the interleaving wedges
/// (a lock-ordering bug), the test fails instead of hanging CI forever.
fn run_with_watchdog(seed: u64) {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        run_stress(seed);
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(300)) {
        Ok(()) => worker.join().expect("stress worker panicked"),
        Err(_) => panic!("deadlock suspected: seeded schedule {seed:#x} did not finish in 300s"),
    }
}

#[test]
fn overlapping_submits_merge_partitions_without_deadlock_schedule_a() {
    run_with_watchdog(0xC1DE_0001);
}

#[test]
fn overlapping_submits_merge_partitions_without_deadlock_schedule_b() {
    run_with_watchdog(0xB00C_0002);
}
