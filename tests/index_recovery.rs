//! Secondary-index consistency across WAL recovery and grounding.
//!
//! Indexes are durable through `CreateIndex` WAL records — both the
//! explicitly created ones and those promoted by the access-pattern
//! tracker (`QuantumDbConfig::auto_index_threshold`). After a crash and
//! replay, every table's index set must match the pre-crash engine, and
//! every index-backed `select` must return exactly what a fresh full scan
//! returns — through admission (overlay deletes), grounding (base
//! deletes + inserts) and blind writes.

use quantum_db::core::{QuantumDb, QuantumDbConfig};
use quantum_db::logic::parse_transaction;
use quantum_db::storage::wal::MemorySink;
use quantum_db::storage::{tuple, Schema, Table, Tuple, Value, ValueType, Wal, WriteOp};

fn config() -> QuantumDbConfig {
    QuantumDbConfig {
        auto_index_threshold: 4, // promote quickly in a small test
        ..QuantumDbConfig::default()
    }
}

fn build_engine() -> QuantumDb {
    let mut qdb = QuantumDb::new(config()).unwrap();
    qdb.create_table(
        Schema::new(
            "Available",
            vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
        )
        .with_key(vec![0, 1])
        .unwrap(),
    )
    .unwrap();
    qdb.create_table(Schema::new(
        "Bookings",
        vec![
            ("name", ValueType::Str),
            ("flight", ValueType::Int),
            ("seat", ValueType::Str),
        ],
    ))
    .unwrap();
    // One explicitly created index for coverage next to the auto-promoted
    // one.
    qdb.create_index("Bookings", 1).unwrap();
    let rows: Vec<Tuple> = (1..=4i64)
        .flat_map(|f| (0..6).map(move |s| tuple![f, format!("s{s}")]))
        .collect();
    qdb.bulk_insert("Available", rows).unwrap();
    qdb
}

/// For every index on `table`, every indexed value must select exactly the
/// rows a full scan filters — same rows, same (key) order.
fn assert_indexes_consistent(table: &Table) {
    let arity = table.schema().arity();
    for col in table.indexed_columns() {
        let values: std::collections::BTreeSet<Value> =
            table.iter().map(|row| row[col].clone()).collect();
        for v in values {
            let mut bound: Vec<Option<Value>> = vec![None; arity];
            bound[col] = Some(v.clone());
            let via_index: Vec<Tuple> = table.select(&bound).cloned().collect();
            let via_scan: Vec<Tuple> = table.iter().filter(|row| row[col] == v).cloned().collect();
            assert_eq!(
                via_index,
                via_scan,
                "index on column {col} of '{}' diverges for value {v}",
                table.schema().relation()
            );
        }
    }
}

fn book(name: &str, flight: i64) -> quantum_db::logic::ResourceTransaction {
    parse_transaction(&format!(
        "-Available({flight}, s), +Bookings('{name}', {flight}, s) :-1 Available({flight}, s)"
    ))
    .unwrap()
}

#[test]
fn auto_promoted_indexes_survive_recovery_and_stay_consistent() {
    let mut qdb = build_engine();
    // Bound-flight bookings vote the flight column of Available hot; the
    // threshold of 4 promotes it during the submit stream.
    let ids: Vec<u64> = (0..8)
        .map(|i| {
            qdb.submit(&book(&format!("u{i}"), 1 + (i % 4) as i64))
                .unwrap()
                .id()
                .unwrap()
        })
        .collect();
    assert!(
        qdb.metrics().indexes_auto_created >= 1,
        "tracker must have promoted at least one index"
    );
    let available_ix = qdb.database().table("Available").unwrap().indexed_columns();
    assert!(available_ix.contains(&0), "flight column promoted");

    // Ground half, leave half pending; mix in blind writes.
    for id in &ids[..4] {
        assert!(qdb.ground(*id).unwrap());
    }
    qdb.write(WriteOp::insert("Available", tuple![9, "x1"]))
        .unwrap();
    qdb.write(WriteOp::delete("Available", tuple![9, "x1"]))
        .unwrap();
    for table in qdb.database().tables() {
        assert_indexes_consistent(table);
    }

    // "Crash" and recover from the log image.
    let image = qdb.wal_image();
    let wal = Wal::with_sink(Box::new(MemorySink::from_bytes(image)));
    let mut recovered = QuantumDb::recover(wal, config()).unwrap();

    assert_eq!(recovered.pending_count(), qdb.pending_count());
    for (live, rec) in qdb.database().tables().zip(recovered.database().tables()) {
        assert_eq!(live.schema().relation(), rec.schema().relation());
        let mut live_ix = live.indexed_columns();
        let mut rec_ix = rec.indexed_columns();
        live_ix.sort_unstable();
        rec_ix.sort_unstable();
        assert_eq!(
            live_ix,
            rec_ix,
            "recovered '{}' must rebuild the same indexes (auto-promoted included)",
            live.schema().relation()
        );
        assert_indexes_consistent(rec);
        // Same contents, both access paths.
        let live_rows: Vec<Tuple> = live.iter().cloned().collect();
        let rec_rows: Vec<Tuple> = rec.iter().cloned().collect();
        assert_eq!(live_rows, rec_rows);
    }

    // The recovered engine keeps grounding; indexes stay consistent
    // through the collapse's deletes and inserts.
    recovered.ground_all().unwrap();
    assert_eq!(recovered.pending_count(), 0);
    for table in recovered.database().tables() {
        assert_indexes_consistent(table);
    }
    assert_eq!(
        recovered.database().table("Bookings").unwrap().len(),
        8,
        "all eight bookings landed"
    );
}

#[test]
fn torn_tail_cannot_leave_a_half_built_index() {
    // Chop the log at every byte: recovery must always succeed and always
    // yield tables whose indexes agree with their scans.
    let mut qdb = build_engine();
    for i in 0..6 {
        qdb.submit(&book(&format!("t{i}"), 1 + (i % 2) as i64))
            .unwrap();
    }
    qdb.ground_all().unwrap();
    let image = qdb.wal_image();
    for cut in (0..image.len()).step_by(7) {
        let wal = Wal::with_sink(Box::new(MemorySink::from_bytes(image[..cut].to_vec())));
        let recovered = QuantumDb::recover(wal, config()).unwrap();
        for table in recovered.database().tables() {
            assert_indexes_consistent(table);
        }
    }
}
