#![allow(clippy::field_reassign_with_default)]
//! Cross-crate integration tests: full scenarios through the facade crate,
//! exercising storage + logic + solver + engine + workload together.

use quantum_db::core::{enumerate_worlds, QuantumDb, QuantumDbConfig, Serializability};
use quantum_db::logic::{parse_query, parse_transaction};
use quantum_db::storage::{tuple, WriteOp};
use quantum_db::workload::{
    self, coordination_stats, make_pairs, run_is, run_quantum, ArrivalOrder, FlightsConfig,
    RunConfig,
};

fn travel_qdb(cfg: QuantumDbConfig, flights: FlightsConfig) -> QuantumDb {
    let mut qdb = QuantumDb::new(cfg).unwrap();
    workload::flights::install(&mut qdb, &flights).unwrap();
    qdb
}

#[test]
fn full_booking_lifecycle_through_facade() {
    let flights = FlightsConfig {
        flights: 2,
        rows_per_flight: 3,
    };
    let mut qdb = travel_qdb(QuantumDbConfig::default(), flights);
    // Commit five bookings across the two flights.
    for (i, f) in [(0, 1i64), (1, 1), (2, 2), (3, 2), (4, 1)] {
        let t = parse_transaction(&format!(
            "-Available({f}, s), +Bookings('user{i}', {f}, s) :-1 Available({f}, s)"
        ))
        .unwrap();
        assert!(qdb.submit(&t).unwrap().is_committed());
    }
    assert_eq!(qdb.pending_count(), 5);
    assert_eq!(qdb.partition_count(), 2, "flights are independent");
    // Read every booking; state collapses incrementally.
    for i in 0..5 {
        let q = parse_query(&format!("Bookings('user{i}', f, s)")).unwrap();
        let rows = qdb.read_parsed(&q, None).unwrap();
        assert_eq!(rows.len(), 1, "user{i} has a seat");
    }
    assert_eq!(qdb.pending_count(), 0);
    // Each seat handed out exactly once.
    let all = qdb.query("Bookings(n, f, s)").unwrap();
    let mut seats: Vec<String> = all
        .iter()
        .map(|v| {
            v.iter()
                .map(|(var, val)| format!("{}={}", var.name(), val))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    seats.sort();
    seats.dedup();
    assert_eq!(seats.len(), 5);
}

#[test]
fn quantum_vs_is_on_the_same_workload() {
    let cfg = RunConfig::resource_only(
        FlightsConfig {
            flights: 2,
            rows_per_flight: 6,
        },
        9,
        ArrivalOrder::Random { seed: 0xBEEF },
        61,
    );
    let q = run_quantum(&cfg);
    let is = run_is(&cfg);
    assert_eq!(q.aborted, 0);
    assert!(
        q.coordination_percent() >= is.coordination_percent(),
        "quantum {:.1} < IS {:.1}",
        q.coordination_percent(),
        is.coordination_percent()
    );
    assert!((q.coordination_percent() - 100.0).abs() < 1e-9);
}

#[test]
fn possible_worlds_agree_with_engine_on_facade_types() {
    let flights = FlightsConfig {
        flights: 1,
        rows_per_flight: 1,
    };
    let mut qdb = travel_qdb(QuantumDbConfig::default(), flights);
    let base = qdb.database().clone();
    let t1 =
        parse_transaction("-Available(1, s), +Bookings('a', 1, s) :-1 Available(1, s)").unwrap();
    let worlds = enumerate_worlds(&base, &[&t1], 10).unwrap();
    assert_eq!(worlds.len(), 3);
    assert!(qdb.submit(&t1).unwrap().is_committed());
}

#[test]
fn writes_and_reads_interleaved_with_strict_mode() {
    let mut cfg = QuantumDbConfig::default();
    cfg.serializability = Serializability::Strict;
    let flights = FlightsConfig {
        flights: 1,
        rows_per_flight: 4,
    };
    let mut qdb = travel_qdb(cfg, flights);
    for i in 0..4 {
        let t = parse_transaction(&format!(
            "-Available(1, s), +Bookings('u{i}', 1, s) :-1 Available(1, s)"
        ))
        .unwrap();
        assert!(qdb.submit(&t).unwrap().is_committed());
    }
    // Blind write interleaved: delete one seat — must be admitted only if
    // the 4 pending bookings still fit in the remaining 11 seats.
    assert!(qdb
        .write(WriteOp::delete("Available", tuple![1, "1A"]))
        .unwrap());
    // Read the last user: strict mode grounds the whole prefix.
    let q = parse_query("Bookings('u3', f, s)").unwrap();
    assert_eq!(qdb.read_parsed(&q, None).unwrap().len(), 1);
    assert_eq!(qdb.pending_count(), 0);
}

#[test]
fn coordination_measured_consistently_across_crates() {
    // Run a quantum workload manually (not via the runner) and compare
    // with the runner's own measurement path.
    let flights = FlightsConfig {
        flights: 1,
        rows_per_flight: 5,
    };
    let pairs = make_pairs(&flights, 7);
    let mut qdb = travel_qdb(QuantumDbConfig::default(), flights);
    for r in workload::arrange(&pairs, ArrivalOrder::Alternate) {
        let txn = workload::entangled_booking(&r.user, &r.partner, r.flight);
        assert!(qdb.submit(&txn).unwrap().is_committed());
    }
    qdb.ground_all().unwrap();
    let stats = coordination_stats(qdb.database(), &pairs, flights.rows_per_flight);
    // 7 pairs want coordination; only 5 rows exist: max 10 users.
    assert_eq!(stats.max_possible, 10);
    assert_eq!(
        stats.coordinated_users, 10,
        "alternate order coordinates fully"
    );
    assert_eq!(stats.seated_users, 14);
}

#[test]
fn recovery_of_a_workload_in_flight() {
    let flights = FlightsConfig {
        flights: 2,
        rows_per_flight: 4,
    };
    let mut qdb = travel_qdb(QuantumDbConfig::default(), flights);
    let pairs = make_pairs(&flights, 4);
    let reqs = workload::arrange(&pairs, ArrivalOrder::InOrder);
    // Submit only the first half: all of them wait for partners.
    for r in &reqs[..8] {
        let txn = workload::entangled_booking(&r.user, &r.partner, r.flight);
        assert!(qdb.submit(&txn).unwrap().is_committed());
    }
    assert_eq!(qdb.pending_count(), 8);
    // Crash + recover.
    let image = qdb.wal_image();
    let wal = quantum_db::storage::Wal::with_sink(Box::new(
        quantum_db::storage::wal::MemorySink::from_bytes(image),
    ));
    let mut rec = QuantumDb::recover(wal, QuantumDbConfig::default()).unwrap();
    assert_eq!(rec.pending_count(), 8);
    // Partners arrive after recovery; coordination still works.
    for r in &reqs[8..] {
        let txn = workload::entangled_booking(&r.user, &r.partner, r.flight);
        assert!(rec.submit(&txn).unwrap().is_committed());
    }
    rec.ground_all().unwrap();
    let stats = coordination_stats(rec.database(), &pairs, flights.rows_per_flight);
    assert_eq!(
        stats.coordinated_users, 16,
        "all 8 pairs coordinated across the crash"
    );
}

#[test]
fn the_mickey_cancellation_narrative() {
    // §1: Mickey prefers Delta (flight 1); sold out, he books anything
    // (flight 2). If a Delta seat opens before he reads, semantic
    // serializability can still… in our model preferences are optional
    // atoms against a Preferred table.
    let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
    qdb.create_table(quantum_db::storage::Schema::new(
        "Available",
        vec![
            ("flight", quantum_db::storage::ValueType::Int),
            ("seat", quantum_db::storage::ValueType::Str),
        ],
    ))
    .unwrap();
    qdb.create_table(quantum_db::storage::Schema::new(
        "Bookings",
        vec![
            ("name", quantum_db::storage::ValueType::Str),
            ("flight", quantum_db::storage::ValueType::Int),
            ("seat", quantum_db::storage::ValueType::Str),
        ],
    ))
    .unwrap();
    qdb.create_table(quantum_db::storage::Schema::new(
        "Delta",
        vec![("flight", quantum_db::storage::ValueType::Int)],
    ))
    .unwrap();
    qdb.bulk_insert("Delta", vec![tuple![1]]).unwrap();
    // Only the non-Delta flight has seats right now.
    qdb.bulk_insert("Available", vec![tuple![2, "9X"]]).unwrap();
    let mickey = parse_transaction(
        "-Available(f, s), +Bookings('Mickey', f, s) :-1 \
         Available(f, s), Delta(f)?",
    )
    .unwrap();
    assert!(qdb.submit(&mickey).unwrap().is_committed());
    // A cancellation frees a Delta seat *after* Mickey committed.
    assert!(qdb
        .write(WriteOp::insert("Available", tuple![1, "3A"]))
        .unwrap());
    // When Mickey's seat is finally fixed, the optional Delta preference
    // is satisfied using Tuesday's availability (semantic
    // serializability, §2).
    let q = parse_query("Bookings('Mickey', f, s)").unwrap();
    let rows = qdb.read_parsed(&q, None).unwrap();
    let flight = rows[0].get(q.var("f").unwrap()).unwrap().as_int().unwrap();
    assert_eq!(
        flight, 1,
        "Mickey flies Delta thanks to deferred assignment"
    );
}
