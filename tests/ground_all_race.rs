//! Regression tests: `GROUND ALL` racing overlapping submits.
//!
//! The sharded engine once emptied the partition registry and drained
//! every slot *before* taking any base lock. A submit that reserved in
//! that window saw no overlapping partitions, admission-solved against
//! the pre-collapse base — where the drained transactions' planned
//! deletes were still invisible — and committed a transaction the apply
//! phase then silently invalidated: a commit that can never ground (the
//! never-rolled-back guarantee broken, surfacing as a strict-order
//! invariant error from a later grounding), or a phantom commit of a
//! resource the collapse had already consumed.
//!
//! The fix registers the collapse as a reservation: one host entry
//! carrying the union of every claimed footprint, its slot held from
//! before the drain until the collapse (or its error recovery) completes,
//! so overlapping submits wait instead of racing.

use std::sync::atomic::{AtomicUsize, Ordering};

use quantum_db::{QuantumDb, QuantumDbConfig, Response, Session};

/// Counts a submitter as finished even when it dies on a failed assert,
/// so the grounder loop always terminates and the panic surfaces as a
/// test failure instead of a wedged run.
struct FinishOnDrop<'a>(&'a AtomicUsize);

impl Drop for FinishOnDrop<'_> {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

fn session_with(tables: &[&str]) -> Session {
    let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
    for ddl in tables {
        qdb.execute(ddl).unwrap();
    }
    qdb.into_shared().session()
}

/// The sharpest observable form of the race: a one-seat-per-round
/// depletion workload. Each round a thread blind-inserts one fresh seat
/// into its lane, books it (must commit), then immediately tries to book
/// again (must abort — the lane is empty once the first booking is
/// accounted, pending or applied). A concurrent grounder collapses the
/// quantum state in a tight loop. Pre-fix, the second booking could
/// reserve inside the collapse's drain window, see neither the pending
/// first booking nor its applied delete, and falsely commit — tripping
/// the `Aborted` assertion here (or an `Err` out of a later grounding).
#[test]
fn submit_racing_the_collapse_window_cannot_phantom_commit() {
    const LANES: usize = 4;
    const ROUNDS: usize = 30;

    let session = session_with(&[
        "CREATE TABLE Slot (lane INT, seat TEXT)",
        "CREATE TABLE Taken (who TEXT, lane INT, seat TEXT)",
    ]);
    let finished = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for t in 0..LANES {
            let session = session.clone();
            let finished = &finished;
            scope.spawn(move || {
                let _finish = FinishOnDrop(finished);
                let lane: quantum_db::storage::Value = (t as i64).into();
                let book = session
                    .prepare(
                        "SELECT @s FROM Slot(?, @s) CHOOSE 1 \
                         FOLLOWED BY (DELETE (?, @s) FROM Slot; \
                                      INSERT (?, ?, @s) INTO Taken)",
                    )
                    .unwrap();
                let replenish = session.prepare("INSERT INTO Slot VALUES (?, ?)").unwrap();
                for r in 0..ROUNDS {
                    // One fresh seat: blind inserts are monotone-safe and
                    // always admitted.
                    let w = replenish
                        .bind(&[lane.clone(), format!("s{r:02}").into()])
                        .unwrap()
                        .run()
                        .unwrap();
                    assert_eq!(w, Response::Written(true), "lane {t} round {r}");
                    // First booking takes the lane's only free seat.
                    let who = format!("t{t}-r{r}");
                    let a = book
                        .bind(&[
                            lane.clone(),
                            lane.clone(),
                            who.as_str().into(),
                            lane.clone(),
                        ])
                        .unwrap()
                        .run()
                        .unwrap();
                    assert!(
                        matches!(a, Response::Committed(_)),
                        "lane {t} round {r}: first booking {a:?}"
                    );
                    // Second booking must abort: whether the first is
                    // still pending, mid-collapse, or applied, the lane
                    // holds no bookable seat. A commit here is exactly
                    // the admission-against-invisible-collapse race.
                    let thief = format!("t{t}-r{r}-thief");
                    let b = book
                        .bind(&[
                            lane.clone(),
                            lane.clone(),
                            thief.as_str().into(),
                            lane.clone(),
                        ])
                        .unwrap()
                        .run()
                        .unwrap();
                    assert_eq!(
                        b,
                        Response::Aborted,
                        "lane {t} round {r}: phantom commit past the collapse"
                    );
                }
            });
        }

        // Grounder: keep the registry-take → apply window hot.
        let grounder = session.clone();
        let finished = &finished;
        scope.spawn(move || {
            while finished.load(Ordering::SeqCst) < LANES {
                let r = grounder.execute("GROUND ALL").unwrap();
                assert!(matches!(r, Response::Grounded(_)), "{r:?}");
            }
        });
    });

    // Quiesce: every accepted booking grounds; the books balance exactly.
    let shared = session.shared();
    shared.ground_all().unwrap();
    assert_eq!(shared.pending_count(), 0);

    let expected = (LANES * ROUNDS) as u64;
    let (m, pending) = shared.metrics_with_pending();
    assert_eq!(m.committed, expected);
    assert_eq!(m.aborted, expected, "every thief aborted");
    assert_eq!(m.grounded_total(), expected);
    assert_eq!(pending, 0);
    let taken = session.execute("SELECT * FROM Taken(@w, @l, @s)").unwrap();
    assert_eq!(taken.rows().unwrap().len() as u64, expected);
    let free = session.execute("SELECT * FROM Slot(@l, @s)").unwrap();
    assert_eq!(free.rows().unwrap().len(), 0, "seats left behind");
}

/// Balanced variant (capacity == demand): submits on every lane race the
/// collapse loop; all must commit and every seat must end up taken
/// exactly once. Broad-coverage companion to the depletion test above.
#[test]
fn ground_all_racing_overlapping_submits_keeps_the_books_balanced() {
    const LANES: usize = 4;
    const BOOKINGS_PER_LANE: usize = 24;

    let session = session_with(&[
        "CREATE TABLE Free (lane INT, slot TEXT)",
        "CREATE TABLE Taken (who TEXT, lane INT, slot TEXT)",
    ]);
    let insert = session.prepare("INSERT INTO Free VALUES (?, ?)").unwrap();
    for lane in 0..LANES as i64 {
        for slot in 0..BOOKINGS_PER_LANE as i64 {
            insert
                .bind(&[lane.into(), format!("s{slot:02}").into()])
                .unwrap()
                .run()
                .unwrap();
        }
    }
    let finished = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for t in 0..LANES {
            let session = session.clone();
            let finished = &finished;
            scope.spawn(move || {
                let _finish = FinishOnDrop(finished);
                let lane: quantum_db::storage::Value = (t as i64).into();
                let book = session
                    .prepare(
                        "SELECT @s FROM Free(?, @s) CHOOSE 1 \
                         FOLLOWED BY (DELETE (?, @s) FROM Free; \
                                      INSERT (?, ?, @s) INTO Taken)",
                    )
                    .unwrap();
                for i in 0..BOOKINGS_PER_LANE {
                    let who = format!("t{t}-{i}");
                    let r = book
                        .bind(&[
                            lane.clone(),
                            lane.clone(),
                            who.as_str().into(),
                            lane.clone(),
                        ])
                        .unwrap()
                        .run()
                        .unwrap();
                    assert!(
                        matches!(r, Response::Committed(_)),
                        "lane {t} booking {i}: {r:?}"
                    );
                }
            });
        }

        let grounder = session.clone();
        let finished = &finished;
        scope.spawn(move || {
            while finished.load(Ordering::SeqCst) < LANES {
                let r = grounder.execute("GROUND ALL").unwrap();
                assert!(matches!(r, Response::Grounded(_)), "{r:?}");
            }
        });
    });

    let shared = session.shared();
    shared.ground_all().unwrap();
    assert_eq!(shared.pending_count(), 0);

    let expected = (LANES * BOOKINGS_PER_LANE) as u64;
    let (m, pending) = shared.metrics_with_pending();
    assert_eq!(m.committed, expected, "lost or aborted bookings");
    assert_eq!(m.aborted, 0);
    assert_eq!(m.grounded_total(), expected, "a commit never landed");
    assert_eq!(pending, 0);

    let taken = session.execute("SELECT * FROM Taken(@w, @l, @s)").unwrap();
    assert_eq!(taken.rows().unwrap().len() as u64, expected);
    let free = session.execute("SELECT * FROM Free(@l, @s)").unwrap();
    assert_eq!(free.rows().unwrap().len(), 0, "seats left behind");
}
