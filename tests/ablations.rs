//! Correctness-visible ablations of the design choices DESIGN.md calls
//! out. (The performance sides of these knobs live in
//! `crates/bench/benches/ablations.rs`.)

use quantum_db::core::{GroundingPolicy, Serializability};
use quantum_db::workload::{run_quantum, ArrivalOrder, FlightsConfig, RunConfig};

fn base(k: usize, order: ArrivalOrder) -> RunConfig {
    RunConfig::resource_only(
        FlightsConfig {
            flights: 1,
            rows_per_flight: 8,
        },
        12,
        order,
        k,
    )
}

#[test]
fn strict_never_beats_semantic_on_coordination() {
    // Small k forces groundings; In-Order maximizes waiting partners.
    let mk = |ser: Serializability| {
        let mut cfg = base(4, ArrivalOrder::InOrder);
        cfg.engine.serializability = ser;
        cfg
    };
    let semantic = run_quantum(&mk(Serializability::Semantic));
    let strict = run_quantum(&mk(Serializability::Strict));
    assert_eq!(semantic.aborted, 0);
    assert_eq!(strict.aborted, 0);
    assert!(
        semantic.coordination_percent() + 1e-9 >= strict.coordination_percent(),
        "semantic {:.1} < strict {:.1}",
        semantic.coordination_percent(),
        strict.coordination_percent()
    );
    // Neither mode ever costs a booking — the §2 commit guarantee.
    assert_eq!(semantic.coord.seated_users, 24);
    assert_eq!(strict.coord.seated_users, 24);
}

#[test]
fn disabling_the_solution_cache_changes_cost_not_outcomes() {
    let mut with = base(61, ArrivalOrder::Random { seed: 3 });
    let mut without = with.clone();
    without.engine.use_solution_cache = false;
    with.engine.record_events = true;
    let a = run_quantum(&with);
    let b = run_quantum(&without);
    assert_eq!(a.aborted, 0);
    assert_eq!(b.aborted, 0);
    assert_eq!(a.coord.seated_users, b.coord.seated_users);
    assert!((a.coordination_percent() - b.coordination_percent()).abs() < 1e-9);
}

#[test]
fn disabling_partitioning_changes_cost_not_outcomes() {
    let flights = FlightsConfig {
        flights: 3,
        rows_per_flight: 4,
    };
    let mut with = RunConfig::resource_only(flights, 6, ArrivalOrder::Random { seed: 5 }, 61);
    let mut without = with.clone();
    without.engine.partitioning = false;
    let a = run_quantum(&with);
    let b = run_quantum(&without);
    assert_eq!(a.coord.coordinated_users, b.coord.coordinated_users);
    assert_eq!(a.coord.seated_users, b.coord.seated_users);
    with.engine.partitioning = true;
    let _ = with;
}

#[test]
fn partner_arrival_grounding_off_still_coordinates_via_final_grounding() {
    // With §5.1 partner grounding disabled, pairs stay pending until the
    // run's final ground_all — where optional maximization still finds
    // adjacent seats (k permitting).
    let mut cfg = base(61, ArrivalOrder::Random { seed: 11 });
    cfg.engine.ground_on_partner_arrival = false;
    let res = run_quantum(&cfg);
    assert_eq!(res.aborted, 0);
    assert!(
        (res.coordination_percent() - 100.0).abs() < 1e-9,
        "deferred-to-the-end grounding coordinates fully at k=61, got {:.1}",
        res.coordination_percent()
    );
}

#[test]
fn grounding_policies_preserve_bookings_and_order_coordination() {
    let mut results = Vec::new();
    for policy in [
        GroundingPolicy::FirstFit,
        GroundingPolicy::MaxFlexibility { sample: 8 },
        GroundingPolicy::Random { seed: 9, sample: 8 },
    ] {
        let mut cfg = base(3, ArrivalOrder::Random { seed: 17 });
        cfg.engine.policy = policy;
        let res = run_quantum(&cfg);
        assert_eq!(res.aborted, 0, "{policy:?}");
        assert_eq!(res.coord.seated_users, 24, "{policy:?}");
        results.push((policy, res.coordination_percent()));
    }
    // MaxFlexibility should never do worse than FirstFit here; assert a
    // weak form (within 20 points) to keep the test robust while still
    // catching sign inversions from refactors.
    let first_fit = results[0].1;
    let max_flex = results[1].1;
    assert!(
        max_flex + 20.0 >= first_fit,
        "MaxFlexibility {max_flex:.1} collapsed vs FirstFit {first_fit:.1}"
    );
}

#[test]
fn multi_solution_cache_is_outcome_neutral() {
    let mut one = base(61, ArrivalOrder::Random { seed: 23 });
    let mut four = one.clone();
    one.engine.cache_solutions = 1;
    four.engine.cache_solutions = 4;
    let a = run_quantum(&one);
    let b = run_quantum(&four);
    assert_eq!(a.coord.seated_users, b.coord.seated_users);
    assert_eq!(a.aborted, b.aborted);
}
