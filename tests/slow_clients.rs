//! Slow-client robustness: one misbehaving connection must never stall
//! the reactor for everyone else.
//!
//! Two classic abuse shapes from the 10k-connection literature:
//!
//! - **byte dribble** — a client trickles a valid frame one byte at a
//!   time. A thread-per-connection server with blocking reads tolerates
//!   this by burning a thread; a readiness loop must tolerate it by
//!   buffering partial frames and moving on.
//! - **slowloris** — clients connect, send little or nothing, and hold
//!   the socket open forever. The idle-timeout wheel must reap them while
//!   connections with live traffic keep their seats.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use qdb_client::Connection;
use qdb_core::wire::{self, Request};
use qdb_server::{Server, ServerConfig, ServerHandle};

fn spawn(cfg: ServerConfig) -> ServerHandle {
    Server::spawn(&cfg).expect("loopback server")
}

#[test]
fn byte_dribbled_frame_does_not_block_other_connections() {
    let server = spawn(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let addr = server.addr();

    // The dribbler: a valid EXECUTE frame, delivered one byte at a time.
    let mut dribbler = TcpStream::connect(addr).unwrap();
    dribbler.set_nodelay(true).unwrap();
    let frame = wire::encode_request(
        7,
        &Request::Execute {
            sql: "SHOW PENDING".to_string(),
        },
    );

    // A well-behaved neighbour completes many full round trips while the
    // dribble is still in flight.
    let neighbour = std::thread::spawn({
        let addr = addr.to_string();
        move || {
            let mut conn = Connection::connect(addr.as_str()).unwrap();
            for _ in 0..20 {
                conn.execute("SHOW PENDING").unwrap();
            }
        }
    });

    for byte in &frame {
        dribbler.write_all(std::slice::from_ref(byte)).unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }

    neighbour.join().expect("neighbour round trips");

    // The dribbled frame was buffered, not dropped: its reply arrives once
    // the last byte lands.
    let mut reader = BufReader::new(dribbler);
    let reply = wire::read_frame(&mut reader)
        .unwrap()
        .expect("reply to the dribbled frame");
    assert_eq!(reply.request_id, 7);
    assert_eq!(reply.kind, wire::resp::PENDING);
}

#[test]
fn slowloris_half_open_connections_are_reaped_while_active_traffic_survives() {
    let server = spawn(ServerConfig {
        workers: 2,
        idle_timeout: Some(Duration::from_millis(300)),
        ..ServerConfig::default()
    });
    let addr = server.addr();

    // Slowloris pack: connect, send at most a partial frame header, then
    // go silent while holding the socket open.
    let mut loris: Vec<TcpStream> = (0..4)
        .map(|i| {
            let mut s = TcpStream::connect(addr).unwrap();
            if i % 2 == 0 {
                s.write_all(&[0x11, 0x00]).unwrap(); // 2 bytes of a length prefix
            }
            s
        })
        .collect();

    // One connection with a real pulse: round trips well inside the idle
    // window, the whole time the wheel is reaping its neighbours.
    let mut active = Connection::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        active.execute("SHOW PENDING").unwrap();
        let stats = server.stats();
        if stats.conns_idle_closed >= 4 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "slowloris connections not reaped: {stats}"
        );
        std::thread::sleep(Duration::from_millis(30));
    }

    // The reaped sockets observe the close as EOF (or a reset).
    for s in &mut loris {
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 16];
        match s.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("reaped connection produced {n} bytes"),
        }
    }

    // The connection with live traffic kept its seat.
    active.execute("SHOW PENDING").unwrap();
    let stats = server.stats();
    assert_eq!(stats.conns_idle_closed, 4);
    assert!(stats.conns_open >= 1, "active connection survived: {stats}");
    server.shutdown();
}
