//! Property-based tests for the storage substrate.

use proptest::prelude::*;
use qdb_storage::codec;
use qdb_storage::wal::{replay_bytes, LogRecord, Wal};
use qdb_storage::{recover, Database, Schema, Tuple, Value, ValueType, WriteOp};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::from),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::from),
        any::<bool>().prop_map(Value::from),
    ]
}

fn arb_tuple(arity: usize) -> impl Strategy<Value = Tuple> {
    prop::collection::vec(arb_value(), arity).prop_map(Tuple::from)
}

/// Tuples matching a fixed (Int, Str) schema.
fn arb_seat_tuple() -> impl Strategy<Value = Tuple> {
    (0i64..5, "[A-C][1-3]").prop_map(|(f, s)| Tuple::from(vec![Value::from(f), Value::from(s)]))
}

fn seat_schema() -> Schema {
    Schema::new(
        "Available",
        vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
    )
}

proptest! {
    /// Values and tuples survive a codec round-trip bit-exactly.
    #[test]
    fn codec_tuple_roundtrip(t in (0usize..6).prop_flat_map(arb_tuple)) {
        let mut buf = bytes::BytesMut::new();
        codec::put_tuple(&mut buf, &t);
        let mut slice = buf.freeze();
        prop_assert_eq!(codec::get_tuple(&mut slice).unwrap(), t);
        prop_assert_eq!(slice.len(), 0);
    }

    /// Truncating encoded bytes anywhere yields an error, never a panic.
    #[test]
    fn codec_truncation_never_panics(t in (1usize..5).prop_flat_map(arb_tuple), frac in 0.0f64..1.0) {
        let mut buf = bytes::BytesMut::new();
        codec::put_tuple(&mut buf, &t);
        let bytes = buf.freeze();
        let cut = ((bytes.len() as f64) * frac) as usize;
        if cut < bytes.len() {
            let mut slice = bytes.slice(0..cut);
            prop_assert!(codec::get_tuple(&mut slice).is_err());
        }
    }

    /// A table behaves exactly like a set of tuples under random
    /// insert/delete streams (whole-tuple key = set semantics).
    #[test]
    fn table_is_a_set(ops in prop::collection::vec((any::<bool>(), arb_seat_tuple()), 1..60)) {
        let mut db = Database::new();
        db.create_table(seat_schema()).unwrap();
        db.table_mut("Available").unwrap().create_index(0).unwrap();
        let mut model = std::collections::BTreeSet::new();
        for (is_insert, t) in ops {
            if is_insert {
                let newly = db.insert("Available", t.clone()).unwrap();
                prop_assert_eq!(newly, model.insert(t));
            } else {
                let removed = db.delete("Available", &t).unwrap();
                prop_assert_eq!(removed, model.remove(&t));
            }
        }
        let table = db.table("Available").unwrap();
        prop_assert_eq!(table.len(), model.len());
        for t in &model {
            prop_assert!(table.contains(t));
        }
        // Indexed selects agree with the model per flight value.
        for f in 0i64..5 {
            let bound = vec![Some(Value::from(f)), None];
            let got = table.select(&bound).count();
            let want = model.iter().filter(|t| t[0] == Value::from(f)).count();
            prop_assert_eq!(got, want);
        }
    }

    /// WAL replay of any prefix of the byte stream yields a prefix of the
    /// record stream (crash consistency).
    #[test]
    fn wal_prefix_replay(n_ops in 1usize..30, cut_frac in 0.0f64..1.0) {
        let mut wal = Wal::in_memory();
        let mut expected = Vec::new();
        for i in 0..n_ops {
            let r = if i % 3 == 0 {
                LogRecord::Write(WriteOp::insert("T", Tuple::from(vec![Value::from(i)])))
            } else if i % 3 == 1 {
                LogRecord::PendingAdd { id: i as u64, payload: vec![i as u8; i % 7] }
            } else {
                LogRecord::PendingRemove { id: (i / 2) as u64 }
            };
            wal.append(&r).unwrap();
            expected.push(r);
        }
        let image = wal.sink_mut().read_all().unwrap();
        let cut = ((image.len() as f64) * cut_frac) as usize;
        let (records, consumed) = replay_bytes(&image[..cut]).unwrap();
        prop_assert!(consumed as usize <= cut);
        prop_assert_eq!(records.as_slice(), &expected[..records.len()]);
    }

    /// Recovery from a log built by random valid operations reproduces the
    /// database state operation-for-operation.
    #[test]
    fn recovery_matches_direct_state(ops in prop::collection::vec((any::<bool>(), arb_seat_tuple()), 1..50)) {
        let mut wal = Wal::in_memory();
        let mut direct = Database::new();
        direct.create_table(seat_schema()).unwrap();
        wal.append(&LogRecord::CreateTable(seat_schema())).unwrap();
        for (is_insert, t) in ops {
            let op = if is_insert {
                WriteOp::insert("Available", t)
            } else {
                WriteOp::delete("Available", t)
            };
            // Log no-ops too; replay must tolerate them identically.
            direct.apply(&op).unwrap();
            wal.append(&LogRecord::Write(op)).unwrap();
        }
        let recovered = recover(&wal).unwrap();
        let a: Vec<_> = direct.table("Available").unwrap().iter().cloned().collect();
        let b: Vec<_> = recovered.db.table("Available").unwrap().iter().cloned().collect();
        prop_assert_eq!(a, b);
    }
}
