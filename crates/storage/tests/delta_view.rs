//! Randomized equivalence: evaluating through a [`DeltaView`] must be
//! indistinguishable — result **order included** — from evaluating against
//! a cloned database with the same ops applied.
//!
//! This is the contract the clone-free read path rests on: the engine
//! answers PEEK/POSSIBLE through views now, and the materializing
//! reference survives only here. Each case builds a random base (random
//! schemas, partial keys, secondary indexes), applies a random op sequence
//! to both a clone and a view, checks that every op reports the identical
//! outcome (changed / no-op / error), and then compares evaluation of
//! random conjunctive queries — joins, repeated variables, limits — plus
//! raw `matching_rows`/`count_rows` answers.

use qdb_storage::{
    ConjunctiveQuery, Database, DeltaView, PatTerm, Pattern, Schema, Tuple, TupleView, Value,
    ValueType, WriteOp,
};

/// Splitmix64 — the same deterministic generator idiom the workload crate
/// uses; only self-consistency per seed matters here.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, percent: usize) -> bool {
        self.below(100) < percent
    }
}

/// Small value domains so inserts/deletes/joins actually collide.
fn random_value(rng: &mut Rng, ty: ValueType) -> Value {
    match ty {
        ValueType::Int => Value::from(rng.below(4) as i64),
        ValueType::Str => Value::from(["a", "b", "c", "d"][rng.below(4)]),
        ValueType::Bool => Value::from(rng.chance(50)),
    }
}

struct Rel {
    name: &'static str,
    types: Vec<ValueType>,
}

fn random_base(rng: &mut Rng) -> (Database, Vec<Rel>) {
    let mut db = Database::new();
    let names = ["R0", "R1", "R2"];
    let n_rels = 1 + rng.below(3);
    let mut rels = Vec::new();
    for name in names.iter().take(n_rels) {
        let arity = 1 + rng.below(3);
        let types: Vec<ValueType> = (0..arity)
            .map(|_| [ValueType::Int, ValueType::Str][rng.below(2)])
            .collect();
        let columns: Vec<(String, ValueType)> = types
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("c{i}"), *t))
            .collect();
        let borrowed: Vec<(&str, ValueType)> =
            columns.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let mut schema = Schema::new(*name, borrowed);
        // Half the relations get a proper key prefix — key violations and
        // key-based no-ops must behave identically through the view.
        if arity > 1 && rng.chance(50) {
            schema = schema.with_key(vec![0]).unwrap();
        }
        db.create_table(schema).unwrap();
        rels.push(Rel { name, types });
    }
    // Random rows (violating inserts are simply skipped at build time).
    for rel in &rels {
        for _ in 0..rng.below(8) {
            let row: Tuple = rel
                .types
                .iter()
                .map(|t| random_value(rng, *t))
                .collect::<Vec<_>>()
                .into();
            let _ = db.insert(rel.name, row);
        }
    }
    // Random secondary indexes, created *before* the snapshot so clone
    // and view share them (row order must not depend on them anyway).
    for rel in &rels {
        if rng.chance(40) {
            let col = rng.below(rel.types.len());
            db.table_mut(rel.name).unwrap().create_index(col).unwrap();
        }
    }
    (db, rels)
}

fn random_op(rng: &mut Rng, rels: &[Rel]) -> WriteOp {
    let rel = &rels[rng.below(rels.len())];
    let row: Tuple = rel
        .types
        .iter()
        .map(|t| random_value(rng, *t))
        .collect::<Vec<_>>()
        .into();
    if rng.chance(60) {
        WriteOp::insert(rel.name, row)
    } else {
        WriteOp::delete(rel.name, row)
    }
}

fn random_query(rng: &mut Rng, rels: &[Rel]) -> ConjunctiveQuery {
    let n_patterns = 1 + rng.below(3);
    let patterns = (0..n_patterns)
        .map(|_| {
            let rel = &rels[rng.below(rels.len())];
            let terms = rel
                .types
                .iter()
                .map(|t| {
                    if rng.chance(40) {
                        PatTerm::Const(random_value(rng, *t))
                    } else {
                        // Few variable ids → repeated variables and joins.
                        PatTerm::Var(rng.below(3) as u32)
                    }
                })
                .collect();
            Pattern::new(rel.name, terms)
        })
        .collect();
    let q = ConjunctiveQuery::new(patterns);
    if rng.chance(30) {
        q.with_limit(1 + rng.below(3))
    } else {
        q
    }
}

fn random_bound(rng: &mut Rng, rel: &Rel) -> Vec<Option<Value>> {
    rel.types
        .iter()
        .map(|t| rng.chance(40).then(|| random_value(rng, *t)))
        .collect()
}

#[test]
fn delta_view_evaluation_matches_the_clone_based_reference() {
    for case in 0..500u64 {
        let mut rng = Rng(0xD17A_0000 ^ case.wrapping_mul(0x9E37));
        let (base, rels) = random_base(&mut rng);
        let mut reference = base.clone();
        let mut view = DeltaView::new(&base);

        // Identical op outcomes: changed / no-op / error.
        for _ in 0..rng.below(20) {
            let op = random_op(&mut rng, &rels);
            let want = reference.apply(&op);
            let got = view.apply(&op);
            match (&want, &got) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "case {case}: outcome of {op} diverged"),
                (Err(_), Err(_)) => {}
                _ => panic!("case {case}: {op} → reference {want:?}, view {got:?}"),
            }
        }

        // Raw row access: identical sequences (order included) and counts.
        for rel in &rels {
            let bound = random_bound(&mut rng, rel);
            let want: Vec<Tuple> = reference
                .table(rel.name)
                .unwrap()
                .select(&bound)
                .cloned()
                .collect();
            let got = view.matching_rows(rel.name, &bound).unwrap();
            assert_eq!(got, want, "case {case}: rows of {} at {bound:?}", rel.name);
            assert_eq!(
                view.count_rows(rel.name, &bound).unwrap(),
                want.len(),
                "case {case}: count of {} at {bound:?}",
                rel.name
            );
        }

        // Conjunctive query evaluation: identical bindings, in order.
        for _ in 0..3 {
            let q = random_query(&mut rng, &rels);
            let want = q.eval(&reference).unwrap();
            let got = q.eval(&view).unwrap();
            assert_eq!(
                got.bindings, want.bindings,
                "case {case}: query {:?} diverged",
                q.patterns
            );
        }

        // The view also matches its own materialization.
        let materialized = view.materialize().unwrap();
        assert_eq!(
            qdb_core_free_fingerprint(&materialized),
            qdb_core_free_fingerprint(&reference),
            "case {case}: materialized view != reference"
        );
    }
}

/// Content fingerprint (tables in name order, rows in key order) without
/// depending on qdb-core.
fn qdb_core_free_fingerprint(db: &Database) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for table in db.tables() {
        let _ = write!(out, "{}[", table.schema().relation());
        for row in table.iter() {
            let _ = write!(out, "{row}");
        }
        out.push(']');
    }
    out
}
