//! Conjunctive queries over the database — the storage engine's query
//! language.
//!
//! The paper's prototype encodes its satisfiability checks as single SQL
//! `SELECT … LIMIT 1` join queries (§4). This module is our equivalent: a
//! conjunctive query is a list of relational patterns sharing variables;
//! evaluation is a backtracking index-nested-loop join with dynamic atom
//! ordering (most-constrained pattern first) and an optional `LIMIT`.

use std::collections::BTreeMap;

use crate::error::StorageError;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::view::TupleView;
use crate::Result;

/// Query variable identifier. Variables are plain integers; the logic layer
/// maps its named variables onto these.
pub type QVar = u32;

/// One position of a pattern: either a constant or a query variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatTerm {
    /// Fixed value the column must equal.
    Const(Value),
    /// Variable bound during evaluation; repeated variables join.
    Var(QVar),
}

impl PatTerm {
    /// Convenience constructor for constants.
    pub fn val(v: impl Into<Value>) -> Self {
        PatTerm::Const(v.into())
    }
}

/// A relational pattern, e.g. `Available(f, '5A')`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// Relation name.
    pub relation: String,
    /// One term per column.
    pub terms: Vec<PatTerm>,
}

impl Pattern {
    /// Build a pattern.
    pub fn new(relation: impl Into<String>, terms: Vec<PatTerm>) -> Self {
        Pattern {
            relation: relation.into(),
            terms,
        }
    }

    /// Variables occurring in this pattern.
    pub fn vars(&self) -> impl Iterator<Item = QVar> + '_ {
        self.terms.iter().filter_map(|t| match t {
            PatTerm::Var(v) => Some(*v),
            PatTerm::Const(_) => None,
        })
    }

    /// The column constraint vector under `binding`: `Some(v)` for columns
    /// fixed by a constant or an already-bound variable.
    pub fn bound_columns(&self, binding: &Binding) -> Vec<Option<Value>> {
        self.terms
            .iter()
            .map(|t| match t {
                PatTerm::Const(v) => Some(v.clone()),
                PatTerm::Var(x) => binding.get(x).cloned(),
            })
            .collect()
    }

    /// Try to extend `binding` so the pattern matches `row`. Returns the
    /// list of variables newly bound (for backtracking) or `None` on
    /// mismatch.
    pub fn match_row(&self, row: &Tuple, binding: &mut Binding) -> Option<Vec<QVar>> {
        debug_assert_eq!(self.terms.len(), row.arity());
        let mut newly = Vec::new();
        for (t, v) in self.terms.iter().zip(row.iter()) {
            match t {
                PatTerm::Const(c) => {
                    if c != v {
                        Self::unbind(binding, &newly);
                        return None;
                    }
                }
                PatTerm::Var(x) => match binding.get(x) {
                    Some(b) if b == v => {}
                    Some(_) => {
                        Self::unbind(binding, &newly);
                        return None;
                    }
                    None => {
                        binding.insert(*x, v.clone());
                        newly.push(*x);
                    }
                },
            }
        }
        Some(newly)
    }

    fn unbind(binding: &mut Binding, vars: &[QVar]) {
        for v in vars {
            binding.remove(v);
        }
    }
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match t {
                PatTerm::Const(v) => write!(f, "{v}")?,
                PatTerm::Var(x) => write!(f, "v{x}")?,
            }
        }
        write!(f, ")")
    }
}

/// A variable assignment produced by query evaluation.
pub type Binding = BTreeMap<QVar, Value>;

/// A conjunctive query: patterns + optional limit on results.
#[derive(Debug, Clone)]
pub struct ConjunctiveQuery {
    /// Join patterns; shared variables are equi-join conditions.
    pub patterns: Vec<Pattern>,
    /// Stop after this many bindings (`LIMIT n`).
    pub limit: Option<usize>,
}

/// Result of evaluating a conjunctive query.
#[derive(Debug, Clone, Default)]
pub struct QueryOutput {
    /// One binding per result row.
    pub bindings: Vec<Binding>,
}

impl ConjunctiveQuery {
    /// Build a query over the given patterns with no limit.
    pub fn new(patterns: Vec<Pattern>) -> Self {
        ConjunctiveQuery {
            patterns,
            limit: None,
        }
    }

    /// Set a `LIMIT`.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Evaluate against a tuple view — the concrete [`crate::Database`]
    /// or a [`crate::DeltaView`] composing a base with pending updates
    /// (the §3.2.2 read paths evaluate possible worlds this way, without
    /// materializing them).
    pub fn eval<V: TupleView + ?Sized>(&self, view: &V) -> Result<QueryOutput> {
        // Validate arities up front so evaluation can use debug asserts.
        for p in &self.patterns {
            let arity = view.arity_of(&p.relation)?;
            if arity != p.terms.len() {
                return Err(StorageError::ArityMismatch {
                    relation: p.relation.clone(),
                    expected: arity,
                    got: p.terms.len(),
                });
            }
        }
        let mut out = QueryOutput::default();
        let mut binding = Binding::new();
        let mut used = vec![false; self.patterns.len()];
        self.search(view, &mut binding, &mut used, &mut out)?;
        Ok(out)
    }

    /// Evaluate and report only whether any result exists (`LIMIT 1`).
    pub fn satisfiable<V: TupleView + ?Sized>(&self, view: &V) -> Result<bool> {
        let q = ConjunctiveQuery {
            patterns: self.patterns.clone(),
            limit: Some(1),
        };
        Ok(!q.eval(view)?.bindings.is_empty())
    }

    fn search<V: TupleView + ?Sized>(
        &self,
        view: &V,
        binding: &mut Binding,
        used: &mut [bool],
        out: &mut QueryOutput,
    ) -> Result<bool> {
        if let Some(limit) = self.limit {
            if out.bindings.len() >= limit {
                return Ok(true); // signal: stop searching
            }
        }
        // All patterns matched: emit the binding.
        if used.iter().all(|&u| u) {
            out.bindings.push(binding.clone());
            return Ok(self.limit.is_some_and(|l| out.bindings.len() >= l));
        }
        // Most-constrained-first: pick the unused pattern with the fewest
        // candidate rows under the current binding.
        let mut best: Option<(usize, usize)> = None; // (pattern idx, candidates)
        for (i, p) in self.patterns.iter().enumerate() {
            if used[i] {
                continue;
            }
            let bound = p.bound_columns(binding);
            let n = view.count_rows(&p.relation, &bound)?;
            if best.is_none_or(|(_, bn)| n < bn) {
                best = Some((i, n));
            }
            if n == 0 {
                break; // dead branch, no point scoring the rest
            }
        }
        let (idx, _) = best.expect("at least one unused pattern");
        let p = &self.patterns[idx];
        used[idx] = true;
        let bound = p.bound_columns(binding);
        // Materialize candidates: the recursive call needs the view
        // borrowed fresh, and candidate sets at a node are small by
        // construction.
        let candidates: Vec<Tuple> = view.matching_rows(&p.relation, &bound)?;
        for row in candidates {
            if let Some(newly) = p.match_row(&row, binding) {
                let stop = self.search(view, binding, used, out)?;
                for v in newly {
                    binding.remove(&v);
                }
                if stop {
                    used[idx] = false;
                    return Ok(true);
                }
            }
        }
        used[idx] = false;
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::schema::{Schema, ValueType};
    use crate::tuple;

    /// 2 flights × seats 1A/1B/1C with adjacency 1A-1B, 1B-1C.
    fn flights_db() -> Database {
        let mut db = Database::new();
        db.create_table(Schema::new(
            "Available",
            vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
        ))
        .unwrap();
        db.create_table(Schema::new(
            "Adjacent",
            vec![("s1", ValueType::Str), ("s2", ValueType::Str)],
        ))
        .unwrap();
        db.create_table(Schema::new(
            "Bookings",
            vec![
                ("name", ValueType::Str),
                ("flight", ValueType::Int),
                ("seat", ValueType::Str),
            ],
        ))
        .unwrap();
        for f in [1i64, 2] {
            for s in ["1A", "1B", "1C"] {
                db.insert("Available", tuple![f, s]).unwrap();
            }
        }
        for (a, b) in [("1A", "1B"), ("1B", "1A"), ("1B", "1C"), ("1C", "1B")] {
            db.insert("Adjacent", tuple![a, b]).unwrap();
        }
        db.insert("Bookings", tuple!["Goofy", 1, "1B"]).unwrap();
        db
    }

    #[test]
    fn single_pattern_scan() {
        let db = flights_db();
        let q = ConjunctiveQuery::new(vec![Pattern::new(
            "Available",
            vec![PatTerm::val(1), PatTerm::Var(0)],
        )]);
        let out = q.eval(&db).unwrap();
        assert_eq!(out.bindings.len(), 3);
    }

    #[test]
    fn join_through_shared_variable() {
        // Seats adjacent to Goofy's booking on flight 1:
        // Bookings('Goofy', 1, s2) ⋈ Adjacent(s1, s2) ⋈ Available(1, s1)
        let db = flights_db();
        let (s1, s2) = (0, 1);
        let q = ConjunctiveQuery::new(vec![
            Pattern::new(
                "Bookings",
                vec![PatTerm::val("Goofy"), PatTerm::val(1), PatTerm::Var(s2)],
            ),
            Pattern::new("Adjacent", vec![PatTerm::Var(s1), PatTerm::Var(s2)]),
            Pattern::new("Available", vec![PatTerm::val(1), PatTerm::Var(s1)]),
        ]);
        let out = q.eval(&db).unwrap();
        let mut seats: Vec<String> = out
            .bindings
            .iter()
            .map(|b| b[&s1].as_str().unwrap().to_string())
            .collect();
        seats.sort();
        assert_eq!(seats, vec!["1A", "1C"]);
    }

    #[test]
    fn limit_one_early_exit() {
        let db = flights_db();
        let q = ConjunctiveQuery::new(vec![Pattern::new(
            "Available",
            vec![PatTerm::Var(0), PatTerm::Var(1)],
        )])
        .with_limit(1);
        assert_eq!(q.eval(&db).unwrap().bindings.len(), 1);
        assert!(q.satisfiable(&db).unwrap());
    }

    #[test]
    fn unsatisfiable_join() {
        let db = flights_db();
        let q = ConjunctiveQuery::new(vec![Pattern::new(
            "Bookings",
            vec![PatTerm::val("Pluto"), PatTerm::Var(0), PatTerm::Var(1)],
        )]);
        assert!(!q.satisfiable(&db).unwrap());
        assert!(q.eval(&db).unwrap().bindings.is_empty());
    }

    #[test]
    fn repeated_variable_within_pattern() {
        // Adjacent(s, s) — no seat is adjacent to itself.
        let db = flights_db();
        let q = ConjunctiveQuery::new(vec![Pattern::new(
            "Adjacent",
            vec![PatTerm::Var(0), PatTerm::Var(0)],
        )]);
        assert!(q.eval(&db).unwrap().bindings.is_empty());
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let db = flights_db();
        let q = ConjunctiveQuery::new(vec![Pattern::new("Available", vec![PatTerm::Var(0)])]);
        assert!(q.eval(&db).is_err());
    }

    #[test]
    fn missing_table_is_an_error() {
        let db = flights_db();
        let q = ConjunctiveQuery::new(vec![Pattern::new("Nope", vec![PatTerm::Var(0)])]);
        assert!(matches!(q.eval(&db), Err(StorageError::NoSuchTable(_))));
    }

    #[test]
    fn cross_product_counts() {
        let db = flights_db();
        let q = ConjunctiveQuery::new(vec![
            Pattern::new("Available", vec![PatTerm::val(1), PatTerm::Var(0)]),
            Pattern::new("Available", vec![PatTerm::val(2), PatTerm::Var(1)]),
        ]);
        assert_eq!(q.eval(&db).unwrap().bindings.len(), 9);
    }
}
