//! Table schemas: column names, types and key descriptors.
//!
//! §3.2.1 of the paper assumes *"any relation R that appears in the
//! FOLLOWED BY clause of a resource transaction has a key, i.e., satisfies
//! set semantics"*. We make that a first-class property: every table has a
//! key — by default the whole tuple (pure set semantics), optionally a
//! column subset.

use crate::error::StorageError;
use crate::tuple::Tuple;
use crate::Result;

/// Runtime type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 64-bit integers.
    Int,
    /// UTF-8 strings.
    Str,
    /// Booleans.
    Bool,
}

impl std::fmt::Display for ValueType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValueType::Int => write!(f, "int"),
            ValueType::Str => write!(f, "str"),
            ValueType::Bool => write!(f, "bool"),
        }
    }
}

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (unique within the schema).
    pub name: String,
    /// Column type.
    pub ty: ValueType,
}

/// A table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    relation: String,
    columns: Vec<ColumnDef>,
    /// Indexes of key columns. Empty means "all columns" (set semantics).
    key: Vec<usize>,
}

impl Schema {
    /// Build a schema with pure set semantics (key = all columns).
    pub fn new(relation: impl Into<String>, columns: Vec<(&str, ValueType)>) -> Self {
        Schema {
            relation: relation.into(),
            columns: columns
                .into_iter()
                .map(|(name, ty)| ColumnDef {
                    name: name.to_string(),
                    ty,
                })
                .collect(),
            key: Vec::new(),
        }
    }

    /// Restrict the key to a subset of columns (by index).
    pub fn with_key(mut self, key: Vec<usize>) -> Result<Self> {
        for &k in &key {
            if k >= self.columns.len() {
                return Err(StorageError::InvalidSchema(format!(
                    "key column {k} out of range for '{}' (arity {})",
                    self.relation,
                    self.columns.len()
                )));
            }
        }
        let mut seen = vec![false; self.columns.len()];
        for &k in &key {
            if seen[k] {
                return Err(StorageError::InvalidSchema(format!(
                    "duplicate key column {k} for '{}'",
                    self.relation
                )));
            }
            seen[k] = true;
        }
        self.key = key;
        Ok(self)
    }

    /// Relation name.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// Column definitions.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Key column indexes; empty slice means the whole tuple is the key.
    pub fn key_columns(&self) -> &[usize] {
        &self.key
    }

    /// Extract the key of a (schema-valid) tuple.
    pub fn key_of(&self, tuple: &Tuple) -> Tuple {
        if self.key.is_empty() {
            tuple.clone()
        } else {
            tuple.project(&self.key)
        }
    }

    /// Position of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Validate a tuple against this schema.
    pub fn check(&self, tuple: &Tuple) -> Result<()> {
        if tuple.arity() != self.arity() {
            return Err(StorageError::ArityMismatch {
                relation: self.relation.clone(),
                expected: self.arity(),
                got: tuple.arity(),
            });
        }
        for (i, (v, c)) in tuple.iter().zip(&self.columns).enumerate() {
            if v.value_type() != c.ty {
                return Err(StorageError::TypeMismatch {
                    relation: self.relation.clone(),
                    column: i,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn bookings() -> Schema {
        Schema::new(
            "Bookings",
            vec![
                ("name", ValueType::Str),
                ("flight", ValueType::Int),
                ("seat", ValueType::Str),
            ],
        )
    }

    #[test]
    fn whole_tuple_key_by_default() {
        let s = bookings();
        let t = tuple!["Mickey", 123, "5A"];
        assert_eq!(s.key_of(&t), t);
        assert!(s.key_columns().is_empty());
    }

    #[test]
    fn key_subset_projects() {
        let s = bookings().with_key(vec![0, 1]).unwrap();
        let t = tuple!["Mickey", 123, "5A"];
        assert_eq!(s.key_of(&t), tuple!["Mickey", 123]);
    }

    #[test]
    fn key_validation_rejects_bad_columns() {
        assert!(bookings().with_key(vec![3]).is_err());
        assert!(bookings().with_key(vec![0, 0]).is_err());
    }

    #[test]
    fn check_catches_arity_and_type_errors() {
        let s = bookings();
        assert!(s.check(&tuple!["Mickey", 123, "5A"]).is_ok());
        assert!(matches!(
            s.check(&tuple!["Mickey", 123]),
            Err(StorageError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.check(&tuple!["Mickey", "x", "5A"]),
            Err(StorageError::TypeMismatch { column: 1, .. })
        ));
    }

    #[test]
    fn column_index_lookup() {
        let s = bookings();
        assert_eq!(s.column_index("flight"), Some(1));
        assert_eq!(s.column_index("nope"), None);
    }
}
