//! Tuples — immutable, cheaply cloneable rows.

use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// An immutable row of [`Value`]s.
///
/// Backed by `Arc<[Value]>`: the solver and the quantum state keep many
/// references to the same row (cached solutions, overlay states, possible
/// worlds), so cloning must be O(1).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: impl Into<Arc<[Value]>>) -> Self {
        Tuple(values.into())
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// True when the tuple has no columns.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Column at `i`, if in range.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// All column values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Iterate over column values.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }

    /// Project onto the given column indexes (used to extract key columns).
    ///
    /// # Panics
    /// Panics if any index is out of range; key descriptors are validated
    /// against the schema before use.
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple(cols.iter().map(|&c| self.0[c].clone()).collect())
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple(v.into())
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl std::ops::Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Build a tuple from a heterogeneous list of `Into<Value>` items.
///
/// ```
/// use qdb_storage::{tuple, Value};
/// let t = tuple!["Mickey", 123, "5A"];
/// assert_eq!(t.arity(), 3);
/// assert_eq!(t[1], Value::from(123));
/// ```
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::from(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = tuple!["Mickey", 123, true];
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(0), Some(&Value::from("Mickey")));
        assert_eq!(t[1], Value::from(123));
        assert_eq!(t.get(3), None);
        assert!(!t.is_empty());
    }

    #[test]
    fn projection_extracts_key_columns() {
        let t = tuple!["Mickey", 123, "5A"];
        let k = t.project(&[1, 2]);
        assert_eq!(k, tuple![123, "5A"]);
        assert_eq!(t.project(&[]).arity(), 0);
    }

    #[test]
    fn display_is_parenthesized() {
        assert_eq!(tuple![1, "a"].to_string(), "(1, 'a')");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(tuple![1, "a"] < tuple![1, "b"]);
        assert!(tuple![1] < tuple![1, "a"]);
        assert!(tuple![0, "z"] < tuple![1, "a"]);
    }

    #[test]
    fn clone_shares_storage() {
        let t = tuple![1, 2, 3];
        let u = t.clone();
        assert!(Arc::ptr_eq(&t.0, &u.0));
    }

    #[test]
    fn from_iterator_collects() {
        let t: Tuple = (0..3).map(Value::from).collect();
        assert_eq!(t, tuple![0i64, 1i64, 2i64]);
    }
}
