//! Storage-level error type.

use std::fmt;

/// Errors surfaced by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A table with this name already exists.
    TableExists(String),
    /// No table with this name.
    NoSuchTable(String),
    /// Tuple arity does not match the table schema.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Arity declared by the schema.
        expected: usize,
        /// Arity of the offending tuple.
        got: usize,
    },
    /// Tuple column type does not match the schema.
    TypeMismatch {
        /// Relation name.
        relation: String,
        /// Column index of the offending value.
        column: usize,
    },
    /// Insert would create a second row with the same key.
    KeyViolation {
        /// Relation name.
        relation: String,
        /// Rendered key values.
        key: String,
    },
    /// Delete of a row that is not present.
    NoSuchRow {
        /// Relation name.
        relation: String,
    },
    /// Schema descriptor is itself invalid (bad key column, empty name, …).
    InvalidSchema(String),
    /// A log frame failed its checksum or was truncated mid-frame.
    CorruptLog {
        /// Byte offset of the bad frame.
        offset: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// Malformed bytes handed to the codec.
    Codec(String),
    /// Underlying I/O failure (file-backed log sinks).
    Io(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TableExists(n) => write!(f, "table '{n}' already exists"),
            StorageError::NoSuchTable(n) => write!(f, "no such table '{n}'"),
            StorageError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch on '{relation}': schema has {expected} columns, tuple has {got}"
            ),
            StorageError::TypeMismatch { relation, column } => {
                write!(f, "type mismatch on '{relation}' column {column}")
            }
            StorageError::KeyViolation { relation, key } => {
                write!(
                    f,
                    "key violation on '{relation}': key {key} already present"
                )
            }
            StorageError::NoSuchRow { relation } => {
                write!(f, "row not present in '{relation}'")
            }
            StorageError::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
            StorageError::CorruptLog { offset, reason } => {
                write!(f, "corrupt log at offset {offset}: {reason}")
            }
            StorageError::Codec(msg) => write!(f, "codec error: {msg}"),
            StorageError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StorageError::ArityMismatch {
            relation: "Available".into(),
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("Available"));
        assert!(e.to_string().contains('2'));
        let e = StorageError::CorruptLog {
            offset: 17,
            reason: "bad crc".into(),
        };
        assert!(e.to_string().contains("17"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::other("boom");
        let e: StorageError = io.into();
        assert!(matches!(e, StorageError::Io(_)));
    }
}
