//! Write-ahead log with checksummed frames.
//!
//! §4 "Recovery": *"Each pending resource transaction is serialized and
//! inserted into a special database table called the pending transactions
//! table. This insertion happens after the satisfiability check and before
//! the transaction commits."* We generalize this slightly: the log records
//! **all** durable events — DDL, extensional writes, pending-transaction
//! additions and removals — so that replaying the log reconstructs both the
//! extensional database and the in-memory quantum state.
//!
//! Frame format: `[len: u32 LE][crc32(payload): u32 LE][payload]`. Replay
//! stops at the first truncated or corrupt frame, which is how torn tail
//! writes after a crash are tolerated.

use bytes::{Buf, BufMut, BytesMut};

use crate::codec;
use crate::database::WriteOp;
use crate::error::StorageError;
use crate::schema::Schema;
use crate::Result;

/// A single durable event.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// DDL: a table was created.
    CreateTable(Schema),
    /// DDL: a secondary index was created.
    CreateIndex {
        /// Relation name.
        relation: String,
        /// Indexed column.
        column: u32,
    },
    /// An extensional write was applied.
    Write(WriteOp),
    /// A resource transaction passed its satisfiability check and committed;
    /// `payload` is the engine's serialization of the transaction.
    PendingAdd {
        /// Engine-assigned transaction id.
        id: u64,
        /// Opaque serialized transaction.
        payload: Vec<u8>,
    },
    /// A pending resource transaction was removed without grounding
    /// (administrative; normal grounding uses [`LogRecord::Ground`]).
    PendingRemove {
        /// Engine-assigned transaction id.
        id: u64,
    },
    /// A pending resource transaction was grounded: its concrete writes
    /// and its removal from the pending table form **one atomic frame**,
    /// so a crash can never leave a half-grounded transaction in the log.
    Ground {
        /// Engine-assigned transaction id.
        id: u64,
        /// The concrete updates executed under the chosen valuation.
        ops: Vec<WriteOp>,
    },
    /// Marker record with no state effect; used by tests and tooling.
    Checkpoint,
}

const T_CREATE_TABLE: u8 = 1;
const T_CREATE_INDEX: u8 = 2;
const T_INSERT: u8 = 3;
const T_DELETE: u8 = 4;
const T_PENDING_ADD: u8 = 5;
const T_PENDING_REMOVE: u8 = 6;
const T_CHECKPOINT: u8 = 7;
const T_GROUND: u8 = 8;

impl LogRecord {
    /// Encode the record payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(64);
        match self {
            LogRecord::CreateTable(schema) => {
                buf.put_u8(T_CREATE_TABLE);
                codec::put_schema(&mut buf, schema);
            }
            LogRecord::CreateIndex { relation, column } => {
                buf.put_u8(T_CREATE_INDEX);
                codec::put_string(&mut buf, relation);
                buf.put_u32_le(*column);
            }
            LogRecord::Write(WriteOp::Insert { relation, tuple }) => {
                buf.put_u8(T_INSERT);
                codec::put_string(&mut buf, relation);
                codec::put_tuple(&mut buf, tuple);
            }
            LogRecord::Write(WriteOp::Delete { relation, tuple }) => {
                buf.put_u8(T_DELETE);
                codec::put_string(&mut buf, relation);
                codec::put_tuple(&mut buf, tuple);
            }
            LogRecord::PendingAdd { id, payload } => {
                buf.put_u8(T_PENDING_ADD);
                buf.put_u64_le(*id);
                buf.put_u32_le(payload.len() as u32);
                buf.put_slice(payload);
            }
            LogRecord::PendingRemove { id } => {
                buf.put_u8(T_PENDING_REMOVE);
                buf.put_u64_le(*id);
            }
            LogRecord::Ground { id, ops } => {
                buf.put_u8(T_GROUND);
                buf.put_u64_le(*id);
                buf.put_u32_le(ops.len() as u32);
                for op in ops {
                    match op {
                        WriteOp::Insert { relation, tuple } => {
                            buf.put_u8(T_INSERT);
                            codec::put_string(&mut buf, relation);
                            codec::put_tuple(&mut buf, tuple);
                        }
                        WriteOp::Delete { relation, tuple } => {
                            buf.put_u8(T_DELETE);
                            codec::put_string(&mut buf, relation);
                            codec::put_tuple(&mut buf, tuple);
                        }
                    }
                }
            }
            LogRecord::Checkpoint => buf.put_u8(T_CHECKPOINT),
        }
        buf.to_vec()
    }

    /// Decode a record payload.
    pub fn decode(mut buf: &[u8]) -> Result<LogRecord> {
        if buf.is_empty() {
            return Err(StorageError::Codec("empty record".into()));
        }
        let tag = buf.get_u8();
        match tag {
            T_CREATE_TABLE => Ok(LogRecord::CreateTable(codec::get_schema(&mut buf)?)),
            T_CREATE_INDEX => {
                let relation = codec::get_string(&mut buf)?;
                if buf.remaining() < 4 {
                    return Err(StorageError::Codec("truncated index record".into()));
                }
                Ok(LogRecord::CreateIndex {
                    relation,
                    column: buf.get_u32_le(),
                })
            }
            T_INSERT | T_DELETE => {
                let relation = codec::get_string(&mut buf)?;
                let tuple = codec::get_tuple(&mut buf)?;
                Ok(LogRecord::Write(if tag == T_INSERT {
                    WriteOp::Insert { relation, tuple }
                } else {
                    WriteOp::Delete { relation, tuple }
                }))
            }
            T_PENDING_ADD => {
                if buf.remaining() < 12 {
                    return Err(StorageError::Codec("truncated pending-add".into()));
                }
                let id = buf.get_u64_le();
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len {
                    return Err(StorageError::Codec("truncated pending payload".into()));
                }
                let mut payload = vec![0u8; len];
                buf.copy_to_slice(&mut payload);
                Ok(LogRecord::PendingAdd { id, payload })
            }
            T_PENDING_REMOVE => {
                if buf.remaining() < 8 {
                    return Err(StorageError::Codec("truncated pending-remove".into()));
                }
                Ok(LogRecord::PendingRemove {
                    id: buf.get_u64_le(),
                })
            }
            T_GROUND => {
                if buf.remaining() < 12 {
                    return Err(StorageError::Codec("truncated ground record".into()));
                }
                let id = buf.get_u64_le();
                let n = buf.get_u32_le() as usize;
                if n > 1 << 16 {
                    return Err(StorageError::Codec(format!("implausible op count {n}")));
                }
                let mut ops = Vec::with_capacity(n);
                for _ in 0..n {
                    if buf.remaining() < 1 {
                        return Err(StorageError::Codec("truncated ground op".into()));
                    }
                    let tag = buf.get_u8();
                    let relation = codec::get_string(&mut buf)?;
                    let tuple = codec::get_tuple(&mut buf)?;
                    ops.push(match tag {
                        T_INSERT => WriteOp::Insert { relation, tuple },
                        T_DELETE => WriteOp::Delete { relation, tuple },
                        t => return Err(StorageError::Codec(format!("unknown ground op tag {t}"))),
                    });
                }
                Ok(LogRecord::Ground { id, ops })
            }
            T_CHECKPOINT => Ok(LogRecord::Checkpoint),
            t => Err(StorageError::Codec(format!("unknown record tag {t}"))),
        }
    }
}

/// Destination for framed log bytes.
pub trait LogSink: Send {
    /// Append raw frame bytes (already framed by [`Wal`]).
    fn append(&mut self, frame: &[u8]) -> Result<()>;
    /// Read back the entire log contents.
    fn read_all(&self) -> Result<Vec<u8>>;
    /// Current log size in bytes.
    fn len(&self) -> u64;
    /// Discard everything past `len` bytes (recovery drops torn tails
    /// before appending resumes).
    fn truncate_to(&mut self, len: u64) -> Result<()>;
    /// Push buffered bytes towards durable media (no-op for sinks without
    /// their own buffering).
    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
    /// True when no bytes have been written.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// In-memory sink (the default; also used to simulate crashes by truncating).
#[derive(Debug, Default)]
pub struct MemorySink {
    bytes: Vec<u8>,
}

impl MemorySink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Construct from existing bytes (e.g. a recovered log image).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        MemorySink { bytes }
    }

    /// Truncate to `len` bytes — simulates a crash with a torn tail.
    pub fn truncate(&mut self, len: usize) {
        self.bytes.truncate(len);
    }

    /// Raw log bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl LogSink for MemorySink {
    fn append(&mut self, frame: &[u8]) -> Result<()> {
        self.bytes.extend_from_slice(frame);
        Ok(())
    }

    fn read_all(&self) -> Result<Vec<u8>> {
        Ok(self.bytes.clone())
    }

    fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn truncate_to(&mut self, len: u64) -> Result<()> {
        self.bytes.truncate(len as usize);
        Ok(())
    }
}

/// File-backed sink with buffered writes and explicit sync points.
pub struct FileSink {
    path: std::path::PathBuf,
    file: std::io::BufWriter<std::fs::File>,
    written: u64,
}

impl FileSink {
    /// Open (append) or create the log file at `path`.
    pub fn open(path: impl Into<std::path::PathBuf>) -> Result<Self> {
        let path = path.into();
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        let written = file.metadata()?.len();
        Ok(FileSink {
            path,
            file: std::io::BufWriter::new(file),
            written,
        })
    }

    /// Flush buffered frames to the OS.
    pub fn flush(&mut self) -> Result<()> {
        use std::io::Write;
        self.file.flush()?;
        Ok(())
    }
}

impl LogSink for FileSink {
    fn append(&mut self, frame: &[u8]) -> Result<()> {
        use std::io::Write;
        self.file.write_all(frame)?;
        self.written += frame.len() as u64;
        Ok(())
    }

    fn read_all(&self) -> Result<Vec<u8>> {
        Ok(std::fs::read(&self.path)?)
    }

    fn len(&self) -> u64 {
        self.written
    }

    fn truncate_to(&mut self, len: u64) -> Result<()> {
        use std::io::Write;
        self.file.flush()?;
        let f = std::fs::OpenOptions::new().write(true).open(&self.path)?;
        f.set_len(len)?;
        self.written = len;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.flush()
    }
}

/// The write-ahead log: frames records into a [`LogSink`], with **group
/// commit**.
///
/// `append` encodes and frames the record into an in-memory tail buffer —
/// no sink I/O. The buffered frames reach the sink in one write + one
/// [`LogSink::sync`] per *drain*: when the buffer exceeds
/// [`Wal::DEFAULT_GROUP_LIMIT`] bytes (tune with [`Wal::set_group_limit`];
/// `0` drains every append, reproducing the pre-group-commit behavior), on
/// an explicit [`Wal::sync`], or before any operation that reads or edits
/// the sink directly. Buffer order is append order, so the log-order ==
/// txn-id-order invariant of the engine (ids allocated under the WAL lock)
/// is preserved across drains. [`Wal::replay`] decodes sink *plus* buffered
/// bytes, so a record is observable from the moment `append` returns.
///
/// **Durability window**: a process crash loses whatever sits in the tail
/// buffer (at most one group). This prototype has always had such a
/// window — the file sink's `BufWriter` was never flushed per append and
/// no sink fsyncs — the group buffer makes it explicit, bounded, and
/// tunable: `set_group_limit(0)` restores drain-per-append for callers
/// that want the smallest window the sink can provide.
pub struct Wal {
    sink: Box<dyn LogSink>,
    records_written: u64,
    /// Framed records not yet pushed to the sink.
    pending: Vec<u8>,
    pending_records: u64,
    group_limit: usize,
    drains: u64,
    /// Observability handle: `append` records [`qdb_obs::Phase::WalAppend`]
    /// and each drain records [`qdb_obs::Phase::WalFlush`]. `None` (the
    /// default for standalone WALs) costs nothing.
    obs: Option<std::sync::Arc<qdb_obs::Obs>>,
}

impl Wal {
    /// Default tail-buffer size that triggers a drain.
    pub const DEFAULT_GROUP_LIMIT: usize = 64 * 1024;

    /// A WAL over an in-memory sink.
    pub fn in_memory() -> Self {
        Wal::with_sink(Box::new(MemorySink::new()))
    }

    /// A WAL over a custom sink.
    pub fn with_sink(sink: Box<dyn LogSink>) -> Self {
        Wal {
            sink,
            records_written: 0,
            pending: Vec::new(),
            pending_records: 0,
            group_limit: Wal::DEFAULT_GROUP_LIMIT,
            drains: 0,
            obs: None,
        }
    }

    /// Set the drain threshold in bytes (`0` = drain on every append).
    pub fn set_group_limit(&mut self, bytes: usize) {
        self.group_limit = bytes;
    }

    /// Install the observability handle append/flush timings feed into.
    pub fn set_obs(&mut self, obs: Option<std::sync::Arc<qdb_obs::Obs>>) {
        self.obs = obs;
    }

    /// Append one record (framed + checksummed) to the tail buffer,
    /// draining to the sink when the buffer exceeds the group limit.
    ///
    /// Error contract: `Err` means the record is **not** in the log (it is
    /// rolled back out of the tail buffer when the triggered drain cannot
    /// hand the bytes to the sink), and `Ok` means it **is** — buffered or
    /// already sunk. A sink *sync* failure after the sink accepted the
    /// bytes does not fail the append (the record reached the log); flush
    /// health is surfaced by explicit [`Wal::sync`] calls (checkpoints).
    pub fn append(&mut self, record: &LogRecord) -> Result<()> {
        let t0 = self.obs.is_some().then(std::time::Instant::now);
        let result = self.append_inner(record);
        if let (Some(obs), Some(t0)) = (self.obs.as_ref(), t0) {
            obs.phase(qdb_obs::Phase::WalAppend, t0.elapsed());
        }
        result
    }

    fn append_inner(&mut self, record: &LogRecord) -> Result<()> {
        let start = self.pending.len();
        let payload = record.encode();
        self.pending.reserve(payload.len() + 8);
        self.pending
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.pending
            .extend_from_slice(&codec::crc32(&payload).to_le_bytes());
        self.pending.extend_from_slice(&payload);
        self.records_written += 1;
        self.pending_records += 1;
        if self.pending.len() > self.group_limit {
            if let Err(e) = self.drain() {
                if !self.pending.is_empty() {
                    // The sink rejected the batch: un-log this record so a
                    // failure report never precedes a later durable copy
                    // (the caller treats Err as "did not happen").
                    self.pending.truncate(start);
                    self.records_written -= 1;
                    self.pending_records -= 1;
                    return Err(e);
                }
                // Sink accepted the bytes, only the flush failed: the
                // record is in the log — report success here and let the
                // next explicit sync surface the sink's health.
            }
        }
        Ok(())
    }

    /// Push every buffered frame to the sink in one write, then sync the
    /// sink. One drain = one buffered write + one flush, regardless of how
    /// many records accumulated.
    pub fn sync(&mut self) -> Result<()> {
        self.drain()
    }

    fn drain(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let t0 = self.obs.is_some().then(std::time::Instant::now);
        let result = self.drain_inner();
        if let (Some(obs), Some(t0)) = (self.obs.as_ref(), t0) {
            obs.phase(qdb_obs::Phase::WalFlush, t0.elapsed());
        }
        result
    }

    fn drain_inner(&mut self) -> Result<()> {
        self.sink.append(&self.pending)?;
        // The sink owns the bytes now: clear *before* syncing, so a flush
        // failure can never cause the same frames to be appended twice on
        // the next drain (duplicated records would replay as double
        // writes).
        self.pending.clear();
        self.pending_records = 0;
        self.drains += 1;
        self.sink.sync()
    }

    /// Number of records appended through this handle.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Records currently buffered (not yet drained to the sink).
    pub fn buffered_records(&self) -> u64 {
        self.pending_records
    }

    /// Number of drains (group commits) so far. `records_written /
    /// max(drains, 1)` approximates the achieved group size.
    pub fn drains(&self) -> u64 {
        self.drains
    }

    /// Log size in bytes (sink plus tail buffer).
    pub fn size_bytes(&self) -> u64 {
        self.sink.len() + self.pending.len() as u64
    }

    /// Read back all intact records — buffered frames included. Stops
    /// quietly at a torn tail (a frame whose length prefix or payload is
    /// incomplete, or whose CRC fails) — that is the expected post-crash
    /// condition. The byte offset where replay stopped is returned
    /// alongside.
    pub fn replay(&self) -> Result<(Vec<LogRecord>, u64)> {
        let mut bytes = self.sink.read_all()?;
        bytes.extend_from_slice(&self.pending);
        replay_bytes(&bytes)
    }

    /// The full framed log image (drains the tail buffer first, so the
    /// sink holds every appended record).
    pub fn image(&mut self) -> Result<Vec<u8>> {
        self.drain()?;
        self.sink.read_all()
    }

    /// Access the sink (tests use this to simulate crashes). Drains the
    /// tail buffer first so the sink reflects every appended record.
    ///
    /// # Panics
    /// Panics when the drain fails (in-memory sinks cannot fail; file
    /// sinks report I/O errors).
    pub fn sink_mut(&mut self) -> &mut dyn LogSink {
        self.drain()
            .expect("drain buffered WAL frames into the sink");
        self.sink.as_mut()
    }

    /// Drop a torn tail: discard all bytes past `len` so appends resume on
    /// a frame boundary.
    pub fn truncate_to(&mut self, len: u64) -> Result<()> {
        self.drain()?;
        self.sink.truncate_to(len)
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        let _ = self.drain();
    }
}

/// A byte-level fault applied to a log image — the physical failure modes a
/// checksummed log is supposed to contain: silent bit rot and a buffered
/// group commit that never reached the media.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkFault {
    /// XOR the byte at `offset` with `0xFF` (bit rot / misdirected write).
    FlipByte {
        /// Absolute byte offset into the log image.
        offset: u64,
    },
    /// Remove `len` bytes starting at `offset` (a lost group flush: later
    /// writes landed, the buffered batch did not).
    DropRange {
        /// Absolute byte offset into the log image.
        offset: u64,
        /// Number of bytes lost.
        len: u64,
    },
}

/// Apply `faults` in order to a copy of `bytes`. Offsets past the end of
/// the (evolving) image are clamped — a fault can never grow the log.
pub fn apply_faults(bytes: &[u8], faults: &[SinkFault]) -> Vec<u8> {
    let mut out = bytes.to_vec();
    for fault in faults {
        match *fault {
            SinkFault::FlipByte { offset } => {
                if let Some(b) = out.get_mut(offset as usize) {
                    *b ^= 0xFF;
                }
            }
            SinkFault::DropRange { offset, len } => {
                let start = (offset as usize).min(out.len());
                let end = (offset as usize)
                    .saturating_add(len as usize)
                    .min(out.len());
                out.drain(start..end);
            }
        }
    }
    out
}

/// A [`LogSink`] wrapper that presents a faulted view of its inner sink.
///
/// Reads see the inner bytes with every registered [`SinkFault`] applied.
/// The first write-path call (`append` / `truncate_to`) *materializes* the
/// faulted view into a fresh [`MemorySink`] and clears the fault list, so
/// offsets observed by recovery (e.g. `consumed_bytes` truncation) stay
/// consistent with the bytes later appends land on — exactly as if the
/// corruption had happened on media before the process restarted.
pub struct FaultSink {
    inner: Box<dyn LogSink>,
    faults: Vec<SinkFault>,
}

impl FaultSink {
    /// Wrap `inner`, presenting it with `faults` applied.
    pub fn new(inner: Box<dyn LogSink>, faults: Vec<SinkFault>) -> Self {
        FaultSink { inner, faults }
    }

    fn materialize(&mut self) -> Result<()> {
        if self.faults.is_empty() {
            return Ok(());
        }
        let view = apply_faults(&self.inner.read_all()?, &self.faults);
        self.inner = Box::new(MemorySink::from_bytes(view));
        self.faults.clear();
        Ok(())
    }
}

impl LogSink for FaultSink {
    fn append(&mut self, frame: &[u8]) -> Result<()> {
        self.materialize()?;
        self.inner.append(frame)
    }

    fn read_all(&self) -> Result<Vec<u8>> {
        Ok(apply_faults(&self.inner.read_all()?, &self.faults))
    }

    fn len(&self) -> u64 {
        let mut len = self.inner.len();
        for fault in &self.faults {
            if let SinkFault::DropRange { offset, len: cut } = *fault {
                len -= cut.min(len.saturating_sub(offset));
            }
        }
        len
    }

    fn truncate_to(&mut self, len: u64) -> Result<()> {
        self.materialize()?;
        self.inner.truncate_to(len)
    }

    fn sync(&mut self) -> Result<()> {
        self.inner.sync()
    }
}

/// Byte spans `[start, end)` of each intact frame in a raw log image,
/// stopping at the first torn or corrupt frame — the same prefix rule as
/// [`replay_bytes`]. Fault planners use this to target whole frames.
pub fn frame_spans(bytes: &[u8]) -> Vec<(u64, u64)> {
    let mut spans = Vec::new();
    let mut offset = 0usize;
    while bytes.len() - offset >= 8 {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
        let start = offset + 8;
        if bytes.len() < start + len {
            break;
        }
        let payload = &bytes[start..start + len];
        if codec::crc32(payload) != crc || LogRecord::decode(payload).is_err() {
            break;
        }
        spans.push((offset as u64, (start + len) as u64));
        offset = start + len;
    }
    spans
}

/// Decode framed records from a raw log image. Returns the records and the
/// offset of the first byte **not** consumed (torn tails stop the replay).
pub fn replay_bytes(bytes: &[u8]) -> Result<(Vec<LogRecord>, u64)> {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while bytes.len() - offset >= 8 {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
        let start = offset + 8;
        if bytes.len() < start + len {
            break; // torn frame: length prefix written, payload incomplete
        }
        let payload = &bytes[start..start + len];
        if codec::crc32(payload) != crc {
            break; // corrupt tail
        }
        match LogRecord::decode(payload) {
            Ok(r) => records.push(r),
            Err(_) => break, // checksum passed but payload malformed: stop
        }
        offset = start + len;
    }
    Ok((records, offset as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ValueType;
    use crate::tuple;

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::CreateTable(Schema::new(
                "Available",
                vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
            )),
            LogRecord::CreateIndex {
                relation: "Available".into(),
                column: 0,
            },
            LogRecord::Write(WriteOp::insert("Available", tuple![1, "1A"])),
            LogRecord::PendingAdd {
                id: 7,
                payload: vec![1, 2, 3, 4],
            },
            LogRecord::Write(WriteOp::delete("Available", tuple![1, "1A"])),
            LogRecord::PendingRemove { id: 7 },
            LogRecord::Ground {
                id: 9,
                ops: vec![
                    WriteOp::delete("Available", tuple![2, "2B"]),
                    WriteOp::insert("Available", tuple![3, "3C"]),
                ],
            },
            LogRecord::Checkpoint,
        ]
    }

    #[test]
    fn record_encode_decode_roundtrip() {
        for r in sample_records() {
            let encoded = r.encode();
            assert_eq!(LogRecord::decode(&encoded).unwrap(), r);
        }
    }

    #[test]
    fn wal_append_replay_roundtrip() {
        let mut wal = Wal::in_memory();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        let (records, consumed) = wal.replay().unwrap();
        assert_eq!(records, sample_records());
        assert_eq!(consumed, wal.size_bytes());
        assert_eq!(wal.records_written(), sample_records().len() as u64);
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let mut wal = Wal::in_memory();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        let full = wal.size_bytes() as usize;
        // Chop off bytes one at a time; replay must never error and must
        // return a prefix of the record stream.
        for cut in 0..full {
            let bytes = {
                let all = wal.replay().unwrap();
                assert_eq!(all.0.len(), sample_records().len());
                let mut sink = MemorySink::new();
                // Re-frame through a fresh WAL to get raw bytes.
                let mut w2 = Wal::in_memory();
                for r in sample_records() {
                    w2.append(&r).unwrap();
                }
                let img = w2.sink_mut().read_all().unwrap();
                sink.append(&img[..cut]).unwrap();
                sink.read_all().unwrap()
            };
            let (records, consumed) = replay_bytes(&bytes).unwrap();
            assert!(consumed as usize <= cut);
            let expected = &sample_records()[..records.len()];
            assert_eq!(records.as_slice(), expected);
        }
    }

    #[test]
    fn corrupt_byte_stops_replay_at_frame_boundary() {
        let mut wal = Wal::in_memory();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        let mut bytes = wal.sink_mut().read_all().unwrap();
        // Flip a byte inside the second frame's payload.
        let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let second_payload = first_len + 8 + 8 + 1;
        bytes[second_payload] ^= 0xFF;
        let (records, _) = replay_bytes(&bytes).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0], sample_records()[0]);
    }

    #[test]
    fn file_sink_roundtrip() {
        let dir = std::env::temp_dir().join(format!("qdb-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut sink = FileSink::open(&path).unwrap();
            let mut wal = Wal::with_sink(Box::new(FileSink::open(&path).unwrap()));
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
            // Ensure buffered bytes hit the file.
            drop(wal);
            sink.flush().unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        let (records, _) = replay_bytes(&bytes).unwrap();
        assert_eq!(records, sample_records());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_log_replays_to_nothing() {
        let wal = Wal::in_memory();
        let (records, consumed) = wal.replay().unwrap();
        assert!(records.is_empty());
        assert_eq!(consumed, 0);
    }

    /// Sink that counts write and sync calls (group-commit observability).
    #[derive(Default)]
    struct CountingSink {
        inner: MemorySink,
        writes: std::sync::Arc<std::sync::atomic::AtomicU64>,
        syncs: std::sync::Arc<std::sync::atomic::AtomicU64>,
    }

    impl LogSink for CountingSink {
        fn append(&mut self, frame: &[u8]) -> Result<()> {
            self.writes
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            self.inner.append(frame)
        }
        fn read_all(&self) -> Result<Vec<u8>> {
            self.inner.read_all()
        }
        fn len(&self) -> u64 {
            LogSink::len(&self.inner)
        }
        fn truncate_to(&mut self, len: u64) -> Result<()> {
            self.inner.truncate_to(len)
        }
        fn sync(&mut self) -> Result<()> {
            self.syncs.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(())
        }
    }

    #[test]
    fn group_commit_batches_appends_into_one_sink_write() {
        use std::sync::atomic::Ordering::SeqCst;
        let writes = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let syncs = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let sink = CountingSink {
            inner: MemorySink::new(),
            writes: writes.clone(),
            syncs: syncs.clone(),
        };
        let mut wal = Wal::with_sink(Box::new(sink));
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        // Everything still buffered: zero sink traffic, yet fully
        // observable through replay and size_bytes.
        assert_eq!(writes.load(SeqCst), 0);
        assert_eq!(wal.buffered_records(), sample_records().len() as u64);
        let (records, consumed) = wal.replay().unwrap();
        assert_eq!(records, sample_records());
        assert_eq!(consumed, wal.size_bytes());
        // One drain = one buffered write + one flush for the whole batch.
        wal.sync().unwrap();
        assert_eq!(writes.load(SeqCst), 1);
        assert_eq!(syncs.load(SeqCst), 1);
        assert_eq!(wal.drains(), 1);
        assert_eq!(wal.buffered_records(), 0);
        // Draining an empty buffer is free.
        wal.sync().unwrap();
        assert_eq!(writes.load(SeqCst), 1);
        assert_eq!(wal.drains(), 1);
    }

    #[test]
    fn group_limit_zero_drains_every_append() {
        let writes = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let sink = CountingSink {
            inner: MemorySink::new(),
            writes: writes.clone(),
            syncs: Default::default(),
        };
        let mut wal = Wal::with_sink(Box::new(sink));
        wal.set_group_limit(0);
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        assert_eq!(
            writes.load(std::sync::atomic::Ordering::SeqCst),
            sample_records().len() as u64
        );
        assert_eq!(wal.drains(), sample_records().len() as u64);
    }

    /// Sink with injectable append/sync failures.
    struct FlakySink {
        inner: MemorySink,
        fail_appends: std::sync::Arc<std::sync::atomic::AtomicBool>,
        fail_syncs: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }

    impl LogSink for FlakySink {
        fn append(&mut self, frame: &[u8]) -> Result<()> {
            if self.fail_appends.load(std::sync::atomic::Ordering::SeqCst) {
                return Err(StorageError::Io("injected append failure".into()));
            }
            self.inner.append(frame)
        }
        fn read_all(&self) -> Result<Vec<u8>> {
            self.inner.read_all()
        }
        fn len(&self) -> u64 {
            LogSink::len(&self.inner)
        }
        fn truncate_to(&mut self, len: u64) -> Result<()> {
            self.inner.truncate_to(len)
        }
        fn sync(&mut self) -> Result<()> {
            if self.fail_syncs.load(std::sync::atomic::Ordering::SeqCst) {
                return Err(StorageError::Io("injected sync failure".into()));
            }
            Ok(())
        }
    }

    fn flaky_wal() -> (
        Wal,
        std::sync::Arc<std::sync::atomic::AtomicBool>,
        std::sync::Arc<std::sync::atomic::AtomicBool>,
    ) {
        let fail_appends = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let fail_syncs = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let wal = Wal::with_sink(Box::new(FlakySink {
            inner: MemorySink::new(),
            fail_appends: fail_appends.clone(),
            fail_syncs: fail_syncs.clone(),
        }));
        (wal, fail_appends, fail_syncs)
    }

    #[test]
    fn sync_failure_never_duplicates_a_drained_group() {
        use std::sync::atomic::Ordering::SeqCst;
        let (mut wal, _appends, syncs) = flaky_wal();
        wal.set_group_limit(0); // drain per append
        syncs.store(true, SeqCst);
        // The sink accepted the bytes; only the flush failed — the record
        // is in the log and the append reports success.
        wal.append(&LogRecord::Checkpoint).unwrap();
        wal.append(&LogRecord::PendingRemove { id: 7 }).unwrap();
        syncs.store(false, SeqCst);
        wal.append(&LogRecord::Checkpoint).unwrap();
        let (records, _) = wal.replay().unwrap();
        // Exactly three records — the failed syncs must not have left the
        // group in the buffer to be appended to the sink a second time.
        assert_eq!(
            records,
            vec![
                LogRecord::Checkpoint,
                LogRecord::PendingRemove { id: 7 },
                LogRecord::Checkpoint,
            ]
        );
    }

    #[test]
    fn failed_sink_append_rolls_the_record_out_of_the_log() {
        use std::sync::atomic::Ordering::SeqCst;
        let (mut wal, appends, _syncs) = flaky_wal();
        wal.set_group_limit(0);
        wal.append(&LogRecord::Checkpoint).unwrap();
        appends.store(true, SeqCst);
        // Err must mean "not in the log": no buffered copy may later
        // become durable behind the caller's back.
        assert!(wal
            .append(&LogRecord::PendingAdd {
                id: 9,
                payload: vec![1]
            })
            .is_err());
        assert_eq!(wal.buffered_records(), 0);
        assert_eq!(wal.records_written(), 1);
        appends.store(false, SeqCst);
        wal.append(&LogRecord::PendingRemove { id: 3 }).unwrap();
        let (records, _) = wal.replay().unwrap();
        assert_eq!(
            records,
            vec![LogRecord::Checkpoint, LogRecord::PendingRemove { id: 3 }]
        );
    }

    #[test]
    fn frame_spans_tile_the_image_and_stop_at_corruption() {
        let mut wal = Wal::in_memory();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        let bytes = wal.image().unwrap();
        let spans = frame_spans(&bytes);
        assert_eq!(spans.len(), sample_records().len());
        assert_eq!(spans[0].0, 0);
        for w in spans.windows(2) {
            assert_eq!(w[0].1, w[1].0); // frames tile with no gaps
        }
        assert_eq!(spans.last().unwrap().1, bytes.len() as u64);
        // Corrupting frame 3's payload stops the span walk there.
        let mut bad = bytes.clone();
        bad[spans[2].0 as usize + 8] ^= 0xFF;
        assert_eq!(frame_spans(&bad).len(), 2);
    }

    #[test]
    fn fault_sink_flip_byte_cuts_recovery_at_the_frame_boundary() {
        let mut wal = Wal::in_memory();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        let bytes = wal.image().unwrap();
        let spans = frame_spans(&bytes);
        // Flip a byte inside the 4th frame's payload.
        let fault = SinkFault::FlipByte {
            offset: spans[3].0 + 8,
        };
        let faulted = Wal::with_sink(Box::new(FaultSink::new(
            Box::new(MemorySink::from_bytes(bytes.clone())),
            vec![fault],
        )));
        let (records, consumed) = faulted.replay().unwrap();
        assert_eq!(records, sample_records()[..3].to_vec());
        assert_eq!(consumed, spans[2].1);
        // The direct byte view agrees with the sink view.
        let (direct, _) = replay_bytes(&apply_faults(&bytes, &[fault])).unwrap();
        assert_eq!(direct, records);
    }

    #[test]
    fn fault_sink_drop_range_loses_whole_frames_but_keeps_the_rest_valid() {
        let mut wal = Wal::in_memory();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        let bytes = wal.image().unwrap();
        let spans = frame_spans(&bytes);
        // Drop frames 2..4 (a lost group flush mid-log).
        let fault = SinkFault::DropRange {
            offset: spans[2].0,
            len: spans[3].1 - spans[2].0,
        };
        let sink = FaultSink::new(Box::new(MemorySink::from_bytes(bytes.clone())), vec![fault]);
        assert_eq!(
            LogSink::len(&sink),
            bytes.len() as u64 - (spans[3].1 - spans[2].0)
        );
        let faulted = Wal::with_sink(Box::new(sink));
        let (records, consumed) = faulted.replay().unwrap();
        let mut expected = sample_records();
        expected.drain(2..4);
        assert_eq!(records, expected);
        assert_eq!(consumed, faulted.size_bytes());
    }

    #[test]
    fn fault_sink_materializes_before_writes() {
        let mut wal = Wal::in_memory();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        let bytes = wal.image().unwrap();
        let spans = frame_spans(&bytes);
        let fault = SinkFault::FlipByte {
            offset: spans[3].0 + 8,
        };
        let mut faulted = Wal::with_sink(Box::new(FaultSink::new(
            Box::new(MemorySink::from_bytes(bytes)),
            vec![fault],
        )));
        // Recovery-style sequence: truncate to the valid prefix, then keep
        // appending. The faulted suffix must be gone for good.
        let (prefix, consumed) = faulted.replay().unwrap();
        faulted.truncate_to(consumed).unwrap();
        faulted.append(&LogRecord::Checkpoint).unwrap();
        let (records, _) = faulted.replay().unwrap();
        let mut expected = prefix;
        expected.push(LogRecord::Checkpoint);
        assert_eq!(records, expected);
    }

    #[test]
    fn buffer_overflow_triggers_drain_preserving_order() {
        let mut wal = Wal::in_memory();
        wal.set_group_limit(64); // tiny: force several drains
        let mut expected = Vec::new();
        for i in 0..50u64 {
            let r = LogRecord::PendingAdd {
                id: i,
                payload: vec![i as u8; 16],
            };
            wal.append(&r).unwrap();
            expected.push(r);
        }
        assert!(wal.drains() > 1);
        let (records, _) = wal.replay().unwrap();
        assert_eq!(records, expected);
        // image() drains the tail and equals the replayed stream.
        let image = wal.image().unwrap();
        let (from_image, _) = replay_bytes(&image).unwrap();
        assert_eq!(from_image, expected);
        assert_eq!(wal.buffered_records(), 0);
    }
}
