//! Tuple views: evaluate conjunctive queries against *composed* states.
//!
//! The paper's read semantics (§3.2.2) answer queries against possible
//! worlds — states of the form "extensional database **plus** the pending
//! updates of some grounding". Materializing such a world by cloning the
//! database makes every read O(database); [`TupleView`] abstracts the
//! tuple source instead, so [`crate::ConjunctiveQuery::eval`] runs
//! unchanged against either
//!
//! * the concrete [`Database`] (the extensional state), or
//! * a [`DeltaView`] — a borrowed base plus an id-keyed insert/delete
//!   delta, the same shape as the solver's overlay — built in O(pending)
//!   and dropped after the read, with **zero** database clones.
//!
//! Both implementations yield matching rows in key order with base and
//! delta merged, so evaluation through a view is indistinguishable
//! (result order included) from evaluation against a database that had
//! the delta applied — the property `crates/storage/tests/delta_view.rs`
//! pins over randomized states, deltas and indexes.

use std::collections::BTreeMap;

use crate::database::{Database, RelationId, WriteOp};
use crate::error::StorageError;
use crate::table::Table;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;

/// A source of tuples for query evaluation: the concrete [`Database`] or
/// a [`DeltaView`] composing a base with pending updates.
///
/// The contract mirrors the paper's possible-world reads: `matching_rows`
/// yields the visible rows of a relation under a partial column binding,
/// in key order; `count_rows` is the exact cardinality of that sequence
/// (the dynamic most-constrained-first atom ordering depends on counts
/// being exact and identical across implementations).
pub trait TupleView {
    /// Arity of `relation`; error when the relation does not exist.
    fn arity_of(&self, relation: &str) -> Result<usize>;

    /// Exact count of visible rows matching `bound` (`Some(v)` pins a
    /// column to `v`).
    fn count_rows(&self, relation: &str, bound: &[Option<Value>]) -> Result<usize>;

    /// Visible rows matching `bound`, in key order.
    fn matching_rows(&self, relation: &str, bound: &[Option<Value>]) -> Result<Vec<Tuple>>;
}

impl TupleView for Database {
    fn arity_of(&self, relation: &str) -> Result<usize> {
        Ok(self.table(relation)?.schema().arity())
    }

    fn count_rows(&self, relation: &str, bound: &[Option<Value>]) -> Result<usize> {
        // `count_up_to` with an unreachable cap is an exact count that
        // reads an index bucket length when a single bound column is
        // indexed (no row iteration).
        Ok(self.table(relation)?.count_up_to(bound, usize::MAX).0)
    }

    fn matching_rows(&self, relation: &str, bound: &[Option<Value>]) -> Result<Vec<Tuple>> {
        Ok(self.table(relation)?.select(bound).cloned().collect())
    }
}

/// Per-relation delta of a [`DeltaView`]. Inserts are keyed exactly like
/// [`Table`] rows (schema key projection → row), deletes record the
/// removed base row under its key — so key semantics (set-semantic
/// no-ops, key violations) match the concrete table's.
#[derive(Debug, Clone, Default)]
struct DeltaRel {
    /// Rows added on top of the base, key → row.
    inserts: BTreeMap<Tuple, Tuple>,
    /// Base rows removed, key → the removed row.
    deletes: BTreeMap<Tuple, Tuple>,
}

impl DeltaRel {
    fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// A possible-world view: a borrowed base [`Database`] plus an id-keyed
/// insert/delete delta.
///
/// Applying a [`WriteOp`] has exactly the semantics of
/// [`Database::apply`] — duplicate inserts and deletes of absent rows are
/// no-ops (`Ok(false)`), key violations are errors — but mutates only the
/// delta: building a view over the pending updates of a partition is
/// O(pending), never O(database).
///
/// ```
/// use qdb_storage::{tuple, ConjunctiveQuery, Database, DeltaView, Pattern, PatTerm};
/// use qdb_storage::{Schema, ValueType, WriteOp};
///
/// let mut db = Database::new();
/// db.create_table(Schema::new(
///     "Available",
///     vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
/// ))
/// .unwrap();
/// db.insert("Available", tuple![1, "1A"]).unwrap();
/// db.insert("Available", tuple![1, "1B"]).unwrap();
///
/// // A pending booking's delete, visible through the view only.
/// let mut view = DeltaView::new(&db);
/// view.apply(&WriteOp::delete("Available", tuple![1, "1A"])).unwrap();
///
/// let q = ConjunctiveQuery::new(vec![Pattern::new(
///     "Available",
///     vec![PatTerm::val(1), PatTerm::Var(0)],
/// )]);
/// assert_eq!(q.eval(&view).unwrap().bindings.len(), 1);
/// assert_eq!(q.eval(&db).unwrap().bindings.len(), 2); // base untouched
/// ```
#[derive(Debug, Clone)]
pub struct DeltaView<'a> {
    base: &'a Database,
    /// Deltas indexed by [`RelationId`]; shorter than the id space when
    /// trailing relations are untouched.
    rels: Vec<DeltaRel>,
}

impl<'a> DeltaView<'a> {
    /// An empty view (view = base).
    pub fn new(base: &'a Database) -> Self {
        DeltaView {
            base,
            rels: Vec::new(),
        }
    }

    /// The underlying base database.
    pub fn base(&self) -> &'a Database {
        self.base
    }

    /// True when the delta is empty (the view equals the base).
    pub fn is_unchanged(&self) -> bool {
        self.rels.iter().all(DeltaRel::is_empty)
    }

    /// Number of delta entries (inserted plus deleted rows).
    pub fn delta_len(&self) -> usize {
        self.rels
            .iter()
            .map(|r| r.inserts.len() + r.deletes.len())
            .sum()
    }

    fn rel(&self, rid: RelationId) -> Option<&DeltaRel> {
        self.rels.get(rid.index())
    }

    fn rel_mut(&mut self, rid: RelationId) -> &mut DeltaRel {
        if rid.index() >= self.rels.len() {
            self.rels.resize_with(rid.index() + 1, DeltaRel::default);
        }
        &mut self.rels[rid.index()]
    }

    /// Apply a write op to the delta. Same contract as
    /// [`Database::apply`]: `Ok(true)` when the visible state changed,
    /// `Ok(false)` for set-semantic no-ops, `Err` on key violations.
    pub fn apply(&mut self, op: &WriteOp) -> Result<bool> {
        let rid = self.base.resolve(op.relation())?;
        self.apply_id(rid, op.is_insert(), op.tuple())
    }

    /// Apply every op in order, stopping at the first error.
    pub fn apply_all(&mut self, ops: &[WriteOp]) -> Result<()> {
        for op in ops {
            self.apply(op)?;
        }
        Ok(())
    }

    /// [`DeltaView::apply`] by interned relation id.
    pub fn apply_id(&mut self, rid: RelationId, insert: bool, tuple: &Tuple) -> Result<bool> {
        let table = self.base.table_by_id(rid);
        table.schema().check(tuple)?;
        let key = table.schema().key_of(tuple);
        let base_row = table.get_by_key(&key);
        let rel = self.rel_mut(rid);
        if insert {
            if let Some(existing) = rel.inserts.get(&key) {
                if existing == tuple {
                    return Ok(false);
                }
                return Err(key_violation(table, &key));
            }
            if let Some(deleted) = rel.deletes.get(&key) {
                // The base row under this key was delta-deleted; the slot
                // is free — cancel the delete when re-inserting the exact
                // same row, otherwise record a fresh insert.
                if deleted == tuple {
                    rel.deletes.remove(&key);
                } else {
                    rel.inserts.insert(key, tuple.clone());
                }
                return Ok(true);
            }
            match base_row {
                Some(existing) if existing == tuple => Ok(false),
                Some(_) => Err(key_violation(table, &key)),
                None => {
                    rel.inserts.insert(key, tuple.clone());
                    Ok(true)
                }
            }
        } else {
            if let Some(existing) = rel.inserts.get(&key) {
                if existing == tuple {
                    rel.inserts.remove(&key);
                    return Ok(true);
                }
                return Ok(false); // different row under the key: no-op
            }
            if rel.deletes.contains_key(&key) {
                return Ok(false); // already deleted
            }
            match base_row {
                Some(existing) if existing == tuple => {
                    rel.deletes.insert(key, tuple.clone());
                    Ok(true)
                }
                _ => Ok(false),
            }
        }
    }

    /// Is this exact row visible through the view?
    pub fn contains(&self, relation: &str, tuple: &Tuple) -> bool {
        let Some(rid) = self.base.try_resolve(relation) else {
            return false;
        };
        let table = self.base.table_by_id(rid);
        let key = table.schema().key_of(tuple);
        if let Some(rel) = self.rel(rid) {
            if let Some(row) = rel.inserts.get(&key) {
                return row == tuple;
            }
            if rel.deletes.contains_key(&key) {
                return false;
            }
        }
        table.get_by_key(&key).is_some_and(|row| row == tuple)
    }

    /// A canonical fingerprint of the **net delta** (relations in id
    /// order, `-`deleted and `+`inserted rows in key order). Two views
    /// over the same base describe the same possible world iff their
    /// fingerprints are equal — the possible-worlds enumerator
    /// deduplicates forks on this instead of serializing whole databases.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, rel) in self.rels.iter().enumerate() {
            if rel.is_empty() {
                continue;
            }
            let name = self.base.relation_name(RelationId::from_index(i));
            let _ = write!(out, "{name}[");
            for row in rel.deletes.values() {
                let _ = write!(out, "-{row}");
            }
            for row in rel.inserts.values() {
                let _ = write!(out, "+{row}");
            }
            out.push(']');
        }
        out
    }

    /// Clone the base and apply the delta — the O(database)
    /// materialization the view exists to avoid. Test/diagnostic use only
    /// (it counts into [`Database::clone_count`]).
    pub fn materialize(&self) -> Result<Database> {
        let mut db = self.base.clone();
        for (i, rel) in self.rels.iter().enumerate() {
            let rid = RelationId::from_index(i);
            for row in rel.deletes.values() {
                db.delete_id(rid, row)?;
            }
            for row in rel.inserts.values() {
                db.insert_id(rid, row.clone())?;
            }
        }
        Ok(db)
    }

    /// Visible rows of `rid` matching `bound`, merged in key order.
    fn merged_rows(
        &self,
        rid: RelationId,
        bound: &[Option<Value>],
        cap: usize,
    ) -> Result<Vec<Tuple>> {
        let table = self.base.table_by_id(rid);
        check_arity(table, bound)?;
        let empty = DeltaRel::default();
        let rel = self.rel(rid).unwrap_or(&empty);
        // Base portion: index-narrowed cursor (key order), minus deletes.
        let mut base_rows = table
            .cursor(bound)
            .filter(|row| Table::matches(row, bound))
            .filter(|row| !rel.deletes.contains_key(&table.schema().key_of(row)))
            .map(|row| (table.schema().key_of(row), row))
            .peekable();
        // Delta inserts matching the binding, already in key order.
        let mut ins = rel
            .inserts
            .iter()
            .filter(|(_, row)| Table::matches(row, bound))
            .peekable();
        // Merge on keys: insert keys never collide with visible base keys
        // (an insert is only recorded when the base lacks the key or its
        // row is delta-deleted), so the merge is a strict interleave that
        // reproduces the key order a materialized table would iterate in.
        let mut out = Vec::new();
        while out.len() < cap {
            let take_base = match (base_rows.peek(), ins.peek()) {
                (Some((bk, _)), Some((ik, _))) => bk < *ik,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_base {
                let (_, row) = base_rows.next().expect("peeked");
                out.push(row.clone());
            } else {
                let (_, row) = ins.next().expect("peeked");
                out.push(row.clone());
            }
        }
        Ok(out)
    }

    /// Count of visible rows matching `bound`, saturating at `cap`. When
    /// the relation has no delta, the base count comes from
    /// [`Table::count_up_to`] — an index bucket length when a single
    /// bound column is indexed, no row iteration at all.
    pub fn count_up_to(
        &self,
        relation: &str,
        bound: &[Option<Value>],
        cap: usize,
    ) -> Result<usize> {
        let rid = self.base.resolve(relation)?;
        let table = self.base.table_by_id(rid);
        check_arity(table, bound)?;
        let rel = self.rel(rid);
        let mut n = match rel {
            Some(r) if !r.deletes.is_empty() => table
                .cursor(bound)
                .filter(|row| Table::matches(row, bound))
                .filter(|row| !r.deletes.contains_key(&table.schema().key_of(row)))
                .take(cap)
                .count(),
            _ => table.count_up_to(bound, cap).0,
        };
        if n < cap {
            if let Some(r) = rel {
                n += r
                    .inserts
                    .values()
                    .filter(|row| Table::matches(row, bound))
                    .take(cap - n)
                    .count();
            }
        }
        Ok(n)
    }
}

impl TupleView for DeltaView<'_> {
    fn arity_of(&self, relation: &str) -> Result<usize> {
        self.base.arity_of(relation)
    }

    fn count_rows(&self, relation: &str, bound: &[Option<Value>]) -> Result<usize> {
        self.count_up_to(relation, bound, usize::MAX)
    }

    fn matching_rows(&self, relation: &str, bound: &[Option<Value>]) -> Result<Vec<Tuple>> {
        let rid = self.base.resolve(relation)?;
        self.merged_rows(rid, bound, usize::MAX)
    }
}

fn key_violation(table: &Table, key: &Tuple) -> StorageError {
    StorageError::KeyViolation {
        relation: table.schema().relation().to_string(),
        key: key.to_string(),
    }
}

fn check_arity(table: &Table, bound: &[Option<Value>]) -> Result<()> {
    if bound.len() != table.schema().arity() {
        return Err(StorageError::ArityMismatch {
            relation: table.schema().relation().to_string(),
            expected: table.schema().arity(),
            got: bound.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Schema, ValueType};
    use crate::tuple;

    fn base() -> Database {
        let mut db = Database::new();
        db.create_table(Schema::new(
            "A",
            vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
        ))
        .unwrap();
        db.insert("A", tuple![1, "1A"]).unwrap();
        db.insert("A", tuple![1, "1B"]).unwrap();
        db.insert("A", tuple![2, "2A"]).unwrap();
        db
    }

    #[test]
    fn apply_mirrors_database_apply_semantics() {
        let db = base();
        let mut view = DeltaView::new(&db);
        // Duplicate insert: set-semantic no-op.
        assert!(!view.apply(&WriteOp::insert("A", tuple![1, "1A"])).unwrap());
        // Delete of an absent row: no-op.
        assert!(!view.apply(&WriteOp::delete("A", tuple![9, "XX"])).unwrap());
        // Real delete + real insert change the view, not the base.
        assert!(view.apply(&WriteOp::delete("A", tuple![1, "1A"])).unwrap());
        assert!(view.apply(&WriteOp::insert("A", tuple![3, "3A"])).unwrap());
        assert!(!view.contains("A", &tuple![1, "1A"]));
        assert!(view.contains("A", &tuple![3, "3A"]));
        assert!(db.contains("A", &tuple![1, "1A"]));
        assert!(!db.contains("A", &tuple![3, "3A"]));
        // Delete-then-reinsert nets out to the base state.
        assert!(view.apply(&WriteOp::insert("A", tuple![1, "1A"])).unwrap());
        assert!(view.contains("A", &tuple![1, "1A"]));
    }

    #[test]
    fn key_violations_match_the_concrete_table() {
        let mut db = Database::new();
        db.create_table(
            Schema::new(
                "B",
                vec![("name", ValueType::Str), ("seat", ValueType::Str)],
            )
            .with_key(vec![0])
            .unwrap(),
        )
        .unwrap();
        db.insert("B", tuple!["Mickey", "5A"]).unwrap();
        let mut view = DeltaView::new(&db);
        // Same key, different row: violation (like Table::insert).
        assert!(view
            .apply(&WriteOp::insert("B", tuple!["Mickey", "5B"]))
            .is_err());
        // Delete frees the key for a different row.
        assert!(view
            .apply(&WriteOp::delete("B", tuple!["Mickey", "5A"]))
            .unwrap());
        assert!(view
            .apply(&WriteOp::insert("B", tuple!["Mickey", "5B"]))
            .unwrap());
        assert!(view.contains("B", &tuple!["Mickey", "5B"]));
        assert!(!view.contains("B", &tuple!["Mickey", "5A"]));
        // And a second different row under the key now violates again.
        assert!(view
            .apply(&WriteOp::insert("B", tuple!["Mickey", "5C"]))
            .is_err());
    }

    #[test]
    fn merged_rows_interleave_in_key_order() {
        let db = base();
        let mut view = DeltaView::new(&db);
        view.apply(&WriteOp::delete("A", tuple![1, "1B"])).unwrap();
        view.apply(&WriteOp::insert("A", tuple![0, "0Z"])).unwrap();
        view.apply(&WriteOp::insert("A", tuple![1, "1C"])).unwrap();
        view.apply(&WriteOp::insert("A", tuple![3, "3A"])).unwrap();
        let got = view.matching_rows("A", &[None, None]).unwrap();
        // Exactly the key-ordered iteration of the materialized state.
        let materialized = view.materialize().unwrap();
        let want: Vec<Tuple> = materialized.table("A").unwrap().iter().cloned().collect();
        assert_eq!(got, want);
        // And a bound column narrows identically.
        let bound = vec![Some(Value::from(1)), None];
        assert_eq!(
            view.matching_rows("A", &bound).unwrap(),
            materialized
                .table("A")
                .unwrap()
                .select(&bound)
                .cloned()
                .collect::<Vec<_>>()
        );
        assert_eq!(view.count_rows("A", &bound).unwrap(), 2);
    }

    #[test]
    fn count_up_to_uses_index_buckets_when_delta_free() {
        let mut db = base();
        db.table_mut("A").unwrap().create_index(0).unwrap();
        let view = DeltaView::new(&db);
        let bound = vec![Some(Value::from(1)), None];
        assert_eq!(view.count_up_to("A", &bound, 10).unwrap(), 2);
        assert_eq!(view.count_up_to("A", &bound, 1).unwrap(), 1);
        // With deletes the filtered walk still agrees.
        let mut view = DeltaView::new(&db);
        view.apply(&WriteOp::delete("A", tuple![1, "1A"])).unwrap();
        assert_eq!(view.count_up_to("A", &bound, 10).unwrap(), 1);
    }

    #[test]
    fn fingerprints_identify_net_deltas() {
        let db = base();
        let mut v1 = DeltaView::new(&db);
        let mut v2 = DeltaView::new(&db);
        assert_eq!(v1.fingerprint(), v2.fingerprint());
        // Different op orders, same net effect.
        v1.apply(&WriteOp::delete("A", tuple![1, "1A"])).unwrap();
        v1.apply(&WriteOp::insert("A", tuple![3, "3A"])).unwrap();
        v2.apply(&WriteOp::insert("A", tuple![3, "3A"])).unwrap();
        v2.apply(&WriteOp::delete("A", tuple![1, "1A"])).unwrap();
        assert_eq!(v1.fingerprint(), v2.fingerprint());
        // A no-op sequence fingerprints as unchanged.
        let mut v3 = DeltaView::new(&db);
        v3.apply(&WriteOp::delete("A", tuple![1, "1A"])).unwrap();
        v3.apply(&WriteOp::insert("A", tuple![1, "1A"])).unwrap();
        assert_eq!(v3.fingerprint(), DeltaView::new(&db).fingerprint());
        assert!(v3.is_unchanged());
        assert_ne!(v1.fingerprint(), v3.fingerprint());
    }

    #[test]
    fn missing_table_and_arity_errors() {
        let db = base();
        let mut view = DeltaView::new(&db);
        assert!(view.apply(&WriteOp::insert("Nope", tuple![1])).is_err());
        assert!(view.matching_rows("Nope", &[None]).is_err());
        assert!(view.matching_rows("A", &[None]).is_err()); // arity 2
        assert!(!view.contains("Nope", &tuple![1]));
    }
}
