//! The database: a catalog of tables plus a uniform write-op interface.

use std::collections::BTreeMap;

use crate::error::StorageError;
use crate::schema::Schema;
use crate::table::Table;
use crate::tuple::Tuple;
use crate::Result;

/// A single blind write — the building block of a resource transaction's
/// update portion (`FOLLOWED BY` block) and of ordinary non-resource writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOp {
    /// Insert `tuple` into `relation`.
    Insert {
        /// Target relation.
        relation: String,
        /// Row to insert.
        tuple: Tuple,
    },
    /// Delete `tuple` from `relation`.
    Delete {
        /// Target relation.
        relation: String,
        /// Row to delete.
        tuple: Tuple,
    },
}

impl WriteOp {
    /// Build an insert op.
    pub fn insert(relation: impl Into<String>, tuple: Tuple) -> Self {
        WriteOp::Insert {
            relation: relation.into(),
            tuple,
        }
    }

    /// Build a delete op.
    pub fn delete(relation: impl Into<String>, tuple: Tuple) -> Self {
        WriteOp::Delete {
            relation: relation.into(),
            tuple,
        }
    }

    /// Target relation name.
    pub fn relation(&self) -> &str {
        match self {
            WriteOp::Insert { relation, .. } | WriteOp::Delete { relation, .. } => relation,
        }
    }

    /// The affected tuple.
    pub fn tuple(&self) -> &Tuple {
        match self {
            WriteOp::Insert { tuple, .. } | WriteOp::Delete { tuple, .. } => tuple,
        }
    }

    /// True for inserts.
    pub fn is_insert(&self) -> bool {
        matches!(self, WriteOp::Insert { .. })
    }

    /// The inverse operation (used by tests to undo effects).
    pub fn inverse(&self) -> WriteOp {
        match self {
            WriteOp::Insert { relation, tuple } => WriteOp::Delete {
                relation: relation.clone(),
                tuple: tuple.clone(),
            },
            WriteOp::Delete { relation, tuple } => WriteOp::Insert {
                relation: relation.clone(),
                tuple: tuple.clone(),
            },
        }
    }
}

impl std::fmt::Display for WriteOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteOp::Insert { relation, tuple } => write!(f, "+{relation}{tuple}"),
            WriteOp::Delete { relation, tuple } => write!(f, "-{relation}{tuple}"),
        }
    }
}

/// Dense handle for an interned relation name.
///
/// Ids are assigned by [`Database::create_table`] in creation order and are
/// stable for the lifetime of the database (tables are never dropped).
/// Resolving a name costs one ordered-map lookup; every id-based accessor
/// afterwards is a plain vector index — the hot paths of the solver and the
/// WAL resolve once at parse/prepare time and stay on ids from then on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelationId(u32);

impl RelationId {
    /// The dense index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw id value (wire/WAL encodings).
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Rebuild an id from a dense index previously obtained through
    /// [`RelationId::index`] against the same database. The id space is
    /// dense, so this is a plain cast; using an index from a *different*
    /// database yields a handle for whatever relation occupies that slot.
    pub fn from_index(index: usize) -> RelationId {
        RelationId(index as u32)
    }
}

/// An in-memory relational database: named tables with schemas.
///
/// `Database` is `Clone`; a clone is a consistent snapshot. Cloning is
/// O(database) — the read paths avoid it entirely by evaluating through
/// [`crate::DeltaView`]s instead — and every clone is counted into a
/// counter shared by the whole clone family ([`Database::clone_count`]),
/// so "this path performs zero database clones" is a checkable claim
/// rather than a code-review one. Relation names are interned to dense
/// [`RelationId`]s; the string-keyed API resolves and delegates to the
/// id-keyed one.
#[derive(Debug, Default)]
pub struct Database {
    names: BTreeMap<String, RelationId>,
    tables: Vec<Table>,
    /// Clones performed anywhere in this database's clone family; the
    /// `Arc` is shared by every clone, so each copy reads the same total.
    clones: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl Clone for Database {
    fn clone(&self) -> Self {
        self.clones
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Database {
            names: self.names.clone(),
            tables: self.tables.clone(),
            clones: std::sync::Arc::clone(&self.clones),
        }
    }
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Register a new table.
    pub fn create_table(&mut self, schema: Schema) -> Result<()> {
        let name = schema.relation().to_string();
        if self.names.contains_key(&name) {
            return Err(StorageError::TableExists(name));
        }
        let id = RelationId(self.tables.len() as u32);
        self.names.insert(name, id);
        self.tables.push(Table::new(schema));
        Ok(())
    }

    /// Resolve a relation name to its interned id.
    pub fn resolve(&self, relation: &str) -> Result<RelationId> {
        self.try_resolve(relation)
            .ok_or_else(|| StorageError::NoSuchTable(relation.to_string()))
    }

    /// Resolve a relation name, `None` when no such table exists.
    pub fn try_resolve(&self, relation: &str) -> Option<RelationId> {
        self.names.get(relation).copied()
    }

    /// Number of relations (ids are `0..relation_count()`).
    pub fn relation_count(&self) -> usize {
        self.tables.len()
    }

    /// The name interned under `id`.
    ///
    /// # Panics
    /// Panics when `id` was not produced by this database.
    pub fn relation_name(&self, id: RelationId) -> &str {
        self.tables[id.index()].schema().relation()
    }

    /// Table by interned id.
    ///
    /// # Panics
    /// Panics when `id` was not produced by this database.
    pub fn table_by_id(&self, id: RelationId) -> &Table {
        &self.tables[id.index()]
    }

    /// Table by interned id, mutable.
    ///
    /// # Panics
    /// Panics when `id` was not produced by this database.
    pub fn table_by_id_mut(&mut self, id: RelationId) -> &mut Table {
        &mut self.tables[id.index()]
    }

    /// Look up a table.
    pub fn table(&self, relation: &str) -> Result<&Table> {
        Ok(self.table_by_id(self.resolve(relation)?))
    }

    /// Look up a table mutably.
    pub fn table_mut(&mut self, relation: &str) -> Result<&mut Table> {
        let id = self.resolve(relation)?;
        Ok(self.table_by_id_mut(id))
    }

    /// Does a table with this name exist?
    pub fn has_table(&self, relation: &str) -> bool {
        self.names.contains_key(relation)
    }

    /// Iterate over all tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> + '_ {
        self.names.values().map(|id| &self.tables[id.index()])
    }

    /// Iterate over `(id, table)` pairs in id (creation) order.
    pub fn tables_by_id(&self) -> impl Iterator<Item = (RelationId, &Table)> + '_ {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (RelationId(i as u32), t))
    }

    /// Insert a row. Returns whether the row was newly inserted.
    pub fn insert(&mut self, relation: &str, tuple: Tuple) -> Result<bool> {
        self.table_mut(relation)?.insert(tuple)
    }

    /// Insert a row by interned id.
    pub fn insert_id(&mut self, id: RelationId, tuple: Tuple) -> Result<bool> {
        self.tables[id.index()].insert(tuple)
    }

    /// Delete a row. Returns whether a row was removed.
    pub fn delete(&mut self, relation: &str, tuple: &Tuple) -> Result<bool> {
        self.table_mut(relation)?.delete(tuple)
    }

    /// Delete a row by interned id.
    pub fn delete_id(&mut self, id: RelationId, tuple: &Tuple) -> Result<bool> {
        self.tables[id.index()].delete(tuple)
    }

    /// Is this exact row present?
    pub fn contains(&self, relation: &str, tuple: &Tuple) -> bool {
        self.try_resolve(relation)
            .is_some_and(|id| self.tables[id.index()].contains(tuple))
    }

    /// Is this exact row present (by interned id)?
    pub fn contains_id(&self, id: RelationId, tuple: &Tuple) -> bool {
        self.tables[id.index()].contains(tuple)
    }

    /// Apply a write op. Inserts of already-present rows and deletes of
    /// absent rows are no-ops (`Ok(false)`), key violations are errors.
    pub fn apply(&mut self, op: &WriteOp) -> Result<bool> {
        match op {
            WriteOp::Insert { relation, tuple } => self.insert(relation, tuple.clone()),
            WriteOp::Delete { relation, tuple } => self.delete(relation, tuple),
        }
    }

    /// Apply a sequence of write ops, stopping at the first error.
    pub fn apply_all(&mut self, ops: &[WriteOp]) -> Result<()> {
        for op in ops {
            self.apply(op)?;
        }
        Ok(())
    }

    /// Total row count across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::len).sum()
    }

    /// How many times a database of this clone family has been cloned —
    /// ever, anywhere. The counter is shared between a database and all
    /// its clones (and their clones), so an engine can assert that a
    /// whole read path stayed clone-free by checking its own database's
    /// count. Fresh databases ([`Database::new`], recovery) start at 0.
    pub fn clone_count(&self) -> u64 {
        self.clones.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// A detached handle onto this family's clone counter: reads the same
    /// total as [`Database::clone_count`] without borrowing the database —
    /// metrics snapshots use it so observation never has to acquire the
    /// lock guarding the database itself.
    pub fn clone_counter(&self) -> CloneCounter {
        CloneCounter(std::sync::Arc::clone(&self.clones))
    }
}

/// Shared, lock-free handle to a database clone-family counter (see
/// [`Database::clone_counter`]).
#[derive(Debug, Clone)]
pub struct CloneCounter(std::sync::Arc<std::sync::atomic::AtomicU64>);

impl CloneCounter {
    /// Clones performed so far, family-wide.
    pub fn get(&self) -> u64 {
        self.0.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ValueType;
    use crate::tuple;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(Schema::new(
            "Available",
            vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
        ))
        .unwrap();
        db.create_table(Schema::new(
            "Bookings",
            vec![
                ("name", ValueType::Str),
                ("flight", ValueType::Int),
                ("seat", ValueType::Str),
            ],
        ))
        .unwrap();
        db
    }

    #[test]
    fn create_and_lookup_tables() {
        let db = db();
        assert!(db.has_table("Available"));
        assert!(db.table("Bookings").is_ok());
        assert!(matches!(
            db.table("Nope"),
            Err(StorageError::NoSuchTable(_))
        ));
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = db();
        let err = db
            .create_table(Schema::new("Available", vec![("x", ValueType::Int)]))
            .unwrap_err();
        assert!(matches!(err, StorageError::TableExists(_)));
    }

    #[test]
    fn apply_write_ops() {
        let mut db = db();
        let ins = WriteOp::insert("Available", tuple![1, "1A"]);
        assert!(db.apply(&ins).unwrap());
        assert!(!db.apply(&ins).unwrap()); // duplicate
        assert!(db.contains("Available", &tuple![1, "1A"]));
        let del = ins.inverse();
        assert!(db.apply(&del).unwrap());
        assert!(!db.apply(&del).unwrap()); // absent
        assert_eq!(db.total_rows(), 0);
    }

    #[test]
    fn apply_all_stops_on_error() {
        let mut db = db();
        let ops = vec![
            WriteOp::insert("Available", tuple![1, "1A"]),
            WriteOp::insert("Missing", tuple![1, "1A"]),
        ];
        assert!(db.apply_all(&ops).is_err());
        // First op applied before failure (caller decides on atomicity).
        assert!(db.contains("Available", &tuple![1, "1A"]));
    }

    #[test]
    fn snapshot_clone_is_independent() {
        let mut db = db();
        db.insert("Available", tuple![1, "1A"]).unwrap();
        let snap = db.clone();
        db.delete("Available", &tuple![1, "1A"]).unwrap();
        assert!(snap.contains("Available", &tuple![1, "1A"]));
        assert!(!db.contains("Available", &tuple![1, "1A"]));
    }

    #[test]
    fn writeop_display_matches_datalog_convention() {
        assert_eq!(
            WriteOp::insert("B", tuple!["M", 1]).to_string(),
            "+B('M', 1)"
        );
        assert_eq!(WriteOp::delete("A", tuple![1]).to_string(), "-A(1)");
    }
}
