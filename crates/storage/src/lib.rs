//! # qdb-storage
//!
//! An embedded relational storage engine — the substrate that the quantum
//! database prototype of *Quantum Databases* (Roy, Kot, Koch — CIDR 2013)
//! obtained from MySQL. It provides exactly what the middle tier of the
//! paper's Figure 4 needs from the layer below it:
//!
//! * typed tuples and **keyed tables with set semantics** (§3.2.1 assumes
//!   every relation written by a resource transaction has a key),
//! * secondary indexes ("appropriate indices are defined for each relation",
//!   §5.2),
//! * **conjunctive query evaluation with `LIMIT n`** — the paper's
//!   satisfiability checks are `LIMIT 1` join queries (§4),
//! * a **write-ahead log** with checksummed frames and a *pending
//!   transactions table* record kind, so that committed-but-unground
//!   resource transactions survive crashes (§4 "Recovery").
//!
//! The engine is deliberately simple — in-memory BTree tables plus a
//! replayable log — but it is complete: every operation the quantum layer
//! performs against "the database" goes through this crate.
//!
//! ```
//! use qdb_storage::{Database, Schema, ValueType, Value, Tuple};
//!
//! let mut db = Database::new();
//! db.create_table(Schema::new(
//!     "Available",
//!     vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
//! )).unwrap();
//! db.insert("Available", Tuple::from(vec![Value::from(123), Value::from("5A")])).unwrap();
//! assert_eq!(db.table("Available").unwrap().len(), 1);
//! ```

pub mod codec;
pub mod database;
pub mod error;
pub mod index;
pub mod pattern;
pub mod recovery;
pub mod schema;
pub mod table;
pub mod tuple;
pub mod value;
pub mod view;
pub mod wal;

pub use database::{CloneCounter, Database, RelationId, WriteOp};
pub use error::StorageError;
pub use index::SecondaryIndex;
pub use pattern::{Binding, ConjunctiveQuery, PatTerm, Pattern, QueryOutput};
pub use recovery::{recover, RecoveredState};
pub use schema::{Schema, ValueType};
pub use table::{Table, TableCursor};
pub use tuple::Tuple;
pub use value::Value;
pub use view::{DeltaView, TupleView};
pub use wal::{FaultSink, LogRecord, LogSink, SinkFault, Wal};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, StorageError>;
