//! Single-column secondary indexes.
//!
//! §5.2: *"Appropriate indices are defined for each relation in the
//! database."* Lookups with several bound columns pick the most selective
//! index and post-filter.

use std::collections::{BTreeSet, HashMap};

use crate::tuple::Tuple;
use crate::value::Value;

/// A secondary index over one column, mapping each column value to the set
/// of row keys carrying that value.
#[derive(Debug, Clone, Default)]
pub struct SecondaryIndex {
    column: usize,
    map: HashMap<Value, BTreeSet<Tuple>>,
}

impl SecondaryIndex {
    /// Create an empty index over column `column`.
    pub fn new(column: usize) -> Self {
        SecondaryIndex {
            column,
            map: HashMap::new(),
        }
    }

    /// The indexed column.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Record `row` (with key `key`) in the index.
    pub fn insert(&mut self, key: &Tuple, row: &Tuple) {
        let v = row[self.column].clone();
        self.map.entry(v).or_default().insert(key.clone());
    }

    /// Remove `row` (with key `key`) from the index.
    pub fn remove(&mut self, key: &Tuple, row: &Tuple) {
        if let Some(set) = self.map.get_mut(&row[self.column]) {
            set.remove(key);
            if set.is_empty() {
                self.map.remove(&row[self.column]);
            }
        }
    }

    /// Keys of rows whose indexed column equals `v`.
    pub fn lookup(&self, v: &Value) -> Option<&BTreeSet<Tuple>> {
        self.map.get(v)
    }

    /// Number of rows that would match `v` (0 when absent).
    pub fn selectivity(&self, v: &Value) -> usize {
        self.map.get(v).map_or(0, BTreeSet::len)
    }

    /// Total number of distinct values indexed.
    pub fn distinct_values(&self) -> usize {
        self.map.len()
    }

    /// Drop all entries.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn insert_lookup_remove() {
        let mut ix = SecondaryIndex::new(1);
        let r1 = tuple!["Mickey", 123, "5A"];
        let r2 = tuple!["Donald", 123, "5B"];
        let r3 = tuple!["Goofy", 77, "1A"];
        for r in [&r1, &r2, &r3] {
            ix.insert(r, r);
        }
        assert_eq!(ix.selectivity(&Value::from(123)), 2);
        assert_eq!(ix.selectivity(&Value::from(77)), 1);
        assert_eq!(ix.selectivity(&Value::from(0)), 0);
        assert_eq!(ix.distinct_values(), 2);

        ix.remove(&r1, &r1);
        assert_eq!(ix.selectivity(&Value::from(123)), 1);
        ix.remove(&r2, &r2);
        assert_eq!(ix.lookup(&Value::from(123)), None);
        assert_eq!(ix.distinct_values(), 1);
    }

    #[test]
    fn removing_absent_row_is_noop() {
        let mut ix = SecondaryIndex::new(0);
        let r = tuple!["x"];
        ix.remove(&r, &r);
        assert_eq!(ix.distinct_values(), 0);
    }
}
