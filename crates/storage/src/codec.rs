//! Hand-rolled binary codec for log frames.
//!
//! Records are encoded little-endian with length-prefixed strings. A
//! table-driven CRC-32 (IEEE polynomial) guards every log frame so recovery
//! can detect torn writes. No external serialization framework is used — the
//! format is small, stable and fully specified here.

use bytes::{Buf, BufMut, BytesMut};

use crate::error::StorageError;
use crate::schema::{Schema, ValueType};
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 checksum of `data` (IEEE polynomial).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Primitive encoders / checked decoders.
// ---------------------------------------------------------------------------

fn need(buf: &impl Buf, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        return Err(StorageError::Codec(format!(
            "unexpected end of input reading {what}: need {n} bytes, have {}",
            buf.remaining()
        )));
    }
    Ok(())
}

/// Write a length-prefixed UTF-8 string.
pub fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Read a length-prefixed UTF-8 string.
pub fn get_string(buf: &mut impl Buf) -> Result<String> {
    need(buf, 4, "string length")?;
    let len = buf.get_u32_le() as usize;
    need(buf, len, "string bytes")?;
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|e| StorageError::Codec(format!("invalid utf-8: {e}")))
}

const TAG_INT: u8 = 0;
const TAG_STR: u8 = 1;
const TAG_BOOL: u8 = 2;

/// Write a [`Value`].
pub fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            buf.put_i64_le(*i);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            put_string(buf, s);
        }
        Value::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(u8::from(*b));
        }
    }
}

/// Read a [`Value`].
pub fn get_value(buf: &mut impl Buf) -> Result<Value> {
    need(buf, 1, "value tag")?;
    match buf.get_u8() {
        TAG_INT => {
            need(buf, 8, "int value")?;
            Ok(Value::Int(buf.get_i64_le()))
        }
        // Decoded through the interning pool: WAL replay and wire decode
        // see the same few labels over and over — a recovered database
        // shares one `Arc` per distinct short string with everything else
        // decoded in this process.
        TAG_STR => Ok(Value::interned(&get_string(buf)?)),
        TAG_BOOL => {
            need(buf, 1, "bool value")?;
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        t => Err(StorageError::Codec(format!("unknown value tag {t}"))),
    }
}

/// Write a [`Tuple`].
pub fn put_tuple(buf: &mut BytesMut, t: &Tuple) {
    buf.put_u32_le(t.arity() as u32);
    for v in t.iter() {
        put_value(buf, v);
    }
}

/// Read a [`Tuple`].
pub fn get_tuple(buf: &mut impl Buf) -> Result<Tuple> {
    need(buf, 4, "tuple arity")?;
    let n = buf.get_u32_le() as usize;
    if n > 1 << 20 {
        return Err(StorageError::Codec(format!("implausible tuple arity {n}")));
    }
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(get_value(buf)?);
    }
    Ok(Tuple::from(values))
}

fn put_value_type(buf: &mut BytesMut, ty: ValueType) {
    buf.put_u8(match ty {
        ValueType::Int => TAG_INT,
        ValueType::Str => TAG_STR,
        ValueType::Bool => TAG_BOOL,
    });
}

fn get_value_type(buf: &mut impl Buf) -> Result<ValueType> {
    need(buf, 1, "value type")?;
    match buf.get_u8() {
        TAG_INT => Ok(ValueType::Int),
        TAG_STR => Ok(ValueType::Str),
        TAG_BOOL => Ok(ValueType::Bool),
        t => Err(StorageError::Codec(format!("unknown type tag {t}"))),
    }
}

/// Write a [`Schema`].
pub fn put_schema(buf: &mut BytesMut, s: &Schema) {
    put_string(buf, s.relation());
    buf.put_u32_le(s.arity() as u32);
    for c in s.columns() {
        put_string(buf, &c.name);
        put_value_type(buf, c.ty);
    }
    buf.put_u32_le(s.key_columns().len() as u32);
    for &k in s.key_columns() {
        buf.put_u32_le(k as u32);
    }
}

/// Read a [`Schema`].
pub fn get_schema(buf: &mut impl Buf) -> Result<Schema> {
    let relation = get_string(buf)?;
    need(buf, 4, "column count")?;
    let ncols = buf.get_u32_le() as usize;
    if ncols > 1 << 16 {
        return Err(StorageError::Codec(format!("implausible arity {ncols}")));
    }
    let mut columns: Vec<(String, ValueType)> = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name = get_string(buf)?;
        let ty = get_value_type(buf)?;
        columns.push((name, ty));
    }
    need(buf, 4, "key count")?;
    let nkeys = buf.get_u32_le() as usize;
    if nkeys > ncols {
        return Err(StorageError::Codec("key larger than arity".into()));
    }
    let mut key = Vec::with_capacity(nkeys);
    for _ in 0..nkeys {
        need(buf, 4, "key column")?;
        key.push(buf.get_u32_le() as usize);
    }
    let borrowed: Vec<(&str, ValueType)> = columns.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    let schema = Schema::new(relation, borrowed);
    if key.is_empty() {
        Ok(schema)
    } else {
        schema.with_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn value_roundtrip() {
        for v in [
            Value::from(0),
            Value::from(-1),
            Value::from(i64::MAX),
            Value::from(""),
            Value::from("seat 5A ✈"),
            Value::from(true),
            Value::from(false),
        ] {
            let mut buf = BytesMut::new();
            put_value(&mut buf, &v);
            let mut slice = buf.freeze();
            assert_eq!(get_value(&mut slice).unwrap(), v);
            assert_eq!(slice.remaining(), 0);
        }
    }

    #[test]
    fn tuple_roundtrip() {
        let t = tuple!["Mickey", 123, "5A", true];
        let mut buf = BytesMut::new();
        put_tuple(&mut buf, &t);
        let mut slice = buf.freeze();
        assert_eq!(get_tuple(&mut slice).unwrap(), t);
    }

    #[test]
    fn decoded_strings_are_interned() {
        // Decoding the same record twice (a WAL replayed, the same label
        // in many frames) must share one string allocation, not allocate
        // a fresh `Arc` per decode.
        let v = Value::from("codec-intern-test-7C");
        let mut buf = BytesMut::new();
        put_value(&mut buf, &v);
        let frozen = buf.freeze();
        let a = get_value(&mut frozen.clone()).unwrap();
        let b = get_value(&mut frozen.clone()).unwrap();
        let (Value::Str(a), Value::Str(b)) = (&a, &b) else {
            panic!("string value expected");
        };
        assert!(
            std::sync::Arc::ptr_eq(a, b),
            "decoded equal strings must share one Arc"
        );
    }

    #[test]
    fn schema_roundtrip_with_key() {
        let s = Schema::new(
            "Bookings",
            vec![
                ("name", ValueType::Str),
                ("flight", ValueType::Int),
                ("seat", ValueType::Str),
            ],
        )
        .with_key(vec![0, 1])
        .unwrap();
        let mut buf = BytesMut::new();
        put_schema(&mut buf, &s);
        let mut slice = buf.freeze();
        assert_eq!(get_schema(&mut slice).unwrap(), s);
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let t = tuple!["Mickey", 123];
        let mut buf = BytesMut::new();
        put_tuple(&mut buf, &t);
        let bytes = buf.freeze();
        for cut in 0..bytes.len() {
            let mut slice = bytes.slice(0..cut);
            assert!(get_tuple(&mut slice).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn garbage_tags_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(42);
        assert!(get_value(&mut buf.freeze()).is_err());
    }
}
