//! Keyed tables with set semantics.

use std::collections::BTreeMap;

use crate::error::StorageError;
use crate::index::SecondaryIndex;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;

/// A table: schema + rows keyed by the schema's key projection + secondary
/// indexes.
///
/// Inserting a row whose key is already present with *different* non-key
/// columns is a [`StorageError::KeyViolation`]; re-inserting an identical
/// row is a no-op (`Ok(false)`), which is exactly set semantics.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    rows: BTreeMap<Tuple, Tuple>,
    indexes: Vec<SecondaryIndex>,
}

impl Table {
    /// Create an empty table for `schema`.
    pub fn new(schema: Schema) -> Self {
        Table {
            schema,
            rows: BTreeMap::new(),
            indexes: Vec::new(),
        }
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Add a secondary index over `column`, back-filling existing rows.
    pub fn create_index(&mut self, column: usize) -> Result<()> {
        if column >= self.schema.arity() {
            return Err(StorageError::InvalidSchema(format!(
                "index column {column} out of range for '{}'",
                self.schema.relation()
            )));
        }
        if self.indexes.iter().any(|ix| ix.column() == column) {
            return Ok(()); // idempotent
        }
        let mut ix = SecondaryIndex::new(column);
        for (key, row) in &self.rows {
            ix.insert(key, row);
        }
        self.indexes.push(ix);
        Ok(())
    }

    /// Insert a row. Returns `Ok(true)` if newly inserted, `Ok(false)` if an
    /// identical row was already present, and `KeyViolation` if a different
    /// row shares the key.
    pub fn insert(&mut self, row: Tuple) -> Result<bool> {
        self.schema.check(&row)?;
        let key = self.schema.key_of(&row);
        if let Some(existing) = self.rows.get(&key) {
            if *existing == row {
                return Ok(false);
            }
            return Err(StorageError::KeyViolation {
                relation: self.schema.relation().to_string(),
                key: key.to_string(),
            });
        }
        for ix in &mut self.indexes {
            ix.insert(&key, &row);
        }
        self.rows.insert(key, row);
        Ok(true)
    }

    /// Delete a row (by full tuple). Returns `Ok(true)` when a row was
    /// removed, `Ok(false)` when no identical row was present.
    pub fn delete(&mut self, row: &Tuple) -> Result<bool> {
        self.schema.check(row)?;
        let key = self.schema.key_of(row);
        match self.rows.get(&key) {
            Some(existing) if existing == row => {
                for ix in &mut self.indexes {
                    ix.remove(&key, row);
                }
                self.rows.remove(&key);
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Is this exact row present?
    pub fn contains(&self, row: &Tuple) -> bool {
        let key = self.schema.key_of(row);
        self.rows.get(&key).is_some_and(|r| r == row)
    }

    /// Row with the given key, if any.
    pub fn get_by_key(&self, key: &Tuple) -> Option<&Tuple> {
        self.rows.get(key)
    }

    /// Iterate over all rows in key order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.rows.values()
    }

    /// Rows matching a partial binding: `bound[i] = Some(v)` constrains
    /// column `i` to equal `v`. Uses the most selective available index.
    pub fn select<'a>(
        &'a self,
        bound: &'a [Option<Value>],
    ) -> Box<dyn Iterator<Item = &'a Tuple> + 'a> {
        debug_assert_eq!(bound.len(), self.schema.arity());
        // Pick the most selective index among bound columns.
        let best = self
            .indexes
            .iter()
            .filter_map(|ix| {
                bound
                    .get(ix.column())
                    .and_then(|b| b.as_ref())
                    .map(|v| (ix, v, ix.selectivity(v)))
            })
            .min_by_key(|&(_, _, sel)| sel);
        match best {
            Some((ix, v, _)) => {
                let keys = ix.lookup(v);
                let iter = keys
                    .into_iter()
                    .flat_map(|set| set.iter())
                    .filter_map(move |k| self.rows.get(k))
                    .filter(move |row| Self::matches(row, bound));
                Box::new(iter)
            }
            None => Box::new(
                self.rows
                    .values()
                    .filter(move |row| Self::matches(row, bound)),
            ),
        }
    }

    /// Count rows matching a partial binding.
    pub fn count(&self, bound: &[Option<Value>]) -> usize {
        self.select(bound).count()
    }

    fn matches(row: &Tuple, bound: &[Option<Value>]) -> bool {
        bound
            .iter()
            .enumerate()
            .all(|(i, b)| b.as_ref().is_none_or(|v| &row[i] == v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ValueType;
    use crate::tuple;

    fn available() -> Table {
        Table::new(Schema::new(
            "Available",
            vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
        ))
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut t = available();
        assert!(t.insert(tuple![1, "1A"]).unwrap());
        assert!(!t.insert(tuple![1, "1A"]).unwrap()); // duplicate: no-op
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn key_violation_on_subset_key() {
        let schema = Schema::new(
            "Bookings",
            vec![("name", ValueType::Str), ("seat", ValueType::Str)],
        )
        .with_key(vec![0])
        .unwrap();
        let mut t = Table::new(schema);
        t.insert(tuple!["Mickey", "5A"]).unwrap();
        let err = t.insert(tuple!["Mickey", "5B"]).unwrap_err();
        assert!(matches!(err, StorageError::KeyViolation { .. }));
    }

    #[test]
    fn delete_exact_row_only() {
        let mut t = available();
        t.insert(tuple![1, "1A"]).unwrap();
        assert!(!t.delete(&tuple![1, "1B"]).unwrap());
        assert!(t.delete(&tuple![1, "1A"]).unwrap());
        assert!(t.is_empty());
        assert!(!t.delete(&tuple![1, "1A"]).unwrap());
    }

    #[test]
    fn schema_violations_rejected() {
        let mut t = available();
        assert!(t.insert(tuple![1]).is_err());
        assert!(t.insert(tuple!["x", "1A"]).is_err());
    }

    #[test]
    fn select_with_and_without_index() {
        let mut t = available();
        for f in 1..=3i64 {
            for s in ["1A", "1B", "1C"] {
                t.insert(tuple![f, s]).unwrap();
            }
        }
        // Unindexed scan.
        let bound = vec![Some(Value::from(2)), None];
        assert_eq!(t.select(&bound).count(), 3);
        // Indexed scan returns the same rows.
        t.create_index(0).unwrap();
        let via_index: Vec<_> = t.select(&bound).cloned().collect();
        assert_eq!(via_index.len(), 3);
        assert!(via_index.iter().all(|r| r[0] == Value::from(2)));
        // Fully bound.
        let bound = vec![Some(Value::from(2)), Some(Value::from("1B"))];
        assert_eq!(t.select(&bound).count(), 1);
        // No match.
        let bound = vec![Some(Value::from(9)), None];
        assert_eq!(t.select(&bound).count(), 0);
    }

    #[test]
    fn index_stays_consistent_under_mutation() {
        let mut t = available();
        t.create_index(1).unwrap();
        t.insert(tuple![1, "1A"]).unwrap();
        t.insert(tuple![2, "1A"]).unwrap();
        let bound = vec![None, Some(Value::from("1A"))];
        assert_eq!(t.select(&bound).count(), 2);
        t.delete(&tuple![1, "1A"]).unwrap();
        assert_eq!(t.select(&bound).count(), 1);
    }

    #[test]
    fn create_index_is_idempotent_and_validated() {
        let mut t = available();
        t.create_index(0).unwrap();
        t.create_index(0).unwrap();
        assert!(t.create_index(5).is_err());
    }

    #[test]
    fn get_by_key_uses_key_projection() {
        let schema = Schema::new(
            "Bookings",
            vec![("name", ValueType::Str), ("seat", ValueType::Str)],
        )
        .with_key(vec![0])
        .unwrap();
        let mut t = Table::new(schema);
        t.insert(tuple!["Mickey", "5A"]).unwrap();
        assert_eq!(
            t.get_by_key(&tuple!["Mickey"]),
            Some(&tuple!["Mickey", "5A"])
        );
        assert_eq!(t.get_by_key(&tuple!["Goofy"]), None);
    }
}
