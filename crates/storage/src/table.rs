//! Keyed tables with set semantics.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering::Relaxed};

use crate::error::StorageError;
use crate::index::SecondaryIndex;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;

/// A table: schema + rows keyed by the schema's key projection + secondary
/// indexes.
///
/// Inserting a row whose key is already present with *different* non-key
/// columns is a [`StorageError::KeyViolation`]; re-inserting an identical
/// row is a no-op (`Ok(false)`), which is exactly set semantics.
///
/// The table also keeps a tiny **access-pattern tracker**: every lookup that
/// binds a column no index can serve votes for that column (an atomic, so
/// shared readers can vote). The engine promotes persistently-voted columns
/// to secondary indexes and logs the promotion, so recovery rebuilds them.
#[derive(Debug)]
pub struct Table {
    schema: Schema,
    rows: BTreeMap<Tuple, Tuple>,
    indexes: Vec<SecondaryIndex>,
    /// Per-column count of bound-column lookups that fell back to a scan.
    scan_votes: Vec<AtomicU32>,
}

impl Clone for Table {
    fn clone(&self) -> Self {
        Table {
            schema: self.schema.clone(),
            rows: self.rows.clone(),
            indexes: self.indexes.clone(),
            scan_votes: self
                .scan_votes
                .iter()
                .map(|v| AtomicU32::new(v.load(Relaxed)))
                .collect(),
        }
    }
}

impl Table {
    /// Create an empty table for `schema`.
    pub fn new(schema: Schema) -> Self {
        let arity = schema.arity();
        Table {
            schema,
            rows: BTreeMap::new(),
            indexes: Vec::new(),
            scan_votes: (0..arity).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Add a secondary index over `column`, back-filling existing rows.
    pub fn create_index(&mut self, column: usize) -> Result<()> {
        if column >= self.schema.arity() {
            return Err(StorageError::InvalidSchema(format!(
                "index column {column} out of range for '{}'",
                self.schema.relation()
            )));
        }
        if self.indexes.iter().any(|ix| ix.column() == column) {
            return Ok(()); // idempotent
        }
        let mut ix = SecondaryIndex::new(column);
        for (key, row) in &self.rows {
            ix.insert(key, row);
        }
        self.indexes.push(ix);
        self.scan_votes[column].store(0, Relaxed);
        Ok(())
    }

    /// Columns currently covered by a secondary index.
    pub fn indexed_columns(&self) -> Vec<usize> {
        self.indexes.iter().map(|ix| ix.column()).collect()
    }

    /// Columns whose scan-vote count reached `threshold` and which no index
    /// serves yet — the promotion candidates of the access-pattern tracker.
    pub fn hot_unindexed_columns(&self, threshold: u32) -> Vec<usize> {
        self.scan_votes
            .iter()
            .enumerate()
            .filter(|(i, v)| {
                v.load(Relaxed) >= threshold && !self.indexes.iter().any(|ix| ix.column() == *i)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Current scan-vote count for `column` (tests and diagnostics).
    pub fn scan_votes(&self, column: usize) -> u32 {
        self.scan_votes[column].load(Relaxed)
    }

    /// Insert a row. Returns `Ok(true)` if newly inserted, `Ok(false)` if an
    /// identical row was already present, and `KeyViolation` if a different
    /// row shares the key.
    pub fn insert(&mut self, row: Tuple) -> Result<bool> {
        self.schema.check(&row)?;
        let key = self.schema.key_of(&row);
        if let Some(existing) = self.rows.get(&key) {
            if *existing == row {
                return Ok(false);
            }
            return Err(StorageError::KeyViolation {
                relation: self.schema.relation().to_string(),
                key: key.to_string(),
            });
        }
        for ix in &mut self.indexes {
            ix.insert(&key, &row);
        }
        self.rows.insert(key, row);
        Ok(true)
    }

    /// Delete a row (by full tuple). Returns `Ok(true)` when a row was
    /// removed, `Ok(false)` when no identical row was present.
    pub fn delete(&mut self, row: &Tuple) -> Result<bool> {
        self.schema.check(row)?;
        let key = self.schema.key_of(row);
        match self.rows.get(&key) {
            Some(existing) if existing == row => {
                for ix in &mut self.indexes {
                    ix.remove(&key, row);
                }
                self.rows.remove(&key);
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Is this exact row present?
    pub fn contains(&self, row: &Tuple) -> bool {
        let key = self.schema.key_of(row);
        self.rows.get(&key).is_some_and(|r| r == row)
    }

    /// Row with the given key, if any.
    pub fn get_by_key(&self, key: &Tuple) -> Option<&Tuple> {
        self.rows.get(key)
    }

    /// Iterate over all rows in key order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.rows.values()
    }

    /// A raw row stream narrowed by the most selective index among the
    /// bound columns — **not** yet filtered against `bound` (the caller
    /// post-filters; [`Table::select`] does it for you). Both the indexed
    /// and the scan branch yield rows in key order, so the sequence a
    /// caller observes after filtering does not depend on which indexes
    /// exist. The cursor borrows only the table, so it can be held across
    /// caller-side mutations of unrelated state (the solver holds one open
    /// across overlay mutations).
    ///
    /// Falling back to a scan with at least one bound column votes those
    /// columns into the access-pattern tracker.
    pub fn cursor<'a>(&'a self, bound: &[Option<Value>]) -> TableCursor<'a> {
        debug_assert_eq!(bound.len(), self.schema.arity());
        let best = self
            .indexes
            .iter()
            .filter_map(|ix| {
                bound
                    .get(ix.column())
                    .and_then(|b| b.as_ref())
                    .map(|v| (ix, v, ix.selectivity(v)))
            })
            .min_by_key(|&(_, _, sel)| sel);
        let inner = match best {
            Some((ix, v, _)) => match ix.lookup(v) {
                Some(keys) => CursorInner::Index(keys.iter()),
                None => CursorInner::Empty,
            },
            None => {
                for (i, b) in bound.iter().enumerate() {
                    if b.is_some() {
                        self.scan_votes[i].fetch_add(1, Relaxed);
                    }
                }
                CursorInner::Scan(self.rows.values())
            }
        };
        TableCursor {
            rows: &self.rows,
            index_backed: !matches!(inner, CursorInner::Scan(_)),
            inner,
        }
    }

    /// Rows matching a partial binding: `bound[i] = Some(v)` constrains
    /// column `i` to equal `v`. Uses the most selective available index.
    pub fn select<'a>(
        &'a self,
        bound: &'a [Option<Value>],
    ) -> Box<dyn Iterator<Item = &'a Tuple> + 'a> {
        Box::new(
            self.cursor(bound)
                .filter(move |row| Self::matches(row, bound)),
        )
    }

    /// Count rows matching a partial binding.
    pub fn count(&self, bound: &[Option<Value>]) -> usize {
        self.select(bound).count()
    }

    /// Count rows matching `bound`, saturating at `cap`. Returns the count
    /// and whether a **secondary index** answered it: a single bound
    /// column served by an index reads the bucket length (no row
    /// iteration), and multi-column patterns report whether the cursor was
    /// index-narrowed. A fully unbound pattern reads the row count in O(1)
    /// but involves no index, so it reports `false` — callers classifying
    /// index vs scan lookups should not count unbound patterns at all.
    pub fn count_up_to(&self, bound: &[Option<Value>], cap: usize) -> (usize, bool) {
        debug_assert_eq!(bound.len(), self.schema.arity());
        let mut bound_cols = bound
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.as_ref().map(|v| (i, v)));
        match (bound_cols.next(), bound_cols.next()) {
            (None, _) => (self.rows.len().min(cap), false),
            (Some((col, v)), None) => {
                if let Some(ix) = self.indexes.iter().find(|ix| ix.column() == col) {
                    return (ix.selectivity(v).min(cap), true);
                }
                let n = self
                    .cursor(bound)
                    .filter(|row| Self::matches(row, bound))
                    .take(cap)
                    .count();
                (n, false)
            }
            _ => {
                let cur = self.cursor(bound);
                let index_backed = cur.is_index_backed();
                let n = cur
                    .filter(|row| Self::matches(row, bound))
                    .take(cap)
                    .count();
                (n, index_backed)
            }
        }
    }

    /// Does `row` satisfy the partial binding `bound`?
    pub fn matches(row: &Tuple, bound: &[Option<Value>]) -> bool {
        bound
            .iter()
            .enumerate()
            .all(|(i, b)| b.as_ref().is_none_or(|v| &row[i] == v))
    }
}

/// Concrete (unboxed) row stream over a table — see [`Table::cursor`].
#[derive(Debug)]
pub struct TableCursor<'a> {
    rows: &'a BTreeMap<Tuple, Tuple>,
    inner: CursorInner<'a>,
    index_backed: bool,
}

#[derive(Debug)]
enum CursorInner<'a> {
    /// Full scan in key order.
    Scan(std::collections::btree_map::Values<'a, Tuple, Tuple>),
    /// Keys of one index bucket, in key order.
    Index(std::collections::btree_set::Iter<'a, Tuple>),
    /// Index consulted, bucket absent.
    Empty,
}

impl<'a> TableCursor<'a> {
    /// Was the stream narrowed by a secondary index?
    pub fn is_index_backed(&self) -> bool {
        self.index_backed
    }
}

impl<'a> Iterator for TableCursor<'a> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        match &mut self.inner {
            CursorInner::Scan(it) => it.next(),
            CursorInner::Index(keys) => loop {
                let k = keys.next()?;
                if let Some(row) = self.rows.get(k) {
                    return Some(row);
                }
            },
            CursorInner::Empty => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ValueType;
    use crate::tuple;

    fn available() -> Table {
        Table::new(Schema::new(
            "Available",
            vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
        ))
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut t = available();
        assert!(t.insert(tuple![1, "1A"]).unwrap());
        assert!(!t.insert(tuple![1, "1A"]).unwrap()); // duplicate: no-op
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn key_violation_on_subset_key() {
        let schema = Schema::new(
            "Bookings",
            vec![("name", ValueType::Str), ("seat", ValueType::Str)],
        )
        .with_key(vec![0])
        .unwrap();
        let mut t = Table::new(schema);
        t.insert(tuple!["Mickey", "5A"]).unwrap();
        let err = t.insert(tuple!["Mickey", "5B"]).unwrap_err();
        assert!(matches!(err, StorageError::KeyViolation { .. }));
    }

    #[test]
    fn delete_exact_row_only() {
        let mut t = available();
        t.insert(tuple![1, "1A"]).unwrap();
        assert!(!t.delete(&tuple![1, "1B"]).unwrap());
        assert!(t.delete(&tuple![1, "1A"]).unwrap());
        assert!(t.is_empty());
        assert!(!t.delete(&tuple![1, "1A"]).unwrap());
    }

    #[test]
    fn schema_violations_rejected() {
        let mut t = available();
        assert!(t.insert(tuple![1]).is_err());
        assert!(t.insert(tuple!["x", "1A"]).is_err());
    }

    #[test]
    fn select_with_and_without_index() {
        let mut t = available();
        for f in 1..=3i64 {
            for s in ["1A", "1B", "1C"] {
                t.insert(tuple![f, s]).unwrap();
            }
        }
        // Unindexed scan.
        let bound = vec![Some(Value::from(2)), None];
        assert_eq!(t.select(&bound).count(), 3);
        // Indexed scan returns the same rows, in the same (key) order.
        let via_scan: Vec<_> = t.select(&bound).cloned().collect();
        t.create_index(0).unwrap();
        let via_index: Vec<_> = t.select(&bound).cloned().collect();
        assert_eq!(via_index, via_scan);
        assert!(via_index.iter().all(|r| r[0] == Value::from(2)));
        // Fully bound.
        let bound = vec![Some(Value::from(2)), Some(Value::from("1B"))];
        assert_eq!(t.select(&bound).count(), 1);
        // No match.
        let bound = vec![Some(Value::from(9)), None];
        assert_eq!(t.select(&bound).count(), 0);
    }

    #[test]
    fn index_stays_consistent_under_mutation() {
        let mut t = available();
        t.create_index(1).unwrap();
        t.insert(tuple![1, "1A"]).unwrap();
        t.insert(tuple![2, "1A"]).unwrap();
        let bound = vec![None, Some(Value::from("1A"))];
        assert_eq!(t.select(&bound).count(), 2);
        t.delete(&tuple![1, "1A"]).unwrap();
        assert_eq!(t.select(&bound).count(), 1);
    }

    #[test]
    fn create_index_is_idempotent_and_validated() {
        let mut t = available();
        t.create_index(0).unwrap();
        t.create_index(0).unwrap();
        assert!(t.create_index(5).is_err());
        assert_eq!(t.indexed_columns(), vec![0]);
    }

    #[test]
    fn get_by_key_uses_key_projection() {
        let schema = Schema::new(
            "Bookings",
            vec![("name", ValueType::Str), ("seat", ValueType::Str)],
        )
        .with_key(vec![0])
        .unwrap();
        let mut t = Table::new(schema);
        t.insert(tuple!["Mickey", "5A"]).unwrap();
        assert_eq!(
            t.get_by_key(&tuple!["Mickey"]),
            Some(&tuple!["Mickey", "5A"])
        );
        assert_eq!(t.get_by_key(&tuple!["Goofy"]), None);
    }

    #[test]
    fn count_up_to_uses_index_bucket_lengths() {
        let mut t = available();
        for f in 1..=4i64 {
            for s in ["1A", "1B", "1C"] {
                t.insert(tuple![f, s]).unwrap();
            }
        }
        let bound = vec![Some(Value::from(2)), None];
        // Scan path: correct count, not index-backed.
        assert_eq!(t.count_up_to(&bound, 100), (3, false));
        assert_eq!(t.count_up_to(&bound, 2), (2, false));
        t.create_index(0).unwrap();
        // Single-bound-column fast path: bucket length, no iteration.
        assert_eq!(t.count_up_to(&bound, 100), (3, true));
        assert_eq!(t.count_up_to(&bound, 2), (2, true));
        assert_eq!(t.count_up_to(&[Some(Value::from(9)), None], 100), (0, true));
        // Fully unbound: O(1) row count, but no index involved.
        assert_eq!(t.count_up_to(&[None, None], 100), (12, false));
        assert_eq!(t.count_up_to(&[None, None], 5), (5, false));
        // Two bound columns still narrow through the index.
        let both = vec![Some(Value::from(2)), Some(Value::from("1B"))];
        assert_eq!(t.count_up_to(&both, 100), (1, true));
    }

    #[test]
    fn scan_votes_track_unserved_bound_columns() {
        let mut t = available();
        t.insert(tuple![1, "1A"]).unwrap();
        let bound = vec![Some(Value::from(1)), None];
        for _ in 0..3 {
            let _ = t.select(&bound).count();
        }
        assert_eq!(t.scan_votes(0), 3);
        assert_eq!(t.scan_votes(1), 0);
        assert_eq!(t.hot_unindexed_columns(3), vec![0]);
        assert_eq!(t.hot_unindexed_columns(4), Vec::<usize>::new());
        // Promotion resets the vote and stops the column being hot.
        t.create_index(0).unwrap();
        assert_eq!(t.scan_votes(0), 0);
        assert!(t.hot_unindexed_columns(1).is_empty());
        // Served lookups no longer vote.
        let _ = t.select(&bound).count();
        assert_eq!(t.scan_votes(0), 0);
        // A clone carries the vote counts.
        let _ = t.select(&[None, Some(Value::from("1A"))]).count();
        let c = t.clone();
        assert_eq!(c.scan_votes(1), 1);
    }
}
