//! Crash recovery: rebuild a [`Database`] and the pending-transaction table
//! from a WAL image.
//!
//! §4 "Recovery": *"During recovery, a quantum database module restores the
//! in-memory quantum state to what it was before the crash based on the
//! pending transactions table."* Storage-level recovery reconstructs the
//! extensional database and hands the (still serialized) pending
//! transactions to the quantum layer, which re-parses and re-solves them.

use std::collections::BTreeMap;

use crate::database::Database;
use crate::wal::{LogRecord, Wal};
use crate::Result;

/// Output of storage-level recovery.
#[derive(Debug)]
pub struct RecoveredState {
    /// The reconstructed extensional database.
    pub db: Database,
    /// Still-pending resource transactions in id (= arrival) order:
    /// `(id, serialized payload)`.
    pub pending: Vec<(u64, Vec<u8>)>,
    /// Number of log records applied.
    pub records_applied: usize,
    /// Byte offset where replay stopped (end of intact log prefix).
    pub consumed_bytes: u64,
}

/// Replay `wal` into a fresh database.
///
/// Inserts of already-present rows and deletes of absent rows replay as
/// no-ops (they were no-ops when first applied too); any other failure —
/// e.g. a write against a table whose `CreateTable` record is missing —
/// aborts recovery with an error, because it means the log is not a prefix
/// of any valid history.
pub fn recover(wal: &Wal) -> Result<RecoveredState> {
    let (records, consumed_bytes) = wal.replay()?;
    recover_records(&records, consumed_bytes)
}

/// Replay already-decoded records (used by tests and by the engine when it
/// holds a raw log image).
pub fn recover_records(records: &[LogRecord], consumed_bytes: u64) -> Result<RecoveredState> {
    let mut db = Database::new();
    let mut pending: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for record in records {
        match record {
            LogRecord::CreateTable(schema) => db.create_table(schema.clone())?,
            LogRecord::CreateIndex { relation, column } => {
                db.table_mut(relation)?.create_index(*column as usize)?;
            }
            LogRecord::Write(op) => {
                db.apply(op)?;
            }
            LogRecord::PendingAdd { id, payload } => {
                pending.insert(*id, payload.clone());
            }
            LogRecord::PendingRemove { id } => {
                pending.remove(id);
            }
            LogRecord::Ground { id, ops } => {
                for op in ops {
                    db.apply(op)?;
                }
                pending.remove(id);
            }
            LogRecord::Checkpoint => {}
        }
    }
    Ok(RecoveredState {
        db,
        pending: pending.into_iter().collect(),
        records_applied: records.len(),
        consumed_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::WriteOp;
    use crate::schema::{Schema, ValueType};
    use crate::tuple;
    use crate::wal::MemorySink;

    fn schema() -> Schema {
        Schema::new(
            "Available",
            vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
        )
    }

    #[test]
    fn full_recovery_rebuilds_state() {
        let mut wal = Wal::in_memory();
        wal.append(&LogRecord::CreateTable(schema())).unwrap();
        wal.append(&LogRecord::CreateIndex {
            relation: "Available".into(),
            column: 0,
        })
        .unwrap();
        wal.append(&LogRecord::Write(WriteOp::insert(
            "Available",
            tuple![1, "1A"],
        )))
        .unwrap();
        wal.append(&LogRecord::Write(WriteOp::insert(
            "Available",
            tuple![1, "1B"],
        )))
        .unwrap();
        wal.append(&LogRecord::PendingAdd {
            id: 3,
            payload: vec![9],
        })
        .unwrap();
        wal.append(&LogRecord::PendingAdd {
            id: 5,
            payload: vec![8],
        })
        .unwrap();
        wal.append(&LogRecord::Write(WriteOp::delete(
            "Available",
            tuple![1, "1A"],
        )))
        .unwrap();
        wal.append(&LogRecord::PendingRemove { id: 3 }).unwrap();

        let state = recover(&wal).unwrap();
        assert_eq!(state.records_applied, 8);
        assert!(state.db.contains("Available", &tuple![1, "1B"]));
        assert!(!state.db.contains("Available", &tuple![1, "1A"]));
        assert_eq!(state.pending, vec![(5, vec![8])]);
    }

    #[test]
    fn recovery_of_torn_log_yields_prefix_state() {
        let mut wal = Wal::in_memory();
        wal.append(&LogRecord::CreateTable(schema())).unwrap();
        wal.append(&LogRecord::Write(WriteOp::insert(
            "Available",
            tuple![1, "1A"],
        )))
        .unwrap();
        let good = wal.size_bytes() as usize;
        wal.append(&LogRecord::Write(WriteOp::insert(
            "Available",
            tuple![1, "1B"],
        )))
        .unwrap();
        // Simulate crash mid-frame on the last record.
        let bytes = wal.sink_mut().read_all().unwrap();
        let torn = &bytes[..good + 5];
        let mut torn_wal = Wal::with_sink(Box::new(MemorySink::from_bytes(torn.to_vec())));
        // Wal::with_sink tracks appended records only; replay reads the sink.
        let state = recover(&torn_wal).unwrap();
        assert_eq!(state.records_applied, 2);
        assert!(state.db.contains("Available", &tuple![1, "1A"]));
        assert!(!state.db.contains("Available", &tuple![1, "1B"]));
        assert_eq!(state.consumed_bytes as usize, good);
        // And the torn WAL can keep being appended to after recovery
        // (engine truncates to consumed_bytes first in real use).
        torn_wal.append(&LogRecord::Checkpoint).unwrap();
    }

    #[test]
    fn write_against_missing_table_fails_recovery() {
        let mut wal = Wal::in_memory();
        wal.append(&LogRecord::Write(WriteOp::insert("Ghost", tuple![1, "1A"])))
            .unwrap();
        assert!(recover(&wal).is_err());
    }

    #[test]
    fn pending_order_is_id_order() {
        let mut wal = Wal::in_memory();
        for id in [9u64, 2, 5] {
            wal.append(&LogRecord::PendingAdd {
                id,
                payload: vec![id as u8],
            })
            .unwrap();
        }
        let state = recover(&wal).unwrap();
        let ids: Vec<u64> = state.pending.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![2, 5, 9]);
    }
}
