//! Typed data values stored in tuples.
//!
//! The paper's domains are flight numbers, seat labels, dates and user names
//! — integers, strings and booleans cover all of them. `Value` is the single
//! constant type shared by the storage layer, the logic layer (as the range
//! of groundings/valuations) and the solver.

use std::fmt;
use std::sync::Arc;

/// A single column value.
///
/// Strings are reference-counted so that tuples (and therefore solver
/// overlays and cached solutions, which clone tuples freely) are cheap to
/// copy.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// 64-bit signed integer (flight numbers, dates-as-ordinals, slot ids).
    Int(i64),
    /// Interned UTF-8 string (seat labels, user names).
    Str(Arc<str>),
    /// Boolean flag (e.g. "window seat" attributes).
    Bool(bool),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build an integer value.
    pub const fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// The runtime type of this value.
    pub fn value_type(&self) -> super::ValueType {
        match self {
            Value::Int(_) => super::ValueType::Int,
            Value::Str(_) => super::ValueType::Str,
            Value::Bool(_) => super::ValueType::Bool,
        }
    }

    /// Integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Value::from(42).to_string(), "42");
        assert_eq!(Value::from("5A").to_string(), "'5A'");
        assert_eq!(Value::from(true).to_string(), "true");
    }

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(Value::from(7i64).as_int(), Some(7));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(false).as_bool(), Some(false));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(5usize), Value::Int(5));
        assert_eq!(Value::from(String::from("s")), Value::str("s"));
    }

    #[test]
    fn mismatched_accessors_return_none() {
        assert_eq!(Value::from("x").as_int(), None);
        assert_eq!(Value::from(1).as_str(), None);
        assert_eq!(Value::from(1).as_bool(), None);
    }

    #[test]
    fn ordering_is_total_within_and_across_types() {
        // Enum variant order: Int < Str < Bool. Stability of this total
        // order matters because tables key their BTreeMaps on tuples.
        assert!(Value::from(9) < Value::from("a"));
        assert!(Value::from("a") < Value::from(false));
        assert!(Value::from(1) < Value::from(2));
        assert!(Value::from("1A") < Value::from("1B"));
    }

    #[test]
    fn string_values_are_cheaply_cloneable() {
        let v = Value::str("shared");
        let w = v.clone();
        match (&v, &w) {
            (Value::Str(a), Value::Str(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => unreachable!(),
        }
    }
}
