//! Typed data values stored in tuples.
//!
//! The paper's domains are flight numbers, seat labels, dates and user names
//! — integers, strings and booleans cover all of them. `Value` is the single
//! constant type shared by the storage layer, the logic layer (as the range
//! of groundings/valuations) and the solver.

use std::collections::HashSet;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// Capacity of the process-wide string interning pool. The domains the
/// paper draws from (seat labels, user names, relation-ish constants) are
/// small and heavily repeated; once the pool is full, [`Value::interned`]
/// degrades to plain allocation rather than evicting.
const INTERN_POOL_CAP: usize = 4096;

/// Strings longer than this are never pooled — long payloads are unlikely
/// to repeat, and pooling them would pin large allocations for the
/// process lifetime.
const INTERN_MAX_LEN: usize = 64;

/// The pool is read-mostly (hits vastly outnumber first-sightings on the
/// decode paths that use it), so it sits behind an `RwLock`: concurrent
/// decoder threads share the read lock on hits and only a miss takes the
/// write lock. Poisoning is deliberately ignored — the pool holds no
/// invariants a panicked inserter could break (worst case a string that
/// was about to be pooled isn't).
fn intern_pool() -> &'static RwLock<HashSet<Arc<str>>> {
    static POOL: OnceLock<RwLock<HashSet<Arc<str>>>> = OnceLock::new();
    POOL.get_or_init(|| RwLock::new(HashSet::new()))
}

/// A single column value.
///
/// Strings are reference-counted (`Arc<str>`) so that tuples — and
/// therefore solver overlays and cached solutions, which clone tuples
/// freely — are cheap to copy. Copies of one `Value` share one
/// allocation; *distinct* constructions of equal text do **not**, unless
/// built through [`Value::interned`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// 64-bit signed integer (flight numbers, dates-as-ordinals, slot ids).
    Int(i64),
    /// Reference-counted UTF-8 string (seat labels, user names).
    Str(Arc<str>),
    /// Boolean flag (e.g. "window seat" attributes).
    Bool(bool),
}

impl Value {
    /// Build a string value. Allocates a fresh `Arc` per call; decode and
    /// parse paths that see the same text over and over should use
    /// [`Value::interned`] instead.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build a string value through the process-wide interning pool:
    /// equal short strings share one `Arc` allocation (observable via
    /// `Arc::ptr_eq`/`Arc::strong_count`). The SQL parser and the
    /// WAL/codec decoders construct their string constants here, so a
    /// recovered database and a re-parsed statement stream share string
    /// storage instead of re-allocating every repeated label.
    ///
    /// The pool is bounded (4096 entries, strings up to 64 bytes);
    /// beyond either limit this degrades to [`Value::str`].
    pub fn interned(s: &str) -> Self {
        if s.len() > INTERN_MAX_LEN {
            return Value::str(s);
        }
        // Hit path: shared read lock only.
        let full = {
            let pool = intern_pool().read().unwrap_or_else(|e| e.into_inner());
            if let Some(shared) = pool.get(s) {
                return Value::Str(Arc::clone(shared));
            }
            pool.len() >= INTERN_POOL_CAP
        };
        let shared: Arc<str> = Arc::from(s);
        if !full {
            let mut pool = intern_pool().write().unwrap_or_else(|e| e.into_inner());
            // Racing first-sightings: keep whichever Arc landed first so
            // later hits all share it.
            if let Some(existing) = pool.get(s) {
                return Value::Str(Arc::clone(existing));
            }
            if pool.len() < INTERN_POOL_CAP {
                pool.insert(Arc::clone(&shared));
            }
        }
        Value::Str(shared)
    }

    /// Build an integer value.
    pub const fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// The runtime type of this value.
    pub fn value_type(&self) -> super::ValueType {
        match self {
            Value::Int(_) => super::ValueType::Int,
            Value::Str(_) => super::ValueType::Str,
            Value::Bool(_) => super::ValueType::Bool,
        }
    }

    /// Integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Value::from(42).to_string(), "42");
        assert_eq!(Value::from("5A").to_string(), "'5A'");
        assert_eq!(Value::from(true).to_string(), "true");
    }

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(Value::from(7i64).as_int(), Some(7));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(false).as_bool(), Some(false));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(5usize), Value::Int(5));
        assert_eq!(Value::from(String::from("s")), Value::str("s"));
    }

    #[test]
    fn mismatched_accessors_return_none() {
        assert_eq!(Value::from("x").as_int(), None);
        assert_eq!(Value::from(1).as_str(), None);
        assert_eq!(Value::from(1).as_bool(), None);
    }

    #[test]
    fn ordering_is_total_within_and_across_types() {
        // Enum variant order: Int < Str < Bool. Stability of this total
        // order matters because tables key their BTreeMaps on tuples.
        assert!(Value::from(9) < Value::from("a"));
        assert!(Value::from("a") < Value::from(false));
        assert!(Value::from(1) < Value::from(2));
        assert!(Value::from("1A") < Value::from("1B"));
    }

    #[test]
    fn string_values_are_cheaply_cloneable() {
        let v = Value::str("shared");
        let w = v.clone();
        match (&v, &w) {
            (Value::Str(a), Value::Str(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => unreachable!(),
        }
    }

    fn arc_of(v: &Value) -> &Arc<str> {
        match v {
            Value::Str(a) => a,
            _ => unreachable!("string value expected"),
        }
    }

    #[test]
    fn interned_strings_share_one_allocation() {
        // Two *independent* constructions of the same text: `Value::str`
        // allocates twice, `Value::interned` resolves to one shared Arc.
        let a = Value::str("value-intern-test-5A");
        let b = Value::str("value-intern-test-5A");
        assert!(!Arc::ptr_eq(arc_of(&a), arc_of(&b)));

        let c = Value::interned("value-intern-test-5A");
        let d = Value::interned("value-intern-test-5A");
        assert!(Arc::ptr_eq(arc_of(&c), arc_of(&d)));
        assert_eq!(c, a); // equality is by content either way

        // The pool holds one reference, c and d one each: the count shows
        // genuine sharing, not a fresh Arc per call.
        assert!(Arc::strong_count(arc_of(&c)) >= 3);
    }

    #[test]
    fn oversized_strings_bypass_the_pool() {
        let long = "x".repeat(INTERN_MAX_LEN + 1);
        let a = Value::interned(&long);
        let b = Value::interned(&long);
        assert_eq!(a, b);
        assert!(!Arc::ptr_eq(arc_of(&a), arc_of(&b)));
    }
}
