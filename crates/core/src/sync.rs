//! Minimal `parking_lot`-shaped mutex over `std::sync`.
//!
//! The shared engine handle wants `parking_lot::Mutex` ergonomics —
//! `lock()` returning a guard directly, no poisoning to thread through
//! every call site. That crate is not vendored in this offline build, so
//! this module provides the two-method subset the engine uses. Poisoning
//! is deliberately ignored: the engine's state transitions are all-or-
//! nothing (admission installs a partition only after the solve succeeds),
//! so a panicking holder leaves the state no more inconsistent than
//! `parking_lot` itself would.

use std::sync::PoisonError;

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_survives_a_panicking_holder() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
