//! Minimal `parking_lot`-shaped locks over `std::sync`.
//!
//! The sharded engine wants `parking_lot` ergonomics — `lock()` /
//! `read()` / `write()` returning guards directly, no poisoning to thread
//! through every call site. That crate is not vendored in this offline
//! build, so this module provides the subset the engine uses. Poisoning
//! is deliberately ignored: the engine's state transitions are all-or-
//! nothing (admission installs a partition only after the solve succeeds),
//! so a panicking holder leaves the state no more inconsistent than
//! `parking_lot` itself would.

use std::sync::PoisonError;

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
///
/// Backs the sharded engine's base state: reads (admission solves, PEEK
/// overlays, query evaluation) share the lock; writers (grounding applies,
/// blind writes, DDL) are exclusive. See `crate::shard` for the global
/// lock-ordering discipline.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquire a shared read guard, recovering from poisoning.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_survives_a_panicking_holder() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_survives_a_panicking_writer_and_shares_reads() {
        let l = Arc::new(RwLock::new(3));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison the lock");
        })
        .join();
        let a = l.read();
        let b = l.read(); // two simultaneous readers
        assert_eq!((*a, *b), (3, 3));
        drop((a, b));
        *l.write() += 1;
        assert_eq!(*l.read(), 4);
    }
}
