//! The partition-sharded concurrent engine: [`SharedQuantumDb`].
//!
//! The paper's §4 "Quantum State" design partitions pending resource
//! transactions into independent sets — *"there is no unification possible
//! between them"* — and this module exploits that independence for real
//! concurrency. Instead of one big lock around a [`QuantumDb`], the shared
//! handle shards its state:
//!
//! * **base** — the extensional [`Database`], behind an RwLock: admission
//!   solves, PEEK overlays and query evaluation share it; grounding
//!   applies, blind writes and DDL take it exclusively.
//! * **partitions** — each §4 independence [`Partition`] lives in its own
//!   mutex-guarded *slot* with its own cached-solution state, so solver
//!   searches for disjoint partitions run genuinely in parallel.
//! * **registry** — a map `partition id → (footprint, slot)`. The
//!   [`Footprint`] is an overlap summary kept *outside* the slot lock, so
//!   scans ("which partitions could this statement touch?") never block on
//!   a partition that is busy solving.
//! * **metrics** — atomics with a seqlock for torn-proof snapshots
//!   (`AtomicMetrics` in `crate::metrics`); hot-path observation never
//!   takes a lock.
//! * **WAL** — its own mutex; transaction ids are allocated inside the WAL
//!   critical section so log order equals id order (recovery replays
//!   `PendingAdd` records in id order).
//!
//! # Lock ordering
//!
//! Deadlock freedom rests on a fixed acquisition order:
//!
//! 1. **partition slots**, in ascending partition id — with one proven
//!    exception: a *reservation* (see below) locks its own freshly created
//!    slot first, which is safe because slot ids are allocated
//!    monotonically, so every slot a thread can subsequently wait on has a
//!    smaller id than the slot it holds; the waits-for relation strictly
//!    decreases and cannot cycle.
//! 2. **base** (read or write) — only after all needed slots are held.
//!    A thread holding base never waits on a slot.
//! 3. **WAL** — only after base (or alone).
//!
//! The **registry** mutex is a waits-for leaf: a registry holder never
//! blocks on any other lock (the only lock taken under it is the freshly
//! created, uncontended slot of a reservation), so it may be acquired at
//! any point, including while holding slots, base or the WAL.
//! `vargen`, `solver_stats` and the metrics seqlock are leaves as well.
//!
//! # Reservations
//!
//! A submit must atomically decide which partitions its transaction
//! depends on, or two dependent transactions could land in different
//! partitions and be admission-checked separately. Under the registry
//! lock, a reservation (a) collects every overlapping entry, (b) removes
//! them from the map, and (c) inserts a fresh entry whose footprint is the
//! union of the removed footprints plus the newcomer's atoms. This
//! publishes the *future* contents of the merged partition before any
//! solving happens, maintaining the invariant that a registered footprint
//! is a superset of the atoms of every transaction that will ever enter
//! the partition — which is what lets scans trust a negative overlap test
//! without locking the slot. The fresh host slot is locked *before* the
//! registry is released (it is undiscoverable until then, so the lock
//! cannot block), which makes the reservation's claim exclusive: a later
//! reservation that absorbs the host as one of its targets waits on that
//! lock and drains whatever the submit installed. The removed target
//! slots are then *drained* (locked, marked dead, contents moved) one by
//! one; any operation that locked a slot through a stale `Arc` sees
//! `dead` and rescans the registry.
//!
//! `GROUND ALL` is a reservation whose target set is the whole registry:
//! it registers one host entry carrying the union of every claimed
//! footprint and holds its slot lock from before the drain until the
//! collapse has been applied (or its error recovery has re-registered the
//! survivors). A statement that overlaps any claimed partition therefore
//! blocks on the host slot instead of admission-solving against a base
//! state whose pending collapse it cannot see; statements disjoint from
//! the union keep running, which is exactly what §4 independence permits.
//!
//! # Why plan-then-apply is sound
//!
//! Solver work (admission and grounding planning) runs under a base *read*
//! lock while holding the affected partition's slot; the resulting write
//! ops are applied later under the base *write* lock. No re-validation is
//! needed in between, because every base mutation that could invalidate a
//! plan must take the affected partition's slot first (blind writes and
//! read-triggered grounding lock overlapping slots before touching base),
//! and mutations that do not touch the partition's atoms cannot invalidate
//! it: other partitions' groundings write tuples that unify with none of
//! this partition's atoms (that is the §4 independence criterion), DDL
//! only adds empty tables, and bulk-insert fast paths only *add* tuples —
//! positive conjunctive bodies stay satisfied and planned deletes stay
//! executable under insertions.
//!
//! ```
//! use qdb_core::{QuantumDb, QuantumDbConfig, Response};
//!
//! let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
//! qdb.execute("CREATE TABLE Available (flight INT, seat TEXT)").unwrap();
//! qdb.execute("CREATE TABLE Bookings (name TEXT, flight INT, seat TEXT)").unwrap();
//! qdb.execute("INSERT INTO Available VALUES (1, '1A'), (2, '2A')").unwrap();
//! let shared = qdb.into_shared();
//!
//! // Clones share one engine; each thread books a *different* flight, so
//! // the two admissions live in independent partitions and their solver
//! // searches can run concurrently.
//! std::thread::scope(|s| {
//!     for flight in [1i64, 2] {
//!         let h = shared.clone();
//!         s.spawn(move || {
//!             let r = h
//!                 .execute(&format!(
//!                     "SELECT @s FROM Available({flight}, @s) CHOOSE 1 \
//!                      FOLLOWED BY (DELETE ({flight}, @s) FROM Available; \
//!                                   INSERT ('u{flight}', {flight}, @s) INTO Bookings)"
//!                 ))
//!                 .unwrap();
//!             assert!(matches!(r, Response::Committed(_)));
//!         });
//!     }
//! });
//! assert_eq!(shared.pending_count(), 2);
//! shared.ground_all().unwrap();
//! assert_eq!(shared.pending_count(), 0);
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

use qdb_logic::codec::encode_transaction;
use qdb_logic::{Atom, ResourceTransaction, Valuation, VarGen};
use qdb_solver::{CachedSolution, Solver, SolverStats, TxnSpec};
use qdb_storage::{Database, LogRecord, Schema, Tuple, Wal, WriteOp};

use crate::config::QuantumDbConfig;
use crate::engine::{eval_on, plan_admission, AdmitDecision, AdmitPath, QuantumDb, SubmitOutcome};
use crate::entangle::coordination_partners;
use crate::error::EngineError;
use crate::ground::{
    apply_plan_to_partition, expand_partners, plan_group_front, GroundPlan, GroundReason,
};
use crate::metrics::{AtomicMetrics, Event, Metrics};
use crate::partition::{Footprint, Partition};
use crate::sync::{Mutex, RwLock};
use crate::txn::{PendingTxn, TxnId};
use crate::Result;

/// The base (extensional) state: everything whose consistency is guarded
/// by the RwLock rather than by partition slots.
struct Base {
    db: Database,
}

/// One partition's lockable home.
#[derive(Default)]
struct Slot {
    state: Mutex<SlotState>,
}

/// Contents of a slot. `dead` means the partition's contents were drained
/// into a newer slot (or fully grounded away); holders of a stale `Arc`
/// must rescan the registry.
#[derive(Default)]
struct SlotState {
    part: Partition,
    dead: bool,
}

/// Registry entry: the overlap summary plus the slot it summarizes.
struct Entry {
    footprint: Footprint,
    slot: Arc<Slot>,
}

/// The partition registry. `next_pid` grows monotonically; slot ids are
/// never reused, which the lock-ordering proof relies on.
struct Registry {
    slots: BTreeMap<u64, Entry>,
    next_pid: u64,
}

impl Registry {
    /// Register a non-empty partition in a fresh slot under a fresh id.
    fn install(&mut self, part: Partition) {
        if part.is_empty() {
            return;
        }
        let pid = self.next_pid;
        self.next_pid += 1;
        self.slots.insert(
            pid,
            Entry {
                footprint: part.footprint(),
                slot: Arc::new(Slot {
                    state: Mutex::new(SlotState { part, dead: false }),
                }),
            },
        );
    }
}

struct Core {
    config: QuantumDbConfig,
    base: RwLock<Base>,
    /// Lock-free handle onto the base database's clone-family counter:
    /// metrics snapshots read `db_clones` through it without acquiring
    /// the base lock (observation must never block behind a writer).
    db_clones: qdb_storage::CloneCounter,
    vargen: Mutex<VarGen>,
    wal: Mutex<Wal>,
    reg: Mutex<Registry>,
    next_txn_id: AtomicU64,
    metrics: AtomicMetrics,
    solver_stats: Mutex<SolverStats>,
    /// Solver sections currently inside the shared base read lock, and
    /// the high-water mark — direct evidence of partition-parallel
    /// overlap (the coarse-lock ablation can never exceed 1).
    solves_in_flight: AtomicU64,
    solves_peak: AtomicU64,
    /// Statement counter sampling the auto-index vote sweep (see
    /// `promote_hot_indexes`).
    promote_ticks: AtomicU64,
    /// Single-big-lock ablation (see [`QuantumDbConfig::coarse_lock`]):
    /// when enabled, every statement serializes through this mutex,
    /// reproducing the pre-sharding engine for A/B benchmarks.
    coarse: Mutex<()>,
    /// Observability: latency histograms, the flight recorder and the
    /// slow-op log. Shared with the WAL and every per-operation solver;
    /// recording is lock-free, so it rides the hot path.
    obs: Arc<qdb_obs::Obs>,
}

/// A cloneable, thread-safe, **partition-sharded** handle to a quantum
/// database.
///
/// Statements lock only what they touch: a submit locks the partitions its
/// transaction overlaps (merging them under the ordered-acquisition scheme
/// described in the [module docs](self)), reads and PEEK/POSSIBLE take a
/// shared base read plus only the touched partitions, and `GROUND ALL`
/// claims every partition behind one registered host slot, plans the
/// collapse in parallel under a shared base read, and applies it under a
/// brief exclusive acquisition (`CHECKPOINT` is a brief exclusive
/// acquisition alone). Metrics are atomics — observation never blocks
/// statement execution.
///
/// ```
/// use qdb_core::{QuantumDb, QuantumDbConfig, Response};
///
/// let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
/// qdb.execute("CREATE TABLE R (a INT)").unwrap();
/// let shared = qdb.into_shared();
///
/// // Handles are cheap clones sharing one engine.
/// let clone = shared.clone();
/// clone.execute("INSERT INTO R VALUES (7)").unwrap();
/// let rows = shared.execute("SELECT * FROM R(@a)").unwrap();
/// assert_eq!(rows.rows().unwrap().len(), 1);
///
/// // Metrics snapshots are consistent even under concurrency.
/// let (m, pending) = shared.metrics_with_pending();
/// assert_eq!(m.committed - m.grounded_total(), pending);
/// ```
#[derive(Clone)]
pub struct SharedQuantumDb {
    core: Arc<Core>,
}

impl std::fmt::Debug for SharedQuantumDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedQuantumDb")
            .field("partitions", &self.partition_count())
            .field("pending", &self.pending_count())
            .finish_non_exhaustive()
    }
}

/// Guard alias for the coarse-lock ablation (held across a whole
/// statement when enabled, `None` otherwise).
type CoarseGuard<'a> = Option<std::sync::MutexGuard<'a, ()>>;

/// What a reservation hands back: the exclusive guard on the freshly
/// registered host slot, its partition id, and the claimed target slots
/// to drain (ascending pid order).
type Reserved<'a> = (
    std::sync::MutexGuard<'a, SlotState>,
    u64,
    Vec<(u64, Arc<Slot>)>,
);

impl SharedQuantumDb {
    /// Shard a single-threaded engine into a shared handle, preserving its
    /// database, pending partitions, WAL, metrics and id spaces.
    pub(crate) fn from_engine(engine: QuantumDb) -> SharedQuantumDb {
        let QuantumDb {
            db,
            partitions,
            next_partition_id,
            next_txn_id,
            vargen,
            solver,
            wal,
            config,
            metrics,
            obs,
        } = engine;
        let pending: u64 = partitions.values().map(|p| p.len() as u64).sum();
        let mut slots = BTreeMap::new();
        for (pid, part) in partitions {
            slots.insert(
                pid,
                Entry {
                    footprint: part.footprint(),
                    slot: Arc::new(Slot {
                        state: Mutex::new(SlotState { part, dead: false }),
                    }),
                },
            );
        }
        SharedQuantumDb {
            core: Arc::new(Core {
                db_clones: db.clone_counter(),
                base: RwLock::new(Base { db }),
                vargen: Mutex::new(vargen),
                wal: Mutex::new(wal),
                reg: Mutex::new(Registry {
                    slots,
                    next_pid: next_partition_id,
                }),
                next_txn_id: AtomicU64::new(next_txn_id),
                metrics: AtomicMetrics::from_metrics(&metrics, pending),
                solver_stats: Mutex::new(*solver.stats()),
                solves_in_flight: AtomicU64::new(0),
                solves_peak: AtomicU64::new(0),
                promote_ticks: AtomicU64::new(0),
                coarse: Mutex::new(()),
                obs,
                config,
            }),
        }
    }

    fn coarse(&self) -> CoarseGuard<'_> {
        if self.core.config.coarse_lock {
            Some(self.core.coarse.lock())
        } else {
            None
        }
    }

    /// A fresh per-operation solver (the solver is stateless apart from
    /// cumulative stats, which are absorbed at operation end).
    fn solver(&self) -> Solver {
        let mut s = Solver::new(self.core.config.solver_order);
        s.limits = self.core.config.search_limits;
        s.seed = self.core.config.seed;
        s.set_obs(Some(Arc::clone(&self.core.obs)));
        s
    }

    /// Take the base read lock, recording the wait as
    /// [`qdb_obs::Phase::BaseLockWait`].
    fn base_read(&self) -> std::sync::RwLockReadGuard<'_, Base> {
        let t0 = std::time::Instant::now();
        let g = self.core.base.read();
        self.core
            .obs
            .phase(qdb_obs::Phase::BaseLockWait, t0.elapsed());
        g
    }

    /// Take the base write lock, recording the wait as
    /// [`qdb_obs::Phase::BaseLockWait`].
    fn base_write(&self) -> std::sync::RwLockWriteGuard<'_, Base> {
        let t0 = std::time::Instant::now();
        let g = self.core.base.write();
        self.core
            .obs
            .phase(qdb_obs::Phase::BaseLockWait, t0.elapsed());
        g
    }

    /// Lock a partition slot, recording the wait as
    /// [`qdb_obs::Phase::PartitionLockWait`].
    fn lock_slot<'a>(&self, slot: &'a Slot) -> std::sync::MutexGuard<'a, SlotState> {
        let t0 = std::time::Instant::now();
        let g = slot.state.lock();
        self.core
            .obs
            .phase(qdb_obs::Phase::PartitionLockWait, t0.elapsed());
        g
    }

    fn absorb(&self, solver: &Solver) {
        self.absorb_stats(solver.stats());
    }

    /// Fold one operation's solver-stat deltas into both the cumulative
    /// [`SolverStats`] block and the mirrored `solver_*` metrics counters
    /// (the seqlock block `SHOW METRICS` snapshots).
    fn absorb_stats(&self, stats: &SolverStats) {
        self.core.solver_stats.lock().absorb(stats);
        self.core.metrics.absorb_solver(stats);
    }

    /// Mark a solver section as in flight for its guard's lifetime.
    fn enter_solve(&self) -> SolveGauge<'_> {
        let now = self.core.solves_in_flight.fetch_add(1, SeqCst) + 1;
        self.core.solves_peak.fetch_max(now, SeqCst);
        SolveGauge { core: &self.core }
    }

    /// High-water mark of simultaneously running solver sections. A value
    /// above 1 is direct evidence that admissions/groundings of disjoint
    /// partitions overlapped in time; under
    /// [`QuantumDbConfig::coarse_lock`] it can never exceed 1.
    pub fn solve_concurrency_peak(&self) -> u64 {
        self.core.solves_peak.load(SeqCst)
    }

    pub(crate) fn count_parse(&self) {
        self.core.metrics.count_parse();
    }

    fn push_event(&self, event: Event) {
        if self.core.config.record_events {
            self.core.metrics.push_event(event);
        }
    }

    // -- Resource transactions -------------------------------------------

    /// Submit a resource transaction (§3.2.1). Locks only the partitions
    /// the transaction overlaps; disjoint submits run their admission
    /// solves concurrently under the shared base read lock.
    pub fn submit(&self, txn: &ResourceTransaction) -> Result<SubmitOutcome> {
        let _c = self.coarse();
        let out = self.do_submit(txn)?;
        self.promote_hot_indexes();
        Ok(out)
    }

    /// Promote access-pattern-hot columns into secondary indexes under a
    /// brief exclusive base acquisition, logging each promotion so
    /// recovery rebuilds them. Sampled: the vote sweep (a base read +
    /// per-column atomic loads) runs on every 32nd statement, so the hot
    /// path the sharding PR de-contended does not pay an extra base-lock
    /// acquisition per statement — a promotion lands at most 31
    /// statements after the threshold, which is noise at threshold scale.
    /// Acquired with no slots held, so the slots-before-base lock order
    /// is respected.
    ///
    /// Best-effort: it runs after the enclosing operation committed, so a
    /// promotion failure is never reported as that operation's failure
    /// (see `QuantumDb::maybe_promote_indexes` for why swallowing is
    /// safe).
    fn promote_hot_indexes(&self) {
        let threshold = self.core.config.auto_index_threshold;
        if threshold == 0 {
            return;
        }
        if !self
            .core
            .promote_ticks
            .fetch_add(1, SeqCst)
            .is_multiple_of(32)
        {
            return;
        }
        let hot = {
            let base = self.base_read();
            crate::engine::collect_hot_columns(&base.db, threshold)
        };
        if hot.is_empty() {
            return;
        }
        let mut base = self.base_write();
        let mut wal = self.core.wal.lock();
        let mut created = 0u64;
        for (relation, column) in hot {
            let Ok(table) = base.db.table_mut(&relation) else {
                continue;
            };
            if table.indexed_columns().contains(&column) {
                continue; // another thread promoted it meanwhile
            }
            if table.create_index(column).is_err() {
                continue; // unreachable for tracker-produced columns
            }
            let _ = wal.append(&LogRecord::CreateIndex {
                relation,
                column: column as u32,
            });
            created += 1;
        }
        drop(wal);
        drop(base);
        if created > 0 {
            self.core
                .metrics
                .begin()
                .add(|c| &c.indexes_auto_created, created);
        }
    }

    fn do_submit(&self, txn: &ResourceTransaction) -> Result<SubmitOutcome> {
        self.core.metrics.begin().add(|c| &c.submitted, 1);
        txn.validate()?;
        {
            let base = self.base_read();
            validate_schema_on(&base.db, txn)?;
        }
        let freshened = {
            let mut vg = self.core.vargen.lock();
            txn.freshen(&mut vg)
        };
        let mut solver = self.solver();
        let out = self.submit_reserved(&freshened, &mut solver);
        self.absorb(&solver);
        out
    }

    fn submit_reserved(
        &self,
        txn: &ResourceTransaction,
        solver: &mut Solver,
    ) -> Result<SubmitOutcome> {
        {
            // The host slot is locked *inside* the registry critical
            // section of the reservation, so no concurrent reservation can
            // claim and drain it before this submit installs — the
            // reservation's targets stay exclusively ours until then.
            let host_slot = Arc::new(Slot::default());
            let (mut st, pid, targets) = self.reserve_locked(&host_slot, txn);
            let merged_from = targets.len();
            let mut host = Partition::new();
            if merged_from == 1 {
                // Preserve the partition wholesale (keeps its alternative
                // cached solutions, which a merge would invalidate).
                host = self.drain(&targets[0].1);
            } else {
                for (_, slot) in &targets {
                    host.merge(self.drain(slot));
                }
            }

            // Admission planning under a *shared* base read: this is the
            // expensive solver search, and disjoint partitions run it in
            // parallel.
            let cached_overlay = if merged_from == 1 {
                host.overlay_cache.take()
            } else {
                None // merge() already invalidated it
            };
            let plan = {
                let base = self.base_read();
                let _gauge = self.enter_solve();
                let merged: Vec<(&PendingTxn, &Valuation)> =
                    host.txns.iter().zip(host.cache.valuations.iter()).collect();
                let extras: &[CachedSolution] = if merged_from == 1 { &host.extras } else { &[] };
                let t_plan = std::time::Instant::now();
                let decision = plan_admission(
                    solver,
                    &base.db,
                    &self.core.config,
                    &merged,
                    extras,
                    cached_overlay,
                    txn,
                )?;
                self.core.obs.phase(qdb_obs::Phase::Plan, t_plan.elapsed());
                decision
            };
            let plan = match plan {
                AdmitDecision::Admitted(plan) => plan,
                AdmitDecision::Refused(overlay) => {
                    // Refused: the merged partition stays merged under its
                    // new id (conservative but safe — merging independent
                    // partitions never violates the invariant; the
                    // single-threaded engine merges only on success, but
                    // here the drain already happened, so count what
                    // occurred). The host's valuations are unchanged, so
                    // the rolled-back admission overlay is still its valid
                    // memo.
                    host.overlay_cache = overlay;
                    st.part = host;
                    self.publish(pid, &mut st);
                    {
                        let t = self.core.metrics.begin();
                        t.add(|c| &c.aborted, 1);
                        if merged_from > 1 {
                            t.add(|c| &c.partition_merges, 1);
                        }
                    }
                    self.push_event(Event::Aborted);
                    if merged_from > 1 {
                        let before = self.partition_count() + merged_from - 1;
                        self.push_event(Event::PartitionsMerged { before });
                    }
                    return Ok(SubmitOutcome::Aborted);
                }
            };

            // Durability: log after the satisfiability check, before
            // acknowledging commit (§4). Id allocation inside the WAL
            // critical section keeps log order == id order.
            let id = {
                let mut wal = self.core.wal.lock();
                let id = self.core.next_txn_id.fetch_add(1, SeqCst);
                wal.append(&LogRecord::PendingAdd {
                    id,
                    payload: encode_transaction(txn),
                })?;
                id
            };
            host.txns.push(PendingTxn::new(id, txn.clone()));
            host.cache = CachedSolution {
                valuations: plan.valuations,
            };
            host.extras = plan.extras;
            host.overlay_cache = plan.overlay;
            debug_assert_eq!(host.txns.len(), host.cache.len());
            st.part = host;

            {
                let t = self.core.metrics.begin();
                t.record_commit();
                match plan.path {
                    AdmitPath::Extension => t.add(|c| &c.cache_extensions, 1),
                    AdmitPath::ExtraHit => t.add(|c| &c.cache_extra_hits, 1),
                    AdmitPath::FullResolve => t.add(|c| &c.cache_full_resolves, 1),
                }
                if merged_from > 1 {
                    t.add(|c| &c.partition_merges, 1);
                }
            }
            self.push_event(Event::Committed(id));
            if merged_from > 1 {
                let before = self.partition_count() + merged_from - 1;
                self.push_event(Event::PartitionsMerged { before });
            }

            // §5.1: entangled resource transactions are grounded as soon
            // as both coordination partners are in the system.
            if self.core.config.ground_on_partner_arrival {
                let mut partners = {
                    let new_txn = &st.part.txns.last().expect("just installed").txn;
                    let others: Vec<PendingTxn> = st
                        .part
                        .txns
                        .iter()
                        .filter(|p| p.id != id)
                        .cloned()
                        .collect();
                    coordination_partners(new_txn, &others)
                };
                if !partners.is_empty() {
                    partners.push(id);
                    self.ground_in_slot(&mut st, &partners, GroundReason::Partner, solver)?;
                }
            }
            // §4: bound the composed body size.
            while st.part.len() > self.core.config.k {
                let oldest = st.part.txns[0].id;
                self.ground_in_slot(&mut st, &[oldest], GroundReason::KBound, solver)?;
            }
            // Table 1 counts a transaction as pending until its partner
            // arrives, so the high-water mark is sampled after partner
            // grounding and k-enforcement settle.
            self.core.metrics.begin().sample_max_pending();
            self.publish(pid, &mut st);
            Ok(SubmitOutcome::Committed { id })
        }
    }

    /// Atomically claim every partition `txn` may depend on and register
    /// the merged host (see module docs, "Reservations").
    fn reserve_locked<'a>(
        &self,
        host_slot: &'a Arc<Slot>,
        txn: &ResourceTransaction,
    ) -> Reserved<'a> {
        let partitioning = self.core.config.partitioning;
        self.claim_locked(host_slot, Footprint::of_txn(txn), |fp| {
            !partitioning || fp.overlaps_txn(txn)
        })
    }

    /// The one registry-claim protocol (submit reservations and the
    /// `GROUND ALL` whole-registry claim): atomically remove every entry
    /// whose footprint matches `select` and register `host_slot` under a
    /// fresh pid whose footprint is `seed` plus the union of the claimed
    /// footprints. The host slot is locked before the registry is
    /// released — at that point no other thread holds (or can discover) a
    /// reference to it, so the lock cannot block and the returned guard
    /// is exclusive from birth: concurrent reservations that claim the
    /// host as *their* target wait on this guard and observe whatever the
    /// claimant installs.
    fn claim_locked<'a>(
        &self,
        host_slot: &'a Arc<Slot>,
        seed: Footprint,
        select: impl Fn(&Footprint) -> bool,
    ) -> Reserved<'a> {
        let mut reg = self.core.reg.lock();
        let target_pids: Vec<u64> = reg
            .slots
            .iter()
            .filter(|(_, e)| select(&e.footprint))
            .map(|(&k, _)| k)
            .collect();
        let mut footprint = seed;
        let mut targets = Vec::with_capacity(target_pids.len());
        for pid in &target_pids {
            let e = reg.slots.remove(pid).expect("scanned above");
            footprint.absorb(&e.footprint);
            targets.push((*pid, e.slot));
        }
        let pid = reg.next_pid;
        reg.next_pid += 1;
        reg.slots.insert(
            pid,
            Entry {
                footprint,
                slot: Arc::clone(host_slot),
            },
        );
        (host_slot.state.lock(), pid, targets)
    }

    /// Take a reserved slot's contents (waits for any in-flight operation
    /// on it to finish) and mark it dead for stale-`Arc` holders.
    fn drain(&self, slot: &Arc<Slot>) -> Partition {
        let mut st = self.lock_slot(slot);
        st.dead = true;
        std::mem::take(&mut st.part)
    }

    /// Re-publish a partition's footprint after its contents changed;
    /// removes (and kills) the registration when it grounded empty. Must
    /// be called while holding the slot's lock.
    fn publish(&self, pid: u64, st: &mut SlotState) {
        let mut reg = self.core.reg.lock();
        if st.part.is_empty() {
            if reg.slots.remove(&pid).is_some() {
                st.dead = true;
            }
        } else if let Some(e) = reg.slots.get_mut(&pid) {
            e.footprint = st.part.footprint();
        }
        // Entry absent: a reservation already claimed this slot and will
        // drain whatever state we leave behind — nothing to publish.
    }

    // -- Grounding --------------------------------------------------------

    /// Ground `ids` within the held partition, honoring the configured
    /// serializability: plan under a base read (parallel with other
    /// partitions' solves), apply under the base write lock.
    fn ground_in_slot(
        &self,
        st: &mut SlotState,
        ids: &[TxnId],
        reason: GroundReason,
        solver: &mut Solver,
    ) -> Result<()> {
        if st.part.is_empty() {
            return Ok(());
        }
        let ids = expand_partners(&st.part, ids);
        match self.core.config.serializability {
            crate::Serializability::Semantic => {
                if self.try_ground_group(st, &ids, reason, solver)? {
                    return Ok(());
                }
                self.ground_strict_through(st, &ids, reason, solver)
            }
            crate::Serializability::Strict => self.ground_strict_through(st, &ids, reason, solver),
        }
    }

    fn ground_strict_through(
        &self,
        st: &mut SlotState,
        ids: &[TxnId],
        reason: GroundReason,
        solver: &mut Solver,
    ) -> Result<()> {
        while let Some(head) = crate::ground::strict_head(&st.part, ids) {
            if !self.try_ground_group(st, &[head], reason, solver)? {
                return Err(crate::ground::strict_order_violation());
            }
        }
        Ok(())
    }

    fn try_ground_group(
        &self,
        st: &mut SlotState,
        ids: &[TxnId],
        reason: GroundReason,
        solver: &mut Solver,
    ) -> Result<bool> {
        let plan = {
            let base = self.base_read();
            let _gauge = self.enter_solve();
            plan_group_front(solver, &base.db, &[], &self.core.config, &st.part, ids)?
        };
        let Some(plan) = plan else {
            return Ok(false);
        };
        self.commit_plan(st, &plan, reason)?;
        Ok(true)
    }

    /// Apply a ground plan: base writes + WAL frames, then metrics, then
    /// the partition-side removal. Sound without re-validation per the
    /// module docs ("Why plan-then-apply is sound").
    fn commit_plan(
        &self,
        st: &mut SlotState,
        plan: &GroundPlan,
        reason: GroundReason,
    ) -> Result<()> {
        {
            let mut base = self.base_write();
            let mut wal = self.core.wal.lock();
            let t_apply = std::time::Instant::now();
            for g in &plan.grounded {
                for op in &g.ops {
                    base.db.apply(op)?;
                }
                // One atomic frame per transaction: concrete writes +
                // removal from the pending table cannot be torn by a crash.
                wal.append(&LogRecord::Ground {
                    id: g.id,
                    ops: g.ops.clone(),
                })?;
            }
            self.core
                .obs
                .phase(qdb_obs::Phase::Apply, t_apply.elapsed());
        }
        {
            let t = self.core.metrics.begin();
            for g in &plan.grounded {
                t.record_ground(reason);
                t.add(|c| &c.optionals_satisfied, g.promoted as u64);
                t.add(|c| &c.optionals_total, g.total_optionals as u64);
            }
        }
        if self.core.config.record_events {
            for g in &plan.grounded {
                self.core.metrics.push_event(Event::Grounded {
                    id: g.id,
                    reason,
                    optionals_satisfied: g.promoted,
                    optionals_total: g.total_optionals,
                });
            }
        }
        apply_plan_to_partition(&mut st.part, plan);
        Ok(())
    }

    /// Explicitly ground one pending transaction. Returns `false` when the
    /// id is not pending.
    pub fn ground(&self, id: TxnId) -> Result<bool> {
        Ok(self.ground_counted(id)?.is_some())
    }

    /// [`SharedQuantumDb::ground`] returning how many transactions the
    /// cascade collapsed (partners, strict-mode prefixes), counted under
    /// the hosting partition's lock — exact even under concurrency.
    /// `None` when the id is not pending.
    pub(crate) fn ground_counted(&self, id: TxnId) -> Result<Option<usize>> {
        let _c = self.coarse();
        let mut solver = self.solver();
        let out = self.do_ground(id, &mut solver);
        self.absorb(&solver);
        out
    }

    fn do_ground(&self, id: TxnId, solver: &mut Solver) -> Result<Option<usize>> {
        'rescan: loop {
            let snapshot: Vec<(u64, Arc<Slot>)> = {
                let reg = self.core.reg.lock();
                reg.slots
                    .iter()
                    .map(|(&pid, e)| (pid, Arc::clone(&e.slot)))
                    .collect()
            };
            for (pid, slot) in snapshot {
                let mut st = self.lock_slot(&slot);
                if st.dead {
                    // Contents moved — possibly into a slot we already
                    // passed over. Start the scan again.
                    continue 'rescan;
                }
                if st.part.position(id).is_some() {
                    let before = st.part.len();
                    self.ground_in_slot(&mut st, &[id], GroundReason::Explicit, solver)?;
                    let collapsed = before - st.part.len();
                    self.publish(pid, &mut st);
                    return Ok(Some(collapsed));
                }
            }
            return Ok(None);
        }
    }

    /// Ground everything — collapse the quantum state entirely.
    ///
    /// The whole registry is claimed like a submit reservation claims its
    /// targets (see module docs): one fresh *host* entry, footprint the
    /// union of every claimed partition, its slot locked before the
    /// registry is released. Overlapping statements find the host and wait
    /// on its slot until the collapse — or its error recovery — completes;
    /// disjoint statements keep running (§4 independence: the collapse
    /// cannot invalidate them). The full collapse of each partition is
    /// then *planned in parallel* across [`std::thread::scope`] workers
    /// under a shared base read, and the planned updates are applied
    /// serially under one brief base write acquisition.
    pub fn ground_all(&self) -> Result<()> {
        self.ground_all_counted().map(|_| ())
    }

    /// [`SharedQuantumDb::ground_all`] returning how many transactions it
    /// collapsed — the exact count from the grounding's own plans, not a
    /// racy before/after pending read (`GROUND ALL` responses use this).
    pub(crate) fn ground_all_counted(&self) -> Result<usize> {
        let _c = self.coarse();
        // Claim every partition under one freshly registered host entry
        // whose footprint is the union of the claimed footprints, and hold
        // the host slot's lock for the whole collapse. Without the claim,
        // a submit that reserves between the registry take and the base
        // acquisition would see no overlapping partitions, admission-solve
        // against the pre-collapse base, and commit a transaction the
        // collapse's planned deletes can silently invalidate — breaking
        // the never-rolled-back guarantee.
        let host_slot = Arc::new(Slot::default());
        let (mut host, host_pid, taken) =
            self.claim_locked(&host_slot, Footprint::default(), |_| true);
        let mut parts: Vec<Partition> = taken
            .iter()
            .map(|(_, slot)| self.drain(slot))
            .filter(|p| !p.is_empty())
            .collect();
        if parts.is_empty() {
            self.publish(host_pid, &mut host);
            return Ok(0);
        }

        let base = self.base_read();
        let config = &self.core.config;
        // Intra-statement plan parallelism; forced serial under the
        // coarse-lock ablation so it faithfully reproduces the
        // pre-sharding engine (and its gauge stays ≤ 1).
        let workers = if config.coarse_lock {
            1
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(parts.len())
        };
        // Plan phase (parallel, read-only, under the *shared* base read —
        // statements disjoint from every claimed partition keep running):
        // one scratch clone per partition so a failed run leaves the
        // originals intact.
        type Planned = Result<(Vec<crate::ground::GroundedTxn>, SolverStats)>;
        let results: Vec<Planned> = {
            let db = &base.db;
            let next = AtomicU64::new(0);
            let out: Vec<Mutex<Option<Planned>>> = parts.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        let mut solver = Solver::new(config.solver_order);
                        solver.limits = config.search_limits;
                        solver.seed = config.seed;
                        solver.set_obs(Some(Arc::clone(&self.core.obs)));
                        loop {
                            let i = next.fetch_add(1, SeqCst) as usize;
                            let Some(part) = parts.get(i) else { break };
                            let mut scratch = part.clone();
                            let planned = crate::ground::plan_ground_all_partition(
                                &mut solver,
                                db,
                                config,
                                &mut scratch,
                            );
                            *out[i].lock() = Some(planned.map(|g| (g, *solver.stats())));
                            solver.reset_stats();
                        }
                    });
                }
            });
            out.into_iter()
                .map(|m| m.lock().take().expect("every index was planned"))
                .collect()
        };
        // Collect; on any planning failure, re-register the partitions
        // untouched so no committed transaction is lost.
        let mut plans = Vec::with_capacity(results.len());
        let mut first_err = None;
        for r in results {
            match r {
                Ok((grounded, stats)) => {
                    self.absorb_stats(&stats);
                    plans.push(grounded);
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_err {
            drop(base);
            self.reinstall(host_pid, &mut host, parts);
            return Err(e);
        }
        drop(base);

        let t_apply = std::time::Instant::now();
        // Apply phase (serial, under one brief base write acquisition).
        // Releasing the read first is sound: any base mutation that could
        // invalidate the plans must lock an overlapping slot, and every
        // claimed footprint now routes overlap scans to the held host slot
        // (see module docs, "Why plan-then-apply is sound"). Each
        // transaction's metrics are recorded as soon as its frame is
        // durable, so an apply error part-way leaves the accounting exact
        // for everything that did land; untouched partitions go back into
        // the registry pending.
        let mut base = self.base_write();
        let mut collapsed = 0usize;
        let mut apply_err: Option<EngineError> = None;
        let mut failed_at: usize = plans.len();
        let mut applied_in_failed: Vec<TxnId> = Vec::new();
        'apply: for (idx, grounded) in plans.iter().enumerate() {
            applied_in_failed.clear();
            for g in grounded {
                let applied = (|| -> Result<()> {
                    for op in &g.ops {
                        base.db.apply(op)?;
                    }
                    self.core.wal.lock().append(&LogRecord::Ground {
                        id: g.id,
                        ops: g.ops.clone(),
                    })?;
                    Ok(())
                })();
                if let Err(e) = applied {
                    apply_err = Some(e);
                    failed_at = idx;
                    break 'apply;
                }
                applied_in_failed.push(g.id);
                collapsed += 1;
                {
                    let t = self.core.metrics.begin();
                    t.record_ground(GroundReason::Explicit);
                    t.add(|c| &c.optionals_satisfied, g.promoted as u64);
                    t.add(|c| &c.optionals_total, g.total_optionals as u64);
                }
                if self.core.config.record_events {
                    self.core.metrics.push_event(Event::Grounded {
                        id: g.id,
                        reason: GroundReason::Explicit,
                        optionals_satisfied: g.promoted,
                        optionals_total: g.total_optionals,
                    });
                }
            }
        }
        if let Some(e) = apply_err {
            // Untouched partitions go back pending verbatim. The failed
            // partition's not-yet-applied suffix is restored with a
            // freshly solved cache (its planned cache assumed the whole
            // collapse would land).
            let mut rest = parts.split_off(failed_at + 1);
            let mut failed = parts.pop().expect("failed partition present");
            failed.txns.retain(|t| !applied_in_failed.contains(&t.id));
            failed.invalidate_solution_caches();
            if !failed.txns.is_empty() {
                let mut solver = self.solver();
                let refs = failed.txn_refs();
                // On resolve failure the suffix is unrecoverable (the
                // failing write tore the base mid-transaction): it is
                // dropped; the engine is compromised anyway and says so
                // through `e`. The pending gauge may over-count from here.
                if let Ok(Some(cache)) = CachedSolution::resolve(&mut solver, &base.db, &refs) {
                    failed.cache = cache;
                    rest.push(failed);
                }
                self.absorb(&solver);
            }
            drop(base);
            self.reinstall(host_pid, &mut host, rest);
            return Err(e);
        }
        drop(base);
        self.core
            .obs
            .phase(qdb_obs::Phase::Apply, t_apply.elapsed());
        self.publish(host_pid, &mut host);
        // A full collapse is a natural group-commit boundary: drain the
        // accumulated Ground frames in one buffered write + flush.
        self.core.wal.lock().sync()?;
        Ok(collapsed)
    }

    /// Error recovery for `ground_all`: put the surviving partitions back
    /// while the collapse's host slot guard is still held, so the claimed
    /// pending state is never observable as absent. If the host entry is
    /// still registered, the survivors go back as separate fresh entries —
    /// they are mutually disjoint, and everything admitted while the
    /// host's union footprint was registered is disjoint from all of them
    /// — and the host is retired. If a concurrent reservation already
    /// claimed the host, the survivors are instead merged into the host
    /// slot for the claimant to drain: the claimant absorbed the union
    /// footprint, so the registry's superset invariant keeps holding.
    fn reinstall(&self, host_pid: u64, host: &mut SlotState, parts: Vec<Partition>) {
        let mut reg = self.core.reg.lock();
        if reg.slots.remove(&host_pid).is_some() {
            host.dead = true;
            for part in parts {
                reg.install(part);
            }
        } else {
            for part in parts {
                host.part.merge(part);
            }
        }
    }

    // -- Reads ------------------------------------------------------------

    /// Read with full collapse semantics (§3.2.2, option 3): pending
    /// transactions whose updates unify with the query are grounded first
    /// (locking only their partitions), then the query is answered from
    /// the extensional state under a shared base read.
    pub fn read(&self, atoms: &[Atom], limit: Option<usize>) -> Result<Vec<Valuation>> {
        let _c = self.coarse();
        self.do_read(atoms, limit)
    }

    fn do_read(&self, atoms: &[Atom], limit: Option<usize>) -> Result<Vec<Valuation>> {
        self.core.metrics.begin().add(|c| &c.reads, 1);
        let mut solver = self.solver();
        let out = self.read_collapsing(atoms, limit, &mut solver);
        self.absorb(&solver);
        out
    }

    fn read_collapsing(
        &self,
        atoms: &[Atom],
        limit: Option<usize>,
        solver: &mut Solver,
    ) -> Result<Vec<Valuation>> {
        // Conservative unification-based read check (grounding may expose
        // further overlaps, so loop to a fixed point).
        loop {
            let cand: Option<(u64, Arc<Slot>)> = {
                let reg = self.core.reg.lock();
                reg.slots
                    .iter()
                    .find(|(_, e)| e.footprint.touched_by_query(atoms))
                    .map(|(&pid, e)| (pid, Arc::clone(&e.slot)))
            };
            let Some((pid, slot)) = cand else { break };
            let mut st = self.lock_slot(&slot);
            if st.dead {
                continue;
            }
            let target = st
                .part
                .txns
                .iter()
                .find(|pt| crate::read::read_affects(&pt.txn, atoms))
                .map(|pt| (pt.id, pt.txn.clone()));
            let Some((id, target_txn)) = target else {
                // The footprint over-approximated (stale after earlier
                // groundings): shrink it so the scan progresses.
                self.publish(pid, &mut st);
                continue;
            };
            // Pull in coordination partners so a read does not needlessly
            // split a pair that could still coordinate.
            let others: Vec<PendingTxn> = st
                .part
                .txns
                .iter()
                .filter(|p| p.id != id)
                .cloned()
                .collect();
            let mut ids = coordination_partners(&target_txn, &others);
            ids.push(id);
            self.ground_in_slot(&mut st, &ids, GroundReason::Read, solver)?;
            self.publish(pid, &mut st);
        }
        let base = self.base_read();
        eval_on(&base.db, atoms, limit)
    }

    /// Peek semantics (§3.2.2, option 2): answer against *one* possible
    /// world — base plus the cached solutions of the partitions the query
    /// touches — without fixing anything. Partitions whose updates cannot
    /// unify with the query are provably irrelevant to the answer and are
    /// neither locked nor applied.
    ///
    /// The world is composed as a [`qdb_storage::DeltaView`] over the
    /// base (O(pending), zero database clones), so the shared base read
    /// lock is held only for building the delta and evaluating — never
    /// for materializing state.
    pub fn read_peek(&self, atoms: &[Atom], limit: Option<usize>) -> Result<Vec<Valuation>> {
        let _c = self.coarse();
        self.core.metrics.begin().add(|c| &c.reads_peek, 1);
        self.with_touched_partitions(atoms, |db, parts| {
            let mut view = qdb_storage::DeltaView::new(db);
            for p in &parts {
                let refs = p.txn_refs();
                for op in p.cache.pending_ops(&refs)? {
                    view.apply(&op).map_err(EngineError::Storage)?;
                }
            }
            eval_on(&view, atoms, limit)
        })
    }

    /// All-possible-values semantics (§3.2.2, option 1): enumerate
    /// possible worlds (bounded, as deltas over the base) over the
    /// touched partitions and return the distinct answer sets across
    /// them. Worlds are forked and evaluated as delta views — the base
    /// read lock never covers a state materialization.
    pub fn read_possible(&self, atoms: &[Atom], world_bound: usize) -> Result<Vec<Vec<Valuation>>> {
        let _c = self.coarse();
        self.core.metrics.begin().add(|c| &c.reads_possible, 1);
        let (out, enumerated, dedup_hits) = self.with_touched_partitions(atoms, |db, parts| {
            let mut pending: Vec<&PendingTxn> = parts.iter().flat_map(|p| p.txns.iter()).collect();
            pending.sort_by_key(|p| p.id);
            let txns: Vec<&ResourceTransaction> = pending.iter().map(|p| &p.txn).collect();
            let t_enum = std::time::Instant::now();
            let worlds = crate::worlds::enumerate_worlds_seeded(
                db,
                &txns,
                world_bound,
                self.core.config.seed,
            )?;
            self.core
                .obs
                .phase(qdb_obs::Phase::WorldEnum, t_enum.elapsed());
            let mut distinct: BTreeSet<Vec<Valuation>> = BTreeSet::new();
            for w in &worlds.worlds {
                distinct.insert(eval_on(&w.view(db)?, atoms, None)?);
            }
            Ok((
                distinct.into_iter().collect(),
                worlds.enumerated,
                worlds.dedup_hits,
            ))
        })?;
        {
            let t = self.core.metrics.begin();
            t.add(|c| &c.worlds_enumerated, enumerated);
            t.add(|c| &c.world_dedup_hits, dedup_hits);
        }
        Ok(out)
    }

    /// Lock every partition whose pending updates could affect `atoms`
    /// (ascending id order), take a base read, and run `f` on a consistent
    /// snapshot.
    fn with_touched_partitions<R>(
        &self,
        atoms: &[Atom],
        f: impl FnOnce(&Database, Vec<Partition>) -> Result<R>,
    ) -> Result<R> {
        'retry: loop {
            let cands: Vec<(u64, Arc<Slot>)> = {
                let reg = self.core.reg.lock();
                reg.slots
                    .iter()
                    .filter(|(_, e)| e.footprint.touched_by_query(atoms))
                    .map(|(&pid, e)| (pid, Arc::clone(&e.slot)))
                    .collect()
            };
            let mut guards = Vec::with_capacity(cands.len());
            for (_, slot) in &cands {
                let st = self.lock_slot(slot);
                if st.dead {
                    continue 'retry; // drained mid-scan; rescan
                }
                guards.push(st);
            }
            let parts: Vec<Partition> = guards.iter().map(|g| g.part.clone()).collect();
            let base = self.base_read();
            drop(guards);
            return f(&base.db, parts);
        }
    }

    // -- Writes -----------------------------------------------------------

    /// A blind non-resource write (§3.2.2 "Writes"). Locks the partitions
    /// the write could interact with *before* touching the base, then
    /// re-validates their caches against the new state; returns `Ok(false)`
    /// when the write would leave some pending transaction without a
    /// consistent grounding.
    pub fn write(&self, op: WriteOp) -> Result<bool> {
        let _c = self.coarse();
        let mut solver = self.solver();
        let out = self.do_write(op, &mut solver);
        self.absorb(&solver);
        let out = out?;
        self.promote_hot_indexes();
        Ok(out)
    }

    fn do_write(&self, op: WriteOp, solver: &mut Solver) -> Result<bool> {
        let as_atom = Atom::new(
            op.relation(),
            op.tuple()
                .iter()
                .map(|v| qdb_logic::Term::Const(v.clone()))
                .collect(),
        );
        'retry: loop {
            let cands: Vec<(u64, Arc<Slot>)> = {
                let reg = self.core.reg.lock();
                reg.slots
                    .iter()
                    .filter(|(_, e)| e.footprint.touched_by_write(&as_atom))
                    .map(|(&pid, e)| (pid, Arc::clone(&e.slot)))
                    .collect()
            };
            let mut guards = Vec::with_capacity(cands.len());
            for (_, slot) in &cands {
                let st = self.lock_slot(slot);
                if st.dead {
                    continue 'retry;
                }
                guards.push(st);
            }
            // Exact affectedness on actual contents (footprints are
            // conservative).
            let affected: Vec<usize> = guards
                .iter()
                .enumerate()
                .filter(|(_, st)| {
                    st.part.txns.iter().any(|pt| {
                        pt.txn
                            .body
                            .iter()
                            .map(|b| &b.atom)
                            .chain(pt.txn.updates.iter().map(|u| &u.atom))
                            .any(|a| a.may_overlap(&as_atom))
                    })
                })
                .map(|(i, _)| i)
                .collect();

            if affected.is_empty() {
                // No pending state to protect: apply under a brief
                // exclusive base acquisition.
                let mut base = self.base_write();
                let changed = base.db.apply(&op)?;
                if changed {
                    self.core.wal.lock().append(&LogRecord::Write(op))?;
                    self.core.metrics.begin().add(|c| &c.writes_applied, 1);
                }
                return Ok(true);
            }

            // Re-validate every affected partition under a *shared* base
            // read, with the op as a virtual overlay (solver `pre_ops`) —
            // the potentially long verify/resolve search blocks neither
            // readers nor other partitions' admissions. Sound because the
            // held slots exclude every statement that could mutate this
            // op's tuple (it overlaps the held footprints by construction)
            // or the affected partitions, so the planned caches stay valid
            // until the brief exclusive apply below (see module docs, "Why
            // plan-then-apply is sound").
            let mut new_caches: Vec<(usize, Option<CachedSolution>)> = Vec::new();
            {
                let base = self.base_read();
                // A no-op against the current base (insert of a present
                // row, delete of an absent one) changes nothing and cannot
                // invalidate any pending state.
                let present = base.db.contains(op.relation(), op.tuple());
                let noop = match op {
                    WriteOp::Insert { .. } => present,
                    WriteOp::Delete { .. } => !present,
                };
                if noop {
                    return Ok(true);
                }
                let _gauge = self.enter_solve();
                let overlay = std::slice::from_ref(&op);
                let mut ok = true;
                for &i in &affected {
                    let p = &guards[i].part;
                    let specs: Vec<TxnSpec> = p
                        .txns
                        .iter()
                        .map(|t| TxnSpec::required_only(&t.txn))
                        .collect();
                    if solver.verify(&base.db, overlay, &specs, &p.cache.valuations)? {
                        new_caches.push((i, None)); // cache still good
                        continue;
                    }
                    match solver.solve(&base.db, overlay, &specs)? {
                        Some(sol) => new_caches.push((
                            i,
                            Some(CachedSolution {
                                valuations: sol.valuations,
                            }),
                        )),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    // Reject without ever having touched the base.
                    self.core.metrics.begin().add(|c| &c.writes_rejected, 1);
                    self.push_event(Event::WriteRejected);
                    return Ok(false);
                }
            }

            // Apply + log under a brief exclusive acquisition.
            let mut base = self.base_write();
            let changed = base.db.apply(&op)?;
            for (i, cache) in new_caches {
                // The base changed under this partition: alternatives are
                // no longer known-good.
                guards[i].extras_invalidate(cache);
            }
            if changed {
                self.core.wal.lock().append(&LogRecord::Write(op))?;
                self.core.metrics.begin().add(|c| &c.writes_applied, 1);
            }
            return Ok(true);
        }
    }

    // -- DDL & loading -----------------------------------------------------

    /// Create a table (logged).
    pub fn create_table(&self, schema: Schema) -> Result<()> {
        let _c = self.coarse();
        let mut base = self.base_write();
        base.db.create_table(schema.clone())?;
        self.core
            .wal
            .lock()
            .append(&LogRecord::CreateTable(schema))?;
        Ok(())
    }

    /// Create a secondary index (logged).
    pub fn create_index(&self, relation: &str, column: usize) -> Result<()> {
        let _c = self.coarse();
        let mut base = self.base_write();
        base.db.table_mut(relation)?.create_index(column)?;
        self.core.wal.lock().append(&LogRecord::CreateIndex {
            relation: relation.to_string(),
            column: column as u32,
        })?;
        Ok(())
    }

    /// Insert a batch of rows. With no pending transactions this is a fast
    /// path (plain inserts under the base write lock — insertions are
    /// monotone-safe for pending solutions); otherwise each row goes
    /// through the write-admission check.
    pub fn bulk_insert(&self, relation: &str, tuples: Vec<Tuple>) -> Result<usize> {
        let mut applied = 0;
        if self.core.metrics.pending() == 0 {
            let _c = self.coarse();
            let mut base = self.base_write();
            let mut wal = self.core.wal.lock();
            for t in tuples {
                if base.db.insert(relation, t.clone())? {
                    wal.append(&LogRecord::Write(WriteOp::insert(relation, t)))?;
                    applied += 1;
                }
            }
        } else {
            for t in tuples {
                if self.write(WriteOp::insert(relation, t))? {
                    applied += 1;
                }
            }
        }
        self.promote_hot_indexes();
        Ok(applied)
    }

    /// Append a checkpoint marker to the WAL (and drain the group-commit
    /// buffer to the sink), serialized against in-flight writers by a
    /// brief exclusive base acquisition.
    pub fn checkpoint(&self) -> Result<()> {
        let _c = self.coarse();
        let _base = self.base_write();
        let mut wal = self.core.wal.lock();
        wal.append(&LogRecord::Checkpoint)?;
        wal.sync()?;
        Ok(())
    }

    // -- Introspection -----------------------------------------------------

    /// Run `f` against the extensional database under a shared read lock.
    pub fn with_database<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        let base = self.base_read();
        f(&base.db)
    }

    /// Raw WAL image: drains the group-commit buffer and returns every
    /// durable byte. Crash-injection harnesses snapshot this, truncate at
    /// an arbitrary offset, and recover — the sharded-engine counterpart
    /// of [`QuantumDb::wal_image`]. A brief exclusive base acquisition
    /// fences in-flight writers so the image is a consistent point in the
    /// log.
    pub fn wal_image(&self) -> Vec<u8> {
        let _base = self.base_write();
        self.core
            .wal
            .lock()
            .sink_mut()
            .read_all()
            .expect("in-memory sinks cannot fail; file sinks report I/O errors on read")
    }

    /// Primary-side replication stream read: up to `max` WAL bytes
    /// starting at `offset`, plus the current WAL length and the last
    /// assigned transaction id — the sharded counterpart of
    /// [`QuantumDb::wal_stream_from`]. The image is fenced exactly like
    /// [`SharedQuantumDb::wal_image`], so a segment never ends inside a
    /// partially-drained group. Offsets past the end are clamped.
    pub fn wal_stream_from(&self, offset: u64, max: usize) -> (u64, TxnId, Vec<u8>) {
        let image = self.wal_image();
        let len = image.len() as u64;
        let last_txn = self.last_txn_id();
        let start = offset.min(len) as usize;
        let end = (start + max).min(image.len());
        (len, last_txn, image[start..end].to_vec())
    }

    /// Highest transaction id assigned so far (0 when none yet).
    pub fn last_txn_id(&self) -> TxnId {
        self.core.next_txn_id.load(SeqCst).saturating_sub(1)
    }

    /// Size of the WAL in bytes (durable sink plus the group-commit
    /// buffer).
    pub fn wal_size(&self) -> u64 {
        self.core.wal.lock().size_bytes()
    }

    /// Engine configuration.
    pub fn config(&self) -> &QuantumDbConfig {
        &self.core.config
    }

    /// Number of pending (committed, unground) transactions.
    pub fn pending_count(&self) -> usize {
        self.core.metrics.pending() as usize
    }

    /// Ids of pending transactions, sorted ascending (commit order — txn
    /// ids are allocated at commit), so `SHOW PENDING` output and sim
    /// transcripts are stable across runs regardless of how the pending
    /// state is sharded into partitions.
    ///
    /// The scan retries whenever it observes a `dead` slot: dead means the
    /// slot's partition moved elsewhere mid-scan (a merge or a `GROUND
    /// ALL` host claim), and a snapshot that simply skipped it could miss
    /// transactions that are still pending. Drains complete, so the retry
    /// loop terminates; the result is a consistent point-in-time snapshot,
    /// exact when quiescent.
    pub fn pending_ids(&self) -> Vec<TxnId> {
        'retry: loop {
            let snapshot: Vec<Arc<Slot>> = {
                let reg = self.core.reg.lock();
                reg.slots.values().map(|e| Arc::clone(&e.slot)).collect()
            };
            let mut ids: BTreeSet<TxnId> = BTreeSet::new();
            for slot in snapshot {
                let st = self.lock_slot(&slot);
                if st.dead {
                    continue 'retry;
                }
                ids.extend(st.part.txns.iter().map(|t| t.id));
            }
            return ids.into_iter().collect();
        }
    }

    /// Number of independent partitions currently registered.
    pub fn partition_count(&self) -> usize {
        self.core.reg.lock().slots.len()
    }

    /// Metrics snapshot (consistent — see [`SharedQuantumDb::metrics_with_pending`]).
    pub fn metrics(&self) -> Metrics {
        self.metrics_with_pending().0
    }

    /// Metrics snapshot plus the pending count, both read from one stable
    /// seqlock window: `committed − grounded_total == pending` holds for
    /// every snapshot, even taken mid-`GROUND ALL` from another thread,
    /// and across [`SharedQuantumDb::reset_metrics`] calls made while
    /// transactions are pending. The `db_clones` field is sourced live
    /// from the base database's clone-family counter through a detached
    /// lock-free handle — observation never touches the base lock (the
    /// delta-view read paths keep the counter at zero).
    pub fn metrics_with_pending(&self) -> (Metrics, u64) {
        let (mut m, pending) = self.core.metrics.snapshot_with_pending();
        m.db_clones = self.core.db_clones.get();
        (m, pending)
    }

    /// Reset metrics (between experiment phases). `committed` restarts at
    /// the live pending count so the accounting identity of
    /// [`SharedQuantumDb::metrics_with_pending`] survives a reset taken
    /// while transactions are pending.
    pub fn reset_metrics(&self) {
        self.core.metrics.reset();
        *self.core.solver_stats.lock() = SolverStats::default();
        // Histograms open the same fresh epoch as the counters, keeping
        // "per-class histogram count == statement counter" true per epoch.
        self.core.obs.reset();
    }

    /// Observability handle: latency histograms, the flight recorder and
    /// the slow-op log. The WAL and every per-operation solver share this
    /// handle, so all layers record into the same sinks.
    pub fn obs(&self) -> &Arc<qdb_obs::Obs> {
        &self.core.obs
    }

    /// Latency profile snapshot — per statement class and per engine phase
    /// (the `SHOW PROFILE` payload). Lock-free: safe to call from an
    /// observer thread while statements execute.
    pub fn profile(&self) -> qdb_obs::ProfileReport {
        self.core.obs.profile()
    }

    /// Cumulative solver statistics across all operations.
    pub fn solver_stats(&self) -> SolverStats {
        *self.core.solver_stats.lock()
    }
}

/// Guard for the in-flight solver gauge.
struct SolveGauge<'a> {
    core: &'a Core,
}

impl Drop for SolveGauge<'_> {
    fn drop(&mut self) {
        self.core.solves_in_flight.fetch_sub(1, SeqCst);
    }
}

impl SlotState {
    /// Clear stale alternative solutions and the admission overlay, and
    /// optionally install a re-solved cache (blind-write revalidation).
    fn extras_invalidate(&mut self, cache: Option<CachedSolution>) {
        self.part.invalidate_solution_caches();
        if let Some(c) = cache {
            self.part.cache = c;
        }
    }
}

/// Schema/arity validation for a transaction against a database (shared
/// between the single-threaded and the sharded engine).
pub(crate) fn validate_schema_on(db: &Database, txn: &ResourceTransaction) -> Result<()> {
    let atoms = txn
        .body
        .iter()
        .map(|b| &b.atom)
        .chain(txn.updates.iter().map(|u| &u.atom));
    for atom in atoms {
        let table = db.table(&atom.relation)?;
        if table.schema().arity() != atom.arity() {
            return Err(EngineError::Storage(
                qdb_storage::StorageError::ArityMismatch {
                    relation: atom.relation.to_string(),
                    expected: table.schema().arity(),
                    got: atom.arity(),
                },
            ));
        }
    }
    Ok(())
}
