//! Quantum-state recovery (§4 "Recovery").
//!
//! *"During recovery, a quantum database module restores the in-memory
//! quantum state to what it was before the crash based on the pending
//! transactions table."* Storage replays the WAL into the extensional
//! database and yields the still-pending serialized transactions; this
//! module re-parses them, re-partitions them and re-solves the solution
//! caches. A pending transaction that can no longer be grounded means the
//! log is not a valid engine history — recovery fails loudly rather than
//! silently dropping a committed transaction (commits must never roll
//! back, §2).

use qdb_logic::codec::decode_transaction;
use qdb_storage::Wal;

use crate::config::QuantumDbConfig;
use crate::engine::QuantumDb;
use crate::error::EngineError;
use crate::Result;

impl QuantumDb {
    /// Rebuild an engine from a WAL (typically after a crash). The torn
    /// tail, if any, is truncated so the recovered engine can keep
    /// appending.
    pub fn recover(wal: Wal, config: QuantumDbConfig) -> Result<QuantumDb> {
        let state = qdb_storage::recover(&wal)?;
        let mut qdb = QuantumDb::with_wal(config, wal);
        if qdb.wal.size_bytes() > state.consumed_bytes {
            qdb.wal.truncate_to(state.consumed_bytes)?;
        }
        qdb.db = state.db;
        for (id, payload) in state.pending {
            let txn = decode_transaction(&payload).map_err(EngineError::Logic)?;
            // Keep the global variable space ahead of every recovered id.
            for v in txn.vars() {
                qdb.vargen.reserve_through(v.id());
            }
            // Re-admit without re-logging (the PendingAdd record is
            // already in the WAL) and without side effects (partner
            // grounding / k-enforcement happened, if at all, pre-crash and
            // left their own records).
            let admitted = qdb.admit_recovered(id, txn)?;
            if !admitted {
                return Err(EngineError::RecoveryUnsatisfiable { txn: id });
            }
            qdb.next_txn_id = qdb.next_txn_id.max(id + 1);
        }
        // Recovery opens a fresh metrics epoch. The still-pending
        // transactions are exactly the commits the new epoch inherits —
        // the same rule as [`crate::metrics::Metrics`]'s reset — so the
        // accounting identity `committed − grounded_total == pending`
        // holds from the first post-recovery snapshot onwards.
        let pending = qdb.pending_count() as u64;
        qdb.metrics.committed = pending;
        qdb.metrics.max_pending = pending;
        Ok(qdb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SubmitOutcome;
    use qdb_logic::parse_transaction;
    use qdb_storage::wal::MemorySink;
    use qdb_storage::{tuple, Schema, ValueType};

    fn build_engine() -> QuantumDb {
        let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
        qdb.create_table(Schema::new(
            "Available",
            vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
        ))
        .unwrap();
        qdb.create_table(Schema::new(
            "Bookings",
            vec![
                ("name", ValueType::Str),
                ("flight", ValueType::Int),
                ("seat", ValueType::Str),
            ],
        ))
        .unwrap();
        qdb.create_index("Available", 0).unwrap();
        qdb.bulk_insert(
            "Available",
            vec![tuple![1, "1A"], tuple![1, "1B"], tuple![2, "1A"]],
        )
        .unwrap();
        qdb
    }

    fn book(name: &str, flight: i64) -> qdb_logic::ResourceTransaction {
        parse_transaction(&format!(
            "-Available({flight}, s), +Bookings('{name}', {flight}, s) :-1 Available({flight}, s)"
        ))
        .unwrap()
    }

    #[test]
    fn recovery_restores_pending_state() {
        let mut qdb = build_engine();
        let id1 = qdb.submit(&book("Mickey", 1)).unwrap().id().unwrap();
        let _id2 = qdb.submit(&book("Donald", 2)).unwrap().id().unwrap();
        assert_eq!(qdb.pending_count(), 2);
        assert_eq!(qdb.partition_count(), 2); // flights 1 and 2 independent

        // "Crash": rebuild from the WAL image.
        let image = qdb.wal.sink_mut().read_all().unwrap();
        let wal = Wal::with_sink(Box::new(MemorySink::from_bytes(image)));
        let mut recovered = QuantumDb::recover(wal, QuantumDbConfig::default()).unwrap();

        assert_eq!(recovered.pending_count(), 2);
        assert_eq!(recovered.partition_count(), 2);
        assert_eq!(
            crate::worlds::world_fingerprint(recovered.database()),
            crate::worlds::world_fingerprint(qdb.database()),
        );
        // The recovered engine keeps functioning: ground Mickey and read
        // his seat.
        assert!(recovered.ground(id1).unwrap());
        let rows = recovered.query("Bookings('Mickey', f, s)").unwrap();
        assert_eq!(rows.len(), 1);
        // And admits new transactions with fresh ids.
        let out = recovered.submit(&book("Pluto", 1)).unwrap();
        assert!(matches!(out, SubmitOutcome::Committed { .. }));
        assert!(out.id().unwrap() >= 2);
    }

    #[test]
    fn recovery_after_grounding_has_no_pending() {
        let mut qdb = build_engine();
        qdb.submit(&book("Mickey", 1)).unwrap();
        qdb.ground_all().unwrap();
        let image = qdb.wal.sink_mut().read_all().unwrap();
        let wal = Wal::with_sink(Box::new(MemorySink::from_bytes(image)));
        let recovered = QuantumDb::recover(wal, QuantumDbConfig::default()).unwrap();
        assert_eq!(recovered.pending_count(), 0);
        assert_eq!(
            recovered.database().table("Bookings").unwrap().len(),
            1,
            "grounded booking must survive the crash"
        );
    }

    #[test]
    fn torn_tail_recovers_to_prefix_and_truncates() {
        let mut qdb = build_engine();
        qdb.submit(&book("Mickey", 1)).unwrap();
        let good = qdb.wal.size_bytes();
        qdb.submit(&book("Donald", 1)).unwrap();
        let image = qdb.wal.sink_mut().read_all().unwrap();
        // Crash mid-record of Donald's PendingAdd.
        let torn = &image[..(good as usize + 3)];
        let wal = Wal::with_sink(Box::new(MemorySink::from_bytes(torn.to_vec())));
        let mut recovered = QuantumDb::recover(wal, QuantumDbConfig::default()).unwrap();
        assert_eq!(recovered.pending_count(), 1, "only Mickey survived");
        assert_eq!(recovered.wal.size_bytes(), good, "tail truncated");
        // Appending after truncation yields a clean log.
        recovered.checkpoint().unwrap();
        let (records, consumed) =
            qdb_storage::wal::replay_bytes(&recovered.wal.sink_mut().read_all().unwrap()).unwrap();
        assert_eq!(consumed, recovered.wal.size_bytes());
        assert!(matches!(
            records.last(),
            Some(qdb_storage::LogRecord::Checkpoint)
        ));
    }

    #[test]
    fn recovery_rejects_inconsistent_history() {
        // Hand-craft a log whose pending transaction cannot ground: a
        // booking on a flight with no seats.
        let mut wal = Wal::in_memory();
        wal.append(&qdb_storage::LogRecord::CreateTable(Schema::new(
            "Available",
            vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
        )))
        .unwrap();
        wal.append(&qdb_storage::LogRecord::CreateTable(Schema::new(
            "Bookings",
            vec![
                ("name", ValueType::Str),
                ("flight", ValueType::Int),
                ("seat", ValueType::Str),
            ],
        )))
        .unwrap();
        let txn = book("Ghost", 9);
        wal.append(&qdb_storage::LogRecord::PendingAdd {
            id: 0,
            payload: qdb_logic::codec::encode_transaction(&txn),
        })
        .unwrap();
        let err = QuantumDb::recover(wal, QuantumDbConfig::default()).unwrap_err();
        assert!(matches!(err, EngineError::RecoveryUnsatisfiable { txn: 0 }));
    }
}
