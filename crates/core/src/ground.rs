//! Grounding: fixing value assignments for pending transactions (§3.2.3).
//!
//! Grounding a transaction `Ti` means choosing a concrete valuation for its
//! variables, executing its update portion against the extensional
//! database, and removing it from the pending list — while keeping the
//! remaining pending transactions satisfiable.
//!
//! Two orders are supported (configured by
//! [`crate::Serializability`]):
//!
//! * **Strict** — ground `T0..Ti` in arrival order (the §3.2.3 "naïve
//!   approach"; classical serializability, over-constrains early).
//! * **Semantic** — move `Ti` to the *front* of the pending order,
//!   checking that the remaining formula stays satisfiable (the practical
//!   strategy of §3.2.3). When the front-move fails, fall back to strict.
//!
//! Optional atoms are maximized at grounding time (§2: "if there is an
//! assignment that satisfies optional as well as non-optional atoms, that
//! assignment is chosen"): promotion subsets are tried largest-first.

use qdb_logic::Valuation;
use qdb_solver::{Overlay, TxnSpec};

use crate::engine::QuantumDb;
use crate::txn::TxnId;
use crate::Result;

/// Why a grounding happened (drives metrics and the event trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroundReason {
    /// A read's unification check hit this transaction (§3.2.2).
    Read,
    /// The partition exceeded the `k` bound (§4).
    KBound,
    /// A coordination partner arrived (§5.1).
    Partner,
    /// The application asked explicitly.
    Explicit,
}

impl std::fmt::Display for GroundReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroundReason::Read => write!(f, "read"),
            GroundReason::KBound => write!(f, "k-bound"),
            GroundReason::Partner => write!(f, "partner"),
            GroundReason::Explicit => write!(f, "explicit"),
        }
    }
}

/// Enumerate promotion sets for a group of transactions, best (most
/// optionals) first. Each element is one `Vec<usize>` of promoted body
/// indexes per transaction in group order.
///
/// For a single transaction, all subsets of its optional atoms are tried
/// in decreasing size (capped); for groups, promotion is all-or-none per
/// transaction (the combinatorics stay tiny and the workloads' optional
/// atoms come in all-or-nothing bundles anyway).
pub(crate) fn promotion_sets(optionals: &[Vec<usize>]) -> Vec<Vec<Vec<usize>>> {
    const MAX_SINGLE_SUBSETS: usize = 64;
    if optionals.len() == 1 {
        let opts = &optionals[0];
        let n = opts.len().min(6); // 2^6 = 64 subsets max
        let mut subsets: Vec<Vec<usize>> = (0..(1usize << n))
            .map(|mask| {
                opts.iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &idx)| idx)
                    .collect()
            })
            .collect();
        subsets.sort_by_key(|s| std::cmp::Reverse(s.len()));
        subsets.truncate(MAX_SINGLE_SUBSETS);
        subsets.into_iter().map(|s| vec![s]).collect()
    } else {
        let m = optionals.len().min(6);
        let mut masks: Vec<usize> = (0..(1usize << m)).collect();
        // Most promoted atoms first; ties prefer promoting *later*
        // transactions (higher mask bits) — later transactions can ground
        // their optional atoms on earlier pending inserts, the common
        // coordination shape.
        masks.sort_by_key(|&mask| {
            let total: usize = optionals
                .iter()
                .enumerate()
                .filter(|(i, _)| *i < m && mask >> i & 1 == 1)
                .map(|(_, o)| o.len())
                .sum();
            (std::cmp::Reverse(total), std::cmp::Reverse(mask))
        });
        let mut combos: Vec<Vec<Vec<usize>>> = masks
            .into_iter()
            .map(|mask| {
                optionals
                    .iter()
                    .enumerate()
                    .map(|(i, opts)| {
                        if i < m && mask >> i & 1 == 1 {
                            opts.clone()
                        } else {
                            Vec::new()
                        }
                    })
                    .collect()
            })
            .collect();
        // Transactions without optional atoms make distinct masks produce
        // identical combos — drop the duplicates.
        let mut seen: std::collections::BTreeSet<Vec<Vec<usize>>> =
            std::collections::BTreeSet::new();
        combos.retain(|c| seen.insert(c.clone()));
        combos
    }
}

/// Score a candidate grounding for flexibility: after applying `ops`, sum
/// over the remaining pending transactions of the bottleneck candidate
/// count of their required atoms. Higher = more room left = closer to
/// "maximize the remaining number of possible worlds".
pub(crate) fn flexibility_score(
    base: &qdb_storage::Database,
    ops: &[qdb_storage::WriteOp],
    rest: &[TxnSpec<'_>],
) -> Result<usize> {
    let mut overlay = Overlay::new();
    for op in ops {
        if !overlay.try_apply(base, op) {
            return Ok(0); // conflicting candidate: worthless
        }
    }
    let mut score = 0usize;
    for spec in rest {
        let mut bottleneck = usize::MAX;
        for atom in spec.atoms() {
            let bound: Vec<Option<qdb_storage::Value>> =
                atom.terms.iter().map(|t| t.as_const().cloned()).collect();
            let n = overlay
                .count(base, &atom.relation, &bound)
                .map_err(crate::EngineError::from)?;
            bottleneck = bottleneck.min(n);
        }
        if bottleneck != usize::MAX {
            score += bottleneck;
        }
    }
    Ok(score)
}

/// A tiny deterministic xorshift generator for
/// [`crate::GroundingPolicy::Random`] (keeps `qdb-core` free of the `rand`
/// dependency).
#[derive(Debug, Clone)]
pub(crate) struct XorShift(pub u64);

impl XorShift {
    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Fisher–Yates shuffle.
    pub(crate) fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = (self.next_u64() % (i as u64 + 1)) as usize;
            items.swap(i, j);
        }
    }
}

/// One grounded transaction as planned: the write ops of its chosen
/// valuation plus optional-atom accounting (drives metrics and events).
#[derive(Debug, Clone)]
pub(crate) struct GroundedTxn {
    /// The grounded transaction.
    pub id: TxnId,
    /// Its concrete updates in execution order.
    pub ops: Vec<qdb_storage::WriteOp>,
    /// Optional body atoms the chosen assignment satisfied.
    pub promoted: usize,
    /// Optional body atoms the transaction had.
    pub total_optionals: usize,
}

/// A complete plan for grounding a group within one partition: which
/// transactions leave the pending set (with their updates), and the
/// refreshed cache valuations for the transactions that remain.
///
/// Planning is **pure** — it reads the database (plus `pre_ops`, updates
/// already planned but not yet applied) and the partition, and mutates
/// neither. The sharded engine plans under a shared base-state read lock
/// and applies under the write lock; the single-threaded engine plans and
/// applies back to back.
#[derive(Debug)]
pub(crate) struct GroundPlan {
    /// Transactions leaving the pending set, in group order.
    pub grounded: Vec<GroundedTxn>,
    /// Cache valuations for the remaining pending transactions (in the
    /// partition's arrival order, group members skipped).
    pub rest_vals: Vec<Valuation>,
}

/// §5.1: fixing a transaction fixes its coordination partners with it —
/// whoever is "in the system" when values are assigned gets to coordinate.
/// Expand the group by one level of partnership.
pub(crate) fn expand_partners(p: &crate::Partition, ids: &[TxnId]) -> Vec<TxnId> {
    let mut out: std::collections::BTreeSet<TxnId> = ids.iter().copied().collect();
    let seeds: Vec<&crate::PendingTxn> = p.txns.iter().filter(|t| out.contains(&t.id)).collect();
    let mut extra: Vec<TxnId> = Vec::new();
    for seed in seeds {
        for other in &p.txns {
            if !out.contains(&other.id)
                && !extra.contains(&other.id)
                && (crate::entangle::coordinates_with(&seed.txn, &other.txn)
                    || crate::entangle::coordinates_with(&other.txn, &seed.txn))
            {
                extra.push(other.id);
            }
        }
    }
    out.extend(extra);
    out.into_iter().collect()
}

/// Strict-order step selection shared by every grounding driver: while
/// any of `ids` is still pending in `p`, the next transaction to ground
/// is the partition *head* (arrival order — the §3.2.3 "naïve approach").
/// `None` means the requested set is fully grounded.
pub(crate) fn strict_head(p: &crate::Partition, ids: &[TxnId]) -> Option<TxnId> {
    if !ids.iter().any(|id| p.position(*id).is_some()) {
        return None;
    }
    Some(p.txns.first().expect("outstanding ids imply txns").id)
}

/// The invariant violation every strict loop reports when a head refuses
/// to ground: the engine guarantees a sequence-order grounding exists.
pub(crate) fn strict_order_violation() -> crate::EngineError {
    crate::EngineError::Invariant(
        "head grounding failed although the invariant guarantees a \
         sequence-order grounding"
            .into(),
    )
}

/// Plan moving the group `ids` (in arrival order) to the front of the
/// pending order and grounding it jointly, maximizing satisfied optional
/// atoms, subject to the remaining pending transactions staying
/// satisfiable. Returns `None` if no promotion set admits a front-move
/// grounding. `pre_ops` are updates already planned against `db` but not
/// yet applied (the sharded `GROUND ALL` planner threads its own
/// accumulated updates through; interactive grounding passes `&[]`).
pub(crate) fn plan_group_front(
    solver: &mut qdb_solver::Solver,
    db: &qdb_storage::Database,
    pre_ops: &[qdb_storage::WriteOp],
    config: &crate::QuantumDbConfig,
    p: &crate::Partition,
    ids: &[TxnId],
) -> Result<Option<GroundPlan>> {
    let idset: std::collections::BTreeSet<TxnId> = ids.iter().copied().collect();
    let mut group = Vec::new();
    let mut rest = Vec::new();
    let mut rest_cached = Vec::new();
    for (t, v) in p.txns.iter().zip(&p.cache.valuations) {
        if idset.contains(&t.id) {
            group.push(t.clone());
        } else {
            rest.push(t.clone());
            rest_cached.push(v.clone());
        }
    }
    if group.is_empty() {
        // All already grounded in an earlier cascade: an empty plan.
        return Ok(Some(GroundPlan {
            grounded: Vec::new(),
            rest_vals: rest_cached,
        }));
    }
    let optionals: Vec<Vec<usize>> = group
        .iter()
        .map(|p| {
            p.txn
                .body
                .iter()
                .enumerate()
                .filter(|(_, b)| b.optional)
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    for promo in promotion_sets(&optionals) {
        if let Some(plan) = plan_solve_group(
            solver,
            db,
            pre_ops,
            config,
            &group,
            &rest,
            &rest_cached,
            &promo,
        )? {
            return Ok(Some(plan));
        }
    }
    Ok(None)
}

/// Find a grounding for `group` executed before `rest`, with the given
/// per-transaction promotions. Applies the configured
/// [`crate::GroundingPolicy`] when the group is a single transaction.
#[allow(clippy::too_many_arguments)] // internal plumbing, one call site
fn plan_solve_group(
    solver: &mut qdb_solver::Solver,
    db: &qdb_storage::Database,
    pre_ops: &[qdb_storage::WriteOp],
    config: &crate::QuantumDbConfig,
    group: &[crate::PendingTxn],
    rest: &[crate::PendingTxn],
    rest_cached: &[Valuation],
    promo: &[Vec<usize>],
) -> Result<Option<GroundPlan>> {
    let group_specs: Vec<TxnSpec> = group
        .iter()
        .zip(promo)
        .map(|(p, pr)| TxnSpec::with_promoted(&p.txn, pr.clone()))
        .collect();
    let rest_specs: Vec<TxnSpec> = rest
        .iter()
        .map(|p| TxnSpec::required_only(&p.txn))
        .collect();
    let finish = |group_vals: Vec<Valuation>, rest_vals: Vec<Valuation>| -> Result<GroundPlan> {
        let mut grounded = Vec::with_capacity(group.len());
        for ((pt, val), pr) in group.iter().zip(&group_vals).zip(promo) {
            grounded.push(GroundedTxn {
                id: pt.id,
                ops: pt.txn.write_ops(val)?,
                promoted: pr.len(),
                total_optionals: pt.txn.optional_body().count(),
            });
        }
        Ok(GroundPlan {
            grounded,
            rest_vals,
        })
    };
    let with_pre = |ops: &[qdb_storage::WriteOp]| -> Vec<qdb_storage::WriteOp> {
        let mut all = pre_ops.to_vec();
        all.extend_from_slice(ops);
        all
    };

    let sample = match config.policy {
        crate::GroundingPolicy::FirstFit => 0,
        crate::GroundingPolicy::MaxFlexibility { sample } => sample,
        crate::GroundingPolicy::Random { sample, .. } => sample,
    };
    if group.len() == 1 && sample > 1 {
        // Enumerate alternatives for the single target, order them per
        // policy, and take the first whose residue stays satisfiable.
        let mut cands = solver.enumerate_one(db, pre_ops, &group_specs[0], sample)?;
        match config.policy {
            crate::GroundingPolicy::MaxFlexibility { .. } => {
                let mut scored: Vec<(usize, Valuation)> = Vec::with_capacity(cands.len());
                for cand in cands {
                    let ops = with_pre(&group[0].txn.write_ops(&cand)?);
                    let score = flexibility_score(db, &ops, &rest_specs)?;
                    scored.push((score, cand));
                }
                scored.sort_by_key(|(score, _)| std::cmp::Reverse(*score));
                cands = scored.into_iter().map(|(_, c)| c).collect();
            }
            crate::GroundingPolicy::Random { seed, .. } => {
                // The policy seed and the engine seed both participate, so
                // a sim run can vary the whole engine with one knob while
                // ablations can still pin the policy independently.
                let mut rng = XorShift(
                    seed ^ config.seed ^ (group[0].id.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                );
                rng.shuffle(&mut cands);
            }
            crate::GroundingPolicy::FirstFit => unreachable!("sample > 1"),
        }
        for cand in cands {
            let ops = with_pre(&group[0].txn.write_ops(&cand)?);
            if let Some(sol) = solver.solve(db, &ops, &rest_specs)? {
                return finish(vec![cand], sol.valuations).map(Some);
            }
        }
        return Ok(None);
    }

    // Fast path: solve the group alone, then check whether the *cached*
    // residue groundings survive the group's updates — the §4
    // solution-cache amortization applied to grounding. Falls through to a
    // joint re-solve when the cached residue breaks.
    if let Some(gsol) = solver.solve(db, pre_ops, &group_specs)? {
        let mut ops = pre_ops.to_vec();
        for (p, v) in group.iter().zip(&gsol.valuations) {
            ops.extend(p.txn.write_ops(v)?);
        }
        if solver.verify(db, &ops, &rest_specs, rest_cached)? {
            return finish(gsol.valuations, rest_cached.to_vec()).map(Some);
        }
    } else {
        // The group alone (with these promotions) is unsatisfiable — the
        // joint solve below cannot succeed either.
        return Ok(None);
    }

    // FirstFit (or joint group): one solve over group ++ rest.
    let mut all = group_specs;
    all.extend(rest_specs);
    match solver.solve(db, pre_ops, &all)? {
        Some(sol) => {
            let mut vals = sol.valuations;
            let rest_vals = vals.split_off(group.len());
            finish(vals, rest_vals).map(Some)
        }
        None => Ok(None),
    }
}

/// Apply the partition-side effects of a plan: drop the grounded
/// transactions from the pending list and refresh the cache with the
/// residue valuations. Database/WAL/metrics effects are the caller's —
/// they differ between the single-threaded and the sharded engine.
pub(crate) fn apply_plan_to_partition(p: &mut crate::Partition, plan: &GroundPlan) {
    let idset: std::collections::BTreeSet<TxnId> = plan.grounded.iter().map(|g| g.id).collect();
    p.txns.retain(|t| !idset.contains(&t.id));
    p.cache = qdb_solver::CachedSolution {
        valuations: plan.rest_vals.clone(),
    };
    // Positional alternatives and the admission overlay are stale now.
    p.invalidate_solution_caches();
    debug_assert_eq!(p.txns.len(), p.cache.len());
}

/// Plan the *complete* collapse of one partition without touching the
/// shared database: repeatedly ground the partition head (plus partners;
/// semantic front-move with strict fallback, exactly like interactive
/// `GROUND ALL`), threading each step's updates through `pre_ops` so later
/// steps solve against the virtual post-state. The sharded engine runs
/// this in parallel across disjoint partitions — §4 independence
/// guarantees their write sets cannot interact.
pub(crate) fn plan_ground_all_partition(
    solver: &mut qdb_solver::Solver,
    db: &qdb_storage::Database,
    config: &crate::QuantumDbConfig,
    p: &mut crate::Partition,
) -> Result<Vec<GroundedTxn>> {
    let mut out: Vec<GroundedTxn> = Vec::new();
    let mut pre_ops: Vec<qdb_storage::WriteOp> = Vec::new();
    let commit = |p: &mut crate::Partition,
                  pre_ops: &mut Vec<qdb_storage::WriteOp>,
                  out: &mut Vec<GroundedTxn>,
                  plan: &GroundPlan| {
        for g in &plan.grounded {
            pre_ops.extend(g.ops.iter().cloned());
        }
        out.extend(plan.grounded.iter().cloned());
        apply_plan_to_partition(p, plan);
    };
    while let Some(head) = p.txns.first().map(|t| t.id) {
        let ids = expand_partners(p, &[head]);
        let group_plan = match config.serializability {
            crate::Serializability::Semantic => {
                plan_group_front(solver, db, &pre_ops, config, p, &ids)?
            }
            crate::Serializability::Strict => None,
        };
        if let Some(plan) = group_plan {
            commit(p, &mut pre_ops, &mut out, &plan);
        } else {
            // Strict order (or semantic front-move failed): heads through.
            while ids.iter().any(|id| p.position(*id).is_some()) {
                let h = p.txns.first().expect("outstanding ids imply txns").id;
                let plan =
                    plan_group_front(solver, db, &pre_ops, config, p, &[h])?.ok_or_else(|| {
                        crate::EngineError::Invariant(
                            "head grounding failed although the invariant guarantees a \
                             sequence-order grounding"
                                .into(),
                        )
                    })?;
                commit(p, &mut pre_ops, &mut out, &plan);
            }
        }
    }
    Ok(out)
}

impl QuantumDb {
    /// Ground the pending transactions `ids` (must all live in partition
    /// `pid`), honoring the configured serializability and grounding
    /// policy. See module docs.
    pub(crate) fn ground_set(
        &mut self,
        pid: u64,
        ids: &[TxnId],
        reason: GroundReason,
    ) -> Result<()> {
        let ids: Vec<TxnId> = {
            let Some(p) = self.partitions.get(&pid) else {
                return Ok(());
            };
            expand_partners(p, ids)
        };
        match self.config.serializability {
            crate::Serializability::Semantic => {
                if self.try_ground_group(pid, &ids, reason)? {
                    return Ok(());
                }
                // Front-move unsatisfiable in this order: fall back.
                self.ground_strict_through(pid, &ids, reason)
            }
            crate::Serializability::Strict => self.ground_strict_through(pid, &ids, reason),
        }
    }

    /// Strict serializability: repeatedly ground the partition *head* (in
    /// arrival order) until every requested id has been grounded — the
    /// §3.2.3 "naïve approach".
    fn ground_strict_through(
        &mut self,
        pid: u64,
        ids: &[TxnId],
        reason: GroundReason,
    ) -> Result<()> {
        loop {
            let Some(p) = self.partitions.get(&pid) else {
                return Ok(()); // partition fully grounded and removed
            };
            let Some(head) = strict_head(p, ids) else {
                return Ok(());
            };
            if !self.try_ground_group(pid, &[head], reason)? {
                return Err(strict_order_violation());
            }
        }
    }

    /// Plan a front-move grounding of `ids` and, on success, commit it.
    fn try_ground_group(&mut self, pid: u64, ids: &[TxnId], reason: GroundReason) -> Result<bool> {
        let Some(p) = self.partitions.get(&pid) else {
            return Ok(true); // nothing left to ground
        };
        let Some(plan) = plan_group_front(&mut self.solver, &self.db, &[], &self.config, p, ids)?
        else {
            return Ok(false);
        };
        self.commit_ground_plan(pid, &plan, reason)?;
        Ok(true)
    }

    /// Execute a found plan: apply and log the group's updates, remove the
    /// group from the partition, refresh the cache with the residue
    /// valuations.
    pub(crate) fn commit_ground_plan(
        &mut self,
        pid: u64,
        plan: &GroundPlan,
        reason: GroundReason,
    ) -> Result<()> {
        let t_apply = std::time::Instant::now();
        for g in &plan.grounded {
            for op in &g.ops {
                self.db.apply(op)?;
            }
            // One atomic frame per transaction: concrete writes + removal
            // from the pending table cannot be torn apart by a crash.
            self.wal.append(&qdb_storage::LogRecord::Ground {
                id: g.id,
                ops: g.ops.clone(),
            })?;
            self.metrics.record_ground(reason);
            self.metrics.optionals_satisfied += g.promoted as u64;
            self.metrics.optionals_total += g.total_optionals as u64;
            if self.config.record_events {
                self.metrics.events.push(crate::Event::Grounded {
                    id: g.id,
                    reason,
                    optionals_satisfied: g.promoted,
                    optionals_total: g.total_optionals,
                });
            }
        }
        let p = self
            .partitions
            .get_mut(&pid)
            .expect("partition existed at plan time");
        apply_plan_to_partition(p, plan);
        if p.is_empty() {
            self.partitions.remove(&pid);
        }
        self.obs.phase(qdb_obs::Phase::Apply, t_apply.elapsed());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_txn_promotions_are_subsets_desc() {
        let sets = promotion_sets(&[vec![2, 4]]);
        assert_eq!(sets.len(), 4);
        assert_eq!(sets[0], vec![vec![2, 4]]);
        assert_eq!(sets[3], vec![Vec::<usize>::new()]);
        // Sizes never increase.
        let sizes: Vec<usize> = sets.iter().map(|c| c[0].len()).collect();
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn group_promotions_all_or_none_per_txn() {
        let sets = promotion_sets(&[vec![1], vec![3, 4]]);
        assert_eq!(sets.len(), 4);
        // Best first: both fully promoted.
        assert_eq!(sets[0], vec![vec![1], vec![3, 4]]);
        // Worst last: nothing promoted.
        assert_eq!(sets[3], vec![Vec::<usize>::new(), Vec::<usize>::new()]);
    }

    #[test]
    fn promotion_sets_cap_explosion() {
        let many: Vec<usize> = (0..20).collect();
        let sets = promotion_sets(&[many]);
        assert!(sets.len() <= 64);
    }

    #[test]
    fn xorshift_is_deterministic_and_shuffles() {
        let mut a = XorShift(42);
        let mut b = XorShift(42);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut items: Vec<u32> = (0..10).collect();
        let mut rng = XorShift(7);
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<u32>>());
        assert_ne!(items, (0..10).collect::<Vec<u32>>()); // overwhelmingly likely
    }
}
