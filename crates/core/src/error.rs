//! Engine error type.

use std::fmt;

/// Errors surfaced by the quantum database engine.
///
/// Note that a transaction failing admission is **not** an error — it is
/// a normal outcome ([`crate::SubmitOutcome::Aborted`]); likewise a
/// rejected write returns `Ok(false)`. Errors mean the request itself was
/// malformed or an internal invariant broke.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Underlying storage failure.
    Storage(qdb_storage::StorageError),
    /// Underlying logic failure.
    Logic(qdb_logic::LogicError),
    /// Underlying solver failure.
    Solver(qdb_solver::SolverError),
    /// The engine's in-memory state diverged from its invariants (a bug,
    /// or a corrupted recovery image).
    Invariant(String),
    /// Recovery found pending transactions that no longer have a
    /// consistent grounding (the log is not a valid engine history).
    RecoveryUnsatisfiable {
        /// Transaction id that could not be re-solved.
        txn: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage: {e}"),
            EngineError::Logic(e) => write!(f, "logic: {e}"),
            EngineError::Solver(e) => write!(f, "solver: {e}"),
            EngineError::Invariant(msg) => write!(f, "engine invariant violated: {msg}"),
            EngineError::RecoveryUnsatisfiable { txn } => {
                write!(
                    f,
                    "recovery: pending transaction {txn} is no longer satisfiable"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<qdb_storage::StorageError> for EngineError {
    fn from(e: qdb_storage::StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<qdb_logic::LogicError> for EngineError {
    fn from(e: qdb_logic::LogicError) -> Self {
        EngineError::Logic(e)
    }
}

impl From<qdb_solver::SolverError> for EngineError {
    fn from(e: qdb_solver::SolverError) -> Self {
        EngineError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_messages() {
        let e: EngineError = qdb_storage::StorageError::NoSuchTable("T".into()).into();
        assert!(e.to_string().contains('T'));
        let e: EngineError = qdb_solver::SolverError::LimitExceeded { nodes: 3 }.into();
        assert!(e.to_string().contains('3'));
        assert!(EngineError::RecoveryUnsatisfiable { txn: 12 }
            .to_string()
            .contains("12"));
    }
}
