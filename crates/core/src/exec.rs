//! The unified statement API: `execute()`, typed [`Response`]s, and
//! [`Session`]s with prepared statements.
//!
//! Every engine operation — DDL, blind writes, the three read semantics of
//! §3.2.2, resource transactions and control — is reachable through one
//! entry point:
//!
//! ```
//! use qdb_core::{QuantumDb, QuantumDbConfig, Response};
//!
//! let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
//! qdb.execute("CREATE TABLE Available (flight INT, seat TEXT)").unwrap();
//! qdb.execute("INSERT INTO Available VALUES (123, '5A'), (123, '5B')").unwrap();
//! let r = qdb.execute(
//!     "SELECT @s FROM Available(123, @s) CHOOSE 1 \
//!      FOLLOWED BY (DELETE (123, @s) FROM Available; \
//!                   INSERT ('Mickey', 123, @s) INTO Bookings)",
//! );
//! // Bookings does not exist yet: typed error, not a silent failure.
//! assert!(r.is_err());
//! qdb.execute("CREATE TABLE Bookings (name TEXT, flight INT, seat TEXT)").unwrap();
//! let r = qdb.execute(
//!     "SELECT @s FROM Available(123, @s) CHOOSE 1 \
//!      FOLLOWED BY (DELETE (123, @s) FROM Available; \
//!                   INSERT ('Mickey', 123, @s) INTO Bookings)",
//! ).unwrap();
//! assert!(matches!(r, Response::Committed(_)));
//! // The read collapses the pending choice.
//! let rows = qdb.execute("SELECT @s FROM Bookings('Mickey', 123, @s)").unwrap();
//! assert_eq!(rows.rows().unwrap().len(), 1);
//! ```
//!
//! [`Session`] layers prepared statements over the thread-safe
//! [`SharedQuantumDb`] handle: [`Session::prepare`] parses once,
//! [`Prepared::bind`] substitutes positional `?` parameters, and the bound
//! statement re-executes without touching the parser (observable through
//! [`Metrics::parses`]).

use qdb_logic::stmt::{ColumnRef, ReadMode, SelectStmt, Statement};
use qdb_logic::{ParsedStatement, Valuation, Var};
use qdb_storage::{Tuple, Value, WriteOp};

use crate::engine::{QuantumDb, SubmitOutcome};
use crate::error::EngineError;
use crate::metrics::Metrics;
use crate::shard::SharedQuantumDb;
use crate::txn::TxnId;
use crate::Result;

/// Typed result of executing one [`Statement`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Rows of a `SELECT` (collapse or peek semantics), projected onto the
    /// statement's `SELECT` list.
    Rows(Vec<Valuation>),
    /// Distinct answer sets of a `SELECT POSSIBLE` — one entry per
    /// distinct possible-world answer.
    Worlds(Vec<Vec<Valuation>>),
    /// A resource transaction committed (it will never be rolled back, §2)
    /// with this engine-assigned id.
    Committed(TxnId),
    /// A resource transaction was refused admission: accepting it would
    /// empty the set of possible worlds.
    Aborted,
    /// Blind write outcome: `true` iff every row of the statement was
    /// admitted (a rejected row would invalidate pending state, §3.2.2).
    Written(bool),
    /// How many pending transactions a `GROUND` statement collapsed.
    Grounded(usize),
    /// Metrics snapshot (`SHOW METRICS`).
    Metrics(Box<Metrics>),
    /// Ids of pending transactions (`SHOW PENDING`).
    Pending(Vec<TxnId>),
    /// Latency histograms per statement class and engine phase
    /// (`SHOW PROFILE`).
    Profile(Box<qdb_obs::ProfileReport>),
    /// Recent flight-recorder span events, oldest first (`SHOW EVENTS`).
    Events(Vec<qdb_obs::SpanEvent>),
    /// Replication role, WAL position and per-replica lag
    /// (`SHOW REPLICATION`). The bare engine answers as an unreplicated
    /// primary; `qdb-server` substitutes its live stream state.
    Replication(Box<crate::repl::ReplicationReport>),
    /// Statement acknowledged with nothing to report (DDL, `CHECKPOINT`,
    /// `PROMOTE`).
    Ack,
}

/// How many flight-recorder events `SHOW EVENTS` returns when the
/// statement carries no `LIMIT`.
pub const DEFAULT_EVENT_LIMIT: usize = 100;

impl Response {
    /// Rows, when this is a [`Response::Rows`].
    pub fn rows(&self) -> Option<&[Valuation]> {
        match self {
            Response::Rows(r) => Some(r),
            _ => None,
        }
    }

    /// Possible-world answer sets, when this is a [`Response::Worlds`].
    pub fn worlds(&self) -> Option<&[Vec<Valuation>]> {
        match self {
            Response::Worlds(w) => Some(w),
            _ => None,
        }
    }

    /// Transaction id, when this is a [`Response::Committed`].
    pub fn committed_id(&self) -> Option<TxnId> {
        match self {
            Response::Committed(id) => Some(*id),
            _ => None,
        }
    }

    /// Write outcome, when this is a [`Response::Written`].
    pub fn written(&self) -> Option<bool> {
        match self {
            Response::Written(ok) => Some(*ok),
            _ => None,
        }
    }

    /// Grounded count, when this is a [`Response::Grounded`].
    pub fn grounded(&self) -> Option<usize> {
        match self {
            Response::Grounded(n) => Some(*n),
            _ => None,
        }
    }

    /// Metrics snapshot, when this is a [`Response::Metrics`].
    pub fn metrics(&self) -> Option<&Metrics> {
        match self {
            Response::Metrics(m) => Some(m),
            _ => None,
        }
    }

    /// Latency profile, when this is a [`Response::Profile`].
    pub fn profile(&self) -> Option<&qdb_obs::ProfileReport> {
        match self {
            Response::Profile(p) => Some(p),
            _ => None,
        }
    }

    /// Flight-recorder events, when this is a [`Response::Events`].
    pub fn events(&self) -> Option<&[qdb_obs::SpanEvent]> {
        match self {
            Response::Events(e) => Some(e),
            _ => None,
        }
    }

    /// Replication report, when this is a [`Response::Replication`].
    pub fn replication(&self) -> Option<&crate::repl::ReplicationReport> {
        match self {
            Response::Replication(r) => Some(r),
            _ => None,
        }
    }
}

impl std::fmt::Display for Response {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Response::Rows(rows) => write!(f, "{} row(s)", rows.len()),
            Response::Worlds(w) => write!(f, "{} possible answer set(s)", w.len()),
            Response::Committed(id) => write!(f, "committed as txn {id}"),
            Response::Aborted => write!(f, "aborted"),
            Response::Written(true) => write!(f, "written"),
            Response::Written(false) => write!(f, "write rejected"),
            Response::Grounded(n) => write!(f, "grounded {n} transaction(s)"),
            Response::Metrics(m) => write!(f, "{m}"),
            Response::Pending(ids) => write!(f, "{} pending transaction(s)", ids.len()),
            Response::Profile(p) => write!(f, "{p}"),
            Response::Events(events) => write!(f, "{} event(s)", events.len()),
            Response::Replication(r) => write!(f, "{r}"),
            Response::Ack => write!(f, "ok"),
        }
    }
}

/// Project rows onto the `SELECT` list (`None` = `*`, keep everything).
fn project(rows: Vec<Valuation>, projection: &Option<Vec<Var>>) -> Vec<Valuation> {
    match projection {
        None => rows,
        Some(vars) => rows
            .into_iter()
            .map(|val| {
                vars.iter()
                    .filter_map(|v| val.get(v).map(|value| (v.clone(), value.clone())))
                    .collect()
            })
            .collect(),
    }
}

/// Map a statement's result onto a flight-recorder outcome and the txn id
/// to tag the op's span events with (admissions only).
fn op_outcome(result: &Result<Response>) -> (qdb_obs::Outcome, Option<u64>) {
    match result {
        Ok(Response::Committed(id)) => (qdb_obs::Outcome::Ok, Some(*id)),
        Ok(Response::Aborted) | Ok(Response::Written(false)) => (qdb_obs::Outcome::Aborted, None),
        Ok(_) => (qdb_obs::Outcome::Ok, None),
        Err(_) => (qdb_obs::Outcome::Error, None),
    }
}

fn row_to_tuple(relation: &str, row: &[qdb_logic::Term]) -> Result<Tuple> {
    let mut values: Vec<Value> = Vec::with_capacity(row.len());
    for term in row {
        match term {
            qdb_logic::Term::Const(v) => values.push(v.clone()),
            qdb_logic::Term::Var(v) => {
                return Err(EngineError::Logic(qdb_logic::LogicError::UnboundVariable {
                    var: format!("{v} (in a {relation} write)"),
                }))
            }
        }
    }
    Ok(Tuple::from(values))
}

impl QuantumDb {
    /// Parse one statement of the unified dialect, counting the parse in
    /// [`Metrics::parses`]. This is the only text→[`Statement`] path the
    /// engine itself takes; prepared statements go through it exactly once.
    pub fn prepare_statement(&mut self, sql: &str) -> Result<ParsedStatement> {
        self.metrics.parses += 1;
        let t0 = std::time::Instant::now();
        let parsed = qdb_logic::parse_statement(sql);
        self.obs.phase(qdb_obs::Phase::Parse, t0.elapsed());
        Ok(parsed?)
    }

    /// Parse and execute one statement. Statements with `?` placeholders
    /// are rejected here — prepare them through a [`Session`] instead.
    pub fn execute(&mut self, sql: &str) -> Result<Response> {
        let parsed = self.prepare_statement(sql)?;
        let stmt = parsed.statement()?.clone();
        self.execute_stmt(stmt)
    }

    /// Execute an already-parsed statement (no parser involvement).
    ///
    /// Every statement is bracketed as one observability *op*: its latency
    /// lands in the per-class histogram, its root (plus any phase spans it
    /// produced) in the flight recorder, and — over the configured
    /// [`crate::QuantumDbConfig::slow_op_threshold_us`] — its span tree in
    /// the slow-op log.
    pub fn execute_stmt(&mut self, stmt: Statement) -> Result<Response> {
        let token = self.obs.begin_op(stmt.kind());
        let result = self.execute_stmt_inner(stmt);
        let (outcome, txn) = op_outcome(&result);
        self.obs.finish_op(token, outcome, txn);
        result
    }

    fn execute_stmt_inner(&mut self, stmt: Statement) -> Result<Response> {
        match stmt {
            Statement::CreateTable(schema) => {
                self.create_table(schema)?;
                Ok(Response::Ack)
            }
            Statement::CreateIndex { relation, column } => {
                let column = self.resolve_column(&relation, &column)?;
                self.create_index(&relation, column)?;
                Ok(Response::Ack)
            }
            Statement::Insert { relation, rows } => {
                self.blind_writes(&relation, &rows, |r, t| WriteOp::insert(r, t))
            }
            Statement::Delete { relation, rows } => {
                self.blind_writes(&relation, &rows, |r, t| WriteOp::delete(r, t))
            }
            Statement::Select(sel) => self.execute_select(sel),
            Statement::Transaction(txn) => {
                let txn = txn.to_transaction()?;
                Ok(match self.submit(&txn)? {
                    SubmitOutcome::Committed { id } => Response::Committed(id),
                    SubmitOutcome::Aborted => Response::Aborted,
                })
            }
            Statement::Ground(id) => {
                // Grounding one id can cascade (coordination partners,
                // strict-mode prefixes): report the actual collapse count.
                let before = self.pending_count();
                self.ground(id)?;
                Ok(Response::Grounded(before - self.pending_count()))
            }
            Statement::GroundAll => {
                let pending = self.pending_count();
                self.ground_all()?;
                Ok(Response::Grounded(pending))
            }
            Statement::Checkpoint => {
                self.checkpoint()?;
                Ok(Response::Ack)
            }
            Statement::ShowMetrics => Ok(Response::Metrics(Box::new(self.metrics_snapshot()))),
            Statement::ShowPending => Ok(Response::Pending(self.pending_ids())),
            Statement::ShowProfile => Ok(Response::Profile(Box::new(self.profile()))),
            Statement::ShowEvents { limit } => Ok(Response::Events(
                self.obs().events(limit.unwrap_or(DEFAULT_EVENT_LIMIT)),
            )),
            Statement::ShowReplication => {
                // The bare engine is an unreplicated primary; `qdb-server`
                // intercepts this statement when a stream is attached.
                let wal_len = self.wal_size();
                let last = self.last_txn_id();
                Ok(Response::Replication(Box::new(
                    crate::repl::ReplicaTracker::new().report(wal_len, last),
                )))
            }
            Statement::Promote => Err(EngineError::Invariant(
                "PROMOTE requires a replica server (this node is already a primary)".into(),
            )),
        }
    }

    fn execute_select(&mut self, sel: SelectStmt) -> Result<Response> {
        match sel.mode {
            ReadMode::Collapse => {
                let rows = self.read(&sel.atoms, sel.limit)?;
                Ok(Response::Rows(project(rows, &sel.projection)))
            }
            ReadMode::Peek => {
                let rows = self.read_peek(&sel.atoms, sel.limit)?;
                Ok(Response::Rows(project(rows, &sel.projection)))
            }
            ReadMode::Possible => {
                let bound = sel.limit.unwrap_or(SelectStmt::DEFAULT_WORLD_BOUND);
                let worlds = self.read_possible(&sel.atoms, bound)?;
                Ok(Response::Worlds(
                    worlds
                        .into_iter()
                        .map(|rows| project(rows, &sel.projection))
                        .collect(),
                ))
            }
        }
    }

    fn blind_writes(
        &mut self,
        relation: &str,
        rows: &[Vec<qdb_logic::Term>],
        op: impl Fn(&str, Tuple) -> WriteOp,
    ) -> Result<Response> {
        let mut all = true;
        for row in rows {
            let tuple = row_to_tuple(relation, row)?;
            all &= self.write(op(relation, tuple))?;
        }
        Ok(Response::Written(all))
    }

    fn resolve_column(&self, relation: &str, column: &ColumnRef) -> Result<usize> {
        resolve_column_on(&self.db, relation, column)
    }
}

/// Resolve a `CREATE INDEX` column reference (name or position) against a
/// schema.
fn resolve_column_on(
    db: &qdb_storage::Database,
    relation: &str,
    column: &ColumnRef,
) -> Result<usize> {
    match column {
        ColumnRef::Position(p) => Ok(*p),
        ColumnRef::Name(name) => {
            let schema = db.table(relation)?.schema().clone();
            schema
                .columns()
                .iter()
                .position(|c| &c.name == name)
                .ok_or_else(|| {
                    EngineError::Storage(qdb_storage::StorageError::InvalidSchema(format!(
                        "no column '{name}' on '{relation}'"
                    )))
                })
        }
    }
}

impl SharedQuantumDb {
    /// Parse one statement of the unified dialect, counting the parse in
    /// [`Metrics::parses`]. Prepared statements go through it exactly once.
    pub fn prepare_statement(&self, sql: &str) -> Result<qdb_logic::ParsedStatement> {
        self.count_parse();
        let t0 = std::time::Instant::now();
        let parsed = qdb_logic::parse_statement(sql);
        self.obs().phase(qdb_obs::Phase::Parse, t0.elapsed());
        Ok(parsed?)
    }

    /// Parse and execute one statement. Statements with `?` placeholders
    /// are rejected here — prepare them through a [`Session`] instead.
    pub fn execute(&self, sql: &str) -> Result<Response> {
        let parsed = self.prepare_statement(sql)?;
        let stmt = parsed.statement()?.clone();
        self.execute_stmt(stmt)
    }

    /// Execute an already-parsed statement. Each statement class locks
    /// only the state it touches (see [`SharedQuantumDb`]); statements on
    /// disjoint partitions execute concurrently.
    ///
    /// Every statement is bracketed as one observability *op*, exactly as
    /// in [`QuantumDb::execute_stmt`] — both engines record through the
    /// same [`qdb_obs::Obs`] handle and report the same `SHOW PROFILE`
    /// shape.
    pub fn execute_stmt(&self, stmt: Statement) -> Result<Response> {
        let token = self.obs().begin_op(stmt.kind());
        let result = self.execute_stmt_inner(stmt);
        let (outcome, txn) = op_outcome(&result);
        self.obs().finish_op(token, outcome, txn);
        result
    }

    fn execute_stmt_inner(&self, stmt: Statement) -> Result<Response> {
        match stmt {
            Statement::CreateTable(schema) => {
                self.create_table(schema)?;
                Ok(Response::Ack)
            }
            Statement::CreateIndex { relation, column } => {
                let column = self.with_database(|db| resolve_column_on(db, &relation, &column))?;
                self.create_index(&relation, column)?;
                Ok(Response::Ack)
            }
            Statement::Insert { relation, rows } => {
                self.blind_writes(&relation, &rows, |r, t| WriteOp::insert(r, t))
            }
            Statement::Delete { relation, rows } => {
                self.blind_writes(&relation, &rows, |r, t| WriteOp::delete(r, t))
            }
            Statement::Select(sel) => match sel.mode {
                ReadMode::Collapse => {
                    let rows = self.read(&sel.atoms, sel.limit)?;
                    Ok(Response::Rows(project(rows, &sel.projection)))
                }
                ReadMode::Peek => {
                    let rows = self.read_peek(&sel.atoms, sel.limit)?;
                    Ok(Response::Rows(project(rows, &sel.projection)))
                }
                ReadMode::Possible => {
                    let bound = sel.limit.unwrap_or(SelectStmt::DEFAULT_WORLD_BOUND);
                    let worlds = self.read_possible(&sel.atoms, bound)?;
                    Ok(Response::Worlds(
                        worlds
                            .into_iter()
                            .map(|rows| project(rows, &sel.projection))
                            .collect(),
                    ))
                }
            },
            Statement::Transaction(txn) => {
                let txn = txn.to_transaction()?;
                Ok(match self.submit(&txn)? {
                    SubmitOutcome::Committed { id } => Response::Committed(id),
                    SubmitOutcome::Aborted => Response::Aborted,
                })
            }
            Statement::Ground(id) => {
                // Grounding one id can cascade (coordination partners,
                // strict-mode prefixes): report the actual collapse count,
                // measured under the hosting partition's lock so a racing
                // submit cannot skew it.
                Ok(Response::Grounded(self.ground_counted(id)?.unwrap_or(0)))
            }
            Statement::GroundAll => {
                // Exact count from the grounding's own plans, not a racy
                // before/after pending read.
                Ok(Response::Grounded(self.ground_all_counted()?))
            }
            Statement::Checkpoint => {
                self.checkpoint()?;
                Ok(Response::Ack)
            }
            Statement::ShowMetrics => Ok(Response::Metrics(Box::new(self.metrics()))),
            Statement::ShowPending => Ok(Response::Pending(self.pending_ids())),
            Statement::ShowProfile => Ok(Response::Profile(Box::new(self.profile()))),
            Statement::ShowEvents { limit } => Ok(Response::Events(
                self.obs().events(limit.unwrap_or(DEFAULT_EVENT_LIMIT)),
            )),
            Statement::ShowReplication => Ok(Response::Replication(Box::new(
                crate::repl::ReplicaTracker::new().report(self.wal_size(), self.last_txn_id()),
            ))),
            Statement::Promote => Err(EngineError::Invariant(
                "PROMOTE requires a replica server (this node is already a primary)".into(),
            )),
        }
    }

    fn blind_writes(
        &self,
        relation: &str,
        rows: &[Vec<qdb_logic::Term>],
        op: impl Fn(&str, Tuple) -> WriteOp,
    ) -> Result<Response> {
        let mut all = true;
        for row in rows {
            let tuple = row_to_tuple(relation, row)?;
            all &= self.write(op(relation, tuple))?;
        }
        Ok(Response::Written(all))
    }

    /// Open a [`Session`] on this handle.
    pub fn session(&self) -> Session {
        Session::new(self.clone())
    }
}

/// A bounded LRU of parsed statements, keyed by exact statement text.
///
/// Sized for statement *templates*, not statement instances: callers that
/// interpolate values into their SQL get cache misses (as they should —
/// that is what `?` parameters are for). Capacity is small enough that the
/// linear scan beats a hash map on realistic working sets.
struct StmtCache {
    capacity: usize,
    /// Most recently used last.
    entries: Vec<(String, ParsedStatement)>,
}

impl StmtCache {
    fn new(capacity: usize) -> Self {
        StmtCache {
            capacity,
            entries: Vec::new(),
        }
    }

    fn get(&mut self, sql: &str) -> Option<ParsedStatement> {
        let pos = self.entries.iter().position(|(text, _)| text == sql)?;
        let entry = self.entries.remove(pos);
        let parsed = entry.1.clone();
        self.entries.push(entry);
        Some(parsed)
    }

    fn insert(&mut self, sql: &str, parsed: ParsedStatement) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.remove(0); // least recently used
        }
        self.entries.push((sql.to_string(), parsed));
    }
}

/// A client session over a [`SharedQuantumDb`]: direct execution plus
/// prepared statements. Sessions are cheap to create and clone — they are
/// the intended per-client handle for servers and workload drivers.
///
/// Every text→statement lookup goes through a per-session LRU cache
/// (shared by clones), so repeated [`Session::execute`] of identical text
/// parses once — observable through [`Metrics::parses`]. `qdb-server`'s
/// one-shot EXECUTE path rides on this cache automatically.
///
/// ```
/// use qdb_core::{QuantumDb, QuantumDbConfig, Response};
/// use qdb_storage::Value;
///
/// let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
/// qdb.execute("CREATE TABLE Available (flight INT, seat TEXT)").unwrap();
/// let session = qdb.into_shared().session();
///
/// // Prepare once; the hot loop binds parameters and runs, never
/// // touching the parser again.
/// let insert = session.prepare("INSERT INTO Available VALUES (?, ?)").unwrap();
/// assert_eq!(insert.param_count(), 2);
/// for seat in ["5A", "5B", "5C"] {
///     let r = insert
///         .bind(&[Value::from(123), Value::from(seat)])
///         .unwrap()
///         .run()
///         .unwrap();
///     assert_eq!(r, Response::Written(true));
/// }
/// let rows = session.execute("SELECT @s FROM Available(123, @s)").unwrap();
/// assert_eq!(rows.rows().unwrap().len(), 3);
/// // One parse for the prepare, one for the select, one for the CREATE
/// // TABLE above — the three bound runs never touched the parser.
/// assert_eq!(session.shared().metrics().parses, 3);
/// ```
#[derive(Clone)]
pub struct Session {
    db: SharedQuantumDb,
    cache: std::sync::Arc<crate::sync::Mutex<StmtCache>>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").finish_non_exhaustive()
    }
}

impl Session {
    /// Statement-cache capacity of [`Session::new`].
    pub const DEFAULT_STMT_CACHE: usize = 128;

    /// Open a session on a shared engine handle with the default
    /// statement-cache capacity.
    pub fn new(db: SharedQuantumDb) -> Self {
        Session::with_stmt_cache(db, Session::DEFAULT_STMT_CACHE)
    }

    /// Open a session with an explicit statement-cache capacity
    /// (`0` disables caching — every execute parses).
    pub fn with_stmt_cache(db: SharedQuantumDb, capacity: usize) -> Self {
        Session {
            db,
            cache: std::sync::Arc::new(crate::sync::Mutex::new(StmtCache::new(capacity))),
        }
    }

    /// Parse (or fetch from the statement cache) and execute one
    /// statement.
    pub fn execute(&self, sql: &str) -> Result<Response> {
        let parsed = self.cached_parse(sql)?;
        let stmt = parsed.statement()?.clone();
        self.db.execute_stmt(stmt)
    }

    /// Parse once into a reusable [`Prepared`] statement. The hot path
    /// then re-executes via [`Prepared::bind`] + [`Bound::run`] without
    /// re-parsing ([`Metrics::parses`] counts parser entries). Served
    /// from the statement cache when the same text was seen before.
    pub fn prepare(&self, sql: &str) -> Result<Prepared> {
        let parsed = self.cached_parse(sql)?;
        Ok(Prepared {
            db: self.db.clone(),
            parsed,
        })
    }

    fn cached_parse(&self, sql: &str) -> Result<ParsedStatement> {
        if let Some(parsed) = self.cache.lock().get(sql) {
            return Ok(parsed);
        }
        let parsed = self.db.prepare_statement(sql)?;
        // A racing clone may have inserted the same text meanwhile; the
        // duplicate entry is harmless (both resolve identically, and the
        // LRU evicts the stale copy).
        self.cache.lock().insert(sql, parsed.clone());
        Ok(parsed)
    }

    /// The underlying shared handle.
    pub fn shared(&self) -> &SharedQuantumDb {
        &self.db
    }
}

/// A statement parsed once, executable many times.
#[derive(Clone)]
pub struct Prepared {
    db: SharedQuantumDb,
    parsed: ParsedStatement,
}

impl std::fmt::Debug for Prepared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prepared")
            .field("statement", &self.parsed.template().kind())
            .field("params", &self.parsed.param_count())
            .finish_non_exhaustive()
    }
}

impl Prepared {
    /// Number of positional `?` placeholders.
    pub fn param_count(&self) -> usize {
        self.parsed.param_count()
    }

    /// Statement class of the template ([`Statement::kind`]) — servers
    /// use this for per-class accounting without re-parsing.
    pub fn kind(&self) -> &'static str {
        self.parsed.template().kind()
    }

    /// Bind positional parameter values, yielding a runnable statement.
    pub fn bind(&self, params: &[Value]) -> Result<Bound> {
        Ok(Bound {
            db: self.db.clone(),
            stmt: self.parsed.bind(params)?,
        })
    }

    /// Run a parameterless prepared statement directly.
    pub fn run(&self) -> Result<Response> {
        let stmt = self.parsed.statement()?.clone();
        self.db.execute_stmt(stmt)
    }
}

/// A prepared statement with all parameters bound.
#[derive(Clone)]
pub struct Bound {
    db: SharedQuantumDb,
    stmt: Statement,
}

impl std::fmt::Debug for Bound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bound")
            .field("statement", &self.stmt.kind())
            .finish_non_exhaustive()
    }
}

impl Bound {
    /// Execute the bound statement, consuming it ([`Prepared::bind`]
    /// builds a fresh one per execution, so the hot loop pays exactly one
    /// statement materialization per run).
    pub fn run(self) -> Result<Response> {
        self.db.execute_stmt(self.stmt)
    }

    /// The statement about to run.
    pub fn statement(&self) -> &Statement {
        &self.stmt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::QuantumDbConfig;

    fn session() -> Session {
        let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
        qdb.execute("CREATE TABLE R (a INT)").unwrap();
        qdb.into_shared().session()
    }

    fn parses(s: &Session) -> u64 {
        s.shared().metrics().parses
    }

    #[test]
    fn slow_op_threshold_promotes_statements_with_their_span_tree() {
        let cfg = QuantumDbConfig {
            slow_op_threshold_us: 500,
            ..Default::default()
        };
        let mut qdb = QuantumDb::new(cfg).unwrap();
        qdb.execute("CREATE TABLE R (a INT)").unwrap();
        let shared = qdb.into_shared();
        assert!(shared.obs().slow_ops().is_empty(), "nothing slow yet");
        // The test hook stretches the next ops over the 500 µs threshold.
        shared.obs().set_test_delay_us(1_000);
        shared
            .session()
            .execute("INSERT INTO R VALUES (7)")
            .unwrap();
        shared.obs().set_test_delay_us(0);
        let slow = shared.obs().slow_ops();
        assert!(!slow.is_empty(), "delayed statement promoted");
        let op = slow.last().unwrap();
        assert_eq!(op.class, "INSERT");
        assert!(op.total_ns >= 1_000_000);
        assert!(!op.spans.is_empty(), "span tree travels with the slow op");
    }

    #[test]
    fn repeated_execute_of_identical_text_parses_once() {
        let s = session();
        let before = parses(&s);
        for _ in 0..10 {
            s.execute("INSERT INTO R VALUES (1)").unwrap();
        }
        assert_eq!(parses(&s) - before, 1, "statement cache missed");
    }

    #[test]
    fn prepare_shares_the_statement_cache_with_execute() {
        let s = session();
        let before = parses(&s);
        s.execute("SELECT * FROM R(@a)").unwrap();
        let p = s.prepare("SELECT * FROM R(@a)").unwrap();
        p.run().unwrap();
        assert_eq!(parses(&s) - before, 1);
        assert_eq!(p.kind(), "SELECT");
    }

    #[test]
    fn clones_share_one_cache_and_distinct_texts_still_parse() {
        let s = session();
        let clone = s.clone();
        let before = parses(&s);
        s.execute("INSERT INTO R VALUES (2)").unwrap();
        clone.execute("INSERT INTO R VALUES (2)").unwrap();
        clone.execute("INSERT INTO R VALUES (3)").unwrap();
        assert_eq!(parses(&s) - before, 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let s = session();
        let uncached = Session::with_stmt_cache(s.shared().clone(), 0);
        let before = parses(&uncached);
        uncached.execute("INSERT INTO R VALUES (4)").unwrap();
        uncached.execute("INSERT INTO R VALUES (4)").unwrap();
        assert_eq!(parses(&uncached) - before, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used_text() {
        let mut cache = StmtCache::new(2);
        let parsed = qdb_logic::parse_statement("SHOW METRICS").unwrap();
        cache.insert("a", parsed.clone());
        cache.insert("b", parsed.clone());
        assert!(cache.get("a").is_some()); // touch: order is now [b, a]
        cache.insert("c", parsed); // evicts b
        assert!(cache.get("b").is_none());
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn parse_errors_are_not_cached_as_successes() {
        let s = session();
        assert!(s.execute("SELECT FROM nothing").is_err());
        assert!(s.execute("SELECT FROM nothing").is_err());
    }
}
