//! Engine-side pending transactions.

use qdb_logic::ResourceTransaction;

/// Engine-assigned transaction identifier; also the arrival order.
pub type TxnId = u64;

/// A committed resource transaction whose value assignment is still
/// pending — the intensional portion of the quantum database state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingTxn {
    /// Engine-assigned id (monotone in arrival order).
    pub id: TxnId,
    /// The transaction, with variables freshened into the engine's global
    /// variable space.
    pub txn: ResourceTransaction,
}

impl PendingTxn {
    /// Build a pending entry.
    pub fn new(id: TxnId, txn: ResourceTransaction) -> Self {
        PendingTxn { id, txn }
    }
}

impl std::fmt::Display for PendingTxn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}: {}", self.id, self.txn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_logic::parse_transaction;

    #[test]
    fn display_includes_id_and_body() {
        let t = parse_transaction("-A(x) :-1 A(x)").unwrap();
        let p = PendingTxn::new(7, t);
        assert_eq!(p.to_string(), "T7: -A(x) :-1 A(x)");
    }
}
