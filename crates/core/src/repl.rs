//! Primary/replica WAL-shipping replication.
//!
//! The paper's quantum reads are naturally stale-tolerant: a replica's
//! possible worlds at its **replication horizon** (the highest transaction
//! id it has applied) are a valid answer to any §3.2.2 read — the
//! uncertainty a replica reports is real uncertainty the primary also had
//! at that point in the log. That makes log shipping the whole replication
//! story: the primary's WAL *is* the state (log order equals txn-id
//! order), so a replica that replays a byte-exact prefix of the primary's
//! log holds a byte-exact earlier version of the primary's quantum state.
//!
//! The pieces, bottom-up:
//!
//! * [`QuantumDb::apply_replicated`] — replay one primary log record into a
//!   replica engine. Unlike crash recovery (which re-solves pending
//!   transactions from scratch), replicated replay is **incremental** and
//!   **choice-preserving**: a `Ground` record applies the primary's logged
//!   write ops verbatim, never re-solving — both nodes land in the same
//!   world.
//! * [`ReplicaApplier`] — a replica engine plus stream cursor. The primary
//!   slices its WAL at arbitrary byte offsets (it neither knows nor cares
//!   about frame boundaries), so the applier buffers a partial-frame tail
//!   and advances by whatever [`qdb_storage::wal::replay_bytes`] consumed.
//! * [`ReplicaTracker`] — the primary-side ledger of per-replica progress
//!   backing `SHOW REPLICATION`.
//! * [`QuantumDb::wal_stream_from`] — the primary-side read: one bounded
//!   chunk of WAL bytes past an offset.
//!
//! Promotion ([`ReplicaApplier::promote`]) reuses crash recovery: the
//! replica's local WAL (written record-for-record during replay) is
//! re-recovered exactly as if the process had crashed, which both proves
//! the log is a valid engine history and resets solver/metrics state for
//! a primary's write workload.

use std::collections::BTreeMap;

use qdb_logic::codec::decode_transaction;
use qdb_solver::CachedSolution;
use qdb_storage::wal::{replay_bytes, MemorySink};
use qdb_storage::{LogRecord, Wal, WriteOp};

use crate::engine::QuantumDb;
use crate::error::EngineError;
use crate::ground::GroundReason;
use crate::txn::TxnId;
use crate::Result;

/// Which side of the replication stream a node is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationRole {
    /// Accepts writes; serves WAL segments to replicas.
    Primary,
    /// Applies the primary's WAL; serves reads at its horizon; refuses
    /// writes.
    Replica,
}

impl std::fmt::Display for ReplicationRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicationRole::Primary => write!(f, "primary"),
            ReplicationRole::Replica => write!(f, "replica"),
        }
    }
}

/// One replica's progress as the primary sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// Replica-chosen identifier (stable across reconnects).
    pub id: String,
    /// Primary WAL bytes the replica has fully applied (its last ack).
    pub acked_offset: u64,
    /// Replication horizon: highest transaction id the replica has
    /// applied. Reads served by the replica are explainable at this id.
    pub horizon: TxnId,
    /// Primary WAL length minus `acked_offset` at the last observation.
    pub lag_bytes: u64,
    /// WAL segments served to this replica (polls answered).
    pub segments: u64,
}

/// The `SHOW REPLICATION` payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicationReport {
    /// This node's role.
    pub role: ReplicationRole,
    /// Local WAL length in bytes (on a replica: bytes applied locally).
    pub wal_len: u64,
    /// Highest transaction id this node has assigned (primary) or applied
    /// (replica); 0 when none.
    pub last_txn_id: TxnId,
    /// Per-replica progress (primary only; replicas report their own
    /// upstream cursor as a single entry named `upstream`).
    pub replicas: Vec<ReplicaStatus>,
}

impl std::fmt::Display for ReplicationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} wal_len={} last_txn={} replicas={}",
            self.role,
            self.wal_len,
            self.last_txn_id,
            self.replicas.len()
        )?;
        for r in &self.replicas {
            write!(
                f,
                " [{} acked={} horizon={} lag={} segments={}]",
                r.id, r.acked_offset, r.horizon, r.lag_bytes, r.segments
            )?;
        }
        Ok(())
    }
}

/// Primary-side ledger of replica progress. Purely observational — the
/// primary never waits for acks (replication is asynchronous; the
/// durability point is the primary's own WAL, as before).
#[derive(Debug, Clone, Default)]
pub struct ReplicaTracker {
    replicas: BTreeMap<String, ReplicaStatus>,
}

impl ReplicaTracker {
    /// Empty ledger.
    pub fn new() -> Self {
        ReplicaTracker::default()
    }

    /// A replica polled for bytes past `from_offset` (counts the answered
    /// segment and refreshes lag against `wal_len`).
    pub fn observe_poll(&mut self, id: &str, from_offset: u64, wal_len: u64) {
        let entry = self.entry(id);
        entry.segments += 1;
        entry.lag_bytes = wal_len.saturating_sub(from_offset.max(entry.acked_offset));
    }

    /// A replica acknowledged `applied_offset` / `horizon`.
    pub fn observe_ack(&mut self, id: &str, applied_offset: u64, horizon: TxnId, wal_len: u64) {
        let entry = self.entry(id);
        entry.acked_offset = entry.acked_offset.max(applied_offset);
        entry.horizon = entry.horizon.max(horizon);
        entry.lag_bytes = wal_len.saturating_sub(entry.acked_offset);
    }

    /// Progress of one replica, if it has ever polled or acked.
    pub fn status(&self, id: &str) -> Option<&ReplicaStatus> {
        self.replicas.get(id)
    }

    /// The `SHOW REPLICATION` report for a primary at `wal_len` /
    /// `last_txn_id`.
    pub fn report(&self, wal_len: u64, last_txn_id: TxnId) -> ReplicationReport {
        ReplicationReport {
            role: ReplicationRole::Primary,
            wal_len,
            last_txn_id,
            replicas: self
                .replicas
                .values()
                .map(|r| ReplicaStatus {
                    lag_bytes: wal_len.saturating_sub(r.acked_offset),
                    ..r.clone()
                })
                .collect(),
        }
    }

    fn entry(&mut self, id: &str) -> &mut ReplicaStatus {
        self.replicas
            .entry(id.to_string())
            .or_insert_with(|| ReplicaStatus {
                id: id.to_string(),
                acked_offset: 0,
                horizon: 0,
                lag_bytes: 0,
                segments: 0,
            })
    }
}

impl QuantumDb {
    /// Primary-side stream read: up to `max` WAL bytes starting at
    /// `offset`, plus the current WAL length and last assigned txn id.
    /// An empty byte vector means the replica is caught up. Offsets past
    /// the end are clamped (a replica that over-acked is simply told the
    /// true length and polls again).
    pub fn wal_stream_from(&mut self, offset: u64, max: usize) -> (u64, TxnId, Vec<u8>) {
        let image = self.wal_image();
        let len = image.len() as u64;
        let last_txn = self.last_txn_id();
        let start = offset.min(len) as usize;
        let end = (start + max).min(image.len());
        (len, last_txn, image[start..end].to_vec())
    }

    /// Replay one primary log record into this (replica) engine.
    ///
    /// DDL and blind writes go through the normal engine paths (which
    /// re-log them locally, keeping the replica's WAL a valid history for
    /// promotion). `PendingAdd` re-admits the transaction without
    /// re-solving the choice; `Ground` applies the primary's logged ops
    /// **verbatim** — re-solving locally could pick a different world than
    /// the primary did, silently diverging the two nodes.
    pub fn apply_replicated(&mut self, record: &LogRecord) -> Result<()> {
        match record {
            LogRecord::CreateTable(schema) => self.create_table(schema.clone()),
            LogRecord::CreateIndex { relation, column } => {
                // Idempotent: the replica may have auto-promoted the same
                // index from its own read traffic.
                self.create_index(relation, *column as usize)
            }
            LogRecord::Write(op) => {
                if !self.write(op.clone())? {
                    return Err(EngineError::Invariant(format!(
                        "replicated write on '{}' was rejected locally — replica state \
                         diverged from the stream",
                        op.relation()
                    )));
                }
                Ok(())
            }
            LogRecord::PendingAdd { id, payload } => self.replicate_pending_add(*id, payload),
            LogRecord::PendingRemove { id } => self.replicate_ground(*id, &[]),
            LogRecord::Ground { id, ops } => self.replicate_ground(*id, ops),
            LogRecord::Checkpoint => self.checkpoint(),
        }
    }

    /// Re-admit a pending transaction from the stream, preserving the
    /// primary's id and logging the same `PendingAdd` locally.
    fn replicate_pending_add(&mut self, id: TxnId, payload: &[u8]) -> Result<()> {
        let txn = decode_transaction(payload).map_err(EngineError::Logic)?;
        for v in txn.vars() {
            self.vargen.reserve_through(v.id());
        }
        self.metrics.submitted += 1;
        if !self.admit_recovered(id, txn)? {
            // The primary admitted it against the same prefix: a local
            // refusal means the states diverged, not a normal abort.
            return Err(EngineError::RecoveryUnsatisfiable { txn: id });
        }
        self.wal.append(&LogRecord::PendingAdd {
            id,
            payload: payload.to_vec(),
        })?;
        self.next_txn_id = self.next_txn_id.max(id + 1);
        self.metrics.committed += 1;
        let pending = self.pending_count() as u64;
        self.metrics.max_pending = self.metrics.max_pending.max(pending);
        Ok(())
    }

    /// Collapse a pending transaction the way the primary did: apply the
    /// primary's logged ops (no local solve), drop the transaction, and
    /// re-verify the partition's remaining cache against the new base.
    fn replicate_ground(&mut self, id: TxnId, ops: &[WriteOp]) -> Result<()> {
        let Some((pid, pos)) = self.find_txn(id) else {
            return Err(EngineError::Invariant(format!(
                "replicated ground of unknown pending transaction {id}"
            )));
        };
        for op in ops {
            self.db.apply(op)?;
        }
        {
            let p = self
                .partitions
                .get_mut(&pid)
                .expect("find_txn returned a live partition");
            p.remove(pos);
            // The base and the valuation list both changed: alternatives
            // and the admission overlay are no longer known-good.
            p.invalidate_solution_caches();
        }
        if self.partitions[&pid].is_empty() {
            self.partitions.remove(&pid);
        } else {
            // The primary refreshed the surviving valuations at ground
            // time; the replica's cache may be stale against the new base.
            // Same verify-then-resolve dance as a blind write.
            let p = &self.partitions[&pid];
            let refs = p.txn_refs();
            if !p.cache.verify(&mut self.solver, &self.db, &refs)? {
                match CachedSolution::resolve(&mut self.solver, &self.db, &refs)? {
                    Some(cache) => {
                        self.partitions
                            .get_mut(&pid)
                            .expect("partition still present")
                            .cache = cache;
                    }
                    None => {
                        return Err(EngineError::Invariant(format!(
                            "replicated ground of {id} left its partition unsatisfiable"
                        )))
                    }
                }
            }
        }
        let record = if ops.is_empty() {
            LogRecord::PendingRemove { id }
        } else {
            LogRecord::Ground {
                id,
                ops: ops.to_vec(),
            }
        };
        self.wal.append(&record)?;
        self.metrics.record_ground(GroundReason::Explicit);
        Ok(())
    }
}

/// A replica engine plus its stream cursor.
///
/// The primary slices its WAL at arbitrary byte offsets; the applier
/// buffers whatever partial frame trails a segment and advances its
/// applied offset only by fully-replayed bytes, so stream progress is
/// exact regardless of how the segments happen to split frames.
#[derive(Debug)]
pub struct ReplicaApplier {
    db: QuantumDb,
    /// Bytes received but not yet frame-complete.
    tail: Vec<u8>,
    /// Primary WAL bytes fully applied.
    applied_offset: u64,
    /// Highest transaction id applied (`PendingAdd` / `Ground`).
    horizon: TxnId,
    /// Segments applied (non-empty `apply_segment` calls).
    segments: u64,
}

impl ReplicaApplier {
    /// Wrap a fresh engine (it should be empty: the stream starts at
    /// offset 0 and replays the primary's history from the beginning).
    pub fn new(db: QuantumDb) -> Self {
        ReplicaApplier {
            db,
            tail: Vec::new(),
            applied_offset: 0,
            horizon: 0,
            segments: 0,
        }
    }

    /// The replica engine (reads are served from here).
    pub fn db(&self) -> &QuantumDb {
        &self.db
    }

    /// Mutable access for serving reads (peek/possible paths take `&mut`
    /// for metrics).
    pub fn db_mut(&mut self) -> &mut QuantumDb {
        &mut self.db
    }

    /// Primary WAL bytes fully applied.
    pub fn applied_offset(&self) -> u64 {
        self.applied_offset
    }

    /// Where the next poll should start: applied bytes plus the buffered
    /// partial frame.
    pub fn fetch_offset(&self) -> u64 {
        self.applied_offset + self.tail.len() as u64
    }

    /// Replication horizon: highest transaction id applied.
    pub fn horizon(&self) -> TxnId {
        self.horizon
    }

    /// Segments applied so far.
    pub fn segments(&self) -> u64 {
        self.segments
    }

    /// This replica's own `SHOW REPLICATION` view: a single `upstream`
    /// entry carrying its cursor.
    pub fn report(&self) -> ReplicationReport {
        ReplicationReport {
            role: ReplicationRole::Replica,
            wal_len: self.applied_offset,
            last_txn_id: self.horizon,
            replicas: vec![ReplicaStatus {
                id: "upstream".to_string(),
                acked_offset: self.applied_offset,
                horizon: self.horizon,
                lag_bytes: self.tail.len() as u64,
                segments: self.segments,
            }],
        }
    }

    /// Apply one WAL segment. `start_offset` must equal
    /// [`ReplicaApplier::fetch_offset`] — segments are a contiguous byte
    /// stream. Returns the number of log records applied (0 when the
    /// segment only extended a partial frame).
    pub fn apply_segment(&mut self, start_offset: u64, bytes: &[u8]) -> Result<usize> {
        if start_offset != self.fetch_offset() {
            return Err(EngineError::Invariant(format!(
                "replication segment starts at byte {start_offset} but the stream \
                 cursor is at {}",
                self.fetch_offset()
            )));
        }
        if bytes.is_empty() {
            return Ok(0);
        }
        self.tail.extend_from_slice(bytes);
        let (records, consumed) = replay_bytes(&self.tail).map_err(EngineError::Storage)?;
        for record in &records {
            self.db.apply_replicated(record)?;
            match record {
                LogRecord::PendingAdd { id, .. } | LogRecord::Ground { id, .. } => {
                    self.horizon = self.horizon.max(*id);
                }
                _ => {}
            }
        }
        self.applied_offset += consumed;
        self.tail.drain(..consumed as usize);
        self.segments += 1;
        Ok(records.len())
    }

    /// Promote: recover a primary-ready engine from the replica's local
    /// WAL, exactly as crash recovery would (the buffered partial frame is
    /// discarded — it was never applied, hence never acknowledged by this
    /// replica). Proves the replayed log is a valid engine history.
    pub fn promote(mut self) -> Result<QuantumDb> {
        let config = self.db.config().clone();
        let image = self.db.wal_image();
        let wal = Wal::with_sink(Box::new(MemorySink::from_bytes(image)));
        QuantumDb::recover(wal, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::QuantumDbConfig;
    use crate::worlds::world_fingerprint;
    use qdb_logic::parse_transaction;
    use qdb_storage::{tuple, Schema, ValueType};

    fn primary() -> QuantumDb {
        let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
        qdb.create_table(Schema::new(
            "Available",
            vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
        ))
        .unwrap();
        qdb.create_table(Schema::new(
            "Bookings",
            vec![
                ("name", ValueType::Str),
                ("flight", ValueType::Int),
                ("seat", ValueType::Str),
            ],
        ))
        .unwrap();
        for s in ["1A", "1B", "1C"] {
            qdb.bulk_insert("Available", vec![tuple![1, s]]).unwrap();
        }
        qdb
    }

    fn book(name: &str) -> qdb_logic::ResourceTransaction {
        parse_transaction(&format!(
            "-Available(1, s), +Bookings('{name}', 1, s) :-1 Available(1, s)"
        ))
        .unwrap()
    }

    fn replica() -> ReplicaApplier {
        ReplicaApplier::new(QuantumDb::new(QuantumDbConfig::default()).unwrap())
    }

    /// Stream the primary's whole WAL in `chunk`-byte segments.
    fn ship(primary: &mut QuantumDb, replica: &mut ReplicaApplier, chunk: usize) {
        loop {
            let (len, _, bytes) = primary.wal_stream_from(replica.fetch_offset(), chunk);
            if bytes.is_empty() {
                assert_eq!(replica.fetch_offset(), len, "caught up means offset == len");
                break;
            }
            let at = replica.fetch_offset();
            replica.apply_segment(at, &bytes).unwrap();
        }
    }

    #[test]
    fn replica_replays_to_identical_state_at_any_chunk_size() {
        // Odd chunk sizes force partial frames at every possible split.
        for chunk in [1, 3, 7, 64, 4096] {
            let mut p = primary();
            assert!(p.submit(&book("Mickey")).unwrap().is_committed());
            assert!(p.submit(&book("Donald")).unwrap().is_committed());
            p.write(qdb_storage::WriteOp::insert("Available", tuple![1, "1D"]))
                .unwrap();
            let mut r = replica();
            ship(&mut p, &mut r, chunk);
            assert_eq!(r.db().pending_count(), 2);
            assert_eq!(r.horizon(), 1, "two pending txns: ids 0 and 1");
            assert_eq!(
                world_fingerprint(&r.db().db),
                world_fingerprint(&p.db),
                "chunk={chunk}: replica must reach the primary's quantum state"
            );
        }
    }

    #[test]
    fn ground_records_replay_verbatim_not_resolved() {
        let mut p = primary();
        let id = p.submit(&book("Mickey")).unwrap().id().unwrap();
        p.ground(id).unwrap();
        // Whatever seat the primary chose is fixed in the log.
        let chosen: Vec<_> = p.query("Bookings('Mickey', 1, s)").unwrap();
        let mut r = replica();
        ship(&mut p, &mut r, 16);
        assert_eq!(r.db().pending_count(), 0);
        assert_eq!(r.horizon(), id);
        // The replica sees the *same* seat — it replayed the choice, it
        // did not re-make it.
        let mut replica_db = r.promote().unwrap();
        let replayed = replica_db.query("Bookings('Mickey', 1, s)").unwrap();
        assert_eq!(chosen, replayed);
    }

    #[test]
    fn promotion_recovers_a_writable_engine() {
        let mut p = primary();
        assert!(p.submit(&book("Mickey")).unwrap().is_committed());
        let mut r = replica();
        ship(&mut p, &mut r, 32);
        let mut promoted = r.promote().unwrap();
        assert_eq!(promoted.pending_count(), 1);
        // Promoted node continues the txn-id sequence and accepts writes.
        let outcome = promoted.submit(&book("Donald")).unwrap();
        assert_eq!(outcome.id(), Some(1));
        assert!(promoted
            .write(qdb_storage::WriteOp::insert("Available", tuple![2, "9F"]))
            .unwrap());
    }

    #[test]
    fn noncontiguous_segment_is_refused() {
        let mut p = primary();
        let mut r = replica();
        let (_, _, bytes) = p.wal_stream_from(0, 1 << 20);
        r.apply_segment(0, &bytes).unwrap();
        let err = r.apply_segment(0, &bytes).unwrap_err();
        assert!(matches!(err, EngineError::Invariant(_)));
    }

    #[test]
    fn tracker_reports_lag_against_current_wal_len() {
        let mut t = ReplicaTracker::new();
        t.observe_poll("r1", 0, 100);
        t.observe_ack("r1", 60, 3, 100);
        t.observe_poll("r2", 0, 100);
        let report = t.report(140, 9);
        assert_eq!(report.role, ReplicationRole::Primary);
        assert_eq!(report.replicas.len(), 2);
        let r1 = &report.replicas[0];
        assert_eq!((r1.id.as_str(), r1.acked_offset, r1.horizon), ("r1", 60, 3));
        assert_eq!(r1.lag_bytes, 80, "lag recomputed against the fresh len");
        assert_eq!(report.replicas[1].lag_bytes, 140);
        // Stale acks never move progress backwards.
        t.observe_ack("r1", 40, 2, 140);
        assert_eq!(t.status("r1").unwrap().acked_offset, 60);
    }

    #[test]
    fn replica_serves_reads_at_its_horizon() {
        let mut p = primary();
        assert!(p.submit(&book("Mickey")).unwrap().is_committed());
        let mut r = replica();
        ship(&mut p, &mut r, 64);
        // Peek and possible-worlds reads work on the replica without
        // grounding anything (pending stays pending).
        let q = qdb_logic::parse_query("Bookings('Mickey', 1, s)").unwrap();
        let peek = r.db_mut().read_peek(&q.atoms, None).unwrap();
        assert_eq!(peek.len(), 1);
        let worlds = r.db_mut().read_possible(&q.atoms, 16).unwrap();
        assert_eq!(worlds.len(), 3, "one world per available seat");
        assert_eq!(r.db().pending_count(), 1, "reads must not collapse");
    }
}
