//! The qdb wire protocol: length-prefixed binary frames over TCP.
//!
//! This module is the single source of truth for the bytes exchanged
//! between `qdb-server` and `qdb-client`. Both sides depend only on this
//! crate, so the protocol cannot drift between them. The encoding reuses
//! the workspace codec idioms: little-endian integers via the local
//! [`bytes`] crate and length-prefixed strings / tagged values via
//! [`qdb_storage::codec`] — the same building blocks as the WAL and the
//! transaction codec.
//!
//! ## Frame layout
//!
//! ```text
//! ┌────────────┬─────────┬────────────────┬──────────────┐
//! │ u32 length │ u8 kind │ u32 request id │ body (bytes) │
//! └────────────┴─────────┴────────────────┴──────────────┘
//! ```
//!
//! `length` counts everything after itself (kind + request id + body) and
//! is capped at [`MAX_FRAME`]. The request id is chosen by the client and
//! echoed verbatim in the response, which is what makes pipelining safe:
//! a client may have many frames in flight and match responses to
//! requests purely by arrival order (the server preserves per-connection
//! order) or by id.
//!
//! ## Request kinds
//!
//! | kind | name    | body                                              |
//! |------|---------|---------------------------------------------------|
//! | 0x01 | EXECUTE | sql string                                        |
//! | 0x02 | PREPARE | client-chosen stmt id (u32), sql string           |
//! | 0x03 | BIND    | stmt id (u32), client-chosen bound id (u32), u32 param count, values |
//! | 0x04 | RUN     | bound id (u32)                                    |
//! | 0x05 | REPLICATE | replica id (string), from offset (u64)          |
//! | 0x06 | REPL_ACK  | replica id (string), applied offset (u64), horizon (u64) |
//!
//! Statement and bound ids are **client-assigned** so that
//! `PREPARE`/`BIND`/`RUN` can be pipelined in a single flush without
//! waiting for the server to hand ids back.
//!
//! ## Response kinds
//!
//! One per [`Response`] variant plus `PREPARED`, `BOUND` and `ERROR`; see
//! [`Reply`]. Every engine error crosses the wire as an `ERROR` frame
//! carrying a stable [error code](code) and the display message — the
//! server never panics a connection over a bad statement.

use bytes::{Buf, BufMut, BytesMut};
use qdb_logic::{Valuation, Var};
use qdb_storage::codec as scodec;
use qdb_storage::Value;

use crate::error::EngineError;
use crate::exec::Response;
use crate::metrics::Metrics;
use crate::txn::TxnId;

/// Hard cap on a frame's payload (defensive: a corrupt or hostile length
/// prefix must not drive an allocation).
pub const MAX_FRAME: usize = 16 << 20;

/// Sanity cap on encoded/decoded element counts (rows, worlds, params).
pub const MAX_COUNT: usize = 1 << 20;

// -- Frame kinds -------------------------------------------------------------

/// Request frame kinds.
pub mod req {
    /// One-shot parse-and-execute of a sql string.
    pub const EXECUTE: u8 = 0x01;
    /// Parse once server-side under a client-chosen statement id.
    pub const PREPARE: u8 = 0x02;
    /// Bind positional parameters to a prepared statement.
    pub const BIND: u8 = 0x03;
    /// Run (and consume) a bound statement.
    pub const RUN: u8 = 0x04;
    /// Replica → primary: poll for WAL bytes past an offset.
    pub const REPLICATE: u8 = 0x05;
    /// Replica → primary: report the applied offset + replication horizon.
    pub const REPL_ACK: u8 = 0x06;
}

/// Response frame kinds.
pub mod resp {
    /// `Response::Rows`.
    pub const ROWS: u8 = 0x10;
    /// `Response::Worlds`.
    pub const WORLDS: u8 = 0x11;
    /// `Response::Committed`.
    pub const COMMITTED: u8 = 0x12;
    /// `Response::Aborted`.
    pub const ABORTED: u8 = 0x13;
    /// `Response::Written`.
    pub const WRITTEN: u8 = 0x14;
    /// `Response::Grounded`.
    pub const GROUNDED: u8 = 0x15;
    /// `Response::Metrics` + the serving process's [`super::ServerStats`].
    pub const METRICS: u8 = 0x16;
    /// `Response::Pending`.
    pub const PENDING: u8 = 0x17;
    /// `Response::Ack`.
    pub const ACK: u8 = 0x18;
    /// `Response::Profile` (`SHOW PROFILE`).
    pub const PROFILE: u8 = 0x19;
    /// `Response::Events` (`SHOW EVENTS`).
    pub const EVENTS: u8 = 0x1A;
    /// A chunk of primary WAL bytes (answers a `REPLICATE` poll).
    pub const WAL_SEGMENT: u8 = 0x1B;
    /// `Response::Replication` (`SHOW REPLICATION`).
    pub const REPLICATION: u8 = 0x1C;
    /// Acknowledges a PREPARE.
    pub const PREPARED: u8 = 0x20;
    /// Acknowledges a BIND.
    pub const BOUND: u8 = 0x21;
    /// Any failure: error code + message.
    pub const ERROR: u8 = 0x2F;
}

/// Stable error codes carried by `ERROR` frames.
pub mod code {
    /// [`crate::EngineError::Storage`].
    pub const STORAGE: u8 = 1;
    /// [`crate::EngineError::Logic`] (parse errors, range restriction,
    /// parameter-count mismatches, …).
    pub const LOGIC: u8 = 2;
    /// [`crate::EngineError::Solver`].
    pub const SOLVER: u8 = 3;
    /// [`crate::EngineError::Invariant`].
    pub const INVARIANT: u8 = 4;
    /// [`crate::EngineError::RecoveryUnsatisfiable`].
    pub const RECOVERY: u8 = 5;
    /// Malformed frame or unknown frame kind.
    pub const PROTOCOL: u8 = 6;
    /// `BIND`/`RUN` referenced a statement or bound id the connection
    /// never created (or already consumed).
    pub const UNKNOWN_ID: u8 = 7;
    /// `EXECUTE` of a statement that still has `?` placeholders.
    pub const PARAMS: u8 = 8;
    /// A write-class statement reached a read-only replica. Clients treat
    /// this as "wrong node" and fail over to the primary.
    pub const READ_ONLY: u8 = 9;
}

/// The error code an [`EngineError`] maps to on the wire.
pub fn code_for(e: &EngineError) -> u8 {
    match e {
        EngineError::Storage(_) => code::STORAGE,
        EngineError::Logic(_) => code::LOGIC,
        EngineError::Solver(_) => code::SOLVER,
        EngineError::Invariant(_) => code::INVARIANT,
        EngineError::RecoveryUnsatisfiable { .. } => code::RECOVERY,
    }
}

// -- Error type --------------------------------------------------------------

/// A frame that could not be encoded or decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl From<qdb_storage::StorageError> for WireError {
    fn from(e: qdb_storage::StorageError) -> Self {
        WireError(e.to_string())
    }
}

type Result<T> = std::result::Result<T, WireError>;

fn need(buf: &impl Buf, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        return Err(WireError(format!(
            "truncated {what}: need {n} bytes, have {}",
            buf.remaining()
        )));
    }
    Ok(())
}

fn get_count(buf: &mut impl Buf, what: &str) -> Result<usize> {
    need(buf, 4, what)?;
    let n = buf.get_u32_le() as usize;
    if n > MAX_COUNT {
        return Err(WireError(format!("implausible {what} {n}")));
    }
    Ok(n)
}

// -- Requests ----------------------------------------------------------------

/// A decoded request frame body.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Parse and execute `sql` in one round trip.
    Execute {
        /// Statement text.
        sql: String,
    },
    /// Parse `sql` once and remember it under `stmt`.
    Prepare {
        /// Client-chosen statement id.
        stmt: u32,
        /// Statement text.
        sql: String,
    },
    /// Bind positional parameters to `stmt`, remembering the result under
    /// `bound`.
    Bind {
        /// Statement id from a previous `Prepare`.
        stmt: u32,
        /// Client-chosen bound id.
        bound: u32,
        /// Positional parameter values.
        params: Vec<Value>,
    },
    /// Run (and consume) `bound`.
    Run {
        /// Bound id from a previous `Bind`.
        bound: u32,
    },
    /// Replica → primary: poll for WAL bytes past `from_offset`. Answered
    /// with one [`Reply::WalSegment`] (empty when caught up) — pull-based,
    /// so replication rides the ordinary request/response machinery.
    Replicate {
        /// Replica-chosen identifier, stable across reconnects (keys the
        /// primary's `SHOW REPLICATION` ledger).
        replica_id: String,
        /// Primary WAL byte offset the replica wants bytes from (its
        /// applied offset plus any buffered partial frame).
        from_offset: u64,
    },
    /// Replica → primary: progress report. Answered with an `ACK`.
    ReplAck {
        /// Replica-chosen identifier.
        replica_id: String,
        /// Primary WAL bytes the replica has fully applied.
        applied_offset: u64,
        /// Highest transaction id the replica has applied.
        horizon: u64,
    },
}

/// Encode a complete request frame (including the length prefix).
pub fn encode_request(request_id: u32, request: &Request) -> Vec<u8> {
    let mut body = BytesMut::with_capacity(64);
    let kind = match request {
        Request::Execute { sql } => {
            scodec::put_string(&mut body, sql);
            req::EXECUTE
        }
        Request::Prepare { stmt, sql } => {
            body.put_u32_le(*stmt);
            scodec::put_string(&mut body, sql);
            req::PREPARE
        }
        Request::Bind {
            stmt,
            bound,
            params,
        } => {
            body.put_u32_le(*stmt);
            body.put_u32_le(*bound);
            body.put_u32_le(params.len() as u32);
            for v in params {
                scodec::put_value(&mut body, v);
            }
            req::BIND
        }
        Request::Run { bound } => {
            body.put_u32_le(*bound);
            req::RUN
        }
        Request::Replicate {
            replica_id,
            from_offset,
        } => {
            scodec::put_string(&mut body, replica_id);
            body.put_u64_le(*from_offset);
            req::REPLICATE
        }
        Request::ReplAck {
            replica_id,
            applied_offset,
            horizon,
        } => {
            scodec::put_string(&mut body, replica_id);
            body.put_u64_le(*applied_offset);
            body.put_u64_le(*horizon);
            req::REPL_ACK
        }
    };
    finish_frame(kind, request_id, &body)
}

/// Decode a request frame body.
pub fn decode_request(frame: &Frame) -> Result<Request> {
    let buf = &mut frame.body.as_slice();
    let request = match frame.kind {
        req::EXECUTE => Request::Execute {
            sql: scodec::get_string(buf)?,
        },
        req::PREPARE => {
            need(buf, 4, "stmt id")?;
            Request::Prepare {
                stmt: buf.get_u32_le(),
                sql: scodec::get_string(buf)?,
            }
        }
        req::BIND => {
            need(buf, 8, "bind ids")?;
            let stmt = buf.get_u32_le();
            let bound = buf.get_u32_le();
            let n = get_count(buf, "param count")?;
            let mut params = Vec::with_capacity(n);
            for _ in 0..n {
                params.push(scodec::get_value(buf)?);
            }
            Request::Bind {
                stmt,
                bound,
                params,
            }
        }
        req::RUN => {
            need(buf, 4, "bound id")?;
            Request::Run {
                bound: buf.get_u32_le(),
            }
        }
        req::REPLICATE => {
            let replica_id = scodec::get_string(buf)?;
            need(buf, 8, "replication offset")?;
            Request::Replicate {
                replica_id,
                from_offset: buf.get_u64_le(),
            }
        }
        req::REPL_ACK => {
            let replica_id = scodec::get_string(buf)?;
            need(buf, 16, "replication ack")?;
            Request::ReplAck {
                replica_id,
                applied_offset: buf.get_u64_le(),
                horizon: buf.get_u64_le(),
            }
        }
        k => return Err(WireError(format!("unknown request kind 0x{k:02x}"))),
    };
    expect_drained(buf)?;
    Ok(request)
}

// -- Replies -----------------------------------------------------------------

/// Serving-process counters attached to every `SHOW METRICS` response (the
/// engine's own [`Metrics`] travel alongside). Maintained by `qdb-server`;
/// defined here so both ends agree on the encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted since the server started.
    pub connections: u64,
    /// Request frames successfully decoded.
    pub frames_decoded: u64,
    /// Payload bytes read off the network.
    pub bytes_in: u64,
    /// Payload bytes written to the network.
    pub bytes_out: u64,
    /// Connections currently open (gauge).
    pub conns_open: u64,
    /// Highest number of simultaneously open connections observed.
    pub conns_peak: u64,
    /// Connections accepted then immediately closed because the server
    /// was at its `max_connections` admission limit.
    pub conns_refused: u64,
    /// Connections reaped by the idle-timeout wheel.
    pub conns_idle_closed: u64,
    /// Times an executor stopped draining a connection because its
    /// outbox hit the backpressure limit.
    pub outbox_full_stalls: u64,
    /// Statements executed, counted per statement class
    /// ([`qdb_logic::Statement::kind`]), sorted by class name.
    pub statement_classes: Vec<(String, u64)>,
}

impl ServerStats {
    /// Count for one statement class, if any executed.
    pub fn class(&self, kind: &str) -> Option<u64> {
        self.statement_classes
            .iter()
            .find(|(k, _)| k == kind)
            .map(|(_, n)| *n)
    }

    /// Total statements executed across all classes.
    pub fn statements_total(&self) -> u64 {
        self.statement_classes.iter().map(|(_, n)| n).sum()
    }
}

impl std::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "connections={} (open={} peak={} refused={} idle_closed={}) \
             frames={} bytes(in/out)={}/{} stalls={} statements={}",
            self.connections,
            self.conns_open,
            self.conns_peak,
            self.conns_refused,
            self.conns_idle_closed,
            self.frames_decoded,
            self.bytes_in,
            self.bytes_out,
            self.outbox_full_stalls,
            self.statements_total(),
        )
    }
}

/// A decoded response frame body.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Any [`Response`] except `Metrics` (which travels as [`Reply::Stats`]).
    Engine(Response),
    /// `SHOW METRICS`: engine metrics plus the serving process's counters.
    Stats {
        /// Engine metrics snapshot (the event trace is not wired).
        engine: Box<Metrics>,
        /// Server-side counters.
        server: ServerStats,
        /// Latency histogram summaries, when the server attaches them.
        /// Encoded *after* the server stats, so old decoders that stop at
        /// the stats and new decoders reading an old frame (nothing left
        /// in the buffer → `None`) both keep working.
        profile: Option<Box<qdb_obs::ProfileReport>>,
    },
    /// PREPARE succeeded.
    Prepared {
        /// Echo of the client-chosen statement id.
        stmt: u32,
        /// Number of positional `?` placeholders.
        params: u32,
    },
    /// BIND succeeded.
    Bound {
        /// Echo of the client-chosen bound id.
        bound: u32,
    },
    /// One chunk of primary WAL bytes (answers a [`Request::Replicate`]).
    /// Empty `bytes` means the replica is caught up at `primary_wal_len`.
    WalSegment {
        /// Byte offset these bytes start at (echo of the poll's
        /// `from_offset`, clamped to the WAL length).
        start_offset: u64,
        /// Total primary WAL length — `primary_wal_len − applied bytes`
        /// is the replica's lag.
        primary_wal_len: u64,
        /// Highest transaction id the primary has assigned.
        last_txn_id: u64,
        /// Raw WAL bytes. May start or end mid-frame: the replica buffers
        /// partial frames and advances by what fully replays.
        bytes: Vec<u8>,
    },
    /// The request failed.
    Error {
        /// Stable [error code](code).
        code: u8,
        /// Human-readable message.
        message: String,
    },
}

/// Encode a complete response frame (including the length prefix).
///
/// [`Response::Metrics`] passed through [`Reply::Engine`] is encoded with
/// default (all-zero) server stats; servers should use [`Reply::Stats`].
pub fn encode_reply(request_id: u32, reply: &Reply) -> Vec<u8> {
    let mut body = BytesMut::with_capacity(64);
    let kind = match reply {
        Reply::Engine(Response::Metrics(m)) => {
            put_metrics(&mut body, m);
            put_server_stats(&mut body, &ServerStats::default());
            resp::METRICS
        }
        Reply::Engine(r) => put_response(&mut body, r),
        Reply::Stats {
            engine,
            server,
            profile,
        } => {
            put_metrics(&mut body, engine);
            put_server_stats(&mut body, server);
            if let Some(p) = profile {
                put_profile(&mut body, p);
            }
            resp::METRICS
        }
        Reply::Prepared { stmt, params } => {
            body.put_u32_le(*stmt);
            body.put_u32_le(*params);
            resp::PREPARED
        }
        Reply::Bound { bound } => {
            body.put_u32_le(*bound);
            resp::BOUND
        }
        Reply::WalSegment {
            start_offset,
            primary_wal_len,
            last_txn_id,
            bytes,
        } => {
            body.put_u64_le(*start_offset);
            body.put_u64_le(*primary_wal_len);
            body.put_u64_le(*last_txn_id);
            body.put_u32_le(bytes.len() as u32);
            body.put_slice(bytes);
            resp::WAL_SEGMENT
        }
        Reply::Error { code, message } => {
            body.put_u8(*code);
            scodec::put_string(&mut body, message);
            resp::ERROR
        }
    };
    finish_frame(kind, request_id, &body)
}

fn put_response(body: &mut BytesMut, r: &Response) -> u8 {
    match r {
        Response::Rows(rows) => {
            put_valuations(body, rows);
            resp::ROWS
        }
        Response::Worlds(worlds) => {
            body.put_u32_le(worlds.len() as u32);
            for rows in worlds {
                put_valuations(body, rows);
            }
            resp::WORLDS
        }
        Response::Committed(id) => {
            body.put_u64_le(*id);
            resp::COMMITTED
        }
        Response::Aborted => resp::ABORTED,
        Response::Written(ok) => {
            body.put_u8(u8::from(*ok));
            resp::WRITTEN
        }
        Response::Grounded(n) => {
            body.put_u64_le(*n as u64);
            resp::GROUNDED
        }
        Response::Pending(ids) => {
            body.put_u32_le(ids.len() as u32);
            for id in ids {
                body.put_u64_le(*id);
            }
            resp::PENDING
        }
        Response::Ack => resp::ACK,
        Response::Profile(report) => {
            put_profile(body, report);
            resp::PROFILE
        }
        Response::Events(events) => {
            put_events(body, events);
            resp::EVENTS
        }
        Response::Replication(report) => {
            put_replication(body, report);
            resp::REPLICATION
        }
        Response::Metrics(_) => unreachable!("handled by encode_reply"),
    }
}

fn put_replication(body: &mut BytesMut, r: &crate::repl::ReplicationReport) {
    body.put_u8(match r.role {
        crate::repl::ReplicationRole::Primary => 0,
        crate::repl::ReplicationRole::Replica => 1,
    });
    body.put_u64_le(r.wal_len);
    body.put_u64_le(r.last_txn_id);
    body.put_u32_le(r.replicas.len() as u32);
    for replica in &r.replicas {
        scodec::put_string(body, &replica.id);
        body.put_u64_le(replica.acked_offset);
        body.put_u64_le(replica.horizon);
        body.put_u64_le(replica.lag_bytes);
        body.put_u64_le(replica.segments);
    }
}

fn get_replication(buf: &mut impl Buf) -> Result<crate::repl::ReplicationReport> {
    need(buf, 17, "replication header")?;
    let role = match buf.get_u8() {
        0 => crate::repl::ReplicationRole::Primary,
        1 => crate::repl::ReplicationRole::Replica,
        r => return Err(WireError(format!("unknown replication role {r}"))),
    };
    let wal_len = buf.get_u64_le();
    let last_txn_id = buf.get_u64_le();
    let n = get_count(buf, "replica count")?;
    let mut replicas = Vec::with_capacity(n);
    for _ in 0..n {
        let id = scodec::get_string(buf)?;
        need(buf, 32, "replica status")?;
        replicas.push(crate::repl::ReplicaStatus {
            id,
            acked_offset: buf.get_u64_le(),
            horizon: buf.get_u64_le(),
            lag_bytes: buf.get_u64_le(),
            segments: buf.get_u64_le(),
        });
    }
    Ok(crate::repl::ReplicationReport {
        role,
        wal_len,
        last_txn_id,
        replicas,
    })
}

/// Encode a response frame, enforcing the limits the decoder will apply:
/// a reply whose frame would exceed [`MAX_FRAME`] (or whose element
/// counts exceed [`MAX_COUNT`]) is replaced by a protocol `ERROR` frame,
/// so an oversized result degrades into a typed error instead of a
/// transport failure that kills the connection. Servers should use this
/// over [`encode_reply`].
pub fn encode_reply_bounded(request_id: u32, reply: &Reply) -> Vec<u8> {
    if let Some(what) = reply_exceeds_counts(reply) {
        return encode_reply(
            request_id,
            &Reply::Error {
                code: code::PROTOCOL,
                message: format!(
                    "response {what} exceeds the per-frame element limit ({MAX_COUNT}); \
                     narrow the query with LIMIT"
                ),
            },
        );
    }
    let frame = encode_reply(request_id, reply);
    if frame.len() - 4 <= MAX_FRAME {
        return frame;
    }
    encode_reply(
        request_id,
        &Reply::Error {
            code: code::PROTOCOL,
            message: format!(
                "response too large for one frame ({} bytes > {MAX_FRAME}); \
                 narrow the query with LIMIT",
                frame.len() - 4
            ),
        },
    )
}

fn reply_exceeds_counts(reply: &Reply) -> Option<&'static str> {
    match reply {
        Reply::Engine(Response::Rows(rows)) if rows.len() > MAX_COUNT => Some("row count"),
        Reply::Engine(Response::Worlds(worlds))
            if worlds.len() > MAX_COUNT || worlds.iter().any(|w| w.len() > MAX_COUNT) =>
        {
            Some("world count")
        }
        Reply::Engine(Response::Pending(ids)) if ids.len() > MAX_COUNT => Some("pending count"),
        Reply::Engine(Response::Events(events)) if events.len() > MAX_COUNT => Some("event count"),
        _ => None,
    }
}

/// Decode a response frame body.
pub fn decode_reply(frame: &Frame) -> Result<Reply> {
    let buf = &mut frame.body.as_slice();
    let reply = match frame.kind {
        resp::ROWS => Reply::Engine(Response::Rows(get_valuations(buf)?)),
        resp::WORLDS => {
            let n = get_count(buf, "world count")?;
            let mut worlds = Vec::with_capacity(n);
            for _ in 0..n {
                worlds.push(get_valuations(buf)?);
            }
            Reply::Engine(Response::Worlds(worlds))
        }
        resp::COMMITTED => {
            need(buf, 8, "txn id")?;
            Reply::Engine(Response::Committed(buf.get_u64_le() as TxnId))
        }
        resp::ABORTED => Reply::Engine(Response::Aborted),
        resp::WRITTEN => {
            need(buf, 1, "write flag")?;
            Reply::Engine(Response::Written(buf.get_u8() != 0))
        }
        resp::GROUNDED => {
            need(buf, 8, "ground count")?;
            Reply::Engine(Response::Grounded(buf.get_u64_le() as usize))
        }
        resp::METRICS => {
            let engine = Box::new(get_metrics(buf)?);
            let server = get_server_stats(buf)?;
            // The profile section is optional: a frame from a server that
            // does not attach one simply ends here.
            let profile = if buf.remaining() > 0 {
                Some(Box::new(get_profile(buf)?))
            } else {
                None
            };
            Reply::Stats {
                engine,
                server,
                profile,
            }
        }
        resp::PENDING => {
            let n = get_count(buf, "pending count")?;
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                need(buf, 8, "pending id")?;
                ids.push(buf.get_u64_le() as TxnId);
            }
            Reply::Engine(Response::Pending(ids))
        }
        resp::ACK => Reply::Engine(Response::Ack),
        resp::PROFILE => Reply::Engine(Response::Profile(Box::new(get_profile(buf)?))),
        resp::EVENTS => Reply::Engine(Response::Events(get_events(buf)?)),
        resp::REPLICATION => Reply::Engine(Response::Replication(Box::new(get_replication(buf)?))),
        resp::WAL_SEGMENT => {
            need(buf, 24, "segment header")?;
            let start_offset = buf.get_u64_le();
            let primary_wal_len = buf.get_u64_le();
            let last_txn_id = buf.get_u64_le();
            need(buf, 4, "segment length")?;
            let len = buf.get_u32_le() as usize;
            if len > MAX_FRAME {
                return Err(WireError(format!("implausible segment length {len}")));
            }
            need(buf, len, "segment bytes")?;
            let mut bytes = vec![0u8; len];
            buf.copy_to_slice(&mut bytes);
            Reply::WalSegment {
                start_offset,
                primary_wal_len,
                last_txn_id,
                bytes,
            }
        }
        resp::PREPARED => {
            need(buf, 8, "prepared ids")?;
            Reply::Prepared {
                stmt: buf.get_u32_le(),
                params: buf.get_u32_le(),
            }
        }
        resp::BOUND => {
            need(buf, 4, "bound id")?;
            Reply::Bound {
                bound: buf.get_u32_le(),
            }
        }
        resp::ERROR => {
            need(buf, 1, "error code")?;
            Reply::Error {
                code: buf.get_u8(),
                message: scodec::get_string(buf)?,
            }
        }
        k => return Err(WireError(format!("unknown response kind 0x{k:02x}"))),
    };
    expect_drained(buf)?;
    Ok(reply)
}

// -- Valuations and metrics --------------------------------------------------

fn put_valuations(body: &mut BytesMut, rows: &[Valuation]) {
    body.put_u32_le(rows.len() as u32);
    for row in rows {
        body.put_u32_le(row.len() as u32);
        for (var, value) in row.iter() {
            body.put_u32_le(var.id());
            scodec::put_string(body, var.name());
            scodec::put_value(body, value);
        }
    }
}

fn get_valuations(buf: &mut impl Buf) -> Result<Vec<Valuation>> {
    let n = get_count(buf, "row count")?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let bindings = get_count(buf, "binding count")?;
        let mut row = Valuation::new();
        for _ in 0..bindings {
            need(buf, 4, "var id")?;
            let id = buf.get_u32_le();
            let name = scodec::get_string(buf)?;
            let value = scodec::get_value(buf)?;
            row.bind(Var::new(id, name), value);
        }
        rows.push(row);
    }
    Ok(rows)
}

/// The metrics counters, in wire order. The event trace is deliberately
/// not wired (it is unbounded and debug-only).
fn metrics_fields(m: &Metrics) -> [u64; 29] {
    [
        m.submitted,
        m.committed,
        m.aborted,
        m.reads,
        m.reads_peek,
        m.reads_possible,
        m.worlds_enumerated,
        m.world_dedup_hits,
        m.db_clones,
        m.writes_applied,
        m.writes_rejected,
        m.grounded_by_read,
        m.grounded_by_k,
        m.grounded_by_partner,
        m.grounded_explicit,
        m.cache_extensions,
        m.cache_extra_hits,
        m.cache_full_resolves,
        m.partition_merges,
        m.parses,
        m.max_pending,
        m.optionals_satisfied,
        m.optionals_total,
        m.solver_nodes,
        m.solver_candidates_streamed,
        m.solver_index_lookups,
        m.solver_scan_lookups,
        m.solver_candidate_vecs,
        m.indexes_auto_created,
    ]
}

fn put_metrics(body: &mut BytesMut, m: &Metrics) {
    for field in metrics_fields(m) {
        body.put_u64_le(field);
    }
}

fn get_metrics(buf: &mut impl Buf) -> Result<Metrics> {
    let mut m = Metrics::default();
    let fields: &mut [&mut u64; 29] = &mut [
        &mut m.submitted,
        &mut m.committed,
        &mut m.aborted,
        &mut m.reads,
        &mut m.reads_peek,
        &mut m.reads_possible,
        &mut m.worlds_enumerated,
        &mut m.world_dedup_hits,
        &mut m.db_clones,
        &mut m.writes_applied,
        &mut m.writes_rejected,
        &mut m.grounded_by_read,
        &mut m.grounded_by_k,
        &mut m.grounded_by_partner,
        &mut m.grounded_explicit,
        &mut m.cache_extensions,
        &mut m.cache_extra_hits,
        &mut m.cache_full_resolves,
        &mut m.partition_merges,
        &mut m.parses,
        &mut m.max_pending,
        &mut m.optionals_satisfied,
        &mut m.optionals_total,
        &mut m.solver_nodes,
        &mut m.solver_candidates_streamed,
        &mut m.solver_index_lookups,
        &mut m.solver_scan_lookups,
        &mut m.solver_candidate_vecs,
        &mut m.indexes_auto_created,
    ];
    for field in fields.iter_mut() {
        need(buf, 8, "metrics field")?;
        **field = buf.get_u64_le();
    }
    Ok(m)
}

// -- Profiles and events -----------------------------------------------------

fn put_summary(body: &mut BytesMut, s: &qdb_obs::HistSummary) {
    body.put_u64_le(s.count);
    body.put_u64_le(s.p50_ns);
    body.put_u64_le(s.p90_ns);
    body.put_u64_le(s.p99_ns);
    body.put_u64_le(s.p999_ns);
    body.put_u64_le(s.max_ns);
}

fn get_summary(buf: &mut impl Buf) -> Result<qdb_obs::HistSummary> {
    need(buf, 48, "histogram summary")?;
    Ok(qdb_obs::HistSummary {
        count: buf.get_u64_le(),
        p50_ns: buf.get_u64_le(),
        p90_ns: buf.get_u64_le(),
        p99_ns: buf.get_u64_le(),
        p999_ns: buf.get_u64_le(),
        max_ns: buf.get_u64_le(),
    })
}

fn put_summaries(body: &mut BytesMut, entries: &[(String, qdb_obs::HistSummary)]) {
    body.put_u32_le(entries.len() as u32);
    for (name, summary) in entries {
        scodec::put_string(body, name);
        put_summary(body, summary);
    }
}

fn get_summaries(buf: &mut impl Buf, what: &str) -> Result<Vec<(String, qdb_obs::HistSummary)>> {
    let n = get_count(buf, what)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let name = scodec::get_string(buf)?;
        entries.push((name, get_summary(buf)?));
    }
    Ok(entries)
}

fn put_profile(body: &mut BytesMut, report: &qdb_obs::ProfileReport) {
    put_summaries(body, &report.classes);
    put_summaries(body, &report.phases);
}

fn get_profile(buf: &mut impl Buf) -> Result<qdb_obs::ProfileReport> {
    Ok(qdb_obs::ProfileReport {
        classes: get_summaries(buf, "profile class count")?,
        phases: get_summaries(buf, "profile phase count")?,
    })
}

fn put_events(body: &mut BytesMut, events: &[qdb_obs::SpanEvent]) {
    body.put_u32_le(events.len() as u32);
    for e in events {
        body.put_u64_le(e.ts_ns);
        body.put_u64_le(e.txn_id);
        body.put_u64_le(e.partition_id);
        body.put_u8(e.kind);
        body.put_u8(e.outcome as u8);
        body.put_u64_le(e.dur_ns);
    }
}

fn get_events(buf: &mut impl Buf) -> Result<Vec<qdb_obs::SpanEvent>> {
    let n = get_count(buf, "event count")?;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        need(buf, 34, "span event")?;
        events.push(qdb_obs::SpanEvent {
            ts_ns: buf.get_u64_le(),
            txn_id: buf.get_u64_le(),
            partition_id: buf.get_u64_le(),
            kind: buf.get_u8(),
            outcome: qdb_obs::Outcome::from_u8(buf.get_u8()),
            dur_ns: buf.get_u64_le(),
        });
    }
    Ok(events)
}

fn put_server_stats(body: &mut BytesMut, s: &ServerStats) {
    body.put_u64_le(s.connections);
    body.put_u64_le(s.frames_decoded);
    body.put_u64_le(s.bytes_in);
    body.put_u64_le(s.bytes_out);
    body.put_u64_le(s.conns_open);
    body.put_u64_le(s.conns_peak);
    body.put_u64_le(s.conns_refused);
    body.put_u64_le(s.conns_idle_closed);
    body.put_u64_le(s.outbox_full_stalls);
    body.put_u32_le(s.statement_classes.len() as u32);
    for (class, count) in &s.statement_classes {
        scodec::put_string(body, class);
        body.put_u64_le(*count);
    }
}

fn get_server_stats(buf: &mut impl Buf) -> Result<ServerStats> {
    need(buf, 72, "server stats")?;
    let mut s = ServerStats {
        connections: buf.get_u64_le(),
        frames_decoded: buf.get_u64_le(),
        bytes_in: buf.get_u64_le(),
        bytes_out: buf.get_u64_le(),
        conns_open: buf.get_u64_le(),
        conns_peak: buf.get_u64_le(),
        conns_refused: buf.get_u64_le(),
        conns_idle_closed: buf.get_u64_le(),
        outbox_full_stalls: buf.get_u64_le(),
        statement_classes: Vec::new(),
    };
    let n = get_count(buf, "class count")?;
    for _ in 0..n {
        let class = scodec::get_string(buf)?;
        need(buf, 8, "class count value")?;
        s.statement_classes.push((class, buf.get_u64_le()));
    }
    Ok(s)
}

// -- Framing -----------------------------------------------------------------

/// One raw frame off the wire: kind, correlation id, and undecoded body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame kind byte (a [`req`] or [`resp`] constant).
    pub kind: u8,
    /// Client-chosen correlation id, echoed by the server.
    pub request_id: u32,
    /// Undecoded frame body.
    pub body: Vec<u8>,
}

impl Frame {
    /// Total bytes this frame occupies on the wire (length prefix
    /// included) — what the traffic counters account.
    pub fn wire_len(&self) -> u64 {
        4 + 1 + 4 + self.body.len() as u64
    }
}

fn finish_frame(kind: u8, request_id: u32, body: &BytesMut) -> Vec<u8> {
    let mut out = BytesMut::with_capacity(body.len() + 9);
    out.put_u32_le((body.len() + 5) as u32);
    out.put_u8(kind);
    out.put_u32_le(request_id);
    out.put_slice(body);
    out.to_vec()
}

fn expect_drained(buf: &impl Buf) -> Result<()> {
    if buf.remaining() != 0 {
        return Err(WireError(format!(
            "{} trailing bytes after frame body",
            buf.remaining()
        )));
    }
    Ok(())
}

/// Read one frame off a stream. Returns `Ok(None)` on a clean end of
/// stream (the peer closed between frames); a close mid-frame is an error.
pub fn read_frame(r: &mut impl std::io::Read) -> std::io::Result<Option<Frame>> {
    use std::io::{Error, ErrorKind};

    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(Error::new(
                    ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if !(5..=MAX_FRAME).contains(&len) {
        return Err(Error::new(
            ErrorKind::InvalidData,
            format!("invalid frame length {len}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let kind = payload[0];
    let request_id = u32::from_le_bytes([payload[1], payload[2], payload[3], payload[4]]);
    payload.drain(..5);
    Ok(Some(Frame {
        kind,
        request_id,
        body: payload,
    }))
}

/// Try to split one frame off the front of a read buffer.
///
/// The incremental sibling of [`read_frame`] for non-blocking readers that
/// accumulate bytes as the socket delivers them: returns `Ok(None)` while
/// the buffer holds only a partial frame, `Ok(Some((frame, consumed)))`
/// once a complete frame is available (`consumed` bytes should then be
/// drained from the front), and an error on an invalid length prefix —
/// the same bound [`read_frame`] enforces, since a reader cannot resync
/// after a corrupt length.
pub fn try_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if !(5..=MAX_FRAME).contains(&len) {
        return Err(WireError(format!("invalid frame length {len}")));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let kind = buf[4];
    let request_id = u32::from_le_bytes([buf[5], buf[6], buf[7], buf[8]]);
    Ok(Some((
        Frame {
            kind,
            request_id,
            body: buf[9..4 + len].to_vec(),
        },
        4 + len,
    )))
}

/// Parse an encoded frame back out of a byte buffer (test and loopback
/// helper; network paths use [`read_frame`]).
pub fn parse_frame(bytes: &[u8]) -> Result<Frame> {
    let mut cursor = bytes;
    match read_frame(&mut cursor) {
        Ok(Some(f)) if cursor.is_empty() => Ok(f),
        Ok(Some(_)) => Err(WireError("trailing bytes after frame".into())),
        Ok(None) => Err(WireError("empty buffer".into())),
        Err(e) => Err(WireError(e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(request: &Request) {
        let bytes = encode_request(7, request);
        let frame = parse_frame(&bytes).unwrap();
        assert_eq!(frame.request_id, 7);
        assert_eq!(frame.wire_len(), bytes.len() as u64);
        assert_eq!(&decode_request(&frame).unwrap(), request);
    }

    fn roundtrip_reply(reply: &Reply) {
        let bytes = encode_reply(41, reply);
        let frame = parse_frame(&bytes).unwrap();
        assert_eq!(frame.request_id, 41);
        assert_eq!(&decode_reply(&frame).unwrap(), reply);
    }

    fn sample_valuation() -> Valuation {
        let mut v = Valuation::new();
        v.bind(Var::new(3, "s"), Value::from("5A"));
        v.bind(Var::new(9, "f"), Value::from(123));
        v.bind(Var::new(11, "ok"), Value::from(true));
        v
    }

    fn sample_profile() -> qdb_obs::ProfileReport {
        let summary = |count: u64| qdb_obs::HistSummary {
            count,
            p50_ns: 1_000,
            p90_ns: 8_000,
            p99_ns: 64_000,
            p999_ns: 512_000,
            max_ns: 700_001,
        };
        qdb_obs::ProfileReport {
            classes: vec![
                ("INSERT".into(), summary(40)),
                ("SELECT".into(), summary(7)),
            ],
            phases: vec![("plan".into(), summary(40)), ("solve".into(), summary(39))],
        }
    }

    fn sample_replication() -> crate::repl::ReplicationReport {
        crate::repl::ReplicationReport {
            role: crate::repl::ReplicationRole::Primary,
            wal_len: 9000,
            last_txn_id: 17,
            replicas: vec![
                crate::repl::ReplicaStatus {
                    id: "replica-1".into(),
                    acked_offset: 8192,
                    horizon: 15,
                    lag_bytes: 808,
                    segments: 4,
                },
                crate::repl::ReplicaStatus {
                    id: "replica-2".into(),
                    acked_offset: 9000,
                    horizon: 17,
                    lag_bytes: 0,
                    segments: 6,
                },
            ],
        }
    }

    fn sample_events() -> Vec<qdb_obs::SpanEvent> {
        vec![
            qdb_obs::SpanEvent {
                ts_ns: 123,
                txn_id: 9,
                partition_id: 2,
                kind: qdb_obs::Phase::Solve as u8,
                outcome: qdb_obs::Outcome::Ok,
                dur_ns: 4_500,
            },
            qdb_obs::SpanEvent {
                ts_ns: 456,
                txn_id: qdb_obs::SpanEvent::NONE,
                partition_id: qdb_obs::SpanEvent::NONE,
                kind: qdb_obs::stmt_code("SELECT"),
                outcome: qdb_obs::Outcome::Error,
                dur_ns: 77,
            },
        ]
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(&Request::Execute {
            sql: "SHOW METRICS".into(),
        });
        roundtrip_request(&Request::Prepare {
            stmt: 5,
            sql: "SELECT * FROM R(?, @x)".into(),
        });
        roundtrip_request(&Request::Bind {
            stmt: 5,
            bound: 8,
            params: vec![Value::from(1), Value::from("a"), Value::from(false)],
        });
        roundtrip_request(&Request::Run { bound: 8 });
        roundtrip_request(&Request::Replicate {
            replica_id: "replica-1".into(),
            from_offset: 8192,
        });
        roundtrip_request(&Request::ReplAck {
            replica_id: "replica-1".into(),
            applied_offset: 8192,
            horizon: 41,
        });
    }

    #[test]
    fn every_reply_variant_roundtrips() {
        roundtrip_reply(&Reply::Engine(Response::Rows(vec![
            sample_valuation(),
            Valuation::new(),
        ])));
        roundtrip_reply(&Reply::Engine(Response::Worlds(vec![
            vec![sample_valuation()],
            vec![],
        ])));
        roundtrip_reply(&Reply::Engine(Response::Committed(99)));
        roundtrip_reply(&Reply::Engine(Response::Aborted));
        roundtrip_reply(&Reply::Engine(Response::Written(true)));
        roundtrip_reply(&Reply::Engine(Response::Written(false)));
        roundtrip_reply(&Reply::Engine(Response::Grounded(17)));
        roundtrip_reply(&Reply::Engine(Response::Pending(vec![1, 2, 30])));
        roundtrip_reply(&Reply::Engine(Response::Ack));
        roundtrip_reply(&Reply::Engine(Response::Profile(
            Box::new(sample_profile()),
        )));
        roundtrip_reply(&Reply::Engine(Response::Profile(Box::default())));
        roundtrip_reply(&Reply::Engine(Response::Events(sample_events())));
        roundtrip_reply(&Reply::Engine(Response::Events(vec![])));
        let engine = Metrics {
            submitted: 12,
            parses: 4,
            max_pending: 6,
            reads_peek: 21,
            reads_possible: 3,
            worlds_enumerated: 44,
            world_dedup_hits: 5,
            db_clones: 1,
            solver_nodes: 77,
            solver_candidates_streamed: 91,
            solver_index_lookups: 40,
            solver_scan_lookups: 2,
            indexes_auto_created: 1,
            ..Metrics::default()
        };
        let server = ServerStats {
            connections: 3,
            frames_decoded: 120,
            bytes_in: 4096,
            bytes_out: 8192,
            conns_open: 2,
            conns_peak: 3,
            conns_refused: 1,
            conns_idle_closed: 4,
            outbox_full_stalls: 5,
            statement_classes: vec![("INSERT".into(), 10), ("SELECT".into(), 7)],
        };
        roundtrip_reply(&Reply::Stats {
            engine: Box::new(engine.clone()),
            server: server.clone(),
            profile: None,
        });
        roundtrip_reply(&Reply::Stats {
            engine: Box::new(engine),
            server,
            profile: Some(Box::new(sample_profile())),
        });
        roundtrip_reply(&Reply::Prepared { stmt: 2, params: 6 });
        roundtrip_reply(&Reply::Bound { bound: 4 });
        roundtrip_reply(&Reply::WalSegment {
            start_offset: 4096,
            primary_wal_len: 9000,
            last_txn_id: 17,
            bytes: vec![1, 2, 3, 4, 5],
        });
        roundtrip_reply(&Reply::WalSegment {
            start_offset: 9000,
            primary_wal_len: 9000,
            last_txn_id: 17,
            bytes: vec![],
        });
        roundtrip_reply(&Reply::Engine(Response::Replication(Box::new(
            sample_replication(),
        ))));
        roundtrip_reply(&Reply::Engine(Response::Replication(Box::new(
            crate::repl::ReplicationReport {
                role: crate::repl::ReplicationRole::Replica,
                wal_len: 12,
                last_txn_id: 0,
                replicas: vec![],
            },
        ))));
        roundtrip_reply(&Reply::Error {
            code: code::LOGIC,
            message: "parse error at byte 0: nope".into(),
        });
    }

    #[test]
    fn engine_metrics_reply_defaults_server_stats() {
        let bytes = encode_reply(0, &Reply::Engine(Response::Metrics(Box::default())));
        let frame = parse_frame(&bytes).unwrap();
        let Reply::Stats { server, .. } = decode_reply(&frame).unwrap() else {
            panic!("metrics must decode as Stats");
        };
        assert_eq!(server, ServerStats::default());
    }

    #[test]
    fn bounded_encoder_degrades_oversized_replies_into_typed_errors() {
        // Element-count breach: decoding the raw encode would fail with
        // "implausible pending count"; the bounded encoder turns it into
        // an ERROR frame the client can surface.
        let huge = Reply::Engine(Response::Pending(vec![0; MAX_COUNT + 1]));
        let frame = parse_frame(&encode_reply_bounded(3, &huge)).unwrap();
        let Reply::Error { code, message } = decode_reply(&frame).unwrap() else {
            panic!("oversized reply must degrade into an error");
        };
        assert_eq!(code, code::PROTOCOL);
        assert!(message.contains("LIMIT"), "{message}");
        // Byte-size breach: a single row holding a string that alone
        // exceeds the frame cap.
        let mut fat = Valuation::new();
        fat.bind(Var::new(0, "x"), Value::from("y".repeat(MAX_FRAME)));
        let frame = parse_frame(&encode_reply_bounded(
            4,
            &Reply::Engine(Response::Rows(vec![fat])),
        ))
        .unwrap();
        assert!(matches!(
            decode_reply(&frame).unwrap(),
            Reply::Error {
                code: code::PROTOCOL,
                ..
            }
        ));
        // In-bounds replies pass through unchanged.
        let ok = Reply::Engine(Response::Ack);
        assert_eq!(encode_reply_bounded(5, &ok), encode_reply(5, &ok));
    }

    #[test]
    fn truncation_yields_errors_not_panics() {
        let replies = [
            Reply::Engine(Response::Rows(vec![sample_valuation()])),
            Reply::Engine(Response::Profile(Box::new(sample_profile()))),
            Reply::Engine(Response::Events(sample_events())),
            Reply::Engine(Response::Replication(Box::new(sample_replication()))),
            Reply::WalSegment {
                start_offset: 1,
                primary_wal_len: 2,
                last_txn_id: 3,
                bytes: vec![7, 8, 9],
            },
        ];
        for reply in &replies {
            let bytes = encode_reply(1, reply);
            // Cut the *body* at every length while keeping the header sane.
            let frame = parse_frame(&bytes).unwrap();
            for cut in 0..frame.body.len() {
                let hurt = Frame {
                    body: frame.body[..cut].to_vec(),
                    ..frame.clone()
                };
                assert!(decode_reply(&hurt).is_err(), "cut at {cut}");
            }
        }
    }

    #[test]
    fn stats_profile_section_is_optional_on_the_wire() {
        // A frame that ends right after the server stats (what an older
        // server emits) decodes with `profile: None` — and a new frame's
        // profile section must not be mistaken for trailing garbage.
        let with = Reply::Stats {
            engine: Box::default(),
            server: ServerStats::default(),
            profile: Some(Box::new(sample_profile())),
        };
        let without = Reply::Stats {
            engine: Box::default(),
            server: ServerStats::default(),
            profile: None,
        };
        let long = encode_reply(9, &with);
        let short = encode_reply(9, &without);
        assert!(long.len() > short.len());
        let Reply::Stats { profile, .. } = decode_reply(&parse_frame(&short).unwrap()).unwrap()
        else {
            panic!("stats frame must decode as Stats");
        };
        assert_eq!(profile, None);
        let Reply::Stats { profile, .. } = decode_reply(&parse_frame(&long).unwrap()).unwrap()
        else {
            panic!("stats frame must decode as Stats");
        };
        assert_eq!(profile, Some(Box::new(sample_profile())));
        // A *truncated* profile section still errors rather than decoding.
        let frame = parse_frame(&long).unwrap();
        for cut in (short.len() - 9 + 1)..frame.body.len() {
            let hurt = Frame {
                body: frame.body[..cut].to_vec(),
                ..frame.clone()
            };
            assert!(decode_reply(&hurt).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn oversized_event_reply_degrades_into_a_typed_error() {
        let e = sample_events().remove(0);
        let huge = Reply::Engine(Response::Events(vec![e; MAX_COUNT + 1]));
        let frame = parse_frame(&encode_reply_bounded(6, &huge)).unwrap();
        assert!(matches!(
            decode_reply(&frame).unwrap(),
            Reply::Error {
                code: code::PROTOCOL,
                ..
            }
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let bytes = encode_request(1, &Request::Run { bound: 2 });
        let mut frame = parse_frame(&bytes).unwrap();
        frame.body.push(0);
        assert!(decode_request(&frame).is_err());
    }

    #[test]
    fn unknown_kinds_rejected() {
        let frame = Frame {
            kind: 0x77,
            request_id: 0,
            body: vec![],
        };
        assert!(decode_request(&frame).is_err());
        assert!(decode_reply(&frame).is_err());
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut bytes = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 16]);
        assert!(parse_frame(&bytes).is_err());
        // Zero / impossible lengths too.
        assert!(parse_frame(&[0, 0, 0, 0]).is_err());
    }

    #[test]
    fn mid_frame_eof_is_an_error_but_clean_eof_is_none() {
        let bytes = encode_request(1, &Request::Execute { sql: "X".into() });
        let mut cursor: &[u8] = &bytes[..bytes.len() - 1];
        assert!(read_frame(&mut cursor).is_err());
        let mut empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut empty), Ok(None)));
    }

    #[test]
    fn try_frame_decodes_incrementally_byte_by_byte() {
        // Feed a concatenation of two frames one byte at a time: try_frame
        // must stay `None` until each frame completes, then agree exactly
        // with the blocking reader.
        let a = encode_request(
            7,
            &Request::Execute {
                sql: "SHOW X".into(),
            },
        );
        let b = encode_request(8, &Request::Run { bound: 3 });
        let stream: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        let mut buf = Vec::new();
        let mut decoded = Vec::new();
        for &byte in &stream {
            buf.push(byte);
            while let Some((frame, used)) = try_frame(&buf).unwrap() {
                buf.drain(..used);
                decoded.push(frame);
            }
        }
        assert!(buf.is_empty());
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0], parse_frame(&a).unwrap());
        assert_eq!(decoded[1], parse_frame(&b).unwrap());
    }

    #[test]
    fn try_frame_rejects_invalid_lengths_like_read_frame() {
        let mut bytes = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 16]);
        assert!(try_frame(&bytes).is_err());
        assert!(try_frame(&[0, 0, 0, 0]).is_err());
        // A partial length prefix is just "not yet".
        assert!(matches!(try_frame(&[9, 0]), Ok(None)));
    }

    #[test]
    fn error_codes_cover_engine_errors() {
        let e = EngineError::Logic(qdb_logic::LogicError::Codec("x".into()));
        assert_eq!(code_for(&e), code::LOGIC);
        let e = EngineError::Storage(qdb_storage::StorageError::NoSuchTable("T".into()));
        assert_eq!(code_for(&e), code::STORAGE);
        assert_eq!(
            code_for(&EngineError::Invariant("x".into())),
            code::INVARIANT
        );
        assert_eq!(
            code_for(&EngineError::RecoveryUnsatisfiable { txn: 0 }),
            code::RECOVERY
        );
    }
}
