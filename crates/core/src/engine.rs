//! The quantum database engine (`QuantumDb`).
//!
//! State = extensional [`Database`] + partitions of pending resource
//! transactions + per-partition solution caches + a WAL. See the crate
//! docs for the operation semantics and the paper mapping.

use std::collections::BTreeSet;

use qdb_logic::codec::encode_transaction;
use qdb_logic::{Atom, Formula, ParsedQuery, ResourceTransaction, Valuation, Var, VarGen};
use qdb_solver::{CachedSolution, Solver, SolverStats, TxnSpec};
use qdb_storage::{ConjunctiveQuery, Database, LogRecord, Schema, Tuple, Wal, WriteOp};

use crate::config::QuantumDbConfig;
use crate::entangle::coordination_partners;

use crate::ground::GroundReason;
use crate::metrics::{Event, Metrics};
use crate::partition::Partition;
use crate::shard::SharedQuantumDb;
use crate::txn::{PendingTxn, TxnId};
use crate::Result;

/// Result of submitting a resource transaction.
///
/// `Committed` carries the §2 guarantee: *"the transaction will never need
/// to be rolled back"* — a suitable resource exists now and the engine will
/// keep it existing until the value assignment is fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Admitted: at least one possible world satisfies all pending
    /// transactions including this one.
    Committed {
        /// Engine-assigned transaction id.
        id: TxnId,
    },
    /// Refused: admission would empty the set of possible worlds
    /// (Definition 3.1's ∅ state, which normal execution must avoid).
    Aborted,
}

impl SubmitOutcome {
    /// The id, when committed.
    pub fn id(&self) -> Option<TxnId> {
        match self {
            SubmitOutcome::Committed { id } => Some(*id),
            SubmitOutcome::Aborted => None,
        }
    }

    /// Did the transaction commit?
    pub fn is_committed(&self) -> bool {
        matches!(self, SubmitOutcome::Committed { .. })
    }
}

/// The quantum database engine. Single-threaded core; see
/// [`SharedQuantumDb`] for a thread-safe handle.
pub struct QuantumDb {
    pub(crate) db: Database,
    pub(crate) partitions: std::collections::BTreeMap<u64, Partition>,
    pub(crate) next_partition_id: u64,
    pub(crate) next_txn_id: TxnId,
    pub(crate) vargen: VarGen,
    pub(crate) solver: Solver,
    pub(crate) wal: Wal,
    pub(crate) config: QuantumDbConfig,
    pub(crate) metrics: Metrics,
    pub(crate) obs: std::sync::Arc<qdb_obs::Obs>,
}

impl std::fmt::Debug for QuantumDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantumDb")
            .field("tables", &self.db.tables().count())
            .field("rows", &self.db.total_rows())
            .field("partitions", &self.partitions.len())
            .field("pending", &self.pending_count())
            .field("next_txn_id", &self.next_txn_id)
            .finish_non_exhaustive()
    }
}

impl QuantumDb {
    /// New engine over an in-memory WAL.
    pub fn new(config: QuantumDbConfig) -> Result<Self> {
        Ok(Self::with_wal(config, Wal::in_memory()))
    }

    /// New engine over a caller-provided WAL (e.g. file-backed).
    pub fn with_wal(config: QuantumDbConfig, mut wal: Wal) -> Self {
        let obs = std::sync::Arc::new(qdb_obs::Obs::new());
        obs.set_slow_threshold_us(config.slow_op_threshold_us);
        wal.set_obs(Some(obs.clone()));
        let mut solver = Solver::new(config.solver_order);
        solver.limits = config.search_limits;
        solver.seed = config.seed;
        solver.set_obs(Some(obs.clone()));
        QuantumDb {
            db: Database::new(),
            partitions: std::collections::BTreeMap::new(),
            next_partition_id: 0,
            next_txn_id: 0,
            vargen: VarGen::new(),
            solver,
            wal,
            config,
            metrics: Metrics::default(),
            obs,
        }
    }

    // -- DDL & loading ------------------------------------------------------

    /// Create a table (logged).
    pub fn create_table(&mut self, schema: Schema) -> Result<()> {
        self.db.create_table(schema.clone())?;
        self.wal.append(&LogRecord::CreateTable(schema))?;
        Ok(())
    }

    /// Create a secondary index (logged).
    pub fn create_index(&mut self, relation: &str, column: usize) -> Result<()> {
        self.db.table_mut(relation)?.create_index(column)?;
        self.wal.append(&LogRecord::CreateIndex {
            relation: relation.to_string(),
            column: column as u32,
        })?;
        Ok(())
    }

    /// Insert a batch of rows. With no pending transactions this is a fast
    /// path (plain inserts); otherwise each row goes through the
    /// write-admission check.
    pub fn bulk_insert(&mut self, relation: &str, tuples: Vec<Tuple>) -> Result<usize> {
        let mut applied = 0;
        if self.pending_count() == 0 {
            for t in tuples {
                if self.db.insert(relation, t.clone())? {
                    self.wal
                        .append(&LogRecord::Write(WriteOp::insert(relation, t)))?;
                    applied += 1;
                }
            }
        } else {
            for t in tuples {
                if self.write(WriteOp::insert(relation, t))? {
                    applied += 1;
                }
            }
        }
        self.maybe_promote_indexes();
        Ok(applied)
    }

    /// Promote columns the access-pattern tracker flagged as hot into
    /// secondary indexes, logging each promotion (recovery rebuilds them).
    /// See [`crate::QuantumDbConfig::auto_index_threshold`].
    ///
    /// Best-effort by design: it runs *after* the enclosing operation has
    /// committed and been logged, so a promotion failure (a WAL drain I/O
    /// error) must not be reported as failure of that operation. Nothing
    /// is *wrong* after swallowing it either — an index is a rebuildable
    /// acceleration, so if the `CreateIndex` append fails (and per
    /// [`Wal::append`]'s contract is rolled out of the log), the worst
    /// case is a recovered engine that serves correct scans until the
    /// tracker's votes re-accumulate and promote again.
    pub(crate) fn maybe_promote_indexes(&mut self) {
        let threshold = self.config.auto_index_threshold;
        if threshold == 0 {
            return;
        }
        for (relation, column) in collect_hot_columns(&self.db, threshold) {
            let created = self
                .db
                .table_mut(&relation)
                .and_then(|t| t.create_index(column));
            if created.is_err() {
                continue; // unreachable for tracker-produced columns
            }
            let _ = self.wal.append(&LogRecord::CreateIndex {
                relation,
                column: column as u32,
            });
            self.metrics.indexes_auto_created += 1;
        }
    }

    // -- Resource transactions ---------------------------------------------

    /// Submit a resource transaction (§3.2.1).
    ///
    /// The body is checked for a consistent grounding given all pending
    /// transactions it may interact with; on success the transaction
    /// commits *without* assigning values (it becomes pending), the WAL
    /// records it for durability, coordination partners are grounded if
    /// configured (§5.1), and the `k` bound is enforced (§4).
    pub fn submit(&mut self, txn: &ResourceTransaction) -> Result<SubmitOutcome> {
        self.metrics.submitted += 1;
        txn.validate()?;
        self.validate_schema(txn)?;
        let freshened = txn.freshen(&mut self.vargen);
        let id = self.next_txn_id;

        let Some(pid) = self.admit(id, freshened)? else {
            self.metrics.aborted += 1;
            if self.config.record_events {
                self.metrics.events.push(Event::Aborted);
            }
            return Ok(SubmitOutcome::Aborted);
        };
        self.next_txn_id += 1;
        self.metrics.committed += 1;
        if self.config.record_events {
            self.metrics.events.push(Event::Committed(id));
        }

        // §5.1: entangled resource transactions are grounded as soon as
        // both coordination partners are in the system.
        if self.config.ground_on_partner_arrival {
            let partition = self
                .partitions
                .get(&pid)
                .expect("admit returned live partition");
            let new_txn = &partition
                .txns
                .iter()
                .find(|p| p.id == id)
                .expect("just admitted")
                .txn;
            let others: Vec<PendingTxn> = partition
                .txns
                .iter()
                .filter(|p| p.id != id)
                .cloned()
                .collect();
            let mut partners = coordination_partners(new_txn, &others);
            if !partners.is_empty() {
                partners.push(id);
                self.ground_set(pid, &partners, GroundReason::Partner)?;
            }
        }

        // §4: bound the composed body size.
        self.enforce_k(pid)?;
        // Table 1 counts a transaction as pending until its partner
        // arrives, so the high-water mark is sampled after partner
        // grounding and k-enforcement settle.
        let total_pending = self.pending_count() as u64;
        self.metrics.max_pending = self.metrics.max_pending.max(total_pending);
        self.maybe_promote_indexes();
        Ok(SubmitOutcome::Committed { id })
    }

    /// Admission: find the partitions the transaction may interact with,
    /// check the invariant over their union + the newcomer, and (only on
    /// success) merge and install. Returns the hosting partition id.
    pub(crate) fn admit(&mut self, id: TxnId, txn: ResourceTransaction) -> Result<Option<u64>> {
        self.admit_inner(id, txn, true)
    }

    /// Re-admit a transaction during recovery: same checks and placement,
    /// but no WAL record (its `PendingAdd` is already in the log).
    pub(crate) fn admit_recovered(&mut self, id: TxnId, txn: ResourceTransaction) -> Result<bool> {
        Ok(self.admit_inner(id, txn, false)?.is_some())
    }

    fn admit_inner(
        &mut self,
        id: TxnId,
        txn: ResourceTransaction,
        log: bool,
    ) -> Result<Option<u64>> {
        let targets: Vec<u64> = if self.config.partitioning {
            self.partitions
                .iter()
                .filter(|(_, p)| p.overlaps(&txn))
                .map(|(&k, _)| k)
                .collect()
        } else {
            self.partitions.keys().copied().collect()
        };

        // The admission overlay is only reusable for a single unmerged
        // target; taking it needs a mutable borrow, so do it first.
        let cached_overlay = if targets.len() == 1 {
            self.partitions
                .get_mut(&targets[0])
                .and_then(|p| p.overlay_cache.take())
        } else {
            None
        };
        // Merged view in arrival order, without touching the partitions.
        let mut merged: Vec<(&PendingTxn, &Valuation)> = Vec::new();
        for t in &targets {
            let p = &self.partitions[t];
            debug_assert_eq!(p.txns.len(), p.cache.len());
            merged.extend(p.txns.iter().zip(p.cache.valuations.iter()));
        }
        merged.sort_by_key(|(p, _)| p.id);
        // Multi-solution cache (§4 discussion) alternatives are positional
        // per partition, so they are only usable for a single target.
        let extras: &[CachedSolution] = if targets.len() == 1 {
            &self.partitions[&targets[0]].extras
        } else {
            &[]
        };

        let t_plan = std::time::Instant::now();
        let decision = plan_admission(
            &mut self.solver,
            &self.db,
            &self.config,
            &merged,
            extras,
            cached_overlay,
            &txn,
        )?;
        self.obs.phase(qdb_obs::Phase::Plan, t_plan.elapsed());
        let plan = match decision {
            AdmitDecision::Admitted(plan) => plan,
            AdmitDecision::Refused(overlay) => {
                // Refusal leaves the partitions untouched (no merge in
                // this engine): restore the still-valid memo to its
                // single owner.
                if targets.len() == 1 {
                    if let Some(p) = self.partitions.get_mut(&targets[0]) {
                        p.overlay_cache = overlay;
                    }
                }
                return Ok(None);
            }
        };
        match plan.path {
            AdmitPath::Extension => self.metrics.cache_extensions += 1,
            AdmitPath::ExtraHit => self.metrics.cache_extra_hits += 1,
            AdmitPath::FullResolve => self.metrics.cache_full_resolves += 1,
        }

        // Install: destructively merge target partitions, append newcomer.
        let t_apply = std::time::Instant::now();
        if targets.len() > 1 {
            self.metrics.partition_merges += 1;
            if self.config.record_events {
                self.metrics.events.push(Event::PartitionsMerged {
                    before: self.partitions.len(),
                });
            }
        }
        let mut host = Partition::new();
        for t in &targets {
            let p = self.partitions.remove(t).expect("target partition present");
            host.merge(p);
        }
        // Durability: log the pending transaction *after* the
        // satisfiability check, *before* acknowledging commit (§4).
        if log {
            self.wal.append(&LogRecord::PendingAdd {
                id,
                payload: encode_transaction(&txn),
            })?;
        }
        host.txns.push(PendingTxn::new(id, txn));
        host.cache = CachedSolution {
            valuations: plan.valuations,
        };
        host.extras = plan.extras;
        host.overlay_cache = plan.overlay;
        debug_assert_eq!(host.txns.len(), host.cache.len());
        let pid = self.next_partition_id;
        self.next_partition_id += 1;
        self.partitions.insert(pid, host);
        self.obs.phase(qdb_obs::Phase::Apply, t_apply.elapsed());
        Ok(Some(pid))
    }

    /// Ground the oldest pending transactions of `pid` until the partition
    /// is within the `k` bound.
    pub(crate) fn enforce_k(&mut self, pid: u64) -> Result<()> {
        loop {
            let Some(p) = self.partitions.get(&pid) else {
                return Ok(()); // fully grounded and removed
            };
            if p.len() <= self.config.k {
                return Ok(());
            }
            let oldest = p.txns[0].id;
            self.ground_set(pid, &[oldest], GroundReason::KBound)?;
        }
    }

    // -- Reads ---------------------------------------------------------------

    /// Read with full collapse semantics (§3.2.2, option 3 — the paper's
    /// default): pending transactions whose updates unify with the query
    /// are grounded first; then the query is answered from the
    /// extensional state, giving ordinary read-repeatability guarantees.
    pub fn read(&mut self, atoms: &[Atom], limit: Option<usize>) -> Result<Vec<Valuation>> {
        self.metrics.reads += 1;
        // Conservative unification-based read check (grounding may expose
        // further overlaps, so loop to a fixed point).
        while let Some((pid, id)) = self.read_check_target(atoms) {
            let partition = &self.partitions[&pid];
            let target = partition
                .txns
                .iter()
                .find(|p| p.id == id)
                .expect("read check returned live txn");
            // Pull in coordination partners so a read does not needlessly
            // split a pair that could still coordinate.
            let others: Vec<PendingTxn> = partition
                .txns
                .iter()
                .filter(|p| p.id != id)
                .cloned()
                .collect();
            let mut ids = coordination_partners(&target.txn, &others);
            ids.push(id);
            self.ground_set(pid, &ids, GroundReason::Read)?;
        }
        self.eval_query(atoms, limit)
    }

    /// Parse-and-read convenience over [`QuantumDb::read`].
    pub fn query(&mut self, text: &str) -> Result<Vec<Valuation>> {
        let parsed = qdb_logic::parse_query(text)?;
        self.read(&parsed.atoms, None)
    }

    /// Read the query against a parsed representation (gives access to the
    /// query's variables for interpreting results).
    pub fn read_parsed(
        &mut self,
        parsed: &ParsedQuery,
        limit: Option<usize>,
    ) -> Result<Vec<Valuation>> {
        self.read(&parsed.atoms, limit)
    }

    /// Peek semantics (§3.2.2, option 2): answer the query against *one*
    /// possible world — the cached solution — without fixing anything.
    /// The returned values carry no stability guarantee.
    ///
    /// The world is never materialized: the cached pending updates are
    /// composed over the base as a [`qdb_storage::DeltaView`] (O(pending),
    /// zero database clones) and the query evaluates through the view.
    pub fn read_peek(&mut self, atoms: &[Atom], limit: Option<usize>) -> Result<Vec<Valuation>> {
        self.metrics.reads_peek += 1;
        let mut view = qdb_storage::DeltaView::new(&self.db);
        for p in self.partitions.values() {
            let refs = p.txn_refs();
            for op in p.cache.pending_ops(&refs)? {
                view.apply(&op).map_err(crate::EngineError::Storage)?;
            }
        }
        eval_on(&view, atoms, limit)
    }

    /// All-possible-values semantics (§3.2.2, option 1): enumerate possible
    /// worlds (bounded, as deltas over the base) and return the distinct
    /// answer sets across them. Exposes the uncertainty to the caller.
    pub fn read_possible(
        &mut self,
        atoms: &[Atom],
        world_bound: usize,
    ) -> Result<Vec<Vec<Valuation>>> {
        self.metrics.reads_possible += 1;
        let mut pending: Vec<&PendingTxn> = self
            .partitions
            .values()
            .flat_map(|p| p.txns.iter())
            .collect();
        pending.sort_by_key(|p| p.id);
        let txns: Vec<&ResourceTransaction> = pending.iter().map(|p| &p.txn).collect();
        let t_enum = std::time::Instant::now();
        let worlds =
            crate::worlds::enumerate_worlds_seeded(&self.db, &txns, world_bound, self.config.seed)?;
        self.obs.phase(qdb_obs::Phase::WorldEnum, t_enum.elapsed());
        self.metrics.worlds_enumerated += worlds.enumerated;
        self.metrics.world_dedup_hits += worlds.dedup_hits;
        let mut distinct: BTreeSet<Vec<Valuation>> = BTreeSet::new();
        for w in &worlds.worlds {
            distinct.insert(eval_on(&w.view(&self.db)?, atoms, None)?);
        }
        Ok(distinct.into_iter().collect())
    }

    fn read_check_target(&self, atoms: &[Atom]) -> Option<(u64, TxnId)> {
        for (&pid, p) in &self.partitions {
            for pt in &p.txns {
                if pt
                    .txn
                    .updates
                    .iter()
                    .any(|u| atoms.iter().any(|qa| qa.may_overlap(&u.atom)))
                {
                    return Some((pid, pt.id));
                }
            }
        }
        None
    }

    fn eval_query(&self, atoms: &[Atom], limit: Option<usize>) -> Result<Vec<Valuation>> {
        eval_on(&self.db, atoms, limit)
    }

    // -- Writes ---------------------------------------------------------------

    /// A blind non-resource write (§3.2.2 "Writes"). Returns `Ok(true)`
    /// when applied; `Ok(false)` when rejected because it would leave some
    /// pending transaction without a consistent grounding.
    pub fn write(&mut self, op: WriteOp) -> Result<bool> {
        let as_atom = Atom::new(
            op.relation(),
            op.tuple()
                .iter()
                .map(|v| qdb_logic::Term::Const(v.clone()))
                .collect(),
        );
        // Partitions whose pending state the write could interact with.
        let affected: Vec<u64> = self
            .partitions
            .iter()
            .filter(|(_, p)| {
                p.txns.iter().any(|pt| {
                    pt.txn
                        .body
                        .iter()
                        .map(|b| &b.atom)
                        .chain(pt.txn.updates.iter().map(|u| &u.atom))
                        .any(|a| a.may_overlap(&as_atom))
                })
            })
            .map(|(&k, _)| k)
            .collect();

        let changed = self.db.apply(&op)?;
        if affected.is_empty() {
            if changed {
                self.wal.append(&LogRecord::Write(op))?;
                self.metrics.writes_applied += 1;
            }
            self.maybe_promote_indexes();
            return Ok(true);
        }

        // Re-validate every affected partition against the new base.
        let mut new_caches: Vec<(u64, Option<CachedSolution>)> = Vec::new();
        let mut ok = true;
        for pid in &affected {
            let p = &self.partitions[pid];
            let refs = p.txn_refs();
            if p.cache.verify(&mut self.solver, &self.db, &refs)? {
                new_caches.push((*pid, None)); // cache still good
                continue;
            }
            match CachedSolution::resolve(&mut self.solver, &self.db, &refs)? {
                Some(cache) => new_caches.push((*pid, Some(cache))),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            // Undo and reject.
            if changed {
                self.db.apply(&op.inverse())?;
            }
            self.metrics.writes_rejected += 1;
            if self.config.record_events {
                self.metrics.events.push(Event::WriteRejected);
            }
            return Ok(false);
        }
        for (pid, cache) in new_caches {
            let p = self
                .partitions
                .get_mut(&pid)
                .expect("affected partition present");
            // The base changed under this partition: alternatives and the
            // admission overlay are no longer known-good.
            p.invalidate_solution_caches();
            if let Some(c) = cache {
                p.cache = c;
            }
        }
        if changed {
            self.wal.append(&LogRecord::Write(op))?;
            self.metrics.writes_applied += 1;
        }
        self.maybe_promote_indexes();
        Ok(true)
    }

    // -- Grounding ------------------------------------------------------------

    /// Explicitly ground one pending transaction (application-directed
    /// collapse). Returns `false` when the id is not pending.
    pub fn ground(&mut self, id: TxnId) -> Result<bool> {
        let Some((pid, _)) = self.find_txn(id) else {
            return Ok(false);
        };
        self.ground_set(pid, &[id], GroundReason::Explicit)?;
        Ok(true)
    }

    /// Ground everything — collapse the quantum state entirely.
    #[allow(clippy::while_let_loop)] // two fallible bindings per iteration
    pub fn ground_all(&mut self) -> Result<()> {
        let pids: Vec<u64> = self.partitions.keys().copied().collect();
        for pid in pids {
            loop {
                let Some(p) = self.partitions.get(&pid) else {
                    break;
                };
                let Some(head) = p.txns.first() else {
                    break;
                };
                let head_id = head.id;
                self.ground_set(pid, &[head_id], GroundReason::Explicit)?;
            }
        }
        Ok(())
    }

    // -- Introspection ----------------------------------------------------------

    /// The extensional database (tuples fixed so far).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Engine configuration.
    pub fn config(&self) -> &QuantumDbConfig {
        &self.config
    }

    /// Engine metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Observability handle: latency histograms, the flight recorder and
    /// the slow-op log. The WAL and the solver share this handle, so every
    /// layer records into the same sinks.
    pub fn obs(&self) -> &std::sync::Arc<qdb_obs::Obs> {
        &self.obs
    }

    /// Latency profile snapshot — per statement class and per engine phase
    /// (the `SHOW PROFILE` payload).
    pub fn profile(&self) -> qdb_obs::ProfileReport {
        self.obs.profile()
    }

    /// Engine metrics with the solver hot-path counters folded in (the
    /// live [`SolverStats`] mirror into the `solver_*` fields; `SHOW
    /// METRICS` reports this view), plus the live database clone count
    /// (`db_clones` — the delta-view read paths keep it at zero).
    pub fn metrics_snapshot(&self) -> Metrics {
        let mut m = self.metrics.clone();
        let s = self.solver.stats();
        m.solver_nodes = s.nodes;
        m.solver_candidates_streamed = s.candidates_streamed;
        m.solver_index_lookups = s.index_lookups;
        m.solver_scan_lookups = s.scan_lookups;
        m.solver_candidate_vecs = s.candidate_vecs;
        m.db_clones = self.db.clone_count();
        m
    }

    /// Reset metrics (between experiment phases). Still-pending
    /// transactions are commits the new epoch inherits, so `committed`
    /// (and the `max_pending` high-water mark) restart at the pending
    /// count — keeping `committed − grounded_total` equal to the pending
    /// count, the invariant the shared handle's
    /// [`SharedQuantumDb::metrics_with_pending`] preserves (and
    /// [`QuantumDb::into_shared`] seeds its counters from here).
    ///
    /// [`SharedQuantumDb::metrics_with_pending`]: crate::SharedQuantumDb::metrics_with_pending
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
        self.metrics.committed = self.pending_count() as u64;
        self.metrics.max_pending = self.metrics.committed;
        self.solver.reset_stats();
        // Histograms open the same fresh epoch as the counters, keeping
        // "per-class histogram count == statement counter" true per epoch.
        self.obs.reset();
    }

    /// Solver statistics.
    pub fn solver_stats(&self) -> &SolverStats {
        self.solver.stats()
    }

    /// Number of pending (committed, unground) transactions.
    pub fn pending_count(&self) -> usize {
        self.partitions.values().map(Partition::len).sum()
    }

    /// Ids of pending transactions in arrival order.
    pub fn pending_ids(&self) -> Vec<TxnId> {
        let mut ids: Vec<TxnId> = self
            .partitions
            .values()
            .flat_map(|p| p.txns.iter().map(|t| t.id))
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Number of independent partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// The composed body formula (Theorem 3.5) of the partition hosting
    /// transaction `id` — diagnostics for "what does the quantum state
    /// look like".
    pub fn composed_body(&self, id: TxnId) -> Option<Formula> {
        let (pid, _) = self.find_txn(id)?;
        let refs = self.partitions[&pid].txn_refs();
        Some(qdb_logic::compose_renamed(&refs))
    }

    /// Size of the WAL in bytes.
    pub fn wal_size(&self) -> u64 {
        self.wal.size_bytes()
    }

    /// Highest transaction id assigned so far (0 when none yet).
    pub fn last_txn_id(&self) -> TxnId {
        self.next_txn_id.saturating_sub(1)
    }

    /// Raw WAL image (crash-recovery tests snapshot this to simulate a
    /// machine failure at an arbitrary point).
    pub fn wal_image(&mut self) -> Vec<u8> {
        self.wal
            .sink_mut()
            .read_all()
            .expect("in-memory sinks cannot fail; file sinks report I/O errors on read")
    }

    /// Append a checkpoint marker to the WAL and drain the group-commit
    /// buffer to the sink.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.wal.append(&LogRecord::Checkpoint)?;
        self.wal.sync()?;
        Ok(())
    }

    /// Promote into the thread-safe, partition-sharded shared handle.
    pub fn into_shared(self) -> SharedQuantumDb {
        SharedQuantumDb::from_engine(self)
    }

    pub(crate) fn find_txn(&self, id: TxnId) -> Option<(u64, usize)> {
        for (&pid, p) in &self.partitions {
            if let Some(pos) = p.position(id) {
                return Some((pid, pos));
            }
        }
        None
    }

    fn validate_schema(&self, txn: &ResourceTransaction) -> Result<()> {
        crate::shard::validate_schema_on(&self.db, txn)
    }
}

/// Columns the access-pattern tracker flags for promotion, across all
/// tables (shared by the single-threaded and the sharded engine).
pub(crate) fn collect_hot_columns(db: &Database, threshold: u32) -> Vec<(String, usize)> {
    db.tables()
        .flat_map(|t| {
            let relation = t.schema().relation().to_string();
            t.hot_unindexed_columns(threshold)
                .into_iter()
                .map(move |c| (relation.clone(), c))
        })
        .collect()
}

/// Evaluate a conjunctive query (logic atoms) against a tuple view — the
/// concrete database or a delta view of a possible world.
pub(crate) fn eval_on<V: qdb_storage::TupleView + ?Sized>(
    view: &V,
    atoms: &[Atom],
    limit: Option<usize>,
) -> Result<Vec<Valuation>> {
    let empty = Valuation::new();
    let patterns = atoms.iter().map(|a| a.to_pattern(&empty)).collect();
    let mut q = ConjunctiveQuery::new(patterns);
    if let Some(l) = limit {
        q = q.with_limit(l);
    }
    let out = q.eval(view)?;
    // Map numeric binding ids back to logic variables.
    let mut by_id: std::collections::BTreeMap<u32, Var> = std::collections::BTreeMap::new();
    for a in atoms {
        for v in a.vars() {
            by_id.entry(v.id()).or_insert_with(|| v.clone());
        }
    }
    Ok(out
        .bindings
        .into_iter()
        .map(|b| {
            b.into_iter()
                .map(|(id, value)| (by_id[&id].clone(), value))
                .collect()
        })
        .collect())
}

/// Admission path taken by [`plan_admission`] (drives the cache metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdmitPath {
    /// The merged cached solution extended to cover the newcomer.
    Extension,
    /// An *alternative* cached solution rescued the admission after the
    /// primary failed to extend (multi-solution cache, §4 discussion).
    ExtraHit,
    /// A full re-solve of the merged sequence was needed.
    FullResolve,
}

/// A successful admission plan: the new cache valuations for the merged
/// partition (merged arrival order, newcomer last), opportunistic
/// alternative solutions, and which cache path succeeded.
///
/// Planning is **pure** (reads the database and the merged partition view,
/// mutates nothing), so the sharded engine can run it under a shared
/// base-state read lock — concurrent admissions into disjoint partitions
/// solve in parallel.
#[derive(Debug)]
pub(crate) struct AdmitPlan {
    /// Cache valuations, parallel to merged transactions + the newcomer.
    pub valuations: Vec<Valuation>,
    /// Alternative cached solutions for the host partition.
    pub extras: Vec<CachedSolution>,
    /// Which admission path succeeded.
    pub path: AdmitPath,
    /// The admission overlay for the host partition: the virtual state of
    /// `valuations` with the newcomer's updates applied. `Some` only on
    /// the extension fast path (other paths replace earlier valuations,
    /// so the next admission rebuilds it).
    pub overlay: Option<qdb_solver::Overlay>,
}

/// Outcome of [`plan_admission`].
#[derive(Debug)]
pub(crate) enum AdmitDecision {
    /// The newcomer admits; install this plan.
    Admitted(AdmitPlan),
    /// The newcomer is refused. Carries the admission overlay when the
    /// fast path built or reused one — the refused search rolled it back
    /// to the cached solution's virtual state, and the partition's
    /// valuations are unchanged, so the caller restores it as the memo
    /// (a refusal must not reset the O(newcomer) fast path to an
    /// O(pending) rebuild).
    Refused(Option<qdb_solver::Overlay>),
}

/// Build the virtual state of the merged cached solution: every pending
/// update grounded under its cached valuation, applied in arrival order.
fn build_admission_overlay(
    db: &Database,
    merged: &[(&PendingTxn, &Valuation)],
) -> Result<qdb_solver::Overlay> {
    use qdb_logic::UpdateKind;
    let mut overlay = qdb_solver::Overlay::new();
    for (p, v) in merged {
        for u in &p.txn.updates {
            let rid = db
                .resolve(&u.atom.relation)
                .map_err(qdb_solver::SolverError::Storage)?;
            let tuple = u.atom.ground(v).map_err(qdb_solver::SolverError::Logic)?;
            // A cached solution's updates must apply cleanly; a conflict
            // here means the cache is inconsistent, exactly as when the
            // ops were threaded through `Solver::solve`'s `pre_ops`.
            overlay
                .apply_id(db, rid, u.kind == UpdateKind::Insert, &tuple)
                .map_err(crate::EngineError::from)?;
        }
    }
    Ok(overlay)
}

/// Plan admitting `txn` against the merged view of its target partitions:
/// check the invariant over the union + the newcomer (cache extension
/// first, then alternatives, then a full re-solve) and compute the new
/// cache state. `merged` must be sorted by transaction id (arrival order);
/// `extras` are the alternative cached solutions of the *single* target
/// partition (pass `&[]` for zero or several targets — alternatives are
/// positional and do not survive merges), and `cached_overlay` is that
/// partition's memoized admission overlay (pass `None` to rebuild).
pub(crate) fn plan_admission(
    solver: &mut Solver,
    db: &Database,
    config: &QuantumDbConfig,
    merged: &[(&PendingTxn, &Valuation)],
    extras: &[CachedSolution],
    cached_overlay: Option<qdb_solver::Overlay>,
    txn: &ResourceTransaction,
) -> Result<AdmitDecision> {
    let mut admitted: Option<Vec<Valuation>> = None;
    let mut admitted_pre_ops: Option<Vec<WriteOp>> = None;
    let mut out_overlay: Option<qdb_solver::Overlay> = None;
    let mut refused_overlay: Option<qdb_solver::Overlay> = None;
    let mut path = AdmitPath::FullResolve;
    if config.use_solution_cache && config.cache_solutions <= 1 {
        // Extend the (merged) cached solution with the newcomer only,
        // against the memoized admission overlay — O(newcomer), not
        // O(pending). A fresh overlay is built when the cache was
        // invalidated (or the partitions just merged).
        let mut overlay = match cached_overlay {
            Some(overlay) => {
                #[cfg(debug_assertions)]
                debug_assert!(
                    overlay.same_deltas(&build_admission_overlay(db, merged)?),
                    "stale admission overlay: an invalidation site was missed"
                );
                overlay
            }
            None => build_admission_overlay(db, merged)?,
        };
        match solver.solve_in(db, &mut overlay, &[TxnSpec::required_only(txn)])? {
            Some(sol) => {
                let mut vals: Vec<Valuation> = merged.iter().map(|(_, v)| (*v).clone()).collect();
                vals.extend(sol.valuations);
                admitted = Some(vals);
                // `solve_in` left the newcomer's updates applied: the
                // overlay is already the post-admission virtual state.
                out_overlay = Some(overlay);
                path = AdmitPath::Extension;
            }
            None => {
                // The unsat search rolled the overlay back to the cached
                // solution's virtual state — keep it for the refusal path.
                refused_overlay = Some(overlay);
                // Before a full re-solve, try each alternative cached
                // solution (none exist when `cache_solutions <= 1`, but
                // stale shapes are skipped defensively).
                for extra in extras {
                    if extra.len() != merged.len() {
                        continue; // stale shape
                    }
                    let Some(alt_ops) = alt_pre_ops(merged, extra) else {
                        continue;
                    };
                    if let Some(sol) = solver.solve(db, &alt_ops, &[TxnSpec::required_only(txn)])? {
                        let mut vals = extra.valuations.clone();
                        vals.extend(sol.valuations);
                        admitted = Some(vals);
                        path = AdmitPath::ExtraHit;
                        break;
                    }
                }
            }
        }
    } else if config.use_solution_cache {
        // Multi-solution configuration: the pre-op list is needed for
        // stocking alternatives, so take the materializing path.
        let mut pre_ops = Vec::with_capacity(merged.len() * 2);
        for (p, v) in merged {
            pre_ops.extend(p.txn.write_ops(v)?);
        }
        if let Some(sol) = solver.solve(db, &pre_ops, &[TxnSpec::required_only(txn)])? {
            let mut vals: Vec<Valuation> = merged.iter().map(|(_, v)| (*v).clone()).collect();
            vals.extend(sol.valuations);
            admitted = Some(vals);
            admitted_pre_ops = Some(pre_ops);
            path = AdmitPath::Extension;
        } else {
            // Before a full re-solve, try each alternative cached solution.
            for extra in extras {
                if extra.len() != merged.len() {
                    continue; // stale shape
                }
                let Some(alt_ops) = alt_pre_ops(merged, extra) else {
                    continue;
                };
                if let Some(sol) = solver.solve(db, &alt_ops, &[TxnSpec::required_only(txn)])? {
                    let mut vals = extra.valuations.clone();
                    vals.extend(sol.valuations);
                    admitted = Some(vals);
                    admitted_pre_ops = Some(alt_ops);
                    path = AdmitPath::ExtraHit;
                    break;
                }
            }
        }
    }
    if admitted.is_none() {
        // Full re-solve of the whole (merged + newcomer) sequence.
        let mut specs: Vec<TxnSpec> = merged
            .iter()
            .map(|(p, _)| TxnSpec::required_only(&p.txn))
            .collect();
        specs.push(TxnSpec::required_only(txn));
        if let Some(sol) = solver.solve(db, &[], &specs)? {
            admitted = Some(sol.valuations);
            path = AdmitPath::FullResolve;
        }
    }
    let Some(valuations) = admitted else {
        return Ok(AdmitDecision::Refused(refused_overlay));
    };
    // Opportunistically stock alternative solutions: same prefix,
    // different groundings of the newcomer (cheap diversity where it
    // matters most — the §4 "background process" idea folded into the
    // admission path).
    let mut plan_extras = Vec::new();
    if config.cache_solutions > 1 {
        if let Some(pre_ops) = admitted_pre_ops {
            let alts = solver.enumerate_one(
                db,
                &pre_ops,
                &TxnSpec::required_only(txn),
                config.cache_solutions,
            )?;
            let chosen = valuations.last().expect("newcomer valuation present");
            for alt in alts {
                if &alt == chosen || plan_extras.len() + 1 >= config.cache_solutions {
                    continue;
                }
                let mut vals = valuations.clone();
                *vals.last_mut().expect("non-empty") = alt;
                plan_extras.push(CachedSolution { valuations: vals });
            }
        }
    }
    Ok(AdmitDecision::Admitted(AdmitPlan {
        valuations,
        extras: plan_extras,
        path,
        overlay: out_overlay,
    }))
}

/// Ground the merged pending updates under an *alternative* cached
/// solution; `None` when any update fails to ground (stale alternative).
fn alt_pre_ops(
    merged: &[(&PendingTxn, &Valuation)],
    extra: &CachedSolution,
) -> Option<Vec<WriteOp>> {
    let mut alt_ops = Vec::with_capacity(merged.len() * 2);
    for ((p, _), v) in merged.iter().zip(&extra.valuations) {
        match p.txn.write_ops(v) {
            Ok(ops) => alt_ops.extend(ops),
            Err(_) => return None,
        }
    }
    Some(alt_ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_logic::parse_transaction;
    use qdb_storage::{tuple, ValueType};

    fn seat_engine(seats: &[&str]) -> QuantumDb {
        let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
        qdb.create_table(Schema::new(
            "Available",
            vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
        ))
        .unwrap();
        qdb.create_table(Schema::new(
            "Bookings",
            vec![
                ("name", ValueType::Str),
                ("flight", ValueType::Int),
                ("seat", ValueType::Str),
            ],
        ))
        .unwrap();
        for s in seats {
            qdb.bulk_insert("Available", vec![tuple![1, *s]]).unwrap();
        }
        qdb
    }

    fn book(name: &str) -> ResourceTransaction {
        parse_transaction(&format!(
            "-Available(1, s), +Bookings('{name}', 1, s) :-1 Available(1, s)"
        ))
        .unwrap()
    }

    #[test]
    fn refused_admission_keeps_the_partition_overlay_memo() {
        let mut qdb = seat_engine(&["1A", "1B"]);
        assert!(qdb.submit(&book("U1")).unwrap().is_committed());
        assert!(qdb.submit(&book("U2")).unwrap().is_committed());
        let memo_present =
            |qdb: &QuantumDb| qdb.partitions.values().any(|p| p.overlay_cache.is_some());
        assert!(memo_present(&qdb), "extension path installs the memo");
        // Capacity exhausted: the third booking is refused — and must not
        // cost the partition its memo (the next admission would otherwise
        // rebuild at O(depth)).
        assert!(!qdb.submit(&book("U3")).unwrap().is_committed());
        assert!(
            memo_present(&qdb),
            "a refusal must restore the rolled-back admission overlay"
        );
        // The preserved memo is still correct: freeing a seat admits the
        // next booking via extension (debug builds also assert the memo
        // against a fresh rebuild inside plan_admission).
        qdb.write(WriteOp::insert("Available", tuple![1, "1C"]))
            .unwrap();
        let ext_before = qdb.metrics().cache_extensions;
        assert!(qdb.submit(&book("U4")).unwrap().is_committed());
        assert_eq!(qdb.metrics().cache_extensions, ext_before + 1);
    }
}
