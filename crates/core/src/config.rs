//! Engine configuration.

use qdb_solver::{AtomOrder, SearchLimits};

/// Which serializability guarantee grounding provides (§2, §3.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Serializability {
    /// Classical ACID-style: grounding transaction `Ti` first grounds
    /// `T0..Ti-1` in arrival order (the "naïve approach" of §3.2.3 — safe
    /// but over-constraining).
    Strict,
    /// Semantic serializability (the default, and the paper's
    /// recommendation): the transaction under consideration is moved to
    /// the *front* of the pending order if the remaining formula stays
    /// satisfiable; its intent is preserved even though it is no longer
    /// serialized in commit order. Falls back to `Strict` when the
    /// front-move check fails.
    #[default]
    Semantic,
}

/// How the engine picks among multiple satisfying assignments when a value
/// must be fixed (§3.2.2: "it is desirable to fix values in such a way as
/// to maximize the remaining number of possible worlds; more sophisticated
/// application-specific heuristics may also be appropriate").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GroundingPolicy {
    /// Take the first satisfying assignment found (deterministic,
    /// cheapest; what the paper's prototype does).
    #[default]
    FirstFit,
    /// Enumerate up to `sample` assignments and keep the one that leaves
    /// the most candidate tuples for the remaining pending transactions —
    /// a generic proxy for "maximize the remaining possible worlds".
    MaxFlexibility {
        /// How many alternative assignments to score.
        sample: usize,
    },
    /// Pick uniformly at random among up to `sample` assignments
    /// (seeded; used to de-bias measurements in ablations).
    Random {
        /// RNG seed.
        seed: u64,
        /// How many alternative assignments to draw from.
        sample: usize,
    },
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct QuantumDbConfig {
    /// Maximum pending transactions per partition before the oldest are
    /// forcibly grounded (§4; the prototype's bound came from MySQL's
    /// 61-join limit). The figures sweep k ∈ {20, 30, 40}.
    pub k: usize,
    /// Grounding order guarantee.
    pub serializability: Serializability,
    /// Assignment-choice heuristic.
    pub policy: GroundingPolicy,
    /// Partition independent transactions (§4 "Quantum State"); disabling
    /// this keeps one global composed body (ablation knob).
    pub partitioning: bool,
    /// Maintain per-partition solution caches (§4 "Solution Cache");
    /// disabling re-solves from scratch on every admission (ablation
    /// knob).
    pub use_solution_cache: bool,
    /// Number of alternative solutions kept per partition (≥ 1). The §4
    /// discussion suggests computing extra solutions "by a background
    /// process in order to keep the per-transaction latency low"; here the
    /// extras are computed opportunistically at admission time: when one
    /// cached solution cannot be extended, the next is tried before
    /// falling back to a from-scratch re-solve.
    pub cache_solutions: usize,
    /// Ground coordination partners jointly as soon as both are in the
    /// system (§5.1 entangled resource transactions).
    pub ground_on_partner_arrival: bool,
    /// Solver atom-ordering strategy.
    pub solver_order: AtomOrder,
    /// Solver resource bounds.
    pub search_limits: SearchLimits,
    /// Access-pattern-driven index promotion: when a table column with no
    /// index accumulates this many bound-column scans (the storage layer's
    /// per-table tracker), the engine creates a secondary index on it and
    /// logs a `CreateIndex` WAL record so recovery rebuilds it. `0`
    /// disables auto-indexing.
    pub auto_index_threshold: u32,
    /// Record an event trace (commit/abort/ground events) for tests and
    /// diagnostics.
    pub record_events: bool,
    /// Serialize every statement of the *shared* handle through one global
    /// mutex, reproducing the pre-sharding single-big-lock engine. Purely
    /// an A/B ablation knob for the `partition_scaling` benchmark; leave
    /// off to get partition-parallel execution.
    pub coarse_lock: bool,
    /// Engine determinism seed, threaded through every remaining choice
    /// point the engine has beyond data order: solver atom-ordering
    /// tie-breaks ([`qdb_solver::Solver::seed`]), possible-world
    /// enumeration, and the [`GroundingPolicy::Random`] shuffle. `0` (the
    /// default) reproduces the historical first-wins behavior bit for
    /// bit; any fixed value makes two runs of the same workload identical
    /// — the contract the deterministic simulator (`qdb-sim`) relies on.
    pub seed: u64,
    /// Slow-op threshold in microseconds: any statement slower than this
    /// has its full span tree promoted to the observability layer's
    /// slow-op log ([`qdb_obs::Obs::slow_ops`]). `0` (the default)
    /// disables the slow-op log; histograms and the flight recorder are
    /// always on.
    pub slow_op_threshold_us: u64,
}

impl Default for QuantumDbConfig {
    fn default() -> Self {
        QuantumDbConfig {
            k: 61,
            serializability: Serializability::default(),
            policy: GroundingPolicy::default(),
            partitioning: true,
            use_solution_cache: true,
            cache_solutions: 1,
            ground_on_partner_arrival: true,
            solver_order: AtomOrder::default(),
            search_limits: SearchLimits::default(),
            auto_index_threshold: 64,
            record_events: false,
            coarse_lock: false,
            seed: 0,
            slow_op_threshold_us: 0,
        }
    }
}

impl QuantumDbConfig {
    /// Config with a specific `k` (the common knob in the experiments).
    pub fn with_k(k: usize) -> Self {
        QuantumDbConfig {
            k,
            ..QuantumDbConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_prototype() {
        let c = QuantumDbConfig::default();
        assert_eq!(c.k, 61); // MySQL's max joins, §4
        assert_eq!(c.serializability, Serializability::Semantic);
        assert_eq!(c.policy, GroundingPolicy::FirstFit);
        assert!(c.partitioning);
        assert!(c.use_solution_cache);
        assert_eq!(c.cache_solutions, 1);
        assert!(c.ground_on_partner_arrival);
        assert_eq!(c.seed, 0, "seed 0 = historical deterministic behavior");
        assert_eq!(c.slow_op_threshold_us, 0, "slow-op log off by default");
    }

    #[test]
    fn with_k_overrides_only_k() {
        let c = QuantumDbConfig::with_k(20);
        assert_eq!(c.k, 20);
        assert!(c.partitioning);
    }
}
