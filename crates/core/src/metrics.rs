//! Engine metrics and event trace.
//!
//! The evaluation section measures commits, coordination successes,
//! grounding causes and time split between reads and updates — these
//! counters are what `qdb-workload`'s experiment runner reads out.

use crate::ground::GroundReason;
use crate::txn::TxnId;

/// A notable engine event (recorded when
/// [`crate::QuantumDbConfig::record_events`] is on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A resource transaction committed (the §2 guarantee: it will achieve
    /// its goal; it will never be rolled back).
    Committed(TxnId),
    /// A resource transaction was refused admission (its addition would
    /// empty the set of possible worlds).
    Aborted,
    /// A pending transaction was grounded.
    Grounded {
        /// Which transaction.
        id: TxnId,
        /// Why it was grounded.
        reason: GroundReason,
        /// How many of its optional atoms the chosen assignment satisfied.
        optionals_satisfied: usize,
        /// How many optional atoms it had.
        optionals_total: usize,
    },
    /// A blind write was rejected (it would invalidate pending state).
    WriteRejected,
    /// Two or more partitions merged on transaction arrival.
    PartitionsMerged {
        /// Partition count before the merge.
        before: usize,
    },
}

/// Cumulative counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Resource transactions submitted.
    pub submitted: u64,
    /// Resource transactions committed.
    pub committed: u64,
    /// Resource transactions aborted at admission.
    pub aborted: u64,
    /// Reads served with collapse semantics (§3.2.2 option 3).
    pub reads: u64,
    /// Reads served with peek semantics (§3.2.2 option 2) — answered
    /// against one possible world through a delta view, never grounding.
    pub reads_peek: u64,
    /// Reads served with all-possible-values semantics (§3.2.2 option 1).
    pub reads_possible: u64,
    /// World forks created by the possible-worlds enumerator.
    pub worlds_enumerated: u64,
    /// Forked worlds discarded as duplicates by delta fingerprinting.
    pub world_dedup_hits: u64,
    /// `Database` clones observed on the engine's database family
    /// (sourced live from [`qdb_storage::Database::clone_count`] at
    /// snapshot time; the delta-view read paths keep this at zero).
    pub db_clones: u64,
    /// Blind writes applied.
    pub writes_applied: u64,
    /// Blind writes rejected.
    pub writes_rejected: u64,
    /// Groundings by reason.
    pub grounded_by_read: u64,
    /// Groundings forced by the `k` bound.
    pub grounded_by_k: u64,
    /// Groundings triggered by coordination-partner arrival (§5.1).
    pub grounded_by_partner: u64,
    /// Explicit groundings requested by the application.
    pub grounded_explicit: u64,
    /// Admissions resolved by extending the cached solution.
    pub cache_extensions: u64,
    /// Admissions rescued by an *alternative* cached solution after the
    /// primary failed to extend (multi-solution cache, §4 discussion).
    pub cache_extra_hits: u64,
    /// Admissions that needed a full re-solve.
    pub cache_full_resolves: u64,
    /// Partition merges.
    pub partition_merges: u64,
    /// SQL parser entries: `execute()` on text and `Session::prepare`.
    /// Prepared statements re-executed via `bind(…).run()` do not parse,
    /// so a hot loop over a prepared statement holds this constant.
    pub parses: u64,
    /// Pending transactions high-water mark (Table 1's measure).
    pub max_pending: u64,
    /// Optional atoms satisfied at grounding time, summed.
    pub optionals_satisfied: u64,
    /// Optional atoms present on grounded transactions, summed.
    pub optionals_total: u64,
    /// Solver search nodes expanded (candidate tuples tried).
    pub solver_nodes: u64,
    /// Candidate rows pulled through the solver's streaming cursors.
    pub solver_candidates_streamed: u64,
    /// Solver hot-path lookups answered by a secondary index (or an index
    /// bucket length).
    pub solver_index_lookups: u64,
    /// Solver hot-path lookups that fell back to a table scan.
    pub solver_scan_lookups: u64,
    /// Candidate vectors materialized by the solver (legacy/reference
    /// path; the search fast path keeps this at zero).
    pub solver_candidate_vecs: u64,
    /// Secondary indexes created by the access-pattern tracker (see
    /// [`crate::QuantumDbConfig::auto_index_threshold`]).
    pub indexes_auto_created: u64,
    /// Event trace (empty unless `record_events`).
    pub events: Vec<Event>,
}

impl Metrics {
    /// Record a grounding.
    pub(crate) fn record_ground(&mut self, reason: GroundReason) {
        match reason {
            GroundReason::Read => self.grounded_by_read += 1,
            GroundReason::KBound => self.grounded_by_k += 1,
            GroundReason::Partner => self.grounded_by_partner += 1,
            GroundReason::Explicit => self.grounded_explicit += 1,
        }
    }

    /// Total groundings.
    pub fn grounded_total(&self) -> u64 {
        self.grounded_by_read
            + self.grounded_by_k
            + self.grounded_by_partner
            + self.grounded_explicit
    }

    /// Reset all counters and the trace.
    pub fn reset(&mut self) {
        *self = Metrics::default();
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "submitted={} committed={} aborted={} reads(collapse/peek/possible)={}/{}/{} grounded(read/k/partner/explicit)={}/{}/{}/{} cache(ext/full)={}/{} worlds(enumerated/dedup)={}/{} db_clones={} max_pending={} parses={}",
            self.submitted,
            self.committed,
            self.aborted,
            self.reads,
            self.reads_peek,
            self.reads_possible,
            self.grounded_by_read,
            self.grounded_by_k,
            self.grounded_by_partner,
            self.grounded_explicit,
            self.cache_extensions,
            self.cache_full_resolves,
            self.worlds_enumerated,
            self.world_dedup_hits,
            self.db_clones,
            self.max_pending,
            self.parses,
        )
    }
}

/// The one list of mirrored counters: every `u64` field shared between
/// [`Metrics`] and `AtomicMetrics`. The macro stamps out the atomic
/// struct, the seed-from-snapshot path, the snapshot read and the reset —
/// a counter added to [`Metrics`] but missing here fails to compile in
/// `read_counters` (non-exhaustive struct literal), so the four mirrors
/// cannot silently drift.
macro_rules! mirrored_counters {
    ($($field:ident),* $(,)?) => {
        /// Lock-free engine counters for the sharded engine
        /// (`crate::shard`).
        ///
        /// Hot-path observation never takes a lock: every counter is an
        /// [`AtomicU64`], and multi-counter transitions (e.g. *committed*
        /// and *pending* moving together at admission, *grounded* and
        /// *pending* at collapse) are made torn-read-proof by a seqlock.
        /// Writers bump `epoch` to odd, update cells, then publish with
        /// `epoch + 2`; a snapshot is a single `SeqCst` epoch read, a read
        /// of all cells, and an epoch re-check — retried until the epoch
        /// was stable and even, so `SHOW METRICS` taken mid-`GROUND ALL`
        /// can never observe `committed − grounded ≠ pending`.
        #[derive(Debug, Default)]
        pub(crate) struct AtomicMetrics {
            epoch: AtomicU64,
            $(pub(crate) $field: AtomicU64,)*
            /// Pending transactions right now (not part of [`Metrics`],
            /// but kept under the same seqlock so accounting snapshots
            /// are consistent).
            pub(crate) pending: AtomicU64,
            /// Event trace (only when `record_events`); consistency with
            /// the counters is not required, so it lives outside the
            /// seqlock.
            events: crate::sync::Mutex<Vec<Event>>,
        }

        impl AtomicMetrics {
            /// Seed the atomic counters from a plain snapshot (engine
            /// promotion to a shared handle preserves history).
            pub(crate) fn from_metrics(m: &Metrics, pending: u64) -> Self {
                let a = AtomicMetrics::default();
                {
                    let t = a.begin();
                    $(t.add(|c| &c.$field, m.$field);)*
                    t.add(|c| &c.pending, pending);
                }
                *a.events.lock() = m.events.clone();
                a
            }

            /// Raw counter reads (callers wrap in the seqlock protocol).
            fn read_counters(&self) -> Metrics {
                Metrics {
                    $($field: self.$field.load(SeqCst),)*
                    events: Vec::new(),
                }
            }

            /// Zero every mirrored counter (callers hold the seqlock).
            fn zero_counters(&self) {
                $(self.$field.store(0, SeqCst);)*
            }
        }
    };
}

mirrored_counters!(
    submitted,
    committed,
    aborted,
    reads,
    reads_peek,
    reads_possible,
    worlds_enumerated,
    world_dedup_hits,
    db_clones,
    writes_applied,
    writes_rejected,
    grounded_by_read,
    grounded_by_k,
    grounded_by_partner,
    grounded_explicit,
    cache_extensions,
    cache_extra_hits,
    cache_full_resolves,
    partition_merges,
    parses,
    max_pending,
    optionals_satisfied,
    optionals_total,
    solver_nodes,
    solver_candidates_streamed,
    solver_index_lookups,
    solver_scan_lookups,
    solver_candidate_vecs,
    indexes_auto_created,
);

use std::sync::atomic::{AtomicU64, Ordering::SeqCst};

/// Write guard over [`AtomicMetrics`]: holds the seqlock (epoch is odd)
/// for the duration of one multi-counter transition.
pub(crate) struct MetricsTxn<'a> {
    m: &'a AtomicMetrics,
    epoch: u64,
}

impl AtomicMetrics {
    /// Open a multi-counter transition (spins while another writer holds
    /// the seqlock; critical sections are a handful of atomic stores).
    pub(crate) fn begin(&self) -> MetricsTxn<'_> {
        loop {
            let e = self.epoch.load(SeqCst);
            if e.is_multiple_of(2)
                && self
                    .epoch
                    .compare_exchange(e, e + 1, SeqCst, SeqCst)
                    .is_ok()
            {
                return MetricsTxn { m: self, epoch: e };
            }
            std::hint::spin_loop();
        }
    }

    /// Record one parser entry (single counter, still epoch-guarded so
    /// snapshots never tear).
    pub(crate) fn count_parse(&self) {
        self.begin().add(|c| &c.parses, 1);
    }

    /// Fold one operation's solver-stat deltas into the mirrored solver
    /// counters (the sharded engine calls this when it absorbs a
    /// per-operation solver).
    pub(crate) fn absorb_solver(&self, s: &qdb_solver::SolverStats) {
        let t = self.begin();
        t.add(|c| &c.solver_nodes, s.nodes);
        t.add(|c| &c.solver_candidates_streamed, s.candidates_streamed);
        t.add(|c| &c.solver_index_lookups, s.index_lookups);
        t.add(|c| &c.solver_scan_lookups, s.scan_lookups);
        t.add(|c| &c.solver_candidate_vecs, s.candidate_vecs);
    }

    /// Append an event (when tracing is enabled).
    pub(crate) fn push_event(&self, event: Event) {
        self.events.lock().push(event);
    }

    /// Current pending count (monotonic counters make a raw read safe for
    /// a single value; use [`AtomicMetrics::snapshot_with_pending`] when
    /// it must be consistent with other counters).
    pub(crate) fn pending(&self) -> u64 {
        self.pending.load(SeqCst)
    }

    /// Consistent snapshot of all counters plus the pending count, taken
    /// from one stable seqlock window.
    pub(crate) fn snapshot_with_pending(&self) -> (Metrics, u64) {
        loop {
            let e = self.epoch.load(SeqCst);
            if !e.is_multiple_of(2) {
                std::hint::spin_loop();
                continue;
            }
            let m = self.read_counters();
            let pending = self.pending.load(SeqCst);
            if self.epoch.load(SeqCst) == e {
                let mut m = m;
                m.events = self.events.lock().clone();
                return (m, pending);
            }
        }
    }

    /// Zero every counter and drop the trace (between experiment phases).
    ///
    /// Pending is live engine state, not a statistic: it survives the
    /// reset, and `committed` restarts at the pending count — the
    /// still-pending transactions are exactly the commits the new epoch
    /// inherits — so the accounting identity `committed − grounded_total
    /// == pending` keeps holding for every snapshot even when the reset
    /// happens while transactions are pending. `max_pending` restarts at
    /// the same count for the same reason: the inherited transactions are
    /// pending from the new epoch's first instant. The whole transition
    /// runs inside one seqlock window, so no snapshot observes it
    /// half-done. A reset taken at quiescence (zero pending) degenerates
    /// to zeroing everything.
    pub(crate) fn reset(&self) {
        {
            let t = self.begin();
            self.zero_counters();
            let pending = self.pending.load(SeqCst);
            t.add(|c| &c.committed, pending);
            t.add(|c| &c.max_pending, pending);
        }
        self.events.lock().clear();
    }
}

impl<'a> MetricsTxn<'a> {
    /// Add to one counter cell.
    pub(crate) fn add(&self, cell: impl FnOnce(&'a AtomicMetrics) -> &'a AtomicU64, n: u64) {
        cell(self.m).fetch_add(n, SeqCst);
    }

    /// Subtract from one counter cell.
    pub(crate) fn sub(&self, cell: impl FnOnce(&'a AtomicMetrics) -> &'a AtomicU64, n: u64) {
        cell(self.m).fetch_sub(n, SeqCst);
    }

    /// Route a grounding to its reason counter and decrement pending.
    pub(crate) fn record_ground(&self, reason: GroundReason) {
        match reason {
            GroundReason::Read => self.add(|c| &c.grounded_by_read, 1),
            GroundReason::KBound => self.add(|c| &c.grounded_by_k, 1),
            GroundReason::Partner => self.add(|c| &c.grounded_by_partner, 1),
            GroundReason::Explicit => self.add(|c| &c.grounded_explicit, 1),
        }
        self.sub(|c| &c.pending, 1);
    }

    /// Commit one admission: committed and pending move together.
    pub(crate) fn record_commit(&self) {
        self.add(|c| &c.committed, 1);
        self.add(|c| &c.pending, 1);
    }

    /// Sample the pending high-water mark.
    pub(crate) fn sample_max_pending(&self) {
        self.m
            .max_pending
            .fetch_max(self.m.pending.load(SeqCst), SeqCst);
    }
}

impl Drop for MetricsTxn<'_> {
    fn drop(&mut self) {
        self.m.epoch.store(self.epoch + 2, SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_reasons_routed_to_counters() {
        let mut m = Metrics::default();
        m.record_ground(GroundReason::Read);
        m.record_ground(GroundReason::KBound);
        m.record_ground(GroundReason::KBound);
        m.record_ground(GroundReason::Partner);
        m.record_ground(GroundReason::Explicit);
        assert_eq!(m.grounded_by_read, 1);
        assert_eq!(m.grounded_by_k, 2);
        assert_eq!(m.grounded_by_partner, 1);
        assert_eq!(m.grounded_explicit, 1);
        assert_eq!(m.grounded_total(), 5);
        m.reset();
        assert_eq!(m.grounded_total(), 0);
    }

    #[test]
    fn display_is_single_line() {
        assert!(!Metrics::default().to_string().contains('\n'));
    }
}
