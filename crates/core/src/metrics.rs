//! Engine metrics and event trace.
//!
//! The evaluation section measures commits, coordination successes,
//! grounding causes and time split between reads and updates — these
//! counters are what `qdb-workload`'s experiment runner reads out.

use crate::ground::GroundReason;
use crate::txn::TxnId;

/// A notable engine event (recorded when
/// [`crate::QuantumDbConfig::record_events`] is on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A resource transaction committed (the §2 guarantee: it will achieve
    /// its goal; it will never be rolled back).
    Committed(TxnId),
    /// A resource transaction was refused admission (its addition would
    /// empty the set of possible worlds).
    Aborted,
    /// A pending transaction was grounded.
    Grounded {
        /// Which transaction.
        id: TxnId,
        /// Why it was grounded.
        reason: GroundReason,
        /// How many of its optional atoms the chosen assignment satisfied.
        optionals_satisfied: usize,
        /// How many optional atoms it had.
        optionals_total: usize,
    },
    /// A blind write was rejected (it would invalidate pending state).
    WriteRejected,
    /// Two or more partitions merged on transaction arrival.
    PartitionsMerged {
        /// Partition count before the merge.
        before: usize,
    },
}

/// Cumulative counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Resource transactions submitted.
    pub submitted: u64,
    /// Resource transactions committed.
    pub committed: u64,
    /// Resource transactions aborted at admission.
    pub aborted: u64,
    /// Reads served.
    pub reads: u64,
    /// Blind writes applied.
    pub writes_applied: u64,
    /// Blind writes rejected.
    pub writes_rejected: u64,
    /// Groundings by reason.
    pub grounded_by_read: u64,
    /// Groundings forced by the `k` bound.
    pub grounded_by_k: u64,
    /// Groundings triggered by coordination-partner arrival (§5.1).
    pub grounded_by_partner: u64,
    /// Explicit groundings requested by the application.
    pub grounded_explicit: u64,
    /// Admissions resolved by extending the cached solution.
    pub cache_extensions: u64,
    /// Admissions rescued by an *alternative* cached solution after the
    /// primary failed to extend (multi-solution cache, §4 discussion).
    pub cache_extra_hits: u64,
    /// Admissions that needed a full re-solve.
    pub cache_full_resolves: u64,
    /// Partition merges.
    pub partition_merges: u64,
    /// SQL parser entries: `execute()` on text and `Session::prepare`.
    /// Prepared statements re-executed via `bind(…).run()` do not parse,
    /// so a hot loop over a prepared statement holds this constant.
    pub parses: u64,
    /// Pending transactions high-water mark (Table 1's measure).
    pub max_pending: u64,
    /// Optional atoms satisfied at grounding time, summed.
    pub optionals_satisfied: u64,
    /// Optional atoms present on grounded transactions, summed.
    pub optionals_total: u64,
    /// Event trace (empty unless `record_events`).
    pub events: Vec<Event>,
}

impl Metrics {
    /// Record a grounding.
    pub(crate) fn record_ground(&mut self, reason: GroundReason) {
        match reason {
            GroundReason::Read => self.grounded_by_read += 1,
            GroundReason::KBound => self.grounded_by_k += 1,
            GroundReason::Partner => self.grounded_by_partner += 1,
            GroundReason::Explicit => self.grounded_explicit += 1,
        }
    }

    /// Total groundings.
    pub fn grounded_total(&self) -> u64 {
        self.grounded_by_read
            + self.grounded_by_k
            + self.grounded_by_partner
            + self.grounded_explicit
    }

    /// Reset all counters and the trace.
    pub fn reset(&mut self) {
        *self = Metrics::default();
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "submitted={} committed={} aborted={} reads={} grounded(read/k/partner/explicit)={}/{}/{}/{} cache(ext/full)={}/{} max_pending={} parses={}",
            self.submitted,
            self.committed,
            self.aborted,
            self.reads,
            self.grounded_by_read,
            self.grounded_by_k,
            self.grounded_by_partner,
            self.grounded_explicit,
            self.cache_extensions,
            self.cache_full_resolves,
            self.max_pending,
            self.parses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_reasons_routed_to_counters() {
        let mut m = Metrics::default();
        m.record_ground(GroundReason::Read);
        m.record_ground(GroundReason::KBound);
        m.record_ground(GroundReason::KBound);
        m.record_ground(GroundReason::Partner);
        m.record_ground(GroundReason::Explicit);
        assert_eq!(m.grounded_by_read, 1);
        assert_eq!(m.grounded_by_k, 2);
        assert_eq!(m.grounded_by_partner, 1);
        assert_eq!(m.grounded_explicit, 1);
        assert_eq!(m.grounded_total(), 5);
        m.reset();
        assert_eq!(m.grounded_total(), 0);
    }

    #[test]
    fn display_is_single_line() {
        assert!(!Metrics::default().to_string().contains('\n'));
    }
}
