//! Read checks (§3.2.2 "Reads").
//!
//! *"A simple practical solution is to use a conservative criterion based
//! on unifiability. If a relational atom in our incoming read query
//! unifies with a pending update `Ui` from a transaction `Ti`, the values
//! involved in that transaction are fixed."*
//!
//! The engine loops this check to a fixed point, since grounding one
//! transaction changes the extensional state the rest are measured
//! against. The check is deliberately conservative — precise information
//! disclosure through views is Πᵖ₂-complete (§3.2.2).

use qdb_logic::{Atom, ResourceTransaction};

/// Would answering a query over `atoms` require fixing `txn`'s values?
/// True when any pending update atom may denote a tuple the query could
/// touch.
pub fn read_affects(txn: &ResourceTransaction, atoms: &[Atom]) -> bool {
    txn.updates
        .iter()
        .any(|u| atoms.iter().any(|qa| qa.may_overlap(&u.atom)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_logic::{parse_query, parse_transaction};

    fn mickey() -> ResourceTransaction {
        parse_transaction("-Available(f, s), +Bookings('Mickey', f, s) :-1 Available(f, s)")
            .unwrap()
    }

    #[test]
    fn own_booking_read_hits_the_txn() {
        let q = parse_query("Bookings('Mickey', f, s)").unwrap();
        assert!(read_affects(&mickey(), &q.atoms));
    }

    #[test]
    fn other_users_booking_read_does_not() {
        // Constants clash on the name column: Donald's read cannot be
        // affected by Mickey's pending insert…
        let q = parse_query("Bookings('Donald', f, s)").unwrap();
        assert!(!read_affects(&mickey(), &q.atoms));
    }

    #[test]
    fn table_wide_read_hits_everything() {
        // …but a read of the full Bookings table fixes it (§3.2.2 warns
        // that such general reads cause many groundings).
        let q = parse_query("Bookings(n, f, s)").unwrap();
        assert!(read_affects(&mickey(), &q.atoms));
    }

    #[test]
    fn availability_reads_hit_the_delete_side() {
        let q = parse_query("Available(123, s)").unwrap();
        assert!(read_affects(&mickey(), &q.atoms));
    }

    #[test]
    fn unrelated_relation_is_untouched() {
        let q = parse_query("Hotels(h)").unwrap();
        assert!(!read_affects(&mickey(), &q.atoms));
    }
}
