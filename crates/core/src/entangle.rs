//! Entangled resource transactions (§5.1).
//!
//! A coordination constraint ("I want to sit next to Goofy") is an
//! *optional* body atom that can only be satisfied through another user's
//! booking — either one already in the extensional database, or the
//! pending insert of another resource transaction. While the partner has
//! not arrived, the constraint is a **forward constraint**, kept open by
//! leaving the transaction pending. *"An entangled resource transaction
//! waiting for its partner is finally executed as soon as its partner
//! arrives"* — when the engine admits a transaction, it looks for pending
//! partners and grounds the pair jointly.

use qdb_logic::{unifiable, ResourceTransaction};

use crate::txn::{PendingTxn, TxnId};

/// Does `a` declare a coordination interest in `b`? True when an optional
/// atom of `a` unifies with an insert of `b`'s update portion — i.e. `b`'s
/// booking could satisfy `a`'s soft preference.
pub fn coordinates_with(a: &ResourceTransaction, b: &ResourceTransaction) -> bool {
    a.optional_body()
        .any(|opt| b.inserts().any(|ins| unifiable(&opt.atom, &ins.atom)))
}

/// Pending transactions that form a coordination pair with `new_txn`
/// (either direction), in arrival order.
pub fn coordination_partners(new_txn: &ResourceTransaction, pending: &[PendingTxn]) -> Vec<TxnId> {
    pending
        .iter()
        .filter(|p| coordinates_with(new_txn, &p.txn) || coordinates_with(&p.txn, new_txn))
        .map(|p| p.id)
        .collect()
}

/// Does `txn` carry any coordination constraint at all (an optional atom
/// over a relation that some update could write)? Used by workloads to
/// label transactions.
pub fn has_coordination_constraint(txn: &ResourceTransaction) -> bool {
    txn.optional_body().next().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_logic::parse_transaction;

    fn mickey() -> ResourceTransaction {
        parse_transaction(
            "-Available(f, s), +Bookings('Mickey', f, s) :-1 \
             Available(f, s), Bookings('Goofy', f, s2)?, Adjacent(s, s2)?",
        )
        .unwrap()
    }

    fn goofy() -> ResourceTransaction {
        parse_transaction(
            "-Available(f, s), +Bookings('Goofy', f, s) :-1 \
             Available(f, s), Bookings('Mickey', f, s2)?, Adjacent(s, s2)?",
        )
        .unwrap()
    }

    fn pluto() -> ResourceTransaction {
        parse_transaction("-Available(f, s), +Bookings('Pluto', f, s) :-1 Available(f, s)").unwrap()
    }

    #[test]
    fn partners_detected_in_both_directions() {
        assert!(coordinates_with(&mickey(), &goofy()));
        assert!(coordinates_with(&goofy(), &mickey()));
        // Pluto books for himself; his insert is Bookings('Pluto',…) which
        // unifies with nobody's optional Bookings('Goofy'/'Mickey',…).
        assert!(!coordinates_with(&mickey(), &pluto()));
        assert!(!coordinates_with(&pluto(), &mickey()));
    }

    #[test]
    fn partner_scan_over_pending_list() {
        let pending = vec![
            PendingTxn::new(1, pluto()),
            PendingTxn::new(2, mickey()),
            PendingTxn::new(3, pluto()),
        ];
        assert_eq!(coordination_partners(&goofy(), &pending), vec![2]);
        assert!(coordination_partners(&pluto(), &pending).is_empty());
    }

    #[test]
    fn coordination_labels() {
        assert!(has_coordination_constraint(&mickey()));
        assert!(!has_coordination_constraint(&pluto()));
    }
}
