//! Explicit possible-worlds semantics (§3.1, Figure 2).
//!
//! The quantum database represents its possible worlds *intensionally*;
//! this module enumerates them by explicit forking — exactly the thought
//! experiment of §3.1 ("suppose the system finds all possible values that
//! could be assigned … and forks the database state into several possible
//! worlds"). A world is **never materialized**: each fork is a
//! [`WorldDelta`] — a copy-on-write chain of write-op chunks over the
//! shared base — and queries evaluate against `base + delta` through a
//! [`DeltaView`]. Forking is O(pending ops), deduplication fingerprints
//! net deltas instead of serializing whole databases, and the base is
//! only ever *read*. Exponential in pending depth by nature, therefore
//! bounded: it powers [`crate::QuantumDb::read_possible`], the Figure 2
//! example, and the property tests that cross-validate the solver against
//! the possible-worlds semantics (intensional SAT ⟺ non-empty world set).

use std::collections::BTreeSet;
use std::sync::Arc;

use qdb_logic::ResourceTransaction;
use qdb_solver::{Solver, TxnSpec};
use qdb_storage::{Database, DeltaView, WriteOp};

use crate::Result;

/// One possible world, represented as a delta over a shared base: a
/// copy-on-write chain of write-op chunks (each fork appends one chunk
/// and shares its ancestors' chunks through `Arc`s).
#[derive(Debug)]
pub struct WorldDelta {
    parent: Option<Arc<WorldDelta>>,
    /// Ops appended at this fork, each of which changed the visible state
    /// when applied (no-ops are dropped at fork time, so replaying the
    /// flattened chain through any op-applier is conflict-free).
    ops: Vec<WriteOp>,
}

impl WorldDelta {
    /// The un-forked root world (view = base).
    pub fn root() -> Arc<WorldDelta> {
        Arc::new(WorldDelta {
            parent: None,
            ops: Vec::new(),
        })
    }

    /// Fork a child world: apply `raw_ops` on `parent`'s view of `base`,
    /// keeping only the ops that changed the state (mirroring
    /// [`Database::apply`]'s set-semantic no-ops). Errors on key
    /// violations, exactly as applying to a materialized clone would.
    pub fn fork(
        base: &Database,
        parent: &Arc<WorldDelta>,
        raw_ops: Vec<WriteOp>,
    ) -> Result<Arc<WorldDelta>> {
        let mut view = parent.view(base)?;
        let mut ops = Vec::with_capacity(raw_ops.len());
        for op in raw_ops {
            if view.apply(&op)? {
                ops.push(op);
            }
        }
        Ok(Arc::new(WorldDelta {
            parent: Some(Arc::clone(parent)),
            ops,
        }))
    }

    /// The full op sequence, root → leaf.
    pub fn ops(&self) -> Vec<WriteOp> {
        let mut chunks: Vec<&[WriteOp]> = Vec::new();
        let mut cur = Some(self);
        while let Some(w) = cur {
            chunks.push(&w.ops);
            cur = w.parent.as_deref();
        }
        chunks.reverse();
        chunks.concat()
    }

    /// The world as a [`DeltaView`] over `base` — the O(pending) way to
    /// query it.
    pub fn view<'a>(&self, base: &'a Database) -> Result<DeltaView<'a>> {
        let mut view = DeltaView::new(base);
        view.apply_all(&self.ops())?;
        Ok(view)
    }

    /// Materialize the world as a standalone database (clones the base —
    /// counted by [`Database::clone_count`]; tests and diagnostics only).
    pub fn materialize(&self, base: &Database) -> Result<Database> {
        Ok(self.view(base)?.materialize()?)
    }
}

/// An enumerated set of possible worlds (deltas over a shared base).
#[derive(Debug)]
pub struct WorldSet {
    /// The distinct worlds (deduplicated by net-delta fingerprint).
    pub worlds: Vec<Arc<WorldDelta>>,
    /// True when enumeration stopped at the bound — `worlds` is then a
    /// subset of the true world set.
    pub truncated: bool,
    /// World forks created during enumeration (before deduplication).
    pub enumerated: u64,
    /// Forks discarded as duplicates of an already-seen net delta.
    pub dedup_hits: u64,
}

impl WorldSet {
    /// Number of (distinct) worlds.
    pub fn len(&self) -> usize {
        self.worlds.len()
    }

    /// True when the set of possible worlds is empty — the ∅ quantum state
    /// that normal execution must avoid (Definition 3.1).
    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }
}

/// A canonical content fingerprint of a database (tables in name order,
/// rows in key order) — used by recovery equivalence checks and the
/// worlds property tests to compare materialized states.
pub fn world_fingerprint(db: &Database) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for table in db.tables() {
        let _ = write!(out, "{}[", table.schema().relation());
        for row in table.iter() {
            let _ = write!(out, "{row}");
        }
        out.push(']');
    }
    out
}

/// Enumerate the possible worlds of `base` under the pending sequence
/// `txns` (arrival order), by explicit **delta** forking. Stops (with
/// `truncated = true`) once more than `bound` worlds are live.
///
/// Only non-optional body atoms constrain the forking, matching the
/// engine invariant; optional-atom preferences affect which world the
/// engine *picks*, not which worlds are possible.
pub fn enumerate_worlds(
    base: &Database,
    txns: &[&ResourceTransaction],
    bound: usize,
) -> Result<WorldSet> {
    enumerate_worlds_seeded(base, txns, bound, 0)
}

/// [`enumerate_worlds`] with an explicit solver seed
/// ([`qdb_solver::Solver::seed`]): the seed selects the deterministic
/// *discovery order* of groundings — and therefore which worlds survive a
/// truncating `bound` — without changing the un-truncated world set. Seed
/// `0` is the historical order; the engines thread
/// `QuantumDbConfig::seed` through here so `SELECT POSSIBLE` answers are
/// a pure function of the configured seed.
pub fn enumerate_worlds_seeded(
    base: &Database,
    txns: &[&ResourceTransaction],
    bound: usize,
    seed: u64,
) -> Result<WorldSet> {
    let mut solver = Solver::default();
    solver.seed = seed;
    let mut worlds: Vec<Arc<WorldDelta>> = vec![WorldDelta::root()];
    let mut enumerated = 0u64;
    for txn in txns {
        let mut next: Vec<Arc<WorldDelta>> = Vec::new();
        for w in &worlds {
            let pre_ops = w.ops();
            let groundings =
                solver.enumerate_one(base, &pre_ops, &TxnSpec::required_only(txn), bound + 1)?;
            for val in groundings {
                let forked = WorldDelta::fork(base, w, txn.write_ops(&val)?)?;
                enumerated += 1;
                next.push(forked);
                if next.len() > bound {
                    let (worlds, dedup_hits) = dedup(base, next)?;
                    return Ok(WorldSet {
                        worlds,
                        truncated: true,
                        enumerated,
                        dedup_hits,
                    });
                }
            }
        }
        worlds = next;
        if worlds.is_empty() {
            break; // no world survives: the sequence is unsatisfiable
        }
    }
    let (worlds, dedup_hits) = dedup(base, worlds)?;
    Ok(WorldSet {
        worlds,
        truncated: false,
        enumerated,
        dedup_hits,
    })
}

/// Deduplicate worlds by the fingerprint of their **net delta** over the
/// shared base (O(pending) per world) — two forks that reached the same
/// state through different op orders collapse into one.
fn dedup(base: &Database, worlds: Vec<Arc<WorldDelta>>) -> Result<(Vec<Arc<WorldDelta>>, u64)> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut out = Vec::with_capacity(worlds.len());
    let mut hits = 0u64;
    for w in worlds {
        if seen.insert(w.view(base)?.fingerprint()) {
            out.push(w);
        } else {
            hits += 1;
        }
    }
    Ok((out, hits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_logic::parse_transaction;
    use qdb_storage::{tuple, Schema, TupleView, ValueType};

    /// Figure 2's setup: one flight (123) with three seats 1A, 1B, 1C.
    fn figure2_db() -> Database {
        let mut db = Database::new();
        db.create_table(Schema::new(
            "Available",
            vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
        ))
        .unwrap();
        db.create_table(Schema::new(
            "Bookings",
            vec![
                ("name", ValueType::Str),
                ("flight", ValueType::Int),
                ("seat", ValueType::Str),
            ],
        ))
        .unwrap();
        db.create_table(Schema::new(
            "Adjacent",
            vec![("s1", ValueType::Str), ("s2", ValueType::Str)],
        ))
        .unwrap();
        for s in ["1A", "1B", "1C"] {
            db.insert("Available", tuple![123, s]).unwrap();
        }
        for (a, b) in [("1A", "1B"), ("1B", "1A"), ("1B", "1C"), ("1C", "1B")] {
            db.insert("Adjacent", tuple![a, b]).unwrap();
        }
        db
    }

    fn book(name: &str) -> ResourceTransaction {
        parse_transaction(&format!(
            "-Available(f, s), +Bookings('{name}', f, s) :-1 Available(f, s)"
        ))
        .unwrap()
    }

    /// Minnie requires (hard constraint, for the world-counting of Fig. 2's
    /// final panel) a seat adjacent to Mickey's.
    fn book_next_to(name: &str, partner: &str) -> ResourceTransaction {
        parse_transaction(&format!(
            "-Available(f, s), +Bookings('{name}', f, s) :-1 \
             Available(f, s), Bookings('{partner}', f, s2), Adjacent(s, s2)"
        ))
        .unwrap()
    }

    #[test]
    fn figure2_world_evolution() {
        let db = figure2_db();
        let mickey = book("Mickey");
        let donald = book("Donald");
        let minnie = book_next_to("Minnie", "Mickey");

        // After Mickey: 3 possible worlds (one per seat).
        let w1 = enumerate_worlds(&db, &[&mickey], 100).unwrap();
        assert_eq!(w1.len(), 3);
        // After Donald: 3 × 2 = 6 worlds.
        let w2 = enumerate_worlds(&db, &[&mickey, &donald], 100).unwrap();
        assert_eq!(w2.len(), 6);
        // Minnie must sit next to Mickey: eliminates worlds where no seat
        // adjacent to Mickey's is free. Mickey 1A → Donald must not hold
        // 1B... enumerate: only groundings where the remaining seat is
        // adjacent to Mickey's survive. By symmetry: Mickey seat X, Donald
        // and Minnie split the rest with Minnie adjacent to X.
        let w3 = enumerate_worlds(&db, &[&mickey, &donald, &minnie], 100).unwrap();
        assert!(!w3.is_empty());
        // Check every surviving world seats Minnie adjacent to Mickey —
        // read through the delta views, no world is ever materialized.
        for w in &w3.worlds {
            let view = w.view(&db).unwrap();
            let bookings = view.matching_rows("Bookings", &[None, None, None]).unwrap();
            let seat_of = |n: &str| {
                bookings
                    .iter()
                    .find(|t| t[0].as_str() == Some(n))
                    .map(|t| t[2].as_str().unwrap().to_string())
                    .unwrap()
            };
            let m = seat_of("Mickey");
            let mi = seat_of("Minnie");
            assert!(view.contains("Adjacent", &tuple![mi.as_str(), m.as_str()]));
        }
        // Mickey on 1A or 1C forces Minnie onto 1B; Mickey on 1B lets
        // Minnie take 1A or 1C: 4 worlds total.
        assert_eq!(w3.len(), 4);
        assert!(!w3.truncated);
        // The whole evolution enumerated deltas only: zero base clones.
        assert_eq!(db.clone_count(), 0);
    }

    #[test]
    fn overbooking_empties_the_world_set() {
        let db = figure2_db();
        let txns: Vec<ResourceTransaction> = (0..4).map(|i| book(&format!("U{i}"))).collect();
        let refs: Vec<&ResourceTransaction> = txns.iter().collect();
        let ws = enumerate_worlds(&db, &refs, 1000).unwrap();
        assert!(ws.is_empty());
    }

    #[test]
    fn bound_truncates_safely() {
        let db = figure2_db();
        let mickey = book("Mickey");
        let donald = book("Donald");
        let ws = enumerate_worlds(&db, &[&mickey, &donald], 2).unwrap();
        assert!(ws.truncated);
        assert!(ws.len() <= 3);
    }

    #[test]
    fn fingerprints_detect_equal_content() {
        let db = figure2_db();
        let mut db2 = figure2_db();
        assert_eq!(world_fingerprint(&db), world_fingerprint(&db2));
        db2.delete("Available", &tuple![123, "1A"]).unwrap();
        assert_ne!(world_fingerprint(&db), world_fingerprint(&db2));
    }

    #[test]
    fn world_deltas_materialize_to_the_forked_state() {
        let db = figure2_db();
        let mickey = book("Mickey");
        let ws = enumerate_worlds(&db, &[&mickey], 100).unwrap();
        for w in &ws.worlds {
            let materialized = w.materialize(&db).unwrap();
            // One seat booked, two left, in every world.
            assert_eq!(materialized.table("Available").unwrap().len(), 2);
            assert_eq!(materialized.table("Bookings").unwrap().len(), 1);
            // The view agrees with the materialized state row for row.
            let view = w.view(&db).unwrap();
            for table in materialized.tables() {
                for row in table.iter() {
                    assert!(view.contains(table.schema().relation(), row));
                }
            }
        }
    }

    /// The key semantic cross-check: the solver's satisfiability answer
    /// agrees with non-emptiness of the explicit world set.
    #[test]
    fn solver_agrees_with_world_semantics() {
        let db = figure2_db();
        for n in 1..=4 {
            let txns: Vec<ResourceTransaction> = (0..n).map(|i| book(&format!("U{i}"))).collect();
            let refs: Vec<&ResourceTransaction> = txns.iter().collect();
            let ws = enumerate_worlds(&db, &refs, 10_000).unwrap();
            let mut solver = Solver::default();
            let specs: Vec<TxnSpec> = refs.iter().map(|t| TxnSpec::required_only(t)).collect();
            let sat = solver.solve(&db, &[], &specs).unwrap().is_some();
            assert_eq!(sat, !ws.is_empty(), "disagreement at n={n}");
        }
    }
}
