//! Explicit possible-worlds semantics (§3.1, Figure 2).
//!
//! The quantum database represents its possible worlds *intensionally*;
//! this module materializes them *extensionally* by explicit forking —
//! exactly the thought experiment of §3.1 ("suppose the system finds all
//! possible values that could be assigned … and forks the database state
//! into several possible worlds"). Exponential, therefore only for small
//! instances: it powers [`crate::QuantumDb::read_possible`], the Figure 2
//! example, and the property tests that cross-validate the solver against
//! the possible-worlds semantics (intensional SAT ⟺ non-empty world set).

use std::collections::BTreeSet;

use qdb_logic::ResourceTransaction;
use qdb_solver::{Solver, TxnSpec};
use qdb_storage::Database;

use crate::Result;

/// A materialized set of possible worlds.
#[derive(Debug)]
pub struct WorldSet {
    /// The distinct worlds (deduplicated by content).
    pub worlds: Vec<Database>,
    /// True when enumeration stopped at the bound — `worlds` is then a
    /// subset of the true world set.
    pub truncated: bool,
}

impl WorldSet {
    /// Number of (distinct) worlds.
    pub fn len(&self) -> usize {
        self.worlds.len()
    }

    /// True when the set of possible worlds is empty — the ∅ quantum state
    /// that normal execution must avoid (Definition 3.1).
    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }
}

/// A canonical content fingerprint of a database (tables in name order,
/// rows in key order) — used to deduplicate and compare worlds.
pub fn world_fingerprint(db: &Database) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for table in db.tables() {
        let _ = write!(out, "{}[", table.schema().relation());
        for row in table.iter() {
            let _ = write!(out, "{row}");
        }
        out.push(']');
    }
    out
}

/// Enumerate the possible worlds of `base` under the pending sequence
/// `txns` (arrival order), by explicit forking. Stops (with
/// `truncated = true`) once more than `bound` worlds are live.
///
/// Only non-optional body atoms constrain the forking, matching the
/// engine invariant; optional-atom preferences affect which world the
/// engine *picks*, not which worlds are possible.
pub fn enumerate_worlds(
    base: &Database,
    txns: &[&ResourceTransaction],
    bound: usize,
) -> Result<WorldSet> {
    let mut solver = Solver::default();
    let mut worlds: Vec<Database> = vec![base.clone()];
    for txn in txns {
        let mut next: Vec<Database> = Vec::new();
        for w in &worlds {
            let groundings =
                solver.enumerate_one(w, &[], &TxnSpec::required_only(txn), bound + 1)?;
            for val in groundings {
                let mut forked = w.clone();
                for op in txn.write_ops(&val)? {
                    forked.apply(&op)?;
                }
                next.push(forked);
                if next.len() > bound {
                    return Ok(WorldSet {
                        worlds: dedup(next),
                        truncated: true,
                    });
                }
            }
        }
        worlds = next;
        if worlds.is_empty() {
            break; // no world survives: the sequence is unsatisfiable
        }
    }
    Ok(WorldSet {
        worlds: dedup(worlds),
        truncated: false,
    })
}

fn dedup(worlds: Vec<Database>) -> Vec<Database> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    worlds
        .into_iter()
        .filter(|w| seen.insert(world_fingerprint(w)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_logic::parse_transaction;
    use qdb_storage::{tuple, Schema, ValueType};

    /// Figure 2's setup: one flight (123) with three seats 1A, 1B, 1C.
    fn figure2_db() -> Database {
        let mut db = Database::new();
        db.create_table(Schema::new(
            "Available",
            vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
        ))
        .unwrap();
        db.create_table(Schema::new(
            "Bookings",
            vec![
                ("name", ValueType::Str),
                ("flight", ValueType::Int),
                ("seat", ValueType::Str),
            ],
        ))
        .unwrap();
        db.create_table(Schema::new(
            "Adjacent",
            vec![("s1", ValueType::Str), ("s2", ValueType::Str)],
        ))
        .unwrap();
        for s in ["1A", "1B", "1C"] {
            db.insert("Available", tuple![123, s]).unwrap();
        }
        for (a, b) in [("1A", "1B"), ("1B", "1A"), ("1B", "1C"), ("1C", "1B")] {
            db.insert("Adjacent", tuple![a, b]).unwrap();
        }
        db
    }

    fn book(name: &str) -> ResourceTransaction {
        parse_transaction(&format!(
            "-Available(f, s), +Bookings('{name}', f, s) :-1 Available(f, s)"
        ))
        .unwrap()
    }

    /// Minnie requires (hard constraint, for the world-counting of Fig. 2's
    /// final panel) a seat adjacent to Mickey's.
    fn book_next_to(name: &str, partner: &str) -> ResourceTransaction {
        parse_transaction(&format!(
            "-Available(f, s), +Bookings('{name}', f, s) :-1 \
             Available(f, s), Bookings('{partner}', f, s2), Adjacent(s, s2)"
        ))
        .unwrap()
    }

    #[test]
    fn figure2_world_evolution() {
        let db = figure2_db();
        let mickey = book("Mickey");
        let donald = book("Donald");
        let minnie = book_next_to("Minnie", "Mickey");

        // After Mickey: 3 possible worlds (one per seat).
        let w1 = enumerate_worlds(&db, &[&mickey], 100).unwrap();
        assert_eq!(w1.len(), 3);
        // After Donald: 3 × 2 = 6 worlds.
        let w2 = enumerate_worlds(&db, &[&mickey, &donald], 100).unwrap();
        assert_eq!(w2.len(), 6);
        // Minnie must sit next to Mickey: eliminates worlds where no seat
        // adjacent to Mickey's is free. Mickey 1A → Donald must not hold
        // 1B... enumerate: only groundings where the remaining seat is
        // adjacent to Mickey's survive. By symmetry: Mickey seat X, Donald
        // and Minnie split the rest with Minnie adjacent to X.
        let w3 = enumerate_worlds(&db, &[&mickey, &donald, &minnie], 100).unwrap();
        assert!(!w3.is_empty());
        // Check every surviving world seats Minnie adjacent to Mickey.
        for w in &w3.worlds {
            let bookings = w.table("Bookings").unwrap();
            let seat_of = |n: &str| {
                bookings
                    .iter()
                    .find(|t| t[0].as_str() == Some(n))
                    .map(|t| t[2].as_str().unwrap().to_string())
                    .unwrap()
            };
            let m = seat_of("Mickey");
            let mi = seat_of("Minnie");
            assert!(w.contains("Adjacent", &tuple![mi.as_str(), m.as_str()]));
        }
        // Mickey on 1A or 1C forces Minnie onto 1B; Mickey on 1B lets
        // Minnie take 1A or 1C: 4 worlds total.
        assert_eq!(w3.len(), 4);
        assert!(!w3.truncated);
    }

    #[test]
    fn overbooking_empties_the_world_set() {
        let db = figure2_db();
        let txns: Vec<ResourceTransaction> = (0..4).map(|i| book(&format!("U{i}"))).collect();
        let refs: Vec<&ResourceTransaction> = txns.iter().collect();
        let ws = enumerate_worlds(&db, &refs, 1000).unwrap();
        assert!(ws.is_empty());
    }

    #[test]
    fn bound_truncates_safely() {
        let db = figure2_db();
        let mickey = book("Mickey");
        let donald = book("Donald");
        let ws = enumerate_worlds(&db, &[&mickey, &donald], 2).unwrap();
        assert!(ws.truncated);
        assert!(ws.len() <= 3);
    }

    #[test]
    fn fingerprints_detect_equal_content() {
        let db = figure2_db();
        let mut db2 = figure2_db();
        assert_eq!(world_fingerprint(&db), world_fingerprint(&db2));
        db2.delete("Available", &tuple![123, "1A"]).unwrap();
        assert_ne!(world_fingerprint(&db), world_fingerprint(&db2));
    }

    /// The key semantic cross-check: the solver's satisfiability answer
    /// agrees with non-emptiness of the explicit world set.
    #[test]
    fn solver_agrees_with_world_semantics() {
        let db = figure2_db();
        for n in 1..=4 {
            let txns: Vec<ResourceTransaction> = (0..n).map(|i| book(&format!("U{i}"))).collect();
            let refs: Vec<&ResourceTransaction> = txns.iter().collect();
            let ws = enumerate_worlds(&db, &refs, 10_000).unwrap();
            let mut solver = Solver::default();
            let specs: Vec<TxnSpec> = refs.iter().map(|t| TxnSpec::required_only(t)).collect();
            let sat = solver.solve(&db, &[], &specs).unwrap().is_some();
            assert_eq!(sat, !ws.is_empty(), "disagreement at n={n}");
        }
    }
}
