//! Independence partitioning (§4 "Quantum State").
//!
//! *"Some resource transactions are totally independent of each other,
//! i.e., there is no unification possible between them … The system
//! partitions the resource transactions accordingly into independent sets
//! and maintains a separate composed transaction body for each set."*
//!
//! Two transactions are dependent when any atom of one may denote the same
//! tuple as any atom of the other (same relation, no clashing constants —
//! the conservative `may_overlap` test). A new transaction that overlaps
//! several partitions forces them to merge (the paper's window-seat /
//! aisle-seat example).

use qdb_logic::{Atom, ResourceTransaction};
use qdb_solver::CachedSolution;

use crate::txn::PendingTxn;

/// One independent set of pending transactions plus its cached solution.
///
/// ```
/// use qdb_core::Partition;
/// use qdb_core::partition::transactions_overlap;
/// use qdb_logic::parse_transaction;
///
/// let booking = |flight: i64, name: &str| {
///     parse_transaction(&format!(
///         "-Available({flight}, s), +Bookings('{name}', {flight}, s) \
///          :-1 Available({flight}, s)"
///     ))
///     .unwrap()
/// };
/// // Bookings on different flights never unify: they are independent and
/// // would live in separate partitions (§4 "Quantum State").
/// assert!(!transactions_overlap(&booking(1, "Mickey"), &booking(2, "Donald")));
///
/// let p = Partition::new();
/// assert!(p.is_empty());
/// // An empty partition overlaps nothing.
/// assert!(!p.overlaps(&booking(1, "Mickey")));
/// // Its footprint is the overlap summary the sharded engine's registry
/// // keeps outside the partition lock.
/// assert!(!p.footprint().overlaps_txn(&booking(1, "Mickey")));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Partition {
    /// Pending transactions in arrival order.
    pub txns: Vec<PendingTxn>,
    /// One known-consistent grounding, parallel to `txns`.
    pub cache: CachedSolution,
    /// Alternative cached groundings (§4's multi-solution strategy; see
    /// [`crate::QuantumDbConfig::cache_solutions`]). Invalidated whenever
    /// the partition or the base database changes shape.
    pub extras: Vec<CachedSolution>,
    /// The admission overlay: `cache`'s pending updates pre-applied as a
    /// virtual state, so a cache-extension admission solves the newcomer
    /// in O(1) instead of re-grounding all pending updates (O(n) per
    /// submit). Strictly an acceleration of `cache` — it MUST be cleared
    /// (via [`Partition::invalidate_solution_caches`]) whenever
    /// `cache.valuations` changes in any way other than appending the
    /// newcomer the overlay solve itself admitted; admission rebuilds it
    /// lazily, and debug builds assert it matches a fresh rebuild.
    pub(crate) overlay_cache: Option<qdb_solver::Overlay>,
}

impl Partition {
    /// Empty partition.
    pub fn new() -> Self {
        Partition::default()
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// True when no transactions are pending.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Transaction references in arrival order (the shape the solver
    /// APIs take).
    pub fn txn_refs(&self) -> Vec<&ResourceTransaction> {
        self.txns.iter().map(|p| &p.txn).collect()
    }

    /// Could `txn` interact with this partition? Conservative unifiability
    /// check across all atoms (body and updates) of both sides.
    pub fn overlaps(&self, txn: &ResourceTransaction) -> bool {
        self.txns.iter().any(|p| transactions_overlap(&p.txn, txn))
    }

    /// Merge `other` into `self`, keeping global arrival order. Because
    /// partitions are independent (no unifiable atoms), the union of their
    /// cached groundings remains consistent; entries are interleaved to
    /// stay parallel with the transaction order.
    pub fn merge(&mut self, other: Partition) {
        let mut txns = Vec::with_capacity(self.len() + other.len());
        let mut cache = Vec::with_capacity(self.len() + other.len());
        let mut a = std::mem::take(&mut self.txns)
            .into_iter()
            .zip(std::mem::take(&mut self.cache.valuations))
            .peekable();
        let mut b = other
            .txns
            .into_iter()
            .zip(other.cache.valuations)
            .peekable();
        loop {
            let take_a = match (a.peek(), b.peek()) {
                (Some((ta, _)), Some((tb, _))) => ta.id < tb.id,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (t, v) = if take_a {
                a.next().expect("peeked")
            } else {
                b.next().expect("peeked")
            };
            txns.push(t);
            cache.push(v);
        }
        self.txns = txns;
        self.cache = CachedSolution { valuations: cache };
        // Alternative solutions are positional and the admission overlay
        // mirrors the pre-merge valuation list; a merge invalidates both.
        self.invalidate_solution_caches();
    }

    /// Drop everything derived from `cache.valuations`: the alternative
    /// solutions and the admission overlay. Must be called whenever the
    /// cached valuations are replaced (grounding, blind-write
    /// revalidation, merges, re-solves).
    pub(crate) fn invalidate_solution_caches(&mut self) {
        self.extras.clear();
        self.overlay_cache = None;
    }

    /// Position of a transaction by id.
    pub fn position(&self, id: u64) -> Option<usize> {
        self.txns.iter().position(|p| p.id == id)
    }

    /// Remove the transaction at `index`, returning it and its cached
    /// grounding.
    pub fn remove(&mut self, index: usize) -> (PendingTxn, qdb_logic::Valuation) {
        let txn = self.txns.remove(index);
        let val = self.cache.remove(index);
        (txn, val)
    }

    /// Overlap summary of this partition's current contents.
    pub fn footprint(&self) -> Footprint {
        let mut fp = Footprint::default();
        for pt in &self.txns {
            fp.absorb_txn(&pt.txn);
        }
        fp
    }
}

/// A partition's overlap summary: the atoms of its pending transactions,
/// split into update atoms and body atoms.
///
/// The sharded engine keeps one `Footprint` per partition in its registry,
/// *outside* the partition's lock, so overlap scans (which partitions
/// could a new transaction, read or write interact with?) never block on a
/// partition that is busy solving. The registry maintains the invariant
/// that a partition's published footprint is a superset of the atoms of
/// every transaction that will ever enter the partition, so a scan that
/// sees no overlap can safely skip the partition without locking it.
#[derive(Debug, Clone, Default)]
pub struct Footprint {
    /// Atoms written (inserted or deleted) by the pending transactions.
    update_atoms: Vec<Atom>,
    /// Body (read) atoms of the pending transactions.
    body_atoms: Vec<Atom>,
}

impl Footprint {
    /// The footprint of a single transaction.
    pub fn of_txn(txn: &ResourceTransaction) -> Self {
        let mut fp = Footprint::default();
        fp.absorb_txn(txn);
        fp
    }

    /// Add one transaction's atoms.
    pub fn absorb_txn(&mut self, txn: &ResourceTransaction) {
        self.update_atoms
            .extend(txn.updates.iter().map(|u| u.atom.clone()));
        self.body_atoms
            .extend(txn.body.iter().map(|b| b.atom.clone()));
    }

    /// Merge another footprint in (partition merge).
    pub fn absorb(&mut self, other: &Footprint) {
        self.update_atoms.extend_from_slice(&other.update_atoms);
        self.body_atoms.extend_from_slice(&other.body_atoms);
    }

    /// Could `txn` be dependent on the summarized partition? Mirrors
    /// [`transactions_overlap`]: a write/read or write/write conflict —
    /// an update atom of one side may-overlapping any atom of the other.
    pub fn overlaps_txn(&self, txn: &ResourceTransaction) -> bool {
        self.update_atoms
            .iter()
            .any(|ua| all_atoms(txn).any(|ta| ua.may_overlap(ta)))
            || txn.updates.iter().any(|u| {
                self.update_atoms
                    .iter()
                    .chain(self.body_atoms.iter())
                    .any(|a| u.atom.may_overlap(a))
            })
    }

    /// Could answering a query over `atoms` observe the summarized pending
    /// updates? Mirrors [`crate::read::read_affects`]: query atoms against
    /// update atoms only. Also the relevance test for PEEK/POSSIBLE
    /// overlays — a partition whose updates cannot unify with any query
    /// atom cannot change the query's answer in any possible world.
    pub fn touched_by_query(&self, atoms: &[Atom]) -> bool {
        self.update_atoms
            .iter()
            .any(|ua| atoms.iter().any(|qa| qa.may_overlap(ua)))
    }

    /// Could a blind write of `atom` (a fully-constant tuple) interact
    /// with the summarized partition? Conservative over *all* atoms, like
    /// the engine's write-admission check.
    pub fn touched_by_write(&self, atom: &Atom) -> bool {
        self.update_atoms
            .iter()
            .chain(self.body_atoms.iter())
            .any(|a| a.may_overlap(atom))
    }
}

/// Conservative dependence test between two transactions.
///
/// Dependence requires a potential **write/read or write/write** conflict:
/// an *update* atom of one side may-overlapping any atom of the other.
/// Body atoms over relations neither transaction writes (e.g. the shared
/// read-only `Adjacent` table) unify freely without creating dependence —
/// this is what lets the system "correctly identify the independence of
/// queries between different flights" (§5.3) even though every booking
/// reads the same adjacency relation.
pub fn transactions_overlap(a: &ResourceTransaction, b: &ResourceTransaction) -> bool {
    let updates_vs_atoms = |x: &ResourceTransaction, y: &ResourceTransaction| {
        x.updates
            .iter()
            .any(|u| all_atoms(y).any(|ya| u.atom.may_overlap(ya)))
    };
    updates_vs_atoms(a, b) || updates_vs_atoms(b, a)
}

fn all_atoms(t: &ResourceTransaction) -> impl Iterator<Item = &Atom> + '_ {
    t.body
        .iter()
        .map(|b| &b.atom)
        .chain(t.updates.iter().map(|u| &u.atom))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_logic::parse_transaction;
    use qdb_logic::Valuation;

    fn book_flight(f: i64, name: &str) -> ResourceTransaction {
        parse_transaction(&format!(
            "-Available({f}, s), +Bookings('{name}', {f}, s) :-1 Available({f}, s)"
        ))
        .unwrap()
    }

    #[test]
    fn different_flights_are_independent() {
        let t1 = book_flight(1, "M");
        let t2 = book_flight(2, "D");
        assert!(!transactions_overlap(&t1, &t2));
        // Unconstrained flight overlaps both.
        let t3 = parse_transaction("-Available(f, s), +Bookings('G', f, s) :-1 Available(f, s)")
            .unwrap();
        assert!(transactions_overlap(&t1, &t3));
        assert!(transactions_overlap(&t2, &t3));
    }

    #[test]
    fn partition_overlap_and_position() {
        let mut p = Partition::new();
        p.txns.push(PendingTxn::new(4, book_flight(1, "M")));
        p.cache.valuations.push(Valuation::new());
        assert!(p.overlaps(&book_flight(1, "D")));
        assert!(!p.overlaps(&book_flight(2, "D")));
        assert_eq!(p.position(4), Some(0));
        assert_eq!(p.position(9), None);
    }

    #[test]
    fn merge_preserves_arrival_order() {
        let mut p1 = Partition::new();
        let mut p2 = Partition::new();
        for id in [1u64, 5, 7] {
            p1.txns.push(PendingTxn::new(id, book_flight(1, "A")));
            p1.cache.valuations.push(Valuation::new());
        }
        for id in [2u64, 3, 9] {
            p2.txns.push(PendingTxn::new(id, book_flight(2, "B")));
            p2.cache.valuations.push(Valuation::new());
        }
        p1.merge(p2);
        let ids: Vec<u64> = p1.txns.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![1, 2, 3, 5, 7, 9]);
        assert_eq!(p1.cache.len(), 6);
    }

    #[test]
    fn footprint_mirrors_partition_overlap() {
        let mut p = Partition::new();
        p.txns.push(PendingTxn::new(1, book_flight(1, "M")));
        p.cache.valuations.push(Valuation::new());
        let fp = p.footprint();
        // Same answers as the exact partition-contents tests.
        assert!(fp.overlaps_txn(&book_flight(1, "D")));
        assert!(!fp.overlaps_txn(&book_flight(2, "D")));
        let q = qdb_logic::parse_query("Bookings('M', f, s)").unwrap();
        assert!(fp.touched_by_query(&q.atoms));
        let other = qdb_logic::parse_query("Bookings('D', f, s)").unwrap();
        assert!(!fp.touched_by_query(&other.atoms));
        // A write onto the read side (Available) touches; an unrelated
        // constant tuple does not.
        let avail = Atom::new(
            "Available",
            vec![
                qdb_logic::Term::Const(1i64.into()),
                qdb_logic::Term::Const("1A".into()),
            ],
        );
        assert!(fp.touched_by_write(&avail));
        let unrelated = Atom::new("Hotels", vec![qdb_logic::Term::Const(9i64.into())]);
        assert!(!fp.touched_by_write(&unrelated));
        // Merged footprints cover both sides.
        let mut merged = fp.clone();
        merged.absorb(&Footprint::of_txn(&book_flight(2, "D")));
        assert!(merged.overlaps_txn(&book_flight(2, "X")));
    }

    #[test]
    fn remove_keeps_cache_parallel() {
        let mut p = Partition::new();
        for id in [1u64, 2] {
            p.txns.push(PendingTxn::new(id, book_flight(1, "A")));
            p.cache.valuations.push(Valuation::new());
        }
        let (t, _v) = p.remove(0);
        assert_eq!(t.id, 1);
        assert_eq!(p.len(), 1);
        assert_eq!(p.cache.len(), 1);
    }
}
