//! # qdb-core
//!
//! The quantum database engine — the primary contribution of *Quantum
//! Databases* (Roy, Kot, Koch — CIDR 2013), reimplemented as an embeddable
//! Rust library.
//!
//! A [`QuantumDb`] maintains a partially uncertain state: an extensional
//! database plus an ordered list of committed resource transactions whose
//! value assignments are still **pending**. The engine maintains the
//! invariant that a consistent grounding exists for all pending
//! transactions (Definition 3.1) and transforms the state under the four
//! operations of §3.2:
//!
//! * **new resource transactions** — admitted iff the invariant is
//!   preserved (checked via the solution cache, then a full solve);
//! * **reads** — unification-based read checks identify pending
//!   transactions whose updates could affect the answer; those are
//!   grounded ("collapsed") first, then the read runs on the extensional
//!   state (the paper's option 3: uncertainty is fully hidden);
//! * **writes** — blind non-resource writes are admitted only if the
//!   invariant survives them;
//! * **grounding** — explicit, read-induced, partner-induced (§5.1
//!   entangled resource transactions) or forced by the `k` bound on
//!   pending transactions per partition (§4).
//!
//! ```
//! use qdb_core::{QuantumDb, QuantumDbConfig, SubmitOutcome};
//! use qdb_logic::parse_transaction;
//! use qdb_storage::{Schema, ValueType, tuple};
//!
//! let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
//! qdb.create_table(Schema::new(
//!     "Available",
//!     vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
//! )).unwrap();
//! qdb.create_table(Schema::new(
//!     "Bookings",
//!     vec![("name", ValueType::Str), ("flight", ValueType::Int), ("seat", ValueType::Str)],
//! )).unwrap();
//! qdb.bulk_insert("Available", vec![tuple![123, "5A"], tuple![123, "5B"]]).unwrap();
//!
//! let txn = parse_transaction(
//!     "-Available(f, s), +Bookings('Mickey', f, s) :-1 Available(f, s)",
//! ).unwrap();
//! let outcome = qdb.submit(&txn).unwrap();
//! assert!(matches!(outcome, SubmitOutcome::Committed { .. }));
//! // Mickey's seat is not fixed yet — the database is in a quantum state.
//! assert_eq!(qdb.pending_count(), 1);
//! ```

pub mod config;
pub mod engine;
pub mod entangle;
pub mod error;
pub mod exec;
pub mod ground;
pub mod metrics;
pub mod partition;
pub mod read;
pub mod recovery;
pub mod repl;
pub mod shard;
pub mod sync;
pub mod txn;
pub mod wire;
pub mod worlds;

pub use config::{GroundingPolicy, QuantumDbConfig, Serializability};
pub use engine::{QuantumDb, SubmitOutcome};
pub use error::EngineError;
pub use exec::{Bound, Prepared, Response, Session};
pub use ground::GroundReason;
pub use metrics::{Event, Metrics};
pub use partition::{Footprint, Partition};
pub use qdb_obs::{
    HistSnapshot, HistSummary, Histogram, Obs, Outcome, Phase, ProfileReport, SlowOp, SpanEvent,
    SpanNode,
};
pub use repl::{ReplicaApplier, ReplicaStatus, ReplicaTracker, ReplicationReport, ReplicationRole};
pub use shard::SharedQuantumDb;
pub use txn::{PendingTxn, TxnId};
pub use worlds::{
    enumerate_worlds, enumerate_worlds_seeded, world_fingerprint, WorldDelta, WorldSet,
};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, EngineError>;
