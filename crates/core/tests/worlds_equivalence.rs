//! Equivalence of the delta-forked possible-worlds enumerator against the
//! old clone-based one.
//!
//! `enumerate_worlds` used to clone a full `Database` per world fork and
//! deduplicate by whole-database fingerprints; it now forks copy-on-write
//! op deltas and deduplicates by net-delta fingerprints. The clone-based
//! implementation survives *only here*, as the materializing reference:
//! on seeded pending sets — plain bookings, adjacency-constrained
//! bookings, overbooked (unsatisfiable) sequences, truncating bounds —
//! both enumerations must produce exactly the same set of world
//! *contents* and the same truncation verdict.

use qdb_core::{enumerate_worlds, world_fingerprint};
use qdb_logic::{parse_transaction, ResourceTransaction};
use qdb_solver::{Solver, TxnSpec};
use qdb_storage::{tuple, Database, Schema, ValueType};

/// The pre-delta implementation, verbatim in structure: fork by cloning,
/// dedup by full-database fingerprint.
fn enumerate_worlds_materialized(
    base: &Database,
    txns: &[&ResourceTransaction],
    bound: usize,
) -> (Vec<Database>, bool) {
    fn dedup(worlds: Vec<Database>) -> Vec<Database> {
        let mut seen = std::collections::BTreeSet::new();
        worlds
            .into_iter()
            .filter(|w| seen.insert(world_fingerprint(w)))
            .collect()
    }
    let mut solver = Solver::default();
    let mut worlds: Vec<Database> = vec![base.clone()];
    for txn in txns {
        let mut next: Vec<Database> = Vec::new();
        for w in &worlds {
            let groundings = solver
                .enumerate_one(w, &[], &TxnSpec::required_only(txn), bound + 1)
                .expect("reference enumeration");
            for val in groundings {
                let mut forked = w.clone();
                for op in txn.write_ops(&val).expect("grounded ops") {
                    forked.apply(&op).expect("ops apply");
                }
                next.push(forked);
                if next.len() > bound {
                    return (dedup(next), true);
                }
            }
        }
        worlds = next;
        if worlds.is_empty() {
            break;
        }
    }
    (dedup(worlds), false)
}

fn flights_db(flights: i64, seats: &[&str]) -> Database {
    let mut db = Database::new();
    db.create_table(Schema::new(
        "Available",
        vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
    ))
    .unwrap();
    db.create_table(Schema::new(
        "Bookings",
        vec![
            ("name", ValueType::Str),
            ("flight", ValueType::Int),
            ("seat", ValueType::Str),
        ],
    ))
    .unwrap();
    db.create_table(Schema::new(
        "Adjacent",
        vec![("s1", ValueType::Str), ("s2", ValueType::Str)],
    ))
    .unwrap();
    for f in 1..=flights {
        for s in seats {
            db.insert("Available", tuple![f, *s]).unwrap();
        }
    }
    for w in seats.windows(2) {
        db.insert("Adjacent", tuple![w[0], w[1]]).unwrap();
        db.insert("Adjacent", tuple![w[1], w[0]]).unwrap();
    }
    db
}

fn book(name: &str, flight: i64) -> ResourceTransaction {
    parse_transaction(&format!(
        "-Available({flight}, s), +Bookings('{name}', {flight}, s) :-1 Available({flight}, s)"
    ))
    .unwrap()
}

fn book_next_to(name: &str, partner: &str, flight: i64) -> ResourceTransaction {
    parse_transaction(&format!(
        "-Available({flight}, s), +Bookings('{name}', {flight}, s) :-1 \
         Available({flight}, s), Bookings('{partner}', {flight}, s2), Adjacent(s, s2)"
    ))
    .unwrap()
}

/// Sorted full-content fingerprints of a world list.
fn sorted_fingerprints(worlds: impl IntoIterator<Item = Database>) -> Vec<String> {
    let mut out: Vec<String> = worlds.into_iter().map(|w| world_fingerprint(&w)).collect();
    out.sort();
    out
}

fn assert_equivalent(base: &Database, txns: &[&ResourceTransaction], bound: usize, label: &str) {
    let (ref_worlds, ref_truncated) = enumerate_worlds_materialized(base, txns, bound);
    let delta = enumerate_worlds(base, txns, bound).expect("delta enumeration");
    assert_eq!(delta.truncated, ref_truncated, "{label}: truncation");
    assert_eq!(delta.len(), ref_worlds.len(), "{label}: world count");
    let materialized = delta
        .worlds
        .iter()
        .map(|w| w.materialize(base).expect("world materializes"));
    assert_eq!(
        sorted_fingerprints(materialized),
        sorted_fingerprints(ref_worlds),
        "{label}: world contents"
    );
}

#[test]
fn delta_forked_enumeration_matches_the_clone_based_reference() {
    // Seeded pending sets over several shapes: unconstrained bookings,
    // adjacency constraints (joins against the forked state), saturation
    // (unsat), multi-flight independence, and truncating bounds.
    let db = flights_db(1, &["1A", "1B", "1C"]);
    let m = book("Mickey", 1);
    let d = book("Donald", 1);
    let n = book_next_to("Minnie", "Mickey", 1);
    assert_equivalent(&db, &[], 100, "empty pending set");
    assert_equivalent(&db, &[&m], 100, "one booking");
    assert_equivalent(&db, &[&m, &d], 100, "two bookings");
    assert_equivalent(&db, &[&m, &d, &n], 100, "adjacency-constrained");

    // Saturation: every suffix length up to overbooking.
    let us: Vec<ResourceTransaction> = (0..4).map(|i| book(&format!("U{i}"), 1)).collect();
    for k in 1..=us.len() {
        let refs: Vec<&ResourceTransaction> = us[..k].iter().collect();
        assert_equivalent(&db, &refs, 1000, &format!("saturation k={k}"));
    }

    // Truncating bounds exercise the early-return path.
    for bound in [1, 2, 4, 5] {
        assert_equivalent(&db, &[&m, &d], bound, &format!("bound={bound}"));
    }

    // Independent flights: the cross product forks across partitions.
    let multi = flights_db(2, &["1A", "1B"]);
    let a = book("Ann", 1);
    let b = book("Bob", 2);
    let c = book_next_to("Cleo", "Ann", 1);
    assert_equivalent(&multi, &[&a, &b], 100, "two flights");
    assert_equivalent(&multi, &[&a, &b, &c], 100, "two flights + adjacency");
}

#[test]
fn seeded_random_pending_sets_agree() {
    // Deterministic pseudo-random mixes of plain and adjacent bookings
    // over two flights — different seeds pick different shapes.
    for seed in 0..12u64 {
        let db = flights_db(2, &["1A", "1B", "1C"]);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z ^ (z >> 31)
        };
        let mut txns: Vec<ResourceTransaction> = Vec::new();
        let mut named: Vec<(String, i64)> = Vec::new();
        for i in 0..(2 + (next() % 3) as usize) {
            let flight = 1 + (next() % 2) as i64;
            let name = format!("u{seed}_{i}");
            let adjacent_partner = named
                .iter()
                .filter(|(_, f)| *f == flight)
                .map(|(n, _)| n.clone())
                .next_back();
            match adjacent_partner {
                Some(p) if next() % 2 == 0 => txns.push(book_next_to(&name, &p, flight)),
                _ => txns.push(book(&name, flight)),
            }
            named.push((name, flight));
        }
        let refs: Vec<&ResourceTransaction> = txns.iter().collect();
        let bound = [3, 10, 100][(next() % 3) as usize];
        assert_equivalent(&db, &refs, bound, &format!("seed {seed}"));
    }
}
