#![allow(clippy::field_reassign_with_default)]
//! Property tests for the engine: the intensional representation must
//! agree with explicit possible-worlds semantics, commits must never be
//! rolled back, and crash recovery must land on a valid state.

use proptest::prelude::*;
use qdb_core::{enumerate_worlds, QuantumDb, QuantumDbConfig};
use qdb_logic::{parse_transaction, ResourceTransaction};
use qdb_storage::wal::MemorySink;
use qdb_storage::{tuple, Schema, ValueType, Wal};

fn schema_engine(seats: &[(i64, &str)], config: QuantumDbConfig) -> QuantumDb {
    let mut qdb = QuantumDb::new(config).unwrap();
    qdb.create_table(Schema::new(
        "Available",
        vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
    ))
    .unwrap();
    qdb.create_table(Schema::new(
        "Bookings",
        vec![
            ("name", ValueType::Str),
            ("flight", ValueType::Int),
            ("seat", ValueType::Str),
        ],
    ))
    .unwrap();
    qdb.bulk_insert(
        "Available",
        seats.iter().map(|(f, s)| tuple![*f, *s]).collect(),
    )
    .unwrap();
    qdb
}

/// A random booking: user i, flight either fixed or free.
fn arb_booking() -> impl Strategy<Value = (String, Option<i64>)> {
    ("[A-Z]{1}[0-9]{2}", prop::option::of(1i64..3))
}

fn booking_txn(name: &str, flight: Option<i64>) -> ResourceTransaction {
    match flight {
        Some(f) => parse_transaction(&format!(
            "-Available({f}, s), +Bookings('{name}', {f}, s) :-1 Available({f}, s)"
        ))
        .unwrap(),
        None => parse_transaction(&format!(
            "-Available(f, s), +Bookings('{name}', f, s) :-1 Available(f, s)"
        ))
        .unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Admission agrees with possible-worlds semantics: a transaction
    /// commits iff adding it leaves the (explicitly enumerated) world set
    /// non-empty.
    #[test]
    fn admission_matches_world_semantics(
        bookings in prop::collection::vec(arb_booking(), 1..7),
    ) {
        let seats = [(1i64, "1A"), (1, "1B"), (2, "2A"), (2, "2B")];
        let mut cfg = QuantumDbConfig::default();
        cfg.ground_on_partner_arrival = false;
        let mut qdb = schema_engine(&seats, cfg);
        let base = qdb.database().clone();
        let mut accepted: Vec<ResourceTransaction> = Vec::new();
        for (i, (name, flight)) in bookings.iter().enumerate() {
            let txn = booking_txn(&format!("{name}{i}"), *flight);
            // Oracle: worlds for accepted-so-far + candidate.
            let mut seq: Vec<&ResourceTransaction> = accepted.iter().collect();
            seq.push(&txn);
            let worlds = enumerate_worlds(&base, &seq, 10_000).unwrap();
            let outcome = qdb.submit(&txn).unwrap();
            prop_assert_eq!(
                outcome.is_committed(),
                !worlds.is_empty(),
                "engine and world semantics disagree at step {}", i
            );
            if outcome.is_committed() {
                accepted.push(txn);
            }
        }
    }

    /// The §2 guarantee: every committed transaction eventually grounds —
    /// ground_all always succeeds and produces exactly one booking per
    /// committed transaction, drawn from the available pool.
    #[test]
    fn commits_always_ground(
        bookings in prop::collection::vec(arb_booking(), 1..10),
        k in 1usize..5,
    ) {
        let seats = [(1i64, "1A"), (1, "1B"), (1, "1C"), (2, "2A"), (2, "2B")];
        let mut qdb = schema_engine(&seats, QuantumDbConfig::with_k(k));
        let mut committed = 0usize;
        for (i, (name, flight)) in bookings.iter().enumerate() {
            if qdb
                .submit(&booking_txn(&format!("{name}{i}"), *flight))
                .unwrap()
                .is_committed()
            {
                committed += 1;
            }
        }
        qdb.ground_all().unwrap();
        prop_assert_eq!(qdb.pending_count(), 0);
        let booked = qdb.database().table("Bookings").unwrap().len();
        prop_assert_eq!(booked, committed);
        // Conservation: every grounded booking consumed one seat.
        let left = qdb.database().table("Available").unwrap().len();
        prop_assert_eq!(left, seats.len() - committed);
    }

    /// Interleaved reads never lose a committed booking, and repeated
    /// reads are stable (read repeatability of §3.2.2 option 3).
    #[test]
    fn reads_are_repeatable_and_lossless(
        ops in prop::collection::vec((arb_booking(), any::<bool>()), 1..10),
    ) {
        let seats = [(1i64, "1A"), (1, "1B"), (1, "1C"), (2, "2A"), (2, "2B")];
        let mut qdb = schema_engine(&seats, QuantumDbConfig::default());
        let mut committed_names: Vec<String> = Vec::new();
        for (i, ((name, flight), read_back)) in ops.iter().enumerate() {
            let user = format!("{name}{i}");
            let outcome = qdb.submit(&booking_txn(&user, *flight)).unwrap();
            if outcome.is_committed() {
                committed_names.push(user.clone());
            }
            if *read_back && outcome.is_committed() {
                let q = qdb_logic::parse_query(
                    &format!("Bookings('{user}', f, s)")).unwrap();
                let first = qdb.read_parsed(&q, None).unwrap();
                prop_assert_eq!(first.len(), 1);
                let second = qdb.read_parsed(&q, None).unwrap();
                prop_assert_eq!(first, second);
            }
        }
        qdb.ground_all().unwrap();
        for user in &committed_names {
            let q = qdb_logic::parse_query(
                &format!("Bookings('{user}', f, s)")).unwrap();
            prop_assert_eq!(qdb.read_parsed(&q, None).unwrap().len(), 1);
        }
    }

    /// Crash anywhere: recovery from any byte-prefix of the WAL either
    /// succeeds with a consistent engine (all recovered pending
    /// transactions groundable) or the prefix cuts mid-frame and recovery
    /// just sees fewer records. It must never produce an unsatisfiable
    /// state from a log the engine actually wrote.
    #[test]
    fn crash_recovery_any_prefix(
        bookings in prop::collection::vec(arb_booking(), 1..8),
        cut_frac in 0.0f64..1.0,
        k in 1usize..4,
    ) {
        let seats = [(1i64, "1A"), (1, "1B"), (2, "2A"), (2, "2B")];
        let mut qdb = schema_engine(&seats, QuantumDbConfig::with_k(k));
        for (i, (name, flight)) in bookings.iter().enumerate() {
            let _ = qdb.submit(&booking_txn(&format!("{name}{i}"), *flight)).unwrap();
        }
        let image = qdb.with_wal_image();
        let cut = ((image.len() as f64) * cut_frac) as usize;
        // Frame-aligned state only: recovery handles torn tails itself.
        let wal = Wal::with_sink(Box::new(MemorySink::from_bytes(image[..cut].to_vec())));
        let mut rec = QuantumDb::recover(wal, QuantumDbConfig::with_k(k)).unwrap();
        // The recovered engine is operational and all pending ground.
        rec.ground_all().unwrap();
        prop_assert_eq!(rec.pending_count(), 0);
    }
}

/// Helper: expose the WAL image for the crash test.
trait WalImage {
    fn with_wal_image(&mut self) -> Vec<u8>;
}

impl WalImage for QuantumDb {
    fn with_wal_image(&mut self) -> Vec<u8> {
        // Recover → rebuild: the engine exposes its WAL via recovery
        // plumbing; easiest correct way is a checkpoint then reading the
        // in-memory sink through the public recover path. For tests we
        // simply re-derive the bytes by serializing through storage
        // replay: QuantumDb keeps the WAL internally, so we add a small
        // crate-public accessor below.
        self.wal_image()
    }
}
