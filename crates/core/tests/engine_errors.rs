//! Error-path and edge-case tests for the engine: malformed requests must
//! fail cleanly and never corrupt the quantum state.

use qdb_core::{EngineError, QuantumDb, QuantumDbConfig};
use qdb_logic::{parse_query, parse_transaction};
use qdb_storage::{tuple, Schema, ValueType, WriteOp};

fn engine() -> QuantumDb {
    let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
    qdb.create_table(Schema::new(
        "Available",
        vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
    ))
    .unwrap();
    qdb.create_table(Schema::new(
        "Bookings",
        vec![
            ("name", ValueType::Str),
            ("flight", ValueType::Int),
            ("seat", ValueType::Str),
        ],
    ))
    .unwrap();
    qdb.bulk_insert("Available", vec![tuple![1, "1A"]]).unwrap();
    qdb
}

#[test]
fn unknown_relation_in_transaction_is_rejected_cleanly() {
    let mut qdb = engine();
    let t = parse_transaction("-Ghost(x), +Bookings('a', 1, x) :-1 Ghost(x)").unwrap();
    let err = qdb.submit(&t).unwrap_err();
    assert!(matches!(err, EngineError::Storage(_)));
    // State untouched: next valid submit works.
    let ok =
        parse_transaction("-Available(f, s), +Bookings('a', f, s) :-1 Available(f, s)").unwrap();
    assert!(qdb.submit(&ok).unwrap().is_committed());
    assert_eq!(qdb.metrics().submitted, 2);
}

#[test]
fn arity_mismatch_is_rejected_cleanly() {
    let mut qdb = engine();
    let t = parse_transaction("-Available(f), +Bookings('a', f, f) :-1 Available(f)").unwrap();
    let err = qdb.submit(&t).unwrap_err();
    assert!(matches!(
        err,
        EngineError::Storage(qdb_storage::StorageError::ArityMismatch { .. })
    ));
    assert_eq!(qdb.pending_count(), 0);
}

#[test]
fn query_on_unknown_relation_errors() {
    let mut qdb = engine();
    let q = parse_query("Nowhere(x)").unwrap();
    assert!(qdb.read_parsed(&q, None).is_err());
}

#[test]
fn write_to_unknown_relation_errors() {
    let mut qdb = engine();
    assert!(qdb.write(WriteOp::insert("Nope", tuple![1])).is_err());
}

#[test]
fn ground_of_unknown_id_is_a_noop() {
    let mut qdb = engine();
    assert!(!qdb.ground(999).unwrap());
}

#[test]
fn zero_seat_database_aborts_but_stays_healthy() {
    let mut qdb = engine();
    qdb.write(WriteOp::delete("Available", tuple![1, "1A"]))
        .unwrap();
    let t =
        parse_transaction("-Available(f, s), +Bookings('a', f, s) :-1 Available(f, s)").unwrap();
    assert!(!qdb.submit(&t).unwrap().is_committed());
    // Seat returns; booking succeeds.
    qdb.write(WriteOp::insert("Available", tuple![1, "1A"]))
        .unwrap();
    assert!(qdb.submit(&t).unwrap().is_committed());
}

#[test]
fn duplicate_blind_insert_is_an_accepted_noop() {
    let mut qdb = engine();
    assert!(qdb
        .write(WriteOp::insert("Available", tuple![1, "1A"]))
        .unwrap());
    let before = qdb.wal_size();
    // Second identical insert: accepted, changes nothing, logs nothing.
    assert!(qdb
        .write(WriteOp::insert("Available", tuple![1, "1A"]))
        .unwrap());
    assert_eq!(qdb.wal_size(), before);
    assert_eq!(qdb.database().table("Available").unwrap().len(), 1);
}

// The strict-vs-semantic coordination ablation lives in the facade
// crate's tests (tests/ablations.rs) — it needs qdb-workload, which
// depends on this crate.
