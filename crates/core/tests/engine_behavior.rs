#![allow(clippy::field_reassign_with_default)]
//! Behavioural tests for the quantum database engine: the §1–§3 narratives
//! of the paper, operation by operation.

use qdb_core::{GroundingPolicy, QuantumDb, QuantumDbConfig, Serializability, SubmitOutcome};
use qdb_logic::{parse_query, parse_transaction, ResourceTransaction};
use qdb_storage::{tuple, Schema, Tuple, ValueType, WriteOp};

/// Travel schema with one flight `123` holding one row of three seats.
fn travel_engine(config: QuantumDbConfig) -> QuantumDb {
    let mut qdb = QuantumDb::new(config).unwrap();
    qdb.create_table(Schema::new(
        "Available",
        vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
    ))
    .unwrap();
    qdb.create_table(Schema::new(
        "Bookings",
        vec![
            ("name", ValueType::Str),
            ("flight", ValueType::Int),
            ("seat", ValueType::Str),
        ],
    ))
    .unwrap();
    qdb.create_table(Schema::new(
        "Adjacent",
        vec![("s1", ValueType::Str), ("s2", ValueType::Str)],
    ))
    .unwrap();
    qdb.create_index("Available", 0).unwrap();
    qdb.create_index("Bookings", 0).unwrap();
    qdb.bulk_insert(
        "Available",
        vec![tuple![123, "1A"], tuple![123, "1B"], tuple![123, "1C"]],
    )
    .unwrap();
    qdb.bulk_insert(
        "Adjacent",
        vec![
            tuple!["1A", "1B"],
            tuple!["1B", "1A"],
            tuple!["1B", "1C"],
            tuple!["1C", "1B"],
        ],
    )
    .unwrap();
    qdb
}

fn book(name: &str) -> ResourceTransaction {
    parse_transaction(&format!(
        "-Available(f, s), +Bookings('{name}', f, s) :-1 Available(f, s)"
    ))
    .unwrap()
}

fn book_seat(name: &str, seat: &str) -> ResourceTransaction {
    parse_transaction(&format!(
        "-Available(f, '{seat}'), +Bookings('{name}', f, '{seat}') :-1 Available(f, '{seat}')"
    ))
    .unwrap()
}

fn book_next_to(name: &str, partner: &str) -> ResourceTransaction {
    parse_transaction(&format!(
        "-Available(f, s), +Bookings('{name}', f, s) :-1 \
         Available(f, s), Bookings('{partner}', f, s2)?, Adjacent(s, s2)?"
    ))
    .unwrap()
}

fn seat_of(qdb: &mut QuantumDb, name: &str) -> Option<String> {
    let q = parse_query(&format!("Bookings('{name}', f, s)")).unwrap();
    let rows = qdb.read_parsed(&q, None).unwrap();
    rows.first().map(|v| {
        v.get(q.var("s").unwrap())
            .unwrap()
            .as_str()
            .unwrap()
            .to_string()
    })
}

#[test]
fn commit_defers_assignment_until_read() {
    let mut qdb = travel_engine(QuantumDbConfig::default());
    let out = qdb.submit(&book("Mickey")).unwrap();
    assert!(out.is_committed());
    // No extensional booking yet: the state is quantum.
    assert_eq!(qdb.database().table("Bookings").unwrap().len(), 0);
    assert_eq!(qdb.pending_count(), 1);
    // The read collapses it.
    let seat = seat_of(&mut qdb, "Mickey").expect("booked");
    assert_eq!(qdb.pending_count(), 0);
    assert_eq!(qdb.database().table("Bookings").unwrap().len(), 1);
    assert_eq!(qdb.metrics().grounded_by_read, 1);
    // Read repeatability: the same read returns the same seat.
    assert_eq!(seat_of(&mut qdb, "Mickey"), Some(seat));
}

#[test]
fn admission_rejects_overbooking() {
    // Three seats: fourth booking must abort (Definition 3.1's ∅ state is
    // never entered).
    let mut qdb = travel_engine(QuantumDbConfig::default());
    for i in 0..3 {
        assert!(qdb.submit(&book(&format!("U{i}"))).unwrap().is_committed());
    }
    assert_eq!(qdb.submit(&book("U3")).unwrap(), SubmitOutcome::Aborted);
    assert_eq!(qdb.metrics().aborted, 1);
    // The three committed ones are still guaranteed.
    qdb.ground_all().unwrap();
    assert_eq!(qdb.database().table("Bookings").unwrap().len(), 3);
    assert_eq!(qdb.database().table("Available").unwrap().len(), 0);
}

#[test]
fn pluto_hard_constraint_wins_over_mickeys_optional() {
    // §2: Mickey's optional preference for 5A-like seats must yield to
    // Pluto's hard request for the specific seat.
    let mut qdb = travel_engine(QuantumDbConfig::default());
    // Mickey books any seat, with an optional preference pinning seat 1A.
    let mickey = parse_transaction(
        "-Available(f, s), +Bookings('Mickey', f, s) :-1 \
         Available(f, s), Pin(s)?",
    )
    .unwrap();
    // Give the engine a Pin table pointing at 1A.
    qdb.create_table(Schema::new("Pin", vec![("seat", ValueType::Str)]))
        .unwrap();
    qdb.bulk_insert("Pin", vec![tuple!["1A"]]).unwrap();
    assert!(qdb.submit(&mickey).unwrap().is_committed());
    // Pluto hard-requests 1A — must commit even though Mickey "wanted" it.
    assert!(qdb
        .submit(&book_seat("Pluto", "1A"))
        .unwrap()
        .is_committed());
    qdb.ground_all().unwrap();
    assert_eq!(seat_of(&mut qdb, "Pluto"), Some("1A".to_string()));
    let mickey_seat = seat_of(&mut qdb, "Mickey").unwrap();
    assert_ne!(mickey_seat, "1A");
}

#[test]
fn entangled_pair_grounds_on_partner_arrival_and_sits_adjacent() {
    let mut qdb = travel_engine(QuantumDbConfig::default());
    // Mickey arrives first, wants to sit next to Goofy (not yet here):
    // forward constraint, stays pending.
    assert!(qdb
        .submit(&book_next_to("Mickey", "Goofy"))
        .unwrap()
        .is_committed());
    assert_eq!(qdb.pending_count(), 1);
    // Goofy arrives: §5.1 — both are grounded immediately, adjacent.
    assert!(qdb
        .submit(&book_next_to("Goofy", "Mickey"))
        .unwrap()
        .is_committed());
    assert_eq!(qdb.pending_count(), 0);
    assert_eq!(qdb.metrics().grounded_by_partner, 2);
    let m = seat_of(&mut qdb, "Mickey").unwrap();
    let g = seat_of(&mut qdb, "Goofy").unwrap();
    assert!(
        qdb.database()
            .contains("Adjacent", &tuple![m.as_str(), g.as_str()]),
        "Mickey({m}) and Goofy({g}) must be adjacent"
    );
}

#[test]
fn partner_never_arrives_coordination_drops_but_booking_survives() {
    let mut qdb = travel_engine(QuantumDbConfig::default());
    assert!(qdb
        .submit(&book_next_to("Mickey", "Goofy"))
        .unwrap()
        .is_committed());
    // Goofy never shows up; Mickey checks in anyway.
    let seat = seat_of(&mut qdb, "Mickey");
    assert!(seat.is_some(), "§5.1: Mickey keeps a seat regardless");
}

#[test]
fn blind_write_that_breaks_pending_state_is_rejected() {
    let mut qdb = travel_engine(QuantumDbConfig::default());
    // Pin Mickey to seat 1A via hard constraint.
    let mickey = parse_transaction(
        "-Available(f, '1A'), +Bookings('Mickey', f, '1A') :-1 Available(f, '1A')",
    )
    .unwrap();
    assert!(qdb.submit(&mickey).unwrap().is_committed());
    // Deleting 1A out from under him must be rejected…
    let rejected = qdb
        .write(WriteOp::delete("Available", tuple![123, "1A"]))
        .unwrap();
    assert!(!rejected);
    assert_eq!(qdb.metrics().writes_rejected, 1);
    assert!(qdb.database().contains("Available", &tuple![123, "1A"]));
    // …while deleting an unrelated seat is fine.
    assert!(qdb
        .write(WriteOp::delete("Available", tuple![123, "1C"]))
        .unwrap());
    // And the pending booking still completes.
    assert_eq!(seat_of(&mut qdb, "Mickey"), Some("1A".to_string()));
}

#[test]
fn blind_write_that_shrinks_slack_forces_resolve_but_succeeds() {
    let mut qdb = travel_engine(QuantumDbConfig::default());
    assert!(qdb.submit(&book("Mickey")).unwrap().is_committed());
    // Deleting any one seat keeps Mickey satisfiable (two seats remain).
    assert!(qdb
        .write(WriteOp::delete("Available", tuple![123, "1A"]))
        .unwrap());
    assert!(qdb
        .write(WriteOp::delete("Available", tuple![123, "1B"]))
        .unwrap());
    // Now only 1C is left; deleting it would strand Mickey.
    assert!(!qdb
        .write(WriteOp::delete("Available", tuple![123, "1C"]))
        .unwrap());
    assert_eq!(seat_of(&mut qdb, "Mickey"), Some("1C".to_string()));
}

#[test]
fn cancellation_reopens_options_for_pending_transactions() {
    // §1's Delta scenario in miniature: Mickey is pending; a cancellation
    // (blind insert into Available) widens his options, which semantic
    // serializability is allowed to use.
    let mut qdb = travel_engine(QuantumDbConfig::default());
    for i in 0..3 {
        assert!(qdb.submit(&book(&format!("U{i}"))).unwrap().is_committed());
    }
    // Full: a fourth abort…
    assert_eq!(qdb.submit(&book("Mickey")).unwrap(), SubmitOutcome::Aborted);
    // …until a seat opens up due to a cancellation.
    assert!(qdb
        .write(WriteOp::insert("Available", tuple![123, "2A"]))
        .unwrap());
    assert!(qdb.submit(&book("Mickey")).unwrap().is_committed());
    qdb.ground_all().unwrap();
    assert_eq!(qdb.database().table("Bookings").unwrap().len(), 4);
}

#[test]
fn k_bound_forces_grounding_of_oldest() {
    let mut cfg = QuantumDbConfig::with_k(2);
    cfg.ground_on_partner_arrival = false;
    let mut qdb = travel_engine(cfg);
    for i in 0..3 {
        assert!(qdb.submit(&book(&format!("U{i}"))).unwrap().is_committed());
    }
    // k = 2: the third admission forces U0 to ground.
    assert_eq!(qdb.pending_count(), 2);
    assert_eq!(qdb.metrics().grounded_by_k, 1);
    assert!(seat_of(&mut qdb, "U0").is_some());
}

#[test]
fn semantic_read_grounds_only_the_target() {
    let mut qdb = travel_engine(QuantumDbConfig::default());
    let _u0 = qdb.submit(&book_seat("U0", "1A")).unwrap().id().unwrap();
    let _u1 = qdb.submit(&book_seat("U1", "1B")).unwrap().id().unwrap();
    let u2 = qdb.submit(&book_seat("U2", "1C")).unwrap().id().unwrap();
    // Reading U2's booking under semantic serializability front-moves U2
    // only; U0 and U1 stay pending.
    assert_eq!(seat_of(&mut qdb, "U2"), Some("1C".to_string()));
    assert_eq!(qdb.pending_count(), 2);
    let _ = u2;
}

#[test]
fn strict_read_grounds_the_whole_prefix() {
    // All three bookings draw from the same unconstrained pool, so they
    // share one partition; under Strict, reading U2 grounds U0 and U1 too.
    let mut cfg = QuantumDbConfig::default();
    cfg.serializability = Serializability::Strict;
    let mut qdb = travel_engine(cfg);
    qdb.submit(&book("U0")).unwrap();
    qdb.submit(&book("U1")).unwrap();
    qdb.submit(&book("U2")).unwrap();
    assert!(seat_of(&mut qdb, "U2").is_some());
    assert_eq!(qdb.pending_count(), 0);
    // Contrast: constant-seat bookings do NOT overlap — they partition
    // per seat, and strict grounding stays within the partition.
    let mut cfg = QuantumDbConfig::default();
    cfg.serializability = Serializability::Strict;
    let mut qdb = travel_engine(cfg);
    qdb.submit(&book_seat("U0", "1A")).unwrap();
    qdb.submit(&book_seat("U1", "1B")).unwrap();
    qdb.submit(&book_seat("U2", "1C")).unwrap();
    assert_eq!(qdb.partition_count(), 3);
    assert_eq!(seat_of(&mut qdb, "U2"), Some("1C".to_string()));
    assert_eq!(qdb.pending_count(), 2);
}

#[test]
fn semantic_serializability_can_use_later_state_for_earlier_commits() {
    // The Monday/Tuesday example of §2: Mickey commits while only seat 1A
    // is open; a cancellation later frees 1B; reading Mickey's seat under
    // semantic serializability may (and here, deterministically does not
    // have to) use Tuesday's availability. What *must* hold is intent:
    // Mickey has some seat.
    let mut qdb = travel_engine(QuantumDbConfig::default());
    qdb.write(WriteOp::delete("Available", tuple![123, "1B"]))
        .unwrap();
    qdb.write(WriteOp::delete("Available", tuple![123, "1C"]))
        .unwrap();
    assert!(qdb.submit(&book("Mickey")).unwrap().is_committed());
    // Cancellation reopens 1B.
    qdb.write(WriteOp::insert("Available", tuple![123, "1B"]))
        .unwrap();
    // Donald hard-requests 1A — admissible *only* because Mickey can be
    // reassigned to 1B (deferred assignment paying off).
    assert!(qdb
        .submit(&book_seat("Donald", "1A"))
        .unwrap()
        .is_committed());
    qdb.ground_all().unwrap();
    assert_eq!(seat_of(&mut qdb, "Donald"), Some("1A".to_string()));
    assert_eq!(seat_of(&mut qdb, "Mickey"), Some("1B".to_string()));
}

#[test]
fn read_peek_exposes_a_world_without_fixing() {
    let mut qdb = travel_engine(QuantumDbConfig::default());
    qdb.submit(&book("Mickey")).unwrap();
    let q = parse_query("Bookings('Mickey', f, s)").unwrap();
    let peeked = qdb.read_peek(&q.atoms, None).unwrap();
    assert_eq!(peeked.len(), 1, "peek sees the cached world's booking");
    // Nothing collapsed.
    assert_eq!(qdb.pending_count(), 1);
    assert_eq!(qdb.database().table("Bookings").unwrap().len(), 0);
    // And nothing was materialized: the peek evaluated a delta view over
    // the base, never a cloned database.
    let m = qdb.metrics_snapshot();
    assert_eq!(m.db_clones, 0, "peek must not clone the database");
    assert_eq!(m.reads_peek, 1);
}

#[test]
fn read_possible_exposes_all_worlds() {
    let mut qdb = travel_engine(QuantumDbConfig::default());
    qdb.submit(&book("Mickey")).unwrap();
    let q = parse_query("Bookings('Mickey', f, s)").unwrap();
    let possible = qdb.read_possible(&q.atoms, 100).unwrap();
    // Three distinct single-row answers — one per seat.
    assert_eq!(possible.len(), 3);
    assert!(possible.iter().all(|rows| rows.len() == 1));
    assert_eq!(qdb.pending_count(), 1, "option 1 never collapses");
    // World enumeration forked deltas, not databases.
    let m = qdb.metrics_snapshot();
    assert_eq!(m.db_clones, 0, "possible must not clone the database");
    assert_eq!(m.reads_possible, 1);
    assert_eq!(m.worlds_enumerated, 3, "one fork per seat");
    assert_eq!(m.world_dedup_hits, 0);
}

#[test]
fn partitions_split_by_flight_and_merge_on_bridging_txn() {
    let mut qdb = travel_engine(QuantumDbConfig::default());
    qdb.bulk_insert("Available", vec![tuple![777, "9A"], tuple![777, "9B"]])
        .unwrap();
    let f123 =
        parse_transaction("-Available(123, s), +Bookings('A', 123, s) :-1 Available(123, s)")
            .unwrap();
    let f777 =
        parse_transaction("-Available(777, s), +Bookings('B', 777, s) :-1 Available(777, s)")
            .unwrap();
    qdb.submit(&f123).unwrap();
    qdb.submit(&f777).unwrap();
    assert_eq!(qdb.partition_count(), 2);
    // A flight-agnostic booking bridges both partitions (§4's
    // window-or-aisle example).
    qdb.submit(&book("C")).unwrap();
    assert_eq!(qdb.partition_count(), 1);
    assert_eq!(qdb.metrics().partition_merges, 1);
}

#[test]
fn composed_body_diagnostic_renders_partition_state() {
    let mut qdb = travel_engine(QuantumDbConfig::default());
    let id = qdb.submit(&book("Mickey")).unwrap().id().unwrap();
    let formula = qdb.composed_body(id).unwrap();
    assert_eq!(formula.to_string(), "Available(f, s)");
    qdb.submit(&book("Donald")).unwrap();
    let formula = qdb.composed_body(id).unwrap();
    // Donald's atom is guarded against Mickey's delete.
    assert!(formula.to_string().contains('¬'));
}

#[test]
fn grounding_policies_all_yield_valid_states() {
    for policy in [
        GroundingPolicy::FirstFit,
        GroundingPolicy::MaxFlexibility { sample: 8 },
        GroundingPolicy::Random { seed: 7, sample: 8 },
    ] {
        let mut cfg = QuantumDbConfig::default();
        cfg.policy = policy;
        let mut qdb = travel_engine(cfg);
        for i in 0..3 {
            assert!(qdb.submit(&book(&format!("U{i}"))).unwrap().is_committed());
        }
        qdb.ground_all().unwrap();
        assert_eq!(
            qdb.database().table("Bookings").unwrap().len(),
            3,
            "policy {policy:?}"
        );
        assert_eq!(qdb.database().table("Available").unwrap().len(), 0);
    }
}

#[test]
fn max_flexibility_preserves_adjacent_pairs() {
    // One row A-B-C. A solo booking under MaxFlexibility should take the
    // aisle-like seat C (or A)… specifically NOT the middle seat B, since
    // taking B destroys both adjacent pairs for a future couple.
    let mut cfg = QuantumDbConfig::default();
    cfg.policy = GroundingPolicy::MaxFlexibility { sample: 8 };
    let mut qdb = travel_engine(cfg);
    // Tie the flexibility to a pending couple: Mickey+Goofy pending pair
    // needs Adjacent; solo Pluto gets read first.
    let pluto = qdb.submit(&book("Pluto")).unwrap().id().unwrap();
    qdb.submit(&book_next_to("Mickey", "NoOneYet")).unwrap();
    assert!(qdb.ground(pluto).unwrap());
    let seat = seat_of(&mut qdb, "Pluto").unwrap();
    assert_ne!(seat, "1B", "middle seat would strand the pending pair");
}

#[test]
fn multi_solution_cache_rescues_admission_without_resolve() {
    // With one cached solution, U2's pinned request forces a full
    // re-solve; with extra solutions, an alternative grounding of U1 is
    // already on hand.
    for extras in [1usize, 4] {
        let mut cfg = QuantumDbConfig::default();
        cfg.cache_solutions = extras;
        let mut qdb = travel_engine(cfg);
        assert!(qdb.submit(&book("U1")).unwrap().is_committed());
        // U1's cached grounding deterministically took 1A (first
        // candidate). U2 now hard-requests exactly 1A.
        assert!(qdb.submit(&book_seat("U2", "1A")).unwrap().is_committed());
        let m = qdb.metrics();
        if extras > 1 {
            assert_eq!(m.cache_extra_hits, 1, "extras={extras}");
            assert_eq!(m.cache_full_resolves, 0, "extras={extras}");
        } else {
            assert_eq!(m.cache_extra_hits, 0);
            assert_eq!(m.cache_full_resolves, 1);
        }
        // Either way both users are served.
        qdb.ground_all().unwrap();
        assert_eq!(qdb.database().table("Bookings").unwrap().len(), 2);
        assert_eq!(seat_of(&mut qdb, "U2"), Some("1A".to_string()));
    }
}

#[test]
fn shared_handle_serializes_concurrent_clients() {
    let qdb = travel_engine(QuantumDbConfig::default());
    let shared = qdb.into_shared();
    let names: Vec<String> = (0..3).map(|i| format!("U{i}")).collect();
    std::thread::scope(|s| {
        for name in &names {
            let h = shared.clone();
            s.spawn(move || {
                let _ = h.submit(&book(name)).unwrap();
            });
        }
    });
    let m = shared.metrics();
    assert_eq!(m.submitted, 3);
    assert_eq!(m.committed, 3);
    shared.ground_all().unwrap();
    shared.with_database(|db| {
        assert_eq!(db.table("Bookings").unwrap().len(), 3);
    });
}

#[test]
fn event_trace_records_lifecycle() {
    let mut cfg = QuantumDbConfig::default();
    cfg.record_events = true;
    let mut qdb = travel_engine(cfg);
    let id = qdb.submit(&book("Mickey")).unwrap().id().unwrap();
    seat_of(&mut qdb, "Mickey").unwrap();
    for _ in 0..3 {
        qdb.submit(&book("X")).unwrap();
    }
    qdb.submit(&book("Y")).unwrap(); // aborts: no seats left
    let events = &qdb.metrics().events;
    use qdb_core::Event;
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::Committed(i) if *i == id)));
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::Grounded { id: i, .. } if *i == id)));
    assert!(events.iter().any(|e| matches!(e, Event::Aborted)));
}

#[test]
fn wal_grows_and_checkpoint_appends() {
    let mut qdb = travel_engine(QuantumDbConfig::default());
    let before = qdb.wal_size();
    qdb.submit(&book("Mickey")).unwrap();
    assert!(qdb.wal_size() > before);
    qdb.checkpoint().unwrap();
    let tuple_q = parse_query("Bookings('Mickey', f, s)").unwrap();
    qdb.read_parsed(&tuple_q, None).unwrap();
    // Grounding logged Write + PendingRemove records.
    assert!(qdb.wal_size() > before + 8);
}

/// Bulk check: engine state stays internally consistent across a random
/// mix of operations (mini soak test; the workload crate runs bigger ones).
#[test]
fn soak_mixed_operations_keep_invariants() {
    let mut qdb = travel_engine(QuantumDbConfig::with_k(4));
    qdb.bulk_insert(
        "Available",
        (0..20)
            .map(|i| tuple![500, format!("s{i}").as_str()])
            .collect::<Vec<Tuple>>(),
    )
    .unwrap();
    for i in 0..20 {
        let name = format!("P{i}");
        let t = parse_transaction(&format!(
            "-Available(500, s), +Bookings('{name}', 500, s) :-1 Available(500, s)"
        ))
        .unwrap();
        assert!(qdb.submit(&t).unwrap().is_committed());
        if i % 3 == 0 {
            let q = parse_query(&format!("Bookings('{name}', f, s)")).unwrap();
            let rows = qdb.read_parsed(&q, None).unwrap();
            assert_eq!(rows.len(), 1);
        }
    }
    qdb.ground_all().unwrap();
    assert_eq!(qdb.pending_count(), 0);
    let booked = qdb.database().table("Bookings").unwrap().len();
    assert_eq!(booked, 20);
    assert!(qdb.metrics().grounded_by_read > 0);
}
