//! Regenerate every table and figure of the paper's evaluation (§5).
//!
//! ```text
//! reproduce [table1|fig5|fig6|fig7|table2|fig8|fig9|phase|partition_scaling|
//!            admission_depth|read_path|profile|sim|connection_scale|
//!            replication|all]...
//!           [--scale full|smoke] [--json] [--trace-out PATH]
//! ```
//!
//! Several experiment names may be given; they run in the canonical order.
//! `full` runs the paper's parameters (slow: Fig. 7 alone executes up to
//! 15 000 transactions per k); `smoke` is a quick shape-check. Output is
//! plain text: tables match the paper's tables, figures are printed as
//! tab-separated series. With `--json`, the same measurements (plus
//! derived throughput/latency) are additionally written to
//! `BENCH_results.json` — stamped with the git commit and a UTC timestamp
//! — so the performance trajectory of the repo can be tracked run over
//! run. `--trace-out PATH` makes the `profile` experiment export its
//! sharded engine's span stream as JSONL (see `docs/OBSERVABILITY.md`).

use qdb_bench::experiments::*;
use qdb_bench::json::{num, str as jstr, Json};
use qdb_bench::report::{downsample, format_series, format_table};
use qdb_workload::FlightsConfig;

#[derive(Clone, Copy, PartialEq)]
enum Scale {
    Full,
    Smoke,
}

impl Scale {
    fn label(self) -> &'static str {
        match self {
            Scale::Full => "full",
            Scale::Smoke => "smoke",
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut scale = Scale::Full;
    let mut json = false;
    let mut trace_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("smoke") => Scale::Smoke,
                    _ => Scale::Full,
                };
            }
            "--json" => json = true,
            "--trace-out" => {
                i += 1;
                match args.get(i) {
                    Some(path) => trace_out = Some(path.clone()),
                    None => {
                        eprintln!("--trace-out needs a path");
                        std::process::exit(2);
                    }
                }
            }
            other => which.push(other.to_string()),
        }
        i += 1;
    }
    if which.is_empty() {
        which.push("all".to_string());
    }
    const KNOWN: [&str; 16] = [
        "all",
        "table1",
        "fig5",
        "fig6",
        "fig7",
        "table2",
        "fig8",
        "fig9",
        "phase",
        "partition_scaling",
        "admission_depth",
        "read_path",
        "profile",
        "sim",
        "connection_scale",
        "replication",
    ];
    for w in &which {
        if !KNOWN.contains(&w.as_str()) {
            eprintln!(
                "unknown experiment '{w}'; expected one or more of: {}",
                KNOWN.join("|")
            );
            std::process::exit(2);
        }
    }
    let seed = 0xC1DE;
    let wants = |name: &str| which.iter().any(|w| w == "all") || which.iter().any(|w| w == name);
    let mut records: Vec<Json> = Vec::new();
    if wants("table1") {
        records.push(table1(seed));
    }
    if wants("fig5") || wants("fig6") {
        records.push(fig5_fig6(scale, seed));
    }
    if wants("fig7") || wants("table2") {
        records.push(fig7_table2(scale, seed));
    }
    if wants("fig8") || wants("fig9") {
        records.push(fig8_fig9(scale, seed));
    }
    if wants("phase") {
        records.push(phase());
    }
    if wants("partition_scaling") {
        records.push(partition_scaling_report(scale, seed));
    }
    if wants("admission_depth") {
        records.push(admission_depth_report(scale));
    }
    if wants("read_path") {
        records.push(read_path_report(scale));
    }
    if wants("profile") {
        records.push(profile_report(scale, trace_out.as_deref()));
    }
    if wants("connection_scale") {
        records.push(connection_scale_report(scale));
    }
    let mut sim_failed = false;
    if wants("replication") {
        let (record, failed) = replication_report(scale);
        records.push(record);
        sim_failed |= failed;
    }
    if wants("sim") {
        let (record, failed) = sim_report(scale);
        records.push(record);
        sim_failed |= failed;
    }
    if json {
        let doc = Json::obj([
            ("suite", jstr("quantum-db reproduce")),
            ("git_commit", jstr(qdb_bench::git_commit())),
            ("generated_at", jstr(qdb_bench::iso8601_now())),
            ("scale", jstr(scale.label())),
            ("seed", num(seed as u32)),
            ("experiments", Json::Arr(records)),
        ]);
        let path = "BENCH_results.json";
        match std::fs::write(path, doc.pretty()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if sim_failed {
        // A simulation violation is a correctness bug, not a perf
        // regression — fail the reproduction run outright.
        std::process::exit(1);
    }
}

/// The observability acceptance run: drive an identical mixed workload
/// through both engines (`QuantumDb` single-threaded and the sharded
/// `SharedQuantumDb`), then read back `SHOW PROFILE`'s payload and check
/// that every statement class the driver issued has a histogram whose
/// count equals the driver's own statement counter and whose percentiles
/// are non-zero — the jq gates in CI key off this record. With
/// `--trace-out`, the sharded engine's span stream is exported as JSONL.
fn profile_report(scale: Scale, trace_out: Option<&str>) -> Json {
    use qdb_core::{QuantumDb, QuantumDbConfig};
    use std::collections::BTreeMap;

    let (flights, pairs, reads) = match scale {
        Scale::Full => (8usize, 6usize, 120usize),
        Scale::Smoke => (2, 3, 12),
    };
    println!("== Profile: per-class / per-phase latency histograms ==");
    println!(
        "({flights} flights x {pairs} bookings each + {reads} PEEK/POSSIBLE reads,\n\
         single and sharded engines; counts must match the driver's own)\n"
    );

    // The workload, as (class, SQL) pairs — the class strings are the
    // engine's own `Statement::kind()` names, so the driver's counter and
    // the histogram key line up exactly.
    let mut stmts: Vec<(&'static str, String)> = vec![
        (
            "CREATE TABLE",
            "CREATE TABLE Available (flight INT, seat TEXT)".into(),
        ),
        (
            "CREATE TABLE",
            "CREATE TABLE Bookings (name TEXT, flight INT, seat TEXT)".into(),
        ),
    ];
    for f in 1..=flights {
        for s in 0..pairs {
            stmts.push((
                "INSERT",
                format!("INSERT INTO Available VALUES ({f}, 's{s:03}')"),
            ));
        }
    }
    for f in 1..=flights {
        for i in 0..pairs {
            stmts.push((
                "SELECT … CHOOSE 1",
                format!(
                    "SELECT @s FROM Available({f}, @s) CHOOSE 1 FOLLOWED BY \
                     (DELETE ({f}, @s) FROM Available; \
                      INSERT ('u{f}_{i}', {f}, @s) INTO Bookings)"
                ),
            ));
        }
    }
    for i in 0..reads {
        // PEEK and POSSIBLE leave the pending set alone (no collapse), so
        // the solve/world-enumeration phases keep firing all the way.
        stmts.push((
            "SELECT",
            if i % 2 == 0 {
                format!("SELECT PEEK * FROM Bookings('u1_{}', @f, @s)", i % pairs)
            } else {
                "SELECT POSSIBLE @s FROM Available(1, @s)".into()
            },
        ));
    }
    stmts.push(("SHOW PENDING", "SHOW PENDING".into()));
    stmts.push(("GROUND ALL", "GROUND ALL".into()));
    stmts.push(("SELECT", "SELECT * FROM Bookings(@n, @f, @s)".into()));
    let mut expected: BTreeMap<&'static str, u64> = BTreeMap::new();
    for (class, _) in &stmts {
        *expected.entry(class).or_insert(0) += 1;
    }

    let mut engines = Vec::new();
    for engine in ["single", "sharded"] {
        let mut qdb = QuantumDb::new(QuantumDbConfig::default()).expect("engine");
        let profile = if engine == "single" {
            for (_, sql) in &stmts {
                qdb.execute(sql).expect("statement");
            }
            qdb.profile()
        } else {
            if let Some(path) = trace_out {
                let file = std::fs::File::create(path).expect("trace sink");
                qdb.obs()
                    .set_trace(Some(Box::new(std::io::BufWriter::new(file))));
            }
            let shared = qdb.into_shared();
            let session = shared.session();
            for (_, sql) in &stmts {
                session.execute(sql).expect("statement");
            }
            let profile = shared.profile();
            // Drop the sink so the BufWriter flushes before we return.
            shared.obs().set_trace(None);
            profile
        };

        let by_class: BTreeMap<&str, qdb_core::HistSummary> = profile
            .classes
            .iter()
            .map(|(name, s)| (name.as_str(), *s))
            .collect();
        for (class, want) in &expected {
            let s = by_class
                .get(*class)
                .unwrap_or_else(|| panic!("{engine}: no histogram for class {class}"));
            assert_eq!(
                s.count, *want,
                "{engine}: {class} histogram count vs driver counter"
            );
            assert!(s.p50_ns > 0, "{engine}: {class} p50 must be non-zero");
            assert!(s.p99_ns >= s.p50_ns, "{engine}: {class} p99 < p50");
        }
        for need in ["parse", "solve", "apply"] {
            let s = profile
                .phases
                .iter()
                .find(|(name, _)| name == need)
                .map(|(_, s)| *s)
                .unwrap_or_else(|| panic!("{engine}: phase {need} never recorded"));
            assert!(s.count > 0 && s.p50_ns > 0, "{engine}: phase {need} empty");
        }

        let us = |ns: u64| ns as f64 / 1000.0;
        let table: Vec<Vec<String>> = profile
            .classes
            .iter()
            .map(|(name, s)| {
                vec![
                    name.clone(),
                    s.count.to_string(),
                    format!("{:.1}", us(s.p50_ns)),
                    format!("{:.1}", us(s.p99_ns)),
                    format!("{:.1}", us(s.p999_ns)),
                    format!("{:.1}", us(s.max_ns)),
                ]
            })
            .collect();
        println!("-- {engine} engine --");
        println!(
            "{}",
            format_table(
                &["class", "count", "p50_us", "p99_us", "p999_us", "max_us"],
                &table
            )
        );

        let summarize = |name: &str, s: &qdb_core::HistSummary, expected: Option<u64>| {
            let mut fields = vec![
                ("name".to_string(), jstr(name.to_string())),
                ("count".to_string(), num(s.count as f64)),
            ];
            if let Some(e) = expected {
                fields.push(("expected".to_string(), num(e as f64)));
            }
            fields.extend([
                ("p50_us".to_string(), num(us(s.p50_ns))),
                ("p90_us".to_string(), num(us(s.p90_ns))),
                ("p99_us".to_string(), num(us(s.p99_ns))),
                ("p999_us".to_string(), num(us(s.p999_ns))),
                ("max_us".to_string(), num(us(s.max_ns))),
            ]);
            Json::obj(fields)
        };
        engines.push(Json::obj([
            ("engine", jstr(engine)),
            (
                "classes",
                Json::arr(
                    profile
                        .classes
                        .iter()
                        .map(|(name, s)| summarize(name, s, expected.get(name.as_str()).copied())),
                ),
            ),
            (
                "phases",
                Json::arr(
                    profile
                        .phases
                        .iter()
                        .map(|(name, s)| summarize(name, s, None)),
                ),
            ),
        ]));
    }
    Json::obj([
        ("experiment", jstr("profile")),
        ("flights", num(flights as f64)),
        ("bookings", num((flights * pairs) as f64)),
        ("reads", num(reads as f64)),
        ("engines", Json::Arr(engines)),
    ])
}

/// The serving-layer acceptance run (see `qdb_bench::connscale`): park a
/// flood of idle connections on the epoll reactor, rerun the hot workload,
/// and report the latency penalty plus the per-idle-connection memory
/// bill. CI jq-gates `conns_refused == 0` and a non-degenerate `p999_us`
/// off this record.
fn connection_scale_report(scale: Scale) -> Json {
    use qdb_bench::{connection_scale, ConnScaleConfig};

    let cfg = match scale {
        Scale::Full => ConnScaleConfig::full(),
        Scale::Smoke => ConnScaleConfig::smoke(),
    };
    println!("== Connection scale: hot-path latency under an idle-connection flood ==");
    println!(
        "({} idle connections parked, {} hot threads x {} round trips,\n\
         baseline vs flooded; epoll reactor, {} executor workers)\n",
        cfg.idle_conns, cfg.hot_conns, cfg.requests_per_conn, cfg.workers
    );
    let outcome = connection_scale(&cfg);
    let us = |ns: u64| ns as f64 / 1000.0;
    let table: Vec<Vec<String>> = outcome
        .phases
        .iter()
        .map(|p| {
            vec![
                p.label.to_string(),
                p.idle_conns.to_string(),
                p.requests.to_string(),
                format!("{:.0}", p.throughput_rps),
                format!("{:.1}", us(p.latency.p50_ns)),
                format!("{:.1}", us(p.latency.p99_ns)),
                format!("{:.1}", us(p.latency.p999_ns)),
                format!("{:.1}", us(p.latency.max_ns)),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["phase", "idle", "requests", "req/s", "p50_us", "p99_us", "p999_us", "max_us"],
            &table
        )
    );
    println!(
        "held {} idle conns (peak {}, refused {}, reaped {}); \
         {:.0} bytes/idle conn; p99 scaled/baseline = {:.2}x\n",
        outcome.idle_held,
        outcome.conns_peak,
        outcome.conns_refused,
        outcome.conns_idle_closed,
        outcome.bytes_per_idle_conn,
        outcome.p99_ratio
    );
    Json::obj([
        ("experiment", jstr("connection_scale")),
        ("idle_conns", num(cfg.idle_conns as f64)),
        ("hot_conns", num(cfg.hot_conns as f64)),
        ("requests_per_conn", num(cfg.requests_per_conn as f64)),
        ("workers", num(cfg.workers as f64)),
        ("nofile_limit", num(outcome.nofile_limit as f64)),
        ("idle_held", num(outcome.idle_held as f64)),
        ("conns_peak", num(outcome.conns_peak as f64)),
        ("conns_refused", num(outcome.conns_refused as f64)),
        ("conns_idle_closed", num(outcome.conns_idle_closed as f64)),
        ("bytes_per_idle_conn", num(outcome.bytes_per_idle_conn)),
        ("p99_ratio", num(outcome.p99_ratio)),
        (
            "phases",
            Json::arr(outcome.phases.iter().map(|p| {
                Json::obj([
                    ("phase", jstr(p.label)),
                    ("idle_conns", num(p.idle_conns as f64)),
                    ("requests", num(p.requests as f64)),
                    ("throughput_rps", num(p.throughput_rps)),
                    ("p50_us", num(us(p.latency.p50_ns))),
                    ("p90_us", num(us(p.latency.p90_ns))),
                    ("p99_us", num(us(p.latency.p99_ns))),
                    ("p999_us", num(us(p.latency.p999_ns))),
                    ("max_us", num(us(p.latency.max_ns))),
                ])
            })),
        ),
    ])
}

/// The replication acceptance run. Two halves, one record:
///
/// - **performance** ([`qdb_bench::replication_scale`]): read throughput
///   vs replica count plus replication lag under the read-mostly shape,
///   against real primary/replica `qdb-server` processes over loopback;
/// - **correctness** ([`qdb_sim::run_replica_sweep`]): the replicated
///   sim topology — seeded workload, WAL shipping with arbitrary byte
///   cuts, primary kill, promotion — whose checker proves zero
///   acknowledged-durable-write loss and horizon-explainable replica
///   reads. CI jq-gates `failover.violations == 0`, non-zero
///   `replica_reads`, and `settled_lag_bytes == 0` off this record.
fn replication_report(scale: Scale) -> (Json, bool) {
    use qdb_bench::{replication_scale, ReplScaleConfig};
    use qdb_sim::{run_replica_sweep, ReplicaSimConfig};

    let (cfg, seeds) = match scale {
        Scale::Full => (ReplScaleConfig::full(), 50u64),
        Scale::Smoke => (ReplScaleConfig::smoke(), 5u64),
    };
    println!("== Replication: read scale-out, lag, and checked failover ==");
    println!(
        "(replica sweep {:?}, {} bookings + {} reads/reader per point, read-mostly mix;\n\
         plus {seeds} sim seeds of kill-at-arbitrary-WAL-cut + promotion)\n",
        cfg.replica_counts, cfg.bookings, cfg.reads_per_reader
    );
    let outcome = replication_scale(&cfg);
    let us = |ns: u64| ns as f64 / 1000.0;
    let table: Vec<Vec<String>> = outcome
        .points
        .iter()
        .map(|p| {
            vec![
                p.replicas.to_string(),
                p.readers.to_string(),
                p.reads.to_string(),
                format!("{:.0}", p.read_throughput_rps),
                format!("{:.1}", us(p.read_latency.p50_ns)),
                format!("{:.1}", us(p.read_latency.p99_ns)),
                p.bookings_committed.to_string(),
                p.max_lag_bytes.to_string(),
                p.settled_lag_bytes.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "replicas",
                "readers",
                "reads",
                "reads/s",
                "p50_us",
                "p99_us",
                "bookings",
                "max_lag_B",
                "settled_B"
            ],
            &table
        )
    );

    let sweep = run_replica_sweep(&ReplicaSimConfig::smoke(), 1, seeds);
    println!(
        "failover sweep: {} runs, acked={} surviving={} async_window={} checked_reads={} \
         violations={}",
        sweep.runs,
        sweep.acked_writes,
        sweep.surviving_acked,
        sweep.lost_to_window,
        sweep.checked_reads,
        sweep.failures.len()
    );
    for (seed, v) in &sweep.failures {
        println!("VIOLATION seed={seed}: {v}");
    }
    println!();

    let failed = !sweep.failures.is_empty();
    let record = Json::obj([
        ("experiment", jstr("replication")),
        ("profile", jstr("read_mostly")),
        (
            "points",
            Json::arr(outcome.points.iter().map(|p| {
                Json::obj([
                    ("replicas", num(p.replicas as f64)),
                    ("readers", num(p.readers as f64)),
                    ("reads", num(p.reads as f64)),
                    ("replica_reads", num(p.replica_reads as f64)),
                    ("read_throughput_rps", num(p.read_throughput_rps)),
                    ("read_p50_us", num(us(p.read_latency.p50_ns))),
                    ("read_p90_us", num(us(p.read_latency.p90_ns))),
                    ("read_p99_us", num(us(p.read_latency.p99_ns))),
                    ("read_p999_us", num(us(p.read_latency.p999_ns))),
                    ("bookings_committed", num(p.bookings_committed as f64)),
                    ("max_lag_bytes", num(p.max_lag_bytes as f64)),
                    ("settled_lag_bytes", num(p.settled_lag_bytes as f64)),
                    ("catch_up_ms", num(p.catch_up_ms as f64)),
                ])
            })),
        ),
        (
            "failover",
            Json::obj([
                ("seeds", num(seeds as f64)),
                ("runs", num(sweep.runs as f64)),
                ("total_ops", num(sweep.total_ops as f64)),
                ("acked_writes", num(sweep.acked_writes as f64)),
                ("surviving_acked", num(sweep.surviving_acked as f64)),
                ("lost_to_window", num(sweep.lost_to_window as f64)),
                ("replica_reads", num(sweep.replica_reads as f64)),
                ("checked_reads", num(sweep.checked_reads as f64)),
                ("max_lag_bytes", num(sweep.max_lag_bytes as f64)),
                ("violations", num(sweep.failures.len() as f64)),
                (
                    "failures",
                    Json::arr(sweep.failures.iter().map(|(seed, v)| {
                        Json::obj([("seed", num(*seed as f64)), ("violation", jstr(v.clone()))])
                    })),
                ),
            ]),
        ),
    ]);
    (record, failed)
}

fn sim_report(scale: Scale) -> (Json, bool) {
    use qdb_sim::{run_seed, run_sweep, EngineKind, Mutation, SimConfig};
    use std::path::Path;
    // The wire engine pays a loopback-TCP round trip per statement, so
    // the PR-path smoke runs it at a reduced seed count; the nightly
    // full scale runs all three engines over the whole seed range.
    let (seeds, wire_seeds, cfg) = match scale {
        Scale::Full => {
            let mut cfg = SimConfig::smoke(EngineKind::Single);
            cfg.ops_per_client = 500;
            (1000u64, 1000u64, cfg)
        }
        Scale::Smoke => (50u64, 12u64, SimConfig::smoke(EngineKind::Single)),
    };
    println!("== Simulation: deterministic full-system check (crash injection on) ==");
    println!(
        "({seeds} seeds x single+sharded, {wire_seeds} seeds x wire, {} clients x {} ops each;\n\
         black-box serializability + PEEK/POSSIBLE explainability + accounting identity;\n\
         failing traces delta-debugged before artifacts are written)\n",
        cfg.clients, cfg.ops_per_client
    );
    let started = std::time::Instant::now();
    let dir = Path::new("target/sim");
    let mut outcome = run_sweep(
        &cfg,
        1,
        seeds,
        &[EngineKind::Single, EngineKind::Sharded],
        Some(dir),
        true,
    );
    let wire = run_sweep(&cfg, 1, wire_seeds, &[EngineKind::Wire], Some(dir), true);
    outcome.runs += wire.runs;
    outcome.total_ops += wire.total_ops;
    outcome.commits += wire.commits;
    outcome.aborts += wire.aborts;
    outcome.crashes += wire.crashes;
    outcome.stats.add(&wire.stats);
    outcome.failures.extend(wire.failures);
    // Meta-check: every registered fault-injection mutation must still
    // make the checker fire — a silently-dead mutation is a coverage
    // regression even when all clean sweeps pass.
    let mut dead_mutations: Vec<&str> = Vec::new();
    for m in Mutation::all() {
        let mcfg = SimConfig {
            mutation: Some(m),
            ..cfg.clone()
        };
        let fired = (1..=20u64).any(|seed| run_seed(seed, &mcfg).violation.is_some());
        if !fired {
            println!("DEAD MUTATION: {} never fired in 20 seeds", m.name());
            dead_mutations.push(m.name());
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let ops_per_sec = if elapsed > 0.0 {
        outcome.total_ops as f64 / elapsed
    } else {
        0.0
    };
    let table = vec![vec![
        outcome.runs.to_string(),
        outcome.total_ops.to_string(),
        format!("{ops_per_sec:.0}"),
        outcome.commits.to_string(),
        outcome.crashes.to_string(),
        outcome.stats.ser_checks.to_string(),
        outcome.stats.explain_checked.to_string(),
        outcome.violations().to_string(),
    ]];
    println!(
        "{}",
        format_table(
            &[
                "runs",
                "ops",
                "ops/s",
                "commits",
                "crashes",
                "ser_checks",
                "explained",
                "violations"
            ],
            &table
        )
    );
    for (seed, engine, v, path) in &outcome.failures {
        println!(
            "VIOLATION seed={seed} engine={engine} kind={} at op {}{}",
            v.kind,
            v.op_index,
            match path {
                Some(p) => format!(" -> {}", p.display()),
                None => String::new(),
            }
        );
    }
    let failures: Vec<Json> = outcome
        .failures
        .iter()
        .map(|(seed, engine, v, path)| {
            Json::obj([
                ("seed", num(*seed as f64)),
                ("engine", jstr(*engine)),
                ("kind", jstr(v.kind.clone())),
                ("op_index", num(v.op_index as f64)),
                (
                    "artifact",
                    match path {
                        Some(p) => jstr(p.display().to_string()),
                        None => Json::Null,
                    },
                ),
            ])
        })
        .collect();
    let failed = !outcome.failures.is_empty() || !dead_mutations.is_empty();
    let record = Json::obj([
        ("experiment", jstr("sim")),
        ("seeds", num(seeds as f64)),
        ("wire_seeds", num(wire_seeds as f64)),
        ("shrink", Json::Bool(true)),
        ("mutations_armed", Json::Bool(dead_mutations.is_empty())),
        (
            "dead_mutations",
            Json::arr(dead_mutations.iter().map(|n| jstr(*n))),
        ),
        ("runs", num(outcome.runs as f64)),
        ("total_ops", num(outcome.total_ops as f64)),
        ("ops_per_sec", num(ops_per_sec)),
        ("commits", num(outcome.commits as f64)),
        ("aborts", num(outcome.aborts as f64)),
        ("crashes", num(outcome.crashes as f64)),
        ("ser_checks", num(outcome.stats.ser_checks as f64)),
        ("explain_checked", num(outcome.stats.explain_checked as f64)),
        (
            "invariant_checks",
            num(outcome.stats.invariant_checks as f64),
        ),
        ("violations", num(outcome.violations() as f64)),
        ("failures", Json::Arr(failures)),
    ]);
    (record, failed)
}

fn admission_depth_report(scale: Scale) -> Json {
    let (depths, flights, seats): (Vec<usize>, usize, usize) = match scale {
        Scale::Full => (vec![8, 32, 128], 8, 160),
        Scale::Smoke => (vec![4, 8], 4, 16),
    };
    println!("== Admission depth: solver hot-path latency vs pending-queue depth ==");
    println!(
        "(one partition filled to depth D; cached-extend vs full-resolve ablation;\n\
         {flights} flights x {seats} seats)\n"
    );
    let rows = admission_depth(&depths, flights, seats);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                r.depth.to_string(),
                format!("{:.1}", r.p50_us),
                format!("{:.1}", r.p99_us),
                format!("{:.1}", r.p999_us),
                format!("{:.1}", r.mean_latency_us),
                format!("{:.0}", r.nodes_per_sec),
                r.candidates_streamed.to_string(),
                format!("{}/{}", r.index_lookups, r.scan_lookups),
                format!("{}/{}", r.cache_extensions, r.cache_full_resolves),
                r.indexes_auto_created.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "mode", "depth", "p50_us", "p99_us", "p999_us", "mean_us", "nodes/s", "streamed",
                "ix/scan", "ext/full", "auto-ix"
            ],
            &table
        )
    );
    for r in &rows {
        assert_eq!(
            r.candidate_vecs, 0,
            "fast path must not materialize candidate vectors"
        );
    }
    // The recording-overhead A/B at the deepest point of the sweep — the
    // observability layer's ≤5% acceptance gate.
    let ab_depth = depths.iter().copied().max().unwrap_or(8);
    let ab = obs_overhead(ab_depth, flights, seats);
    println!(
        "obs recording overhead at depth {}: enabled {:.1}us vs disabled {:.1}us \
         ({:+.1}%)\n",
        ab.depth, ab.enabled_mean_us, ab.disabled_mean_us, ab.overhead_percent
    );
    Json::obj([
        ("experiment", jstr("admission_depth")),
        (
            "obs_overhead",
            Json::obj([
                ("depth", num(ab.depth as f64)),
                ("enabled_mean_us", num(ab.enabled_mean_us)),
                ("disabled_mean_us", num(ab.disabled_mean_us)),
                ("overhead_percent", num(ab.overhead_percent)),
            ]),
        ),
        (
            "points",
            Json::arr(rows.iter().map(|r| {
                Json::obj([
                    ("mode", jstr(r.mode.clone())),
                    ("depth", num(r.depth as f64)),
                    ("p50_us", num(r.p50_us)),
                    ("p99_us", num(r.p99_us)),
                    ("p999_us", num(r.p999_us)),
                    ("max_us", num(r.max_us)),
                    ("mean_latency_us", num(r.mean_latency_us)),
                    ("total_seconds", num(r.total_seconds)),
                    ("solver_nodes", num(r.solver_nodes as f64)),
                    ("nodes_per_sec", num(r.nodes_per_sec)),
                    ("candidates_streamed", num(r.candidates_streamed as f64)),
                    ("candidate_vecs", num(r.candidate_vecs as f64)),
                    ("index_lookups", num(r.index_lookups as f64)),
                    ("scan_lookups", num(r.scan_lookups as f64)),
                    ("cache_extensions", num(r.cache_extensions as f64)),
                    ("cache_full_resolves", num(r.cache_full_resolves as f64)),
                    ("indexes_auto_created", num(r.indexes_auto_created as f64)),
                ])
            })),
        ),
    ])
}

fn read_path_report(scale: Scale) -> Json {
    let (sizes, depths, reads): (Vec<usize>, Vec<usize>, usize) = match scale {
        Scale::Full => (vec![1_000, 10_000], vec![0, 8, 32], 200),
        Scale::Smoke => (vec![200, 1_000], vec![0, 4, 8], 40),
    };
    println!("== Read path: delta-view PEEK/POSSIBLE vs the clone-based reference ==");
    println!(
        "(base size x pending depth; per-read latency; db_clones is the engine's\n\
         database clone counter during the view phase and must be 0)\n"
    );
    let rows = read_path(&sizes, &depths, reads);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                r.db_rows.to_string(),
                r.depth.to_string(),
                format!("{:.1}", r.view_latency_us),
                format!("{:.1}", r.clone_latency_us),
                format!("{:.1}x", r.speedup),
                format!("{}/{}", r.worlds_enumerated, r.world_dedup_hits),
                r.db_clones.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "mode",
                "db_rows",
                "depth",
                "view_us",
                "clone_us",
                "speedup",
                "worlds/dedup",
                "db_clones"
            ],
            &table
        )
    );
    for r in &rows {
        assert_eq!(
            r.db_clones, 0,
            "the view read path must not clone the database"
        );
    }
    Json::obj([
        ("experiment", jstr("read_path")),
        (
            "points",
            Json::arr(rows.iter().map(|r| {
                Json::obj([
                    ("mode", jstr(r.mode.clone())),
                    ("db_rows", num(r.db_rows as f64)),
                    ("depth", num(r.depth as f64)),
                    ("reads", num(r.reads as f64)),
                    ("view_latency_us", num(r.view_latency_us)),
                    ("view_p50_us", num(r.view_p50_us)),
                    ("view_p99_us", num(r.view_p99_us)),
                    ("view_p999_us", num(r.view_p999_us)),
                    ("clone_latency_us", num(r.clone_latency_us)),
                    ("speedup", num(r.speedup)),
                    ("worlds_enumerated", num(r.worlds_enumerated as f64)),
                    ("world_dedup_hits", num(r.world_dedup_hits as f64)),
                    ("db_clones", num(r.db_clones as f64)),
                ])
            })),
        ),
    ])
}

fn partition_scaling_report(scale: Scale, seed: u64) -> Json {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (flights_per_worker, rows, pairs, sweep): (usize, usize, usize, Vec<usize>) = match scale {
        Scale::Full => (4, 8, 6, vec![1, 2, 4]),
        Scale::Smoke => (1, 4, 3, vec![1, 2]),
    };
    println!("== Partition scaling: disjoint workload vs server workers ==");
    println!(
        "(sharded engine vs coarse-lock ablation; {cores} CPU core(s) visible —\n\
         wall-clock speedup is capped by the core count)\n"
    );
    let rows_out = partition_scaling(flights_per_worker, rows, pairs, &sweep, seed);
    let table: Vec<Vec<String>> = rows_out
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.workers.to_string(),
                r.ops.to_string(),
                format!("{:.4}", r.seconds),
                format!("{:.0}", r.throughput),
                r.solve_peak.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "engine",
                "workers",
                "ops",
                "seconds",
                "bookings/s",
                "solve-peak"
            ],
            &table
        )
    );
    let tp = |label: &str, workers: usize| {
        rows_out
            .iter()
            .find(|r| r.label == label && r.workers == workers)
            .map(|r| r.throughput)
            .unwrap_or(0.0)
    };
    let max_w = sweep.iter().copied().max().unwrap_or(1);
    let sharded_speedup = tp("sharded", max_w) / tp("sharded", 1).max(f64::EPSILON);
    let vs_coarse = tp("sharded", max_w) / tp("coarse-lock", max_w).max(f64::EPSILON);
    println!(
        "sharded {max_w}w vs sharded 1w: {sharded_speedup:.2}x; \
         sharded vs coarse-lock at {max_w}w: {vs_coarse:.2}x\n"
    );
    Json::obj([
        ("experiment", jstr("partition_scaling")),
        ("cpu_cores", num(cores as f64)),
        ("contention", jstr("disjoint-flights")),
        (
            "points",
            Json::arr(rows_out.iter().map(|r| {
                Json::obj([
                    ("engine", jstr(r.label.clone())),
                    ("workers", num(r.workers as f64)),
                    ("ops", num(r.ops as f64)),
                    ("seconds", num(r.seconds)),
                    ("throughput_tps", num(r.throughput)),
                    ("solver_concurrency_peak", num(r.solve_peak as f64)),
                    ("booking_p50_us", num(r.booking_p50_us)),
                    ("booking_p99_us", num(r.booking_p99_us)),
                    ("booking_p999_us", num(r.booking_p999_us)),
                ])
            })),
        ),
        ("speedup_sharded_maxw_vs_1w", num(sharded_speedup)),
        ("speedup_sharded_vs_coarse_at_maxw", num(vs_coarse)),
    ])
}

fn phase() -> Json {
    println!("== §6 extra: satisfiability phase transition ==");
    println!("(adjacent-pair bookings on a 4-row flight; the boundary unsat");
    println!(" proof is where solver effort spikes)\n");
    let rows = phase_transition(4, 6);
    let table: Vec<Vec<String>> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            vec![
                (i + 1).to_string(),
                format!("{:.2}", r.ratio),
                r.nodes.to_string(),
                if r.committed { "commit" } else { "ABORT" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["attempt", "fill ratio", "solver nodes", "outcome"],
            &table
        )
    );
    Json::obj([
        ("experiment", jstr("phase")),
        (
            "points",
            Json::arr(rows.iter().map(|r| {
                Json::obj([
                    ("ratio", num(r.ratio)),
                    ("solver_nodes", num(r.nodes as f64)),
                    ("committed", Json::Bool(r.committed)),
                ])
            })),
        ),
    ])
}

fn table1(seed: u64) -> Json {
    println!("== Table 1: arrival orders and maximum pending transactions ==");
    println!("(paper: Alternate 1; Random/In Order/Reverse Order ceil(N/2))\n");
    let rows = table1_max_pending(51, seed);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(label, bound, measured)| {
            vec![label.clone(), bound.to_string(), measured.to_string()]
        })
        .collect();
    println!(
        "{}",
        format_table(&["Order of Arrival", "Paper bound", "Measured"], &table)
    );
    Json::obj([
        ("experiment", jstr("table1")),
        (
            "orders",
            Json::arr(rows.iter().map(|(label, bound, measured)| {
                Json::obj([
                    ("order", jstr(label.clone())),
                    ("paper_bound", num(*bound as f64)),
                    ("measured_max_pending", num(*measured as f64)),
                ])
            })),
        ),
    ])
}

fn fig5_fig6(scale: Scale, seed: u64) -> Json {
    let (flights, pairs, k) = match scale {
        // §5.3: 1 flight, 34 rows (102 seats), 102 transactions, k = 61.
        Scale::Full => (FlightsConfig::order_of_arrival(), 51, 61),
        Scale::Smoke => (
            FlightsConfig {
                flights: 1,
                rows_per_flight: 6,
            },
            9,
            61,
        ),
    };
    println!("== Figure 5: cumulative execution time by arrival order ==");
    println!(
        "(1 flight x {} seats, {} transactions, k={k})\n",
        flights.seats_per_flight(),
        pairs * 2
    );
    let rows = fig5_fig6_order_of_arrival(flights, pairs, k, seed);
    for row in &rows {
        let pts: Vec<Vec<f64>> = downsample(&row.cumulative_micros, 17)
            .into_iter()
            .map(|(i, us)| vec![i as f64, us as f64 / 1000.0])
            .collect();
        println!(
            "{}",
            format_series(
                &format!("Fig5 series: {}", row.label),
                &["txn", "cumulative_ms"],
                &pts
            )
        );
    }
    println!("== Figure 6: percentage of coordination by arrival order ==\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.1}", r.coordination_percent),
                r.max_pending.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(&["Series", "Coordination %", "Max pending"], &table)
    );
    Json::obj([
        ("experiment", jstr("fig5_fig6")),
        (
            "series",
            Json::arr(rows.iter().map(|r| {
                let ops = r.cumulative_micros.len();
                let total_us = r.cumulative_micros.last().copied().unwrap_or(0);
                let total_s = total_us as f64 / 1e6;
                Json::obj([
                    ("label", jstr(r.label.clone())),
                    ("transactions", num(ops as f64)),
                    ("total_seconds", num(total_s)),
                    (
                        "throughput_tps",
                        num(if total_s > 0.0 {
                            ops as f64 / total_s
                        } else {
                            0.0
                        }),
                    ),
                    (
                        "mean_latency_us",
                        num(if ops > 0 {
                            total_us as f64 / ops as f64
                        } else {
                            0.0
                        }),
                    ),
                    ("coordination_percent", num(r.coordination_percent)),
                    ("max_pending", num(r.max_pending as f64)),
                ])
            })),
        ),
    ])
}

fn fig7_table2(scale: Scale, seed: u64) -> Json {
    let (flight_counts, rows_per_flight, ks): (Vec<usize>, usize, Vec<usize>) = match scale {
        // §5.3: 10→100 flights of 150 seats, k in {20, 30, 40}.
        Scale::Full => ((1..=10).map(|i| i * 10).collect(), 50, vec![20, 30, 40]),
        Scale::Smoke => (vec![1, 2, 4], 10, vec![4, 10, 20]),
    };
    println!("== Figure 7: scalability (total time vs number of transactions) ==\n");
    let rows = fig7_table2_scalability(&flight_counts, rows_per_flight, &ks, seed);
    let mut labels: Vec<String> = ks.iter().map(|k| format!("k={k}")).collect();
    labels.push("IS".to_string());
    for label in &labels {
        let pts: Vec<Vec<f64>> = rows
            .iter()
            .filter(|r| &r.label == label)
            .map(|r| vec![r.transactions as f64, r.seconds])
            .collect();
        println!(
            "{}",
            format_series(
                &format!("Fig7 series: {label}"),
                &["transactions", "seconds"],
                &pts
            )
        );
    }
    println!("== Table 2: average percentage of successful coordinations ==");
    println!("(paper: k=20: 45.6, k=30: 86.9, k=40: 99.9, IS: 20.2)\n");
    let table: Vec<Vec<String>> = labels
        .iter()
        .map(|label| {
            let pts: Vec<f64> = rows
                .iter()
                .filter(|r| &r.label == label)
                .map(|r| r.coordination_percent)
                .collect();
            let avg = pts.iter().sum::<f64>() / pts.len().max(1) as f64;
            vec![label.clone(), format!("{avg:.1}")]
        })
        .collect();
    println!(
        "{}",
        format_table(&["System", "Avg coordination %"], &table)
    );
    Json::obj([
        ("experiment", jstr("fig7_table2")),
        (
            "points",
            Json::arr(rows.iter().map(|r| {
                Json::obj([
                    ("label", jstr(r.label.clone())),
                    ("flights", num(r.flights as f64)),
                    ("transactions", num(r.transactions as f64)),
                    ("total_seconds", num(r.seconds)),
                    (
                        "throughput_tps",
                        num(if r.seconds > 0.0 {
                            r.transactions as f64 / r.seconds
                        } else {
                            0.0
                        }),
                    ),
                    ("coordination_percent", num(r.coordination_percent)),
                ])
            })),
        ),
    ])
}

fn fig8_fig9(scale: Scale, seed: u64) -> Json {
    let (flights, total_ops, read_pcts, ks): (FlightsConfig, usize, Vec<usize>, Vec<usize>) =
        match scale {
            // §5.3: 6000 ops over 40 flights x 150 seats, reads 0..90%.
            Scale::Full => (
                FlightsConfig::mixed_workload(),
                6000,
                (0..=9).map(|i| i * 10).collect(),
                vec![20, 30, 40],
            ),
            // 8 rows = 24 seats per flight: the 0%-reads point books 12
            // pairs per flight, which must fit (24 users ≤ 24 seats).
            Scale::Smoke => (
                FlightsConfig {
                    flights: 2,
                    rows_per_flight: 8,
                },
                48,
                vec![0, 30, 60, 90],
                vec![4, 10],
            ),
        };
    println!("== Figures 8 & 9: mixed workload ==");
    println!(
        "({} ops over {} flights x {} seats)\n",
        total_ops,
        flights.flights,
        flights.seats_per_flight()
    );
    let rows = fig8_fig9_mixed(flights, total_ops, &read_pcts, &ks, seed);
    for k in &ks {
        let label = format!("k={k}");
        let pts: Vec<Vec<f64>> = rows
            .iter()
            .filter(|r| r.label == label)
            .map(|r| {
                vec![
                    r.read_percent as f64,
                    r.update_seconds,
                    r.read_seconds,
                    r.coordination_percent,
                ]
            })
            .collect();
        println!(
            "{}",
            format_series(
                &format!("Fig8/Fig9 series: {label}"),
                &["read_pct", "update_s", "read_s", "coordination_pct"],
                &pts
            )
        );
    }
    Json::obj([
        ("experiment", jstr("fig8_fig9")),
        ("total_ops", num(total_ops as f64)),
        (
            "points",
            Json::arr(rows.iter().map(|r| {
                Json::obj([
                    ("label", jstr(r.label.clone())),
                    ("read_percent", num(r.read_percent as f64)),
                    ("read_seconds", num(r.read_seconds)),
                    ("update_seconds", num(r.update_seconds)),
                    ("coordination_percent", num(r.coordination_percent)),
                ])
            })),
        ),
    ])
}
