//! Regenerate every table and figure of the paper's evaluation (§5).
//!
//! ```text
//! reproduce [table1|fig5|fig6|fig7|table2|fig8|fig9|all] [--scale full|smoke]
//! ```
//!
//! `full` runs the paper's parameters (slow: Fig. 7 alone executes up to
//! 15 000 transactions per k); `smoke` is a quick shape-check. Output is
//! plain text: tables match the paper's tables, figures are printed as
//! tab-separated series.

use qdb_bench::experiments::*;
use qdb_bench::report::{downsample, format_series, format_table};
use qdb_workload::FlightsConfig;

#[derive(Clone, Copy, PartialEq)]
enum Scale {
    Full,
    Smoke,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut scale = Scale::Full;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("smoke") => Scale::Smoke,
                    _ => Scale::Full,
                };
            }
            other => which = other.to_string(),
        }
        i += 1;
    }
    let seed = 0xC1DE;
    let run_all = which == "all";
    if run_all || which == "table1" {
        table1(seed);
    }
    if run_all || which == "fig5" || which == "fig6" {
        fig5_fig6(scale, seed);
    }
    if run_all || which == "fig7" || which == "table2" {
        fig7_table2(scale, seed);
    }
    if run_all || which == "fig8" || which == "fig9" {
        fig8_fig9(scale, seed);
    }
    if run_all || which == "phase" {
        phase();
    }
}

fn phase() {
    println!("== §6 extra: satisfiability phase transition ==");
    println!("(adjacent-pair bookings on a 4-row flight; the boundary unsat");
    println!(" proof is where solver effort spikes)\n");
    let rows = phase_transition(4, 6);
    let table: Vec<Vec<String>> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            vec![
                (i + 1).to_string(),
                format!("{:.2}", r.ratio),
                r.nodes.to_string(),
                if r.committed { "commit" } else { "ABORT" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["attempt", "fill ratio", "solver nodes", "outcome"],
            &table
        )
    );
}

fn table1(seed: u64) {
    println!("== Table 1: arrival orders and maximum pending transactions ==");
    println!("(paper: Alternate 1; Random/In Order/Reverse Order ceil(N/2))\n");
    let rows = table1_max_pending(51, seed);
    let table: Vec<Vec<String>> = rows
        .into_iter()
        .map(|(label, bound, measured)| vec![label, bound.to_string(), measured.to_string()])
        .collect();
    println!(
        "{}",
        format_table(&["Order of Arrival", "Paper bound", "Measured"], &table)
    );
}

fn fig5_fig6(scale: Scale, seed: u64) {
    let (flights, pairs, k) = match scale {
        // §5.3: 1 flight, 34 rows (102 seats), 102 transactions, k = 61.
        Scale::Full => (FlightsConfig::order_of_arrival(), 51, 61),
        Scale::Smoke => (
            FlightsConfig {
                flights: 1,
                rows_per_flight: 6,
            },
            9,
            61,
        ),
    };
    println!("== Figure 5: cumulative execution time by arrival order ==");
    println!(
        "(1 flight x {} seats, {} transactions, k={k})\n",
        flights.seats_per_flight(),
        pairs * 2
    );
    let rows = fig5_fig6_order_of_arrival(flights, pairs, k, seed);
    for row in &rows {
        let pts: Vec<Vec<f64>> = downsample(&row.cumulative_micros, 17)
            .into_iter()
            .map(|(i, us)| vec![i as f64, us as f64 / 1000.0])
            .collect();
        println!(
            "{}",
            format_series(
                &format!("Fig5 series: {}", row.label),
                &["txn", "cumulative_ms"],
                &pts
            )
        );
    }
    println!("== Figure 6: percentage of coordination by arrival order ==\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.1}", r.coordination_percent),
                r.max_pending.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(&["Series", "Coordination %", "Max pending"], &table)
    );
}

fn fig7_table2(scale: Scale, seed: u64) {
    let (flight_counts, rows_per_flight, ks): (Vec<usize>, usize, Vec<usize>) = match scale {
        // §5.3: 10→100 flights of 150 seats, k in {20, 30, 40}.
        Scale::Full => ((1..=10).map(|i| i * 10).collect(), 50, vec![20, 30, 40]),
        Scale::Smoke => (vec![1, 2, 4], 10, vec![4, 10, 20]),
    };
    println!("== Figure 7: scalability (total time vs number of transactions) ==\n");
    let rows = fig7_table2_scalability(&flight_counts, rows_per_flight, &ks, seed);
    let mut labels: Vec<String> = ks.iter().map(|k| format!("k={k}")).collect();
    labels.push("IS".to_string());
    for label in &labels {
        let pts: Vec<Vec<f64>> = rows
            .iter()
            .filter(|r| &r.label == label)
            .map(|r| vec![r.transactions as f64, r.seconds])
            .collect();
        println!(
            "{}",
            format_series(
                &format!("Fig7 series: {label}"),
                &["transactions", "seconds"],
                &pts
            )
        );
    }
    println!("== Table 2: average percentage of successful coordinations ==");
    println!("(paper: k=20: 45.6, k=30: 86.9, k=40: 99.9, IS: 20.2)\n");
    let table: Vec<Vec<String>> = labels
        .iter()
        .map(|label| {
            let pts: Vec<f64> = rows
                .iter()
                .filter(|r| &r.label == label)
                .map(|r| r.coordination_percent)
                .collect();
            let avg = pts.iter().sum::<f64>() / pts.len().max(1) as f64;
            vec![label.clone(), format!("{avg:.1}")]
        })
        .collect();
    println!(
        "{}",
        format_table(&["System", "Avg coordination %"], &table)
    );
}

fn fig8_fig9(scale: Scale, seed: u64) {
    let (flights, total_ops, read_pcts, ks): (FlightsConfig, usize, Vec<usize>, Vec<usize>) =
        match scale {
            // §5.3: 6000 ops over 40 flights x 150 seats, reads 0..90%.
            Scale::Full => (
                FlightsConfig::mixed_workload(),
                6000,
                (0..=9).map(|i| i * 10).collect(),
                vec![20, 30, 40],
            ),
            Scale::Smoke => (
                FlightsConfig {
                    flights: 2,
                    rows_per_flight: 6,
                },
                48,
                vec![0, 30, 60, 90],
                vec![4, 10],
            ),
        };
    println!("== Figures 8 & 9: mixed workload ==");
    println!(
        "({} ops over {} flights x {} seats)\n",
        total_ops,
        flights.flights,
        flights.seats_per_flight()
    );
    let rows = fig8_fig9_mixed(flights, total_ops, &read_pcts, &ks, seed);
    for k in &ks {
        let label = format!("k={k}");
        let pts: Vec<Vec<f64>> = rows
            .iter()
            .filter(|r| r.label == label)
            .map(|r| {
                vec![
                    r.read_percent as f64,
                    r.update_seconds,
                    r.read_seconds,
                    r.coordination_percent,
                ]
            })
            .collect();
        println!(
            "{}",
            format_series(
                &format!("Fig8/Fig9 series: {label}"),
                &["read_pct", "update_s", "read_s", "coordination_pct"],
                &pts
            )
        );
    }
}
