//! Helper for the `connection_scale` experiment: hold `COUNT` idle TCP
//! connections to `ADDR` from a separate process.
//!
//! A 10k-connection flood costs two file descriptors per connection when
//! client and server share a process — past `RLIMIT_NOFILE` in locked-down
//! environments that refuse to raise the hard limit. Splitting the client
//! ends across a few of these helpers leaves the server process paying one
//! fd per connection, which is the bill an actual server would pay.
//!
//! Protocol: connect everything, print `ready`, then hold the sockets
//! until the parent closes our stdin (or exits, which closes it too).

use std::io::{BufRead, Write};
use std::net::TcpStream;

fn main() {
    let mut args = std::env::args().skip(1);
    let usage = "usage: connflood ADDR COUNT";
    let addr = args.next().expect(usage);
    let count: usize = args.next().and_then(|c| c.parse().ok()).expect(usage);
    qdb_server::raise_nofile_limit(count as u64 + 64).expect("raise RLIMIT_NOFILE");
    let mut held = Vec::with_capacity(count);
    for _ in 0..count {
        held.push(TcpStream::connect(addr.as_str()).expect("flood connect"));
    }
    println!("ready");
    std::io::stdout().flush().expect("signal readiness");
    let mut line = String::new();
    let _ = std::io::stdin().lock().read_line(&mut line);
    drop(held);
}
