//! The replication experiment: read throughput vs replica count, plus
//! replication lag, under the `read_mostly` shape.
//!
//! One primary `qdb-server` and a sweep of replica counts. For each
//! count, reader threads — one per serving endpoint, replicas when any
//! exist, the primary alone otherwise — hammer PEEK reads (every 8th a
//! `SELECT POSSIBLE`, the [`qdb_workload::RemoteConfig::read_mostly`]
//! ratio) while a writer books seats on the primary. The measured
//! quantities:
//!
//! - **read throughput** (reads/s across all readers) — the headline:
//!   replicas multiply read capacity because PEEK needs no coordination;
//! - **replication lag** — the largest `SHOW REPLICATION` lag observed
//!   during the write phase, and the settled lag once writes stop (must
//!   return to zero: lag is bounded by write volume, not unbounded);
//! - **replica reads** — reads served by replicas, jq-gated non-zero.
//!
//! The correctness half of the story — zero acknowledged-durable-write
//! loss across promotion — is sim-checked, not benched: the caller pairs
//! this outcome with a [`qdb_sim::run_replica_sweep`] record.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qdb_client::Connection;
use qdb_core::{HistSummary, Histogram, Response};
use qdb_server::{Server, ServerConfig, ServerHandle};
use qdb_workload::FlightsConfig;

/// Knobs for one [`replication_scale`] run.
#[derive(Debug, Clone)]
pub struct ReplScaleConfig {
    /// Replica counts to sweep (0 = primary serves its own reads).
    pub replica_counts: Vec<usize>,
    /// Flight database shape.
    pub flights: FlightsConfig,
    /// Bookings the writer executes per phase.
    pub bookings: usize,
    /// PEEK/POSSIBLE reads per reader thread per phase.
    pub reads_per_reader: usize,
    /// Executor threads per server.
    pub workers: usize,
}

impl ReplScaleConfig {
    /// Full scale: up to 4 replicas, enough reads for stable tails.
    pub fn full() -> Self {
        ReplScaleConfig {
            replica_counts: vec![0, 1, 2, 4],
            flights: FlightsConfig {
                flights: 8,
                rows_per_flight: 40,
            },
            bookings: 200,
            reads_per_reader: 2_000,
            workers: 2,
        }
    }

    /// CI smoke scale.
    pub fn smoke() -> Self {
        ReplScaleConfig {
            replica_counts: vec![0, 1, 2],
            flights: FlightsConfig {
                flights: 3,
                rows_per_flight: 10,
            },
            bookings: 30,
            reads_per_reader: 300,
            workers: 2,
        }
    }
}

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct ReplPoint {
    /// Replicas behind the primary.
    pub replicas: usize,
    /// Reader threads (== serving endpoints).
    pub readers: usize,
    /// Total reads completed in the measured window.
    pub reads: u64,
    /// Reads served by replica endpoints (0 when `replicas == 0`).
    pub replica_reads: u64,
    /// Aggregate read throughput over the measured window.
    pub read_throughput_rps: f64,
    /// Read latency distribution.
    pub read_latency: HistSummary,
    /// Bookings the writer committed during the window.
    pub bookings_committed: u64,
    /// Largest per-replica lag (bytes) sampled while writes were flowing.
    pub max_lag_bytes: u64,
    /// Largest lag once writes stopped and replicas settled (the
    /// boundedness witness; gated == 0).
    pub settled_lag_bytes: u64,
    /// Milliseconds replicas took to fully catch up after the bulk load.
    pub catch_up_ms: u64,
}

/// Outcome of the sweep.
#[derive(Debug, Clone)]
pub struct ReplScaleOutcome {
    /// One point per replica count, in sweep order.
    pub points: Vec<ReplPoint>,
}

fn exec(conn: &mut Connection, sql: &str) -> Response {
    match conn.execute(sql) {
        Ok(r) => r,
        Err(e) => panic!("{sql:?}: {e}"),
    }
}

/// Seed the primary: schema plus every seat of every flight.
fn load_primary(addr: std::net::SocketAddr, flights: &FlightsConfig) {
    let mut conn = Connection::connect(addr).expect("seed connection");
    exec(&mut conn, "CREATE TABLE Available (flight INT, seat TEXT)");
    exec(
        &mut conn,
        "CREATE TABLE Bookings (name TEXT, flight INT, seat TEXT)",
    );
    for f in 1..=flights.flights {
        for s in 0..flights.seats_per_flight() {
            exec(
                &mut conn,
                &format!("INSERT INTO Available VALUES ({f}, 's{s:03}')"),
            );
        }
    }
    exec(&mut conn, "CHECKPOINT");
}

/// Poll `SHOW REPLICATION` on the primary until every replica's acked
/// offset reaches the primary's WAL length. Returns the wait in ms.
fn await_caught_up(primary: &ServerHandle, replicas: usize) -> u64 {
    if replicas == 0 {
        return 0;
    }
    let started = Instant::now();
    let mut conn = Connection::connect(primary.addr()).expect("lag probe");
    let deadline = started + Duration::from_secs(30);
    loop {
        if let Response::Replication(report) = exec(&mut conn, "SHOW REPLICATION") {
            let seen = report.replicas.len();
            let caught = report
                .replicas
                .iter()
                .filter(|r| r.acked_offset == report.wal_len)
                .count();
            if seen >= replicas && caught == seen && report.wal_len > 0 {
                return started.elapsed().as_millis() as u64;
            }
        }
        assert!(
            Instant::now() < deadline,
            "replicas never caught up with the bulk load"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Max lag over all replicas in one `SHOW REPLICATION` answer.
fn max_lag(conn: &mut Connection) -> u64 {
    match exec(conn, "SHOW REPLICATION") {
        Response::Replication(report) => report
            .replicas
            .iter()
            .map(|r| r.lag_bytes)
            .max()
            .unwrap_or(0),
        other => panic!("SHOW REPLICATION answered {other:?}"),
    }
}

/// Measure one replica count.
fn measure(cfg: &ReplScaleConfig, replicas: usize) -> ReplPoint {
    let primary = Server::spawn(&ServerConfig {
        workers: cfg.workers,
        ..ServerConfig::default()
    })
    .expect("primary");
    load_primary(primary.addr(), &cfg.flights);

    let replica_handles: Vec<ServerHandle> = (0..replicas)
        .map(|i| {
            Server::spawn(&ServerConfig {
                workers: cfg.workers,
                replicate_from: Some(primary.addr().to_string()),
                replica_id: format!("replica-{}", i + 1),
                repl_poll_interval: Duration::from_millis(1),
                ..ServerConfig::default()
            })
            .expect("replica")
        })
        .collect();
    let catch_up_ms = await_caught_up(&primary, replicas);

    // Reader endpoints: the replicas when any exist, else the primary.
    let endpoints: Vec<std::net::SocketAddr> = if replicas == 0 {
        vec![primary.addr()]
    } else {
        replica_handles.iter().map(|h| h.addr()).collect()
    };

    let hist = Arc::new(Histogram::new());
    let replica_read_count = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(std::sync::Barrier::new(endpoints.len() + 2));
    let flights = cfg.flights.flights;
    let reads = cfg.reads_per_reader;
    let readers: Vec<_> = endpoints
        .iter()
        .enumerate()
        .map(|(ei, &addr)| {
            let hist = Arc::clone(&hist);
            let on_replica = replicas > 0;
            let replica_read_count = Arc::clone(&replica_read_count);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut conn = Connection::connect(addr).expect("reader connection");
                // Warm the connection and the server's parse cache.
                exec(&mut conn, "SELECT PEEK * FROM Available(1, @s)");
                barrier.wait();
                for i in 0..reads {
                    let flight = (ei + i) % flights + 1;
                    // The read_mostly shape: every 8th read enumerates
                    // possible worlds, the rest answer from one world.
                    let sql = if i % 8 == 7 {
                        format!("SELECT POSSIBLE @s FROM Available({flight}, @s)")
                    } else {
                        format!("SELECT PEEK * FROM Available({flight}, @s)")
                    };
                    let t = Instant::now();
                    exec(&mut conn, &sql);
                    hist.record_duration(t.elapsed());
                    if on_replica {
                        replica_read_count.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();

    // The writer: bookings against the primary for the whole window.
    let committed = Arc::new(AtomicU64::new(0));
    let writer = {
        let addr = primary.addr();
        let committed = Arc::clone(&committed);
        let barrier = Arc::clone(&barrier);
        let bookings = cfg.bookings;
        std::thread::spawn(move || {
            let mut conn = Connection::connect(addr).expect("writer connection");
            barrier.wait();
            for i in 0..bookings {
                let flight = i % flights + 1;
                let sql = format!(
                    "SELECT @s FROM Available({flight}, @s) CHOOSE 1 FOLLOWED BY \
                     (DELETE ({flight}, @s) FROM Available; \
                     INSERT ('b{i}', {flight}, @s) INTO Bookings)"
                );
                if matches!(conn.execute(&sql), Ok(Response::Committed(_))) {
                    committed.fetch_add(1, Ordering::Relaxed);
                }
            }
        })
    };

    // Lag sampler: watch `SHOW REPLICATION` on the primary while the
    // readers and writer run.
    let mut lag_probe = Connection::connect(primary.addr()).expect("lag probe");
    barrier.wait();
    let started = Instant::now();
    let mut max_lag_bytes = 0u64;
    let mut readers = readers;
    loop {
        if replicas > 0 {
            max_lag_bytes = max_lag_bytes.max(max_lag(&mut lag_probe));
        }
        if readers.iter().all(|t| t.is_finished()) {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    for t in readers.drain(..) {
        t.join().expect("reader thread");
    }
    let elapsed = started.elapsed().as_secs_f64();
    writer.join().expect("writer thread");

    // Boundedness: once writes stop, lag must drain to zero.
    let settled_lag_bytes = if replicas == 0 {
        0
    } else {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let lag = max_lag(&mut lag_probe);
            if lag == 0 || Instant::now() >= deadline {
                break lag;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    };

    let total_reads = (endpoints.len() * cfg.reads_per_reader) as u64;
    let point = ReplPoint {
        replicas,
        readers: endpoints.len(),
        reads: total_reads,
        replica_reads: replica_read_count.load(Ordering::Relaxed),
        read_throughput_rps: if elapsed > 0.0 {
            total_reads as f64 / elapsed
        } else {
            0.0
        },
        read_latency: hist.summary(),
        bookings_committed: committed.load(Ordering::Relaxed),
        max_lag_bytes,
        settled_lag_bytes,
        catch_up_ms,
    };
    for h in replica_handles {
        h.shutdown();
    }
    primary.shutdown();
    point
}

/// Run the sweep.
pub fn replication_scale(cfg: &ReplScaleConfig) -> ReplScaleOutcome {
    ReplScaleOutcome {
        points: cfg
            .replica_counts
            .iter()
            .map(|&n| measure(cfg, n))
            .collect(),
    }
}
