//! Provenance stamping for `BENCH_results.json`: the git commit and an ISO
//! 8601 UTC timestamp, so the performance trajectory across PRs can be
//! reconstructed from the artifacts alone.

use std::time::{SystemTime, UNIX_EPOCH};

/// The current `git rev-parse HEAD`, or `"unknown"` outside a work tree
/// (or when `git` is unavailable).
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Now, as `YYYY-MM-DDThh:mm:ssZ`.
pub fn iso8601_now() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    iso8601_from_unix(secs)
}

/// Format a non-negative unix timestamp as `YYYY-MM-DDThh:mm:ssZ`.
/// Civil-date conversion after Howard Hinnant's `days_from_civil` inverse.
pub fn iso8601_from_unix(secs: u64) -> String {
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (h, min, s) = (rem / 3600, rem % 3600 / 60, rem % 60);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}T{h:02}:{min:02}:{s:02}Z")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_timestamps_format_correctly() {
        assert_eq!(iso8601_from_unix(0), "1970-01-01T00:00:00Z");
        assert_eq!(iso8601_from_unix(86_399), "1970-01-01T23:59:59Z");
        assert_eq!(iso8601_from_unix(86_400), "1970-01-02T00:00:00Z");
        // 2000-02-29 (leap day) 12:34:56 UTC.
        assert_eq!(iso8601_from_unix(951_827_696), "2000-02-29T12:34:56Z");
        // 2026-01-01 00:00:00 UTC.
        assert_eq!(iso8601_from_unix(1_767_225_600), "2026-01-01T00:00:00Z");
    }

    #[test]
    fn now_is_plausible_and_commit_is_nonempty() {
        let now = iso8601_now();
        assert_eq!(now.len(), 20);
        assert!(now.ends_with('Z'));
        assert!(&now[..4] >= "2024");
        assert!(!git_commit().is_empty());
    }
}
