//! The `connection_scale` experiment: can the serving layer hold 10k+
//! mostly-idle connections while a hot subset keeps its latency?
//!
//! This is the acceptance run for the epoll reactor (the C10K shape): a
//! thread-per-connection server pays a stack per socket and falls over
//! three orders of magnitude earlier; a readiness loop pays a few hundred
//! bytes of user-space state per idle socket and nothing per epoll tick.
//! The experiment measures exactly that claim:
//!
//! 1. **baseline** — `hot_conns` pipelined client threads round-trip
//!    against an otherwise-empty server; per-request latency recorded.
//! 2. **flood** — `idle_conns` raw TCP connections are opened and held,
//!    sending nothing. Per-idle-connection user-space bytes are read off
//!    the server's own accounting ([`qdb_server::ServerHandle::conn_memory`]).
//! 3. **scaled** — the same hot workload reruns with the flood still
//!    parked. The p99 ratio scaled/baseline is the headline number: the
//!    acceptance gate is ≤ 2×.

use std::io::BufRead;
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qdb_client::Connection;
use qdb_core::{HistSummary, Histogram};
use qdb_server::{raise_nofile_limit, Server, ServerConfig, ServerHandle};

/// Knobs for one [`connection_scale`] run.
#[derive(Debug, Clone)]
pub struct ConnScaleConfig {
    /// Idle connections to park (the flood).
    pub idle_conns: usize,
    /// Concurrent hot client threads.
    pub hot_conns: usize,
    /// Round trips per hot thread per measured phase.
    pub requests_per_conn: usize,
    /// Unrecorded round trips per hot thread before each measured phase
    /// (connection setup, allocator and branch-predictor warmup would
    /// otherwise land in the baseline's tail and distort the ratio).
    pub warmup_per_conn: usize,
    /// Executor threads for the server under test.
    pub workers: usize,
}

impl ConnScaleConfig {
    /// The paper-scale run: 10k idle connections under an 8-thread hot set.
    pub fn full() -> Self {
        ConnScaleConfig {
            idle_conns: 10_000,
            hot_conns: 8,
            requests_per_conn: 1000,
            warmup_per_conn: 100,
            workers: 4,
        }
    }

    /// A quick shape-check (CI smoke): several hundred idle connections.
    pub fn smoke() -> Self {
        ConnScaleConfig {
            idle_conns: 500,
            hot_conns: 4,
            requests_per_conn: 200,
            warmup_per_conn: 25,
            workers: 2,
        }
    }
}

/// One measured phase (baseline or scaled) of the hot workload.
#[derive(Debug, Clone)]
pub struct HotPhase {
    /// `"baseline"` (empty server) or `"scaled"` (flood parked).
    pub label: &'static str,
    /// Idle connections parked during the phase.
    pub idle_conns: usize,
    /// Total round trips completed.
    pub requests: u64,
    /// Round trips per second across all hot threads.
    pub throughput_rps: f64,
    /// Per-request latency percentiles.
    pub latency: HistSummary,
}

/// The full experiment outcome.
#[derive(Debug, Clone)]
pub struct ConnScaleOutcome {
    /// Soft `RLIMIT_NOFILE` after raising it for the flood.
    pub nofile_limit: u64,
    /// Connections the flood actually parked (== config unless the fd
    /// budget or backlog refused some — see `refused`).
    pub idle_held: usize,
    /// Peak concurrently-open connections the server observed.
    pub conns_peak: u64,
    /// Connections refused at the admission limit (must be 0: the limit
    /// is provisioned above the flood).
    pub conns_refused: u64,
    /// Connections reaped by the idle timer during the run (must be 0:
    /// the timeout is provisioned well past the run length).
    pub conns_idle_closed: u64,
    /// User-space bytes of per-connection state per parked idle
    /// connection, measured as the delta across the flood divided by its
    /// size.
    pub bytes_per_idle_conn: f64,
    /// p99 ratio scaled/baseline — the headline of the experiment.
    pub p99_ratio: f64,
    /// The two measured phases, baseline first.
    pub phases: Vec<HotPhase>,
}

/// Drive one hot phase: `hot` threads x `requests` SHOW PENDING round
/// trips, each latency recorded in a shared lock-free histogram.
fn hot_phase(
    label: &'static str,
    server: &ServerHandle,
    idle_conns: usize,
    hot: usize,
    requests: usize,
    warmup: usize,
) -> HotPhase {
    let hist = Arc::new(Histogram::new());
    let barrier = Arc::new(std::sync::Barrier::new(hot + 1));
    let threads: Vec<_> = (0..hot)
        .map(|_| {
            let addr = server.addr();
            let hist = Arc::clone(&hist);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut conn = Connection::connect(addr).expect("hot connection");
                for _ in 0..warmup {
                    conn.execute("SHOW PENDING").expect("warmup round trip");
                }
                barrier.wait(); // measured window starts with all threads warm
                for _ in 0..requests {
                    let t = Instant::now();
                    conn.execute("SHOW PENDING").expect("hot round trip");
                    hist.record_duration(t.elapsed());
                }
            })
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    for t in threads {
        t.join().expect("hot thread");
    }
    let elapsed = started.elapsed().as_secs_f64();
    let total = (hot * requests) as u64;
    HotPhase {
        label,
        idle_conns,
        requests: total,
        throughput_rps: if elapsed > 0.0 {
            total as f64 / elapsed
        } else {
            0.0
        },
        latency: hist.summary(),
    }
}

/// The parked flood: client socket ends held in-process when the fd
/// budget allows, otherwise split across `connflood` helper processes so
/// the server process pays one fd per connection (its real bill) instead
/// of two.
enum Flood {
    InProcess(Vec<TcpStream>),
    Children(Vec<Child>),
}

impl Flood {
    fn held(&self) -> usize {
        match self {
            Flood::InProcess(streams) => streams.len(),
            Flood::Children(children) => children.len() * FLOOD_PER_CHILD,
        }
    }

    /// Release every parked connection (children exit when their stdin
    /// closes) and reap the helpers.
    fn release(self) {
        match self {
            Flood::InProcess(streams) => drop(streams),
            Flood::Children(mut children) => {
                for child in &mut children {
                    drop(child.stdin.take());
                }
                for mut child in children {
                    let _ = child.wait();
                }
            }
        }
    }
}

/// Connections per `connflood` helper — small enough that a helper fits
/// a conservative fd budget, large enough that 10k idle needs only 5.
const FLOOD_PER_CHILD: usize = 2000;

fn spawn_flood(addr: std::net::SocketAddr, idle_conns: usize, fd_budget: u64) -> Flood {
    if 2 * (idle_conns as u64) + 512 <= fd_budget || idle_conns < 2 * FLOOD_PER_CHILD {
        let mut streams = Vec::with_capacity(idle_conns);
        for _ in 0..idle_conns {
            streams.push(TcpStream::connect(addr).expect("flood connect"));
        }
        return Flood::InProcess(streams);
    }
    assert!(
        idle_conns.is_multiple_of(FLOOD_PER_CHILD),
        "idle_conns {idle_conns} must be a multiple of {FLOOD_PER_CHILD} \
         when the flood is split across helper processes"
    );
    let helper = std::env::current_exe()
        .expect("current exe")
        .with_file_name("connflood");
    assert!(
        helper.exists(),
        "flood helper {} not built; run `cargo build --release -p qdb-bench` first",
        helper.display()
    );
    let mut children = Vec::new();
    for _ in 0..idle_conns / FLOOD_PER_CHILD {
        let mut child = Command::new(&helper)
            .arg(addr.to_string())
            .arg(FLOOD_PER_CHILD.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn connflood helper");
        let mut ready = String::new();
        std::io::BufReader::new(child.stdout.take().expect("helper stdout"))
            .read_line(&mut ready)
            .expect("helper readiness");
        assert_eq!(ready.trim(), "ready", "helper failed to park its flood");
        children.push(child);
    }
    Flood::Children(children)
}

/// Run the experiment. Panics on setup failures (bind, fd limit too low
/// to even try); measurement-level expectations (refusals, reaping) are
/// reported in the outcome for the caller to gate on.
pub fn connection_scale(cfg: &ConnScaleConfig) -> ConnScaleOutcome {
    // The server process pays one fd per parked connection plus both ends
    // of the hot set and slack for listener, epoll, waker pair and the
    // binary's own files. (The flood's client ends move to helper
    // processes when two-per-connection would not fit — see [`Flood`].)
    let want_fds = (cfg.idle_conns + 2 * cfg.hot_conns) as u64 + 512;
    let nofile_limit = raise_nofile_limit(2 * (cfg.idle_conns + cfg.hot_conns) as u64 + 512)
        .expect("raise RLIMIT_NOFILE");
    assert!(
        nofile_limit >= want_fds,
        "fd budget too small for {} idle connections: soft limit {} < {}",
        cfg.idle_conns,
        nofile_limit,
        want_fds
    );

    let server = Server::spawn(&ServerConfig {
        workers: cfg.workers,
        // Provisioned above the flood so zero refusals is a pass/fail
        // signal, not a tautology.
        max_connections: cfg.idle_conns + cfg.hot_conns + 64,
        // Long enough that nothing is reaped mid-run, present so the
        // timer wheel's bookkeeping cost is included in what we measure.
        idle_timeout: Some(Duration::from_secs(600)),
        ..ServerConfig::default()
    })
    .expect("connection_scale server");

    let baseline = hot_phase(
        "baseline",
        &server,
        0,
        cfg.hot_conns,
        cfg.requests_per_conn,
        cfg.warmup_per_conn,
    );

    // Park the flood. Memory is sampled around it so the per-connection
    // figure is a delta, not polluted by the baseline's session state.
    let mem_before = server.conn_memory();
    let flood = spawn_flood(server.addr(), cfg.idle_conns, nofile_limit);
    // The reactor accepts asynchronously; wait for the whole flood to be
    // registered before sampling state or starting the measured phase.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = server.stats();
        if stats.conns_open >= cfg.idle_conns as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "flood not fully accepted: {stats}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let mem_after = server.conn_memory();
    let bytes_per_idle_conn = if cfg.idle_conns > 0 {
        mem_after.bytes.saturating_sub(mem_before.bytes) as f64 / cfg.idle_conns as f64
    } else {
        0.0
    };

    let scaled = hot_phase(
        "scaled",
        &server,
        cfg.idle_conns,
        cfg.hot_conns,
        cfg.requests_per_conn,
        cfg.warmup_per_conn,
    );

    let stats = server.stats();
    let p99_ratio = if baseline.latency.p99_ns > 0 {
        scaled.latency.p99_ns as f64 / baseline.latency.p99_ns as f64
    } else {
        0.0
    };
    let outcome = ConnScaleOutcome {
        nofile_limit,
        idle_held: flood.held(),
        conns_peak: stats.conns_peak,
        conns_refused: stats.conns_refused,
        conns_idle_closed: stats.conns_idle_closed,
        bytes_per_idle_conn,
        p99_ratio,
        phases: vec![baseline, scaled],
    };
    flood.release();
    server.shutdown();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_reports_sane_shape() {
        let outcome = connection_scale(&ConnScaleConfig {
            idle_conns: 32,
            hot_conns: 2,
            requests_per_conn: 10,
            warmup_per_conn: 2,
            workers: 2,
        });
        assert_eq!(outcome.idle_held, 32);
        assert_eq!(outcome.conns_refused, 0);
        assert_eq!(outcome.conns_idle_closed, 0);
        assert!(outcome.conns_peak >= 32 + 2);
        assert!(outcome.bytes_per_idle_conn > 0.0);
        assert_eq!(outcome.phases.len(), 2);
        for phase in &outcome.phases {
            assert_eq!(phase.requests, 20);
            assert!(phase.latency.p50_ns > 0);
            assert!(phase.latency.p999_ns >= phase.latency.p99_ns);
            assert!(phase.throughput_rps > 0.0);
        }
    }
}
