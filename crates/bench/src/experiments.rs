//! The §5 experiments, parameterized so the `reproduce` binary can run
//! them at paper scale and the tests/benches at smoke scale.

use qdb_workload::remote::{run_remote, ContentionProfile, RemoteConfig};
use qdb_workload::{run_is, run_quantum, ArrivalOrder, FlightsConfig, RunConfig, RunResult};

/// Nanoseconds → microseconds, for `qdb_obs` histogram summaries.
fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// The four arrival orders of Table 1, with the paper's Random seed.
pub fn paper_orders(seed: u64) -> Vec<ArrivalOrder> {
    vec![
        ArrivalOrder::Alternate,
        ArrivalOrder::Random { seed },
        ArrivalOrder::InOrder,
        ArrivalOrder::ReverseOrder,
    ]
}

/// Table 1: analytic bound vs measured maximum pending transactions.
pub fn table1_max_pending(n_pairs: usize, seed: u64) -> Vec<(String, usize, usize)> {
    let cfg = FlightsConfig {
        flights: 1,
        rows_per_flight: n_pairs, // capacity is irrelevant here
    };
    let pairs = qdb_workload::make_pairs(&cfg, n_pairs);
    paper_orders(seed)
        .into_iter()
        .map(|order| {
            let reqs = qdb_workload::arrange(&pairs, order);
            let bound = order.max_pending_bound(reqs.len());
            let measured = qdb_workload::orders::measured_max_pending(&reqs);
            (order.label().to_string(), bound, measured)
        })
        .collect()
}

/// One series of Figure 5 / one bar of Figure 6.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Legend label.
    pub label: String,
    /// Cumulative time after each transaction, in microseconds.
    pub cumulative_micros: Vec<u64>,
    /// Coordination percentage achieved (Figure 6).
    pub coordination_percent: f64,
    /// Engine-observed maximum pending transactions.
    pub max_pending: u64,
}

/// Figures 5 & 6: cumulative execution time and coordination percentage
/// for the four arrival orders plus the IS baseline on Random order.
///
/// Paper scale: 1 flight × 34 rows (102 seats), 102 transactions
/// (51 pairs), k = 61.
pub fn fig5_fig6_order_of_arrival(
    flights: FlightsConfig,
    pairs_per_flight: usize,
    k: usize,
    seed: u64,
) -> Vec<Fig5Row> {
    let mut rows = Vec::new();
    for order in paper_orders(seed) {
        let cfg = RunConfig::resource_only(flights, pairs_per_flight, order, k);
        let res = run_quantum(&cfg);
        rows.push(Fig5Row {
            label: order.label().to_string(),
            cumulative_micros: res.cumulative_micros.clone(),
            coordination_percent: res.coordination_percent(),
            max_pending: res.max_pending,
        });
    }
    // IS on Random order ("the performance of the system on the
    // intelligent social workload does not depend on arrival order").
    let cfg = RunConfig::resource_only(flights, pairs_per_flight, ArrivalOrder::Random { seed }, k);
    let res = run_is(&cfg);
    rows.push(Fig5Row {
        label: "Random IS".to_string(),
        cumulative_micros: res.cumulative_micros.clone(),
        coordination_percent: res.coordination_percent(),
        max_pending: 0,
    });
    rows
}

/// One point of Figure 7 / Table 2.
#[derive(Debug, Clone)]
pub struct ScalabilityRow {
    /// Legend label ("k=40", "IS").
    pub label: String,
    /// Number of flights.
    pub flights: usize,
    /// Number of transactions executed.
    pub transactions: usize,
    /// Total wall-clock seconds.
    pub seconds: f64,
    /// Coordination percentage.
    pub coordination_percent: f64,
}

/// Figure 7 & Table 2: total time and coordination as the number of
/// flights grows, for k ∈ `ks` and the IS baseline.
///
/// Paper scale: flights 10→100 step 10, each 50 rows (150 seats), as many
/// transactions as seats (75 pairs per flight), Random order.
pub fn fig7_table2_scalability(
    flight_counts: &[usize],
    rows_per_flight: usize,
    ks: &[usize],
    seed: u64,
) -> Vec<ScalabilityRow> {
    let pairs_per_flight = rows_per_flight * 3 / 2; // fill every seat
    let mut out = Vec::new();
    for &n in flight_counts {
        let flights = FlightsConfig {
            flights: n,
            rows_per_flight,
        };
        for &k in ks {
            let cfg = RunConfig::resource_only(
                flights,
                pairs_per_flight,
                ArrivalOrder::Random { seed },
                k,
            );
            let res = run_quantum(&cfg);
            out.push(ScalabilityRow {
                label: format!("k={k}"),
                flights: n,
                transactions: cfg.n_transactions(),
                seconds: res.total.as_secs_f64(),
                coordination_percent: res.coordination_percent(),
            });
        }
        let cfg =
            RunConfig::resource_only(flights, pairs_per_flight, ArrivalOrder::Random { seed }, 61);
        let res = run_is(&cfg);
        out.push(ScalabilityRow {
            label: "IS".to_string(),
            flights: n,
            transactions: cfg.n_transactions(),
            seconds: res.total.as_secs_f64(),
            coordination_percent: res.coordination_percent(),
        });
    }
    out
}

/// One point of Figures 8 & 9.
#[derive(Debug, Clone)]
pub struct MixedRow {
    /// Legend label ("k=40").
    pub label: String,
    /// Read percentage of the workload.
    pub read_percent: usize,
    /// Seconds spent on reads (Fig. 8 "Reads").
    pub read_seconds: f64,
    /// Seconds spent on resource transactions (Fig. 8 "Updates").
    pub update_seconds: f64,
    /// Coordination percentage (Fig. 9).
    pub coordination_percent: f64,
}

/// Figures 8 & 9: the mixed workload. `total_ops` operations; read share
/// sweeps `read_percents`; remaining ops are entangled bookings spread
/// over the flights.
///
/// Paper scale: 6000 ops, 40 flights × 50 rows, reads 0%→90% step 10,
/// k ∈ {20, 30, 40}.
pub fn fig8_fig9_mixed(
    flights: FlightsConfig,
    total_ops: usize,
    read_percents: &[usize],
    ks: &[usize],
    seed: u64,
) -> Vec<MixedRow> {
    let mut out = Vec::new();
    for &pct in read_percents {
        let n_reads = total_ops * pct / 100;
        let n_books = total_ops - n_reads;
        // Pairs are spread evenly; round down to whole pairs per flight.
        let pairs_per_flight = (n_books / 2) / flights.flights;
        for &k in ks {
            let cfg = RunConfig {
                flights,
                pairs_per_flight,
                order: ArrivalOrder::Random { seed },
                n_reads,
                scan_percent: 0,
                peek_percent: 0,
                possible_percent: 0,
                seed,
                engine: qdb_core::QuantumDbConfig::with_k(k),
            };
            let res: RunResult = run_quantum(&cfg);
            out.push(MixedRow {
                label: format!("k={k}"),
                read_percent: pct,
                read_seconds: res.read_time.as_secs_f64(),
                update_seconds: res.update_time.as_secs_f64(),
                coordination_percent: res.coordination_percent(),
            });
        }
    }
    out
}

/// One point of the partition-scaling experiment.
#[derive(Debug, Clone)]
pub struct PartitionScalingRow {
    /// Engine variant: `"sharded"` (partition-parallel) or
    /// `"coarse-lock"` (single-big-lock ablation).
    pub label: String,
    /// Server worker threads (== client connections).
    pub workers: usize,
    /// Booking operations executed.
    pub ops: usize,
    /// Wall-clock seconds for the booking phase.
    pub seconds: f64,
    /// Bookings per second.
    pub throughput: f64,
    /// High-water mark of simultaneously running solver sections — above
    /// 1 proves partition-parallel overlap; the coarse-lock ablation can
    /// never exceed 1.
    pub solve_peak: u64,
    /// Client-observed booking round-trip latency: median, µs.
    pub booking_p50_us: f64,
    /// 99th percentile booking latency, µs.
    pub booking_p99_us: f64,
    /// 99.9th percentile booking latency, µs.
    pub booking_p999_us: f64,
}

/// Throughput of the networked booking workload on a **disjoint-partition
/// key range** as the server worker count grows, for the sharded engine
/// and the `coarse_lock` single-big-lock ablation.
///
/// The workload is fixed (`flights_per_worker × max(workers)` flights), so
/// points are comparable across the sweep: each connection drives its own
/// flight range ([`ContentionProfile::DisjointFlights`]), meaning no two
/// connections ever share a §4 partition — the parallelism the sharded
/// engine is built to exploit. On a multi-core host the sharded series
/// scales with workers while the coarse-lock series stays flat; on a
/// single core both are flat (record `cpu_cores` next to the numbers).
pub fn partition_scaling(
    flights_per_worker: usize,
    rows_per_flight: usize,
    pairs_per_flight: usize,
    workers_sweep: &[usize],
    seed: u64,
) -> Vec<PartitionScalingRow> {
    let max_workers = workers_sweep.iter().copied().max().unwrap_or(1);
    let flights = FlightsConfig {
        flights: flights_per_worker * max_workers,
        rows_per_flight,
    };
    let mut out = Vec::new();
    for &w in workers_sweep {
        for coarse in [false, true] {
            let mut cfg = RemoteConfig::new(flights, pairs_per_flight, w);
            cfg.workers = w;
            cfg.seed = seed;
            cfg.contention = ContentionProfile::DisjointFlights;
            cfg.engine.coarse_lock = coarse;
            let res = run_remote(&cfg);
            assert_eq!(res.aborted, 0, "disjoint workload must not abort");
            out.push(PartitionScalingRow {
                label: if coarse { "coarse-lock" } else { "sharded" }.to_string(),
                workers: w,
                ops: res.ops,
                seconds: res.total.as_secs_f64(),
                throughput: res.throughput,
                solve_peak: res.solve_concurrency_peak,
                booking_p50_us: us(res.booking_latency.p50_ns),
                booking_p99_us: us(res.booking_latency.p99_ns),
                booking_p999_us: us(res.booking_latency.p999_ns),
            });
        }
    }
    out
}

/// One point of the `admission_depth` experiment.
#[derive(Debug, Clone)]
pub struct AdmissionDepthRow {
    /// Cache mode: `"cached-extend"` (solution cache on — every admission
    /// extends the partition's cached solution) or `"full-resolve"`
    /// (ablation: the whole pending sequence re-solves on every submit).
    pub mode: String,
    /// Pending-queue depth the partition is filled to.
    pub depth: usize,
    /// Median admission latency across the fill, µs — from a log-bucketed
    /// `qdb_obs` histogram, so quantized to a bucket upper bound.
    pub p50_us: f64,
    /// 99th-percentile admission latency, µs.
    pub p99_us: f64,
    /// 99.9th-percentile admission latency, µs — the submits that executed
    /// at queue depth ≈ `depth` dominate this tail.
    pub p999_us: f64,
    /// Slowest single admission, µs.
    pub max_us: f64,
    /// Mean admission latency over the whole fill, in microseconds.
    pub mean_latency_us: f64,
    /// Wall-clock seconds for the whole fill.
    pub total_seconds: f64,
    /// Solver search nodes expended.
    pub solver_nodes: u64,
    /// Solver nodes per second.
    pub nodes_per_sec: f64,
    /// Candidate rows pulled through streaming cursors.
    pub candidates_streamed: u64,
    /// Candidate vectors materialized (must stay 0: the fast path
    /// streams).
    pub candidate_vecs: u64,
    /// Hot-path lookups answered by a secondary index.
    pub index_lookups: u64,
    /// Hot-path lookups that fell back to a scan.
    pub scan_lookups: u64,
    /// Admissions that extended the cached solution.
    pub cache_extensions: u64,
    /// Admissions that needed a full re-solve.
    pub cache_full_resolves: u64,
    /// Indexes the access-pattern tracker promoted during the fill.
    pub indexes_auto_created: u64,
}

/// Admission latency vs pending-queue depth — the solver hot path the §5
/// experiments pay on every statement, isolated from lock effects.
///
/// One flight's partition is filled to `depth` pending bookings (all
/// bookings bind the flight column, so they share one §4 partition and the
/// composed body grows with the queue); `flights × seats_per_flight` rows
/// give the tracker a reason to promote the flight column. Swept for the
/// cached-extend engine and the full-resolve ablation — the pair the §4
/// "Solution Cache" discussion motivates.
///
/// `seats_per_flight` must be ≥ the largest depth (every booking must
/// admit).
pub fn admission_depth(
    depths: &[usize],
    flights: usize,
    seats_per_flight: usize,
) -> Vec<AdmissionDepthRow> {
    let mut out = Vec::new();
    for &cached in &[true, false] {
        for &depth in depths {
            let (qdb, hist, total) = admission_fill(depth, flights, seats_per_flight, cached, true);
            let lat = hist.summary();
            let stats = *qdb.solver_stats();
            let m = qdb.metrics();
            out.push(AdmissionDepthRow {
                mode: if cached {
                    "cached-extend"
                } else {
                    "full-resolve"
                }
                .to_string(),
                depth,
                p50_us: us(lat.p50_ns),
                p99_us: us(lat.p99_ns),
                p999_us: us(lat.p999_ns),
                max_us: us(lat.max_ns),
                mean_latency_us: total.as_secs_f64() * 1e6 / depth.max(1) as f64,
                total_seconds: total.as_secs_f64(),
                solver_nodes: stats.nodes,
                nodes_per_sec: stats.nodes as f64 / total.as_secs_f64().max(f64::EPSILON),
                candidates_streamed: stats.candidates_streamed,
                candidate_vecs: stats.candidate_vecs,
                index_lookups: stats.index_lookups,
                scan_lookups: stats.scan_lookups,
                cache_extensions: m.cache_extensions,
                cache_full_resolves: m.cache_full_resolves,
                indexes_auto_created: m.indexes_auto_created,
            });
        }
    }
    out
}

/// Build a fresh engine, populate `flights × seats_per_flight` seats, and
/// fill one flight's partition with `depth` pending bookings, recording
/// each submit's latency in a `qdb_obs` histogram. `obs_enabled` toggles
/// the engine's internal recording (the A/B knob for [`obs_overhead`]);
/// the returned histogram is the bench's own, outside the toggle.
fn admission_fill(
    depth: usize,
    flights: usize,
    seats_per_flight: usize,
    cached: bool,
    obs_enabled: bool,
) -> (
    qdb_core::QuantumDb,
    qdb_core::Histogram,
    std::time::Duration,
) {
    use qdb_core::{Histogram, QuantumDb, QuantumDbConfig};
    use qdb_logic::parse_transaction;
    use qdb_storage::{Schema, Tuple, Value, ValueType};
    use std::time::Instant;

    assert!(
        depth <= seats_per_flight,
        "depth {depth} exceeds flight capacity {seats_per_flight}"
    );
    let mut cfg = QuantumDbConfig::with_k(depth + 1);
    cfg.use_solution_cache = cached;
    let mut qdb = QuantumDb::new(cfg).expect("engine");
    qdb.obs().set_enabled(obs_enabled);
    qdb.create_table(
        Schema::new(
            "Available",
            vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
        )
        .with_key(vec![0, 1])
        .expect("key"),
    )
    .expect("schema");
    qdb.create_table(Schema::new(
        "Bookings",
        vec![
            ("name", ValueType::Str),
            ("flight", ValueType::Int),
            ("seat", ValueType::Str),
        ],
    ))
    .expect("schema");
    for f in 1..=flights {
        let rows: Vec<Tuple> = (0..seats_per_flight)
            .map(|s| Tuple::from(vec![Value::from(f as i64), Value::from(format!("s{s:03}"))]))
            .collect();
        qdb.bulk_insert("Available", rows).expect("populate");
    }
    // Parse outside the timed loop: this measures admission, not
    // the parser (the workload runner prepares once too).
    let txns: Vec<_> = (0..depth)
        .map(|i| {
            parse_transaction(&format!(
                "-Available(1, s), +Bookings('u{i}', 1, s) :-1 Available(1, s)"
            ))
            .expect("well-formed")
        })
        .collect();
    let hist = Histogram::new();
    let t0 = Instant::now();
    for t in &txns {
        let s = Instant::now();
        assert!(
            qdb.submit(t).expect("engine healthy").is_committed(),
            "capacity sized so every booking admits"
        );
        hist.record_duration(s.elapsed());
    }
    let total = t0.elapsed();
    (qdb, hist, total)
}

/// The recording-overhead A/B for the observability layer.
#[derive(Debug, Clone)]
pub struct ObsOverheadRow {
    /// Pending-queue depth of the fill (the acceptance gate runs 128).
    pub depth: usize,
    /// Mean admission latency with recording on (the default), µs.
    pub enabled_mean_us: f64,
    /// Mean admission latency with `Obs::set_enabled(false)`, µs.
    pub disabled_mean_us: f64,
    /// `(enabled − disabled) / disabled × 100`. Best-of-3 on each side
    /// tames scheduler noise, but small negatives still happen on a busy
    /// host — the acceptance bound is one-sided (≤ 5%).
    pub overhead_percent: f64,
}

/// A/B the cost of the always-on observability layer on the admission hot
/// path: the same cached-extend fill as [`admission_depth`], once with the
/// engine's recording enabled and once with [`qdb_core::Obs`] disabled.
/// Each side takes the best of 3 runs (the first also serves as warm-up).
pub fn obs_overhead(depth: usize, flights: usize, seats_per_flight: usize) -> ObsOverheadRow {
    let best = |enabled: bool| {
        (0..3)
            .map(|_| admission_fill(depth, flights, seats_per_flight, true, enabled).2)
            .min()
            .expect("three runs")
    };
    let disabled = best(false).as_secs_f64() * 1e6 / depth.max(1) as f64;
    let enabled = best(true).as_secs_f64() * 1e6 / depth.max(1) as f64;
    ObsOverheadRow {
        depth,
        enabled_mean_us: enabled,
        disabled_mean_us: disabled,
        overhead_percent: (enabled - disabled) / disabled.max(f64::EPSILON) * 100.0,
    }
}

/// One point of the `read_path` experiment.
#[derive(Debug, Clone)]
pub struct ReadPathRow {
    /// Read mode: `"peek"` (§3.2.2 option 2) or `"possible"` (option 1).
    pub mode: String,
    /// Base database size (rows in `Available`).
    pub db_rows: usize,
    /// Pending-queue depth (one pending booking per flight — disjoint
    /// partitions, so the possible-world fan-out is per-booking).
    pub depth: usize,
    /// Reads measured per point.
    pub reads: usize,
    /// Mean latency of the engine's delta-view read path, microseconds.
    pub view_latency_us: f64,
    /// Median view-path read latency, µs (per-read `qdb_obs` histogram).
    pub view_p50_us: f64,
    /// 99th-percentile view-path read latency, µs.
    pub view_p99_us: f64,
    /// 99.9th-percentile view-path read latency, µs.
    pub view_p999_us: f64,
    /// Mean latency of the clone-based reference (database clone + op
    /// application per world, the pre-view implementation), microseconds.
    pub clone_latency_us: f64,
    /// `clone_latency_us / view_latency_us`.
    pub speedup: f64,
    /// World forks created by the engine during the measured reads
    /// (0 for peek).
    pub worlds_enumerated: u64,
    /// Forked worlds discarded as net-delta duplicates.
    pub world_dedup_hits: u64,
    /// Database clones observed on the engine's base during the view
    /// phase — **must** be 0: the view path never materializes state.
    pub db_clones: u64,
}

/// The clone-free read path (PEEK / POSSIBLE through delta views) against
/// the clone-based reference, swept over base size × pending depth.
///
/// `Available` holds `db_rows` rows spread over flights of 4 seats;
/// `depth` pending bookings land on distinct flights (their §4 partitions
/// stay disjoint; each has 4 candidate seats, so POSSIBLE fans out 4× per
/// pending booking until the world bound truncates). The measured query
/// is a point read of one pending user's booking — through the view it
/// touches O(pending) state; the reference pays O(db_rows) per read to
/// clone the base the way the pre-view engine did. The engine's
/// `db_clones` counter is captured *before* the reference runs, so the
/// view phase must read 0.
pub fn read_path(sizes: &[usize], depths: &[usize], reads: usize) -> Vec<ReadPathRow> {
    use qdb_core::{enumerate_worlds, QuantumDb, QuantumDbConfig};
    use qdb_logic::{parse_query, parse_transaction, ResourceTransaction, Valuation};
    use qdb_storage::{ConjunctiveQuery, Database, Schema, Tuple, Value, ValueType};
    use std::time::Instant;

    const SEATS_PER_FLIGHT: usize = 4;
    const WORLD_BOUND: usize = 64;

    fn install_flights(create: &mut dyn FnMut(Schema), rows: usize) {
        create(
            Schema::new(
                "Available",
                vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
            )
            .with_key(vec![0, 1])
            .expect("key"),
        );
        create(Schema::new(
            "Bookings",
            vec![
                ("name", ValueType::Str),
                ("flight", ValueType::Int),
                ("seat", ValueType::Str),
            ],
        ));
        let _ = rows;
    }

    fn flight_rows(rows: usize) -> impl Iterator<Item = (i64, Tuple)> {
        (0..rows).map(|i| {
            let flight = (i / SEATS_PER_FLIGHT + 1) as i64;
            let seat = format!("s{:03}", i % SEATS_PER_FLIGHT);
            (
                flight,
                Tuple::from(vec![Value::from(flight), Value::from(seat)]),
            )
        })
    }

    fn booking(i: usize) -> ResourceTransaction {
        let flight = i + 1;
        parse_transaction(&format!(
            "-Available({flight}, s), +Bookings('u{i}', {flight}, s) :-1 Available({flight}, s)"
        ))
        .expect("well-formed")
    }

    let mut out = Vec::new();
    for &rows in sizes {
        for &depth in depths {
            assert!(
                depth * SEATS_PER_FLIGHT <= rows,
                "depth {depth} needs at least {} rows",
                depth * SEATS_PER_FLIGHT
            );
            // Engine under measurement.
            let mut qdb = QuantumDb::new(QuantumDbConfig::with_k(depth + 1)).expect("engine");
            install_flights(&mut |s| qdb.create_table(s).expect("schema"), rows);
            let tuples: Vec<Tuple> = flight_rows(rows).map(|(_, t)| t).collect();
            qdb.bulk_insert("Available", tuples).expect("populate");
            let txns: Vec<ResourceTransaction> = (0..depth).map(booking).collect();
            for t in &txns {
                assert!(
                    qdb.submit(t).expect("engine healthy").is_committed(),
                    "4 free seats per flight: every booking admits"
                );
            }
            // The reference state: an *independent* database (its clones
            // must not pollute the engine's counter) with the same rows.
            let mut reference = Database::new();
            install_flights(&mut |s| reference.create_table(s).expect("schema"), rows);
            for (_, t) in flight_rows(rows) {
                reference.insert("Available", t).expect("populate");
            }
            // Deterministic stand-ins for the engine's cached grounding:
            // the reference pays the same op count, the exact seats are
            // irrelevant to its cost.
            let pending_ops: Vec<qdb_storage::WriteOp> = (0..depth)
                .flat_map(|i| {
                    let flight = (i + 1) as i64;
                    [
                        qdb_storage::WriteOp::delete(
                            "Available",
                            Tuple::from(vec![Value::from(flight), Value::from("s000")]),
                        ),
                        qdb_storage::WriteOp::insert(
                            "Bookings",
                            Tuple::from(vec![
                                Value::from(format!("u{i}")),
                                Value::from(flight),
                                Value::from("s000"),
                            ]),
                        ),
                    ]
                })
                .collect();

            let query = parse_query("Bookings('u0', f, s)").expect("well-formed");
            let patterns = query
                .atoms
                .iter()
                .map(|a| a.to_pattern(&Valuation::new()))
                .collect::<Vec<_>>();
            let conj = ConjunctiveQuery::new(patterns);
            let txn_refs: Vec<&ResourceTransaction> = txns.iter().collect();

            for mode in ["peek", "possible"] {
                // POSSIBLE enumerates up to the world bound per read (and
                // the clone reference materializes every world): sample it
                // with a tenth of the peek read count.
                let reads = if mode == "peek" {
                    reads
                } else {
                    reads.div_ceil(10).max(3)
                };
                let metrics_before = qdb.metrics_snapshot();
                // View phase: the engine's clone-free read path.
                let view_hist = qdb_core::Histogram::new();
                let t0 = Instant::now();
                for _ in 0..reads {
                    let s = Instant::now();
                    match mode {
                        "peek" => {
                            let _ = qdb.read_peek(&query.atoms, None).expect("peek");
                        }
                        _ => {
                            let _ = qdb
                                .read_possible(&query.atoms, WORLD_BOUND)
                                .expect("possible");
                        }
                    }
                    view_hist.record_duration(s.elapsed());
                }
                let view_latency_us = t0.elapsed().as_secs_f64() * 1e6 / reads as f64;
                let view_lat = view_hist.summary();
                let m = qdb.metrics_snapshot();
                let db_clones = m.db_clones; // captured before the clone phase
                let worlds_enumerated = m.worlds_enumerated - metrics_before.worlds_enumerated;
                let world_dedup_hits = m.world_dedup_hits - metrics_before.world_dedup_hits;

                // Clone phase: the pre-view implementation's cost shape —
                // clone the base per read (and per world for POSSIBLE),
                // apply the pending ops, evaluate concretely.
                let t0 = Instant::now();
                for _ in 0..reads {
                    match mode {
                        "peek" => {
                            let mut world = reference.clone();
                            world.apply_all(&pending_ops).expect("ops apply");
                            let _ = conj.eval(&world).expect("eval");
                        }
                        _ => {
                            let worlds = enumerate_worlds(&reference, &txn_refs, WORLD_BOUND)
                                .expect("enumerate");
                            for w in &worlds.worlds {
                                let materialized = w.materialize(&reference).expect("materialize");
                                let _ = conj.eval(&materialized).expect("eval");
                            }
                        }
                    }
                }
                let clone_latency_us = t0.elapsed().as_secs_f64() * 1e6 / reads as f64;

                out.push(ReadPathRow {
                    mode: mode.to_string(),
                    db_rows: rows,
                    depth,
                    reads,
                    view_latency_us,
                    view_p50_us: us(view_lat.p50_ns),
                    view_p99_us: us(view_lat.p99_ns),
                    view_p999_us: us(view_lat.p999_ns),
                    clone_latency_us,
                    speedup: clone_latency_us / view_latency_us.max(f64::EPSILON),
                    worlds_enumerated,
                    world_dedup_hits,
                    db_clones,
                });
            }
        }
    }
    out
}

/// One point of the §6 phase-transition illustration.
#[derive(Debug, Clone)]
pub struct PhaseRow {
    /// How many pair-bookings have been admitted so far.
    pub admitted: usize,
    /// Fill ratio: admitted / capacity (capacity = one pair per row).
    pub ratio: f64,
    /// Solver nodes expended by this admission (its satisfiability
    /// check).
    pub nodes: u64,
    /// Whether the admission succeeded.
    pub committed: bool,
}

/// §6 "Efficiency of evaluation": satisfiability problems are easy when
/// comfortably under- or over-constrained and hard at a critical ratio.
/// We reproduce the effect with *adjacent-pair* bookings (each transaction
/// consumes two adjacent seats): on an `R`-row flight at most `R` pairs
/// fit, and the solver's node count spikes as the fill ratio approaches 1
/// — exactly the regime where the paper suggests switching to "a more
/// aggressive fixing phase".
///
/// Keep `rows` small (≤ 6): the unsat proof at the boundary legitimately
/// explores an exponential space (that *is* the phenomenon), and the
/// engine's node budget turns runaway proofs into errors.
pub fn phase_transition(rows: usize, attempts: usize) -> Vec<PhaseRow> {
    use qdb_core::{QuantumDb, QuantumDbConfig};
    use qdb_logic::parse_transaction;

    let flights = FlightsConfig {
        flights: 1,
        rows_per_flight: rows,
    };
    let mut qdb = QuantumDb::new(QuantumDbConfig::default()).expect("engine");
    qdb_workload::flights::install(&mut qdb, &flights).expect("schema");
    let mut out = Vec::with_capacity(attempts);
    let mut admitted = 0usize;
    let mut last_nodes = 0u64;
    for i in 0..attempts {
        let t = parse_transaction(&format!(
            "-Available(1, s1), -Available(1, s2), +PairBooked('u{i}', s1) :-1 \
             Available(1, s1), Available(1, s2), Adjacent(s1, s2)"
        ))
        .expect("well-formed");
        if i == 0 {
            // PairBooked table is created lazily on first use.
            qdb.create_table(qdb_storage::Schema::new(
                "PairBooked",
                vec![
                    ("user", qdb_storage::ValueType::Str),
                    ("seat", qdb_storage::ValueType::Str),
                ],
            ))
            .expect("schema");
        }
        let committed = qdb.submit(&t).expect("engine healthy").is_committed();
        let nodes = qdb.solver_stats().nodes;
        if committed {
            admitted += 1;
        }
        out.push(PhaseRow {
            admitted,
            ratio: admitted as f64 / rows as f64,
            nodes: nodes - last_nodes,
            committed,
        });
        last_nodes = nodes;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let rows = table1_max_pending(51, 0xC1DE);
        let by_label: std::collections::HashMap<&str, (usize, usize)> = rows
            .iter()
            .map(|(l, b, m)| (l.as_str(), (*b, *m)))
            .collect();
        assert_eq!(by_label["Alternate"], (1, 1));
        assert_eq!(by_label["In Order"].0, 51);
        assert_eq!(by_label["In Order"].1, 51);
        assert_eq!(by_label["Reverse Order"].1, 51);
        assert!(by_label["Random"].1 <= 51);
    }

    #[test]
    fn fig5_smoke_has_five_series() {
        let rows = fig5_fig6_order_of_arrival(
            FlightsConfig {
                flights: 1,
                rows_per_flight: 4,
            },
            6,
            61,
            3,
        );
        assert_eq!(rows.len(), 5);
        // QuantumDB achieves 100% on every order (Fig. 6).
        for r in &rows[..4] {
            assert!(
                (r.coordination_percent - 100.0).abs() < 1e-9,
                "{}: {}",
                r.label,
                r.coordination_percent
            );
            // Cumulative series is monotone.
            assert!(r.cumulative_micros.windows(2).all(|w| w[0] <= w[1]));
        }
        // IS trails on Random order.
        assert!(rows[4].coordination_percent < 100.0);
    }

    #[test]
    fn fig7_smoke_scales_and_orders_k() {
        let rows = fig7_table2_scalability(&[1, 2], 4, &[2, 61], 3);
        // Coordination: k=61 ≥ k=2 at every size.
        for n in [1usize, 2] {
            let k2 = rows
                .iter()
                .find(|r| r.flights == n && r.label == "k=2")
                .unwrap();
            let k61 = rows
                .iter()
                .find(|r| r.flights == n && r.label == "k=61")
                .unwrap();
            let is = rows
                .iter()
                .find(|r| r.flights == n && r.label == "IS")
                .unwrap();
            assert!(k61.coordination_percent >= k2.coordination_percent);
            assert!(k61.coordination_percent >= is.coordination_percent);
        }
    }

    #[test]
    fn phase_transition_spikes_near_capacity() {
        let rows = phase_transition(4, 6);
        // All 4 capacity pairs admitted; the 5th/6th abort.
        assert_eq!(rows.iter().filter(|r| r.committed).count(), 4);
        assert!(!rows.last().unwrap().committed);
        // The hardest check (most solver nodes) happens at the boundary —
        // the critical ratio — not during the under-constrained fill.
        let peak = rows.iter().max_by_key(|r| r.nodes).unwrap();
        assert!(
            peak.ratio > 0.9,
            "peak hardness at ratio {:.2} (nodes {})",
            peak.ratio,
            peak.nodes
        );
        // Early admissions are easy (under-constrained).
        assert!(rows[0].nodes * 4 <= peak.nodes);
    }

    #[test]
    fn partition_scaling_smoke_produces_comparable_points() {
        let rows = partition_scaling(1, 4, 3, &[1, 2], 0xC1DE);
        assert_eq!(rows.len(), 4); // {1,2} workers × {sharded, coarse}
        for r in &rows {
            assert_eq!(r.ops, 2 * 3 * 2, "fixed workload across sweep");
            assert!(r.throughput > 0.0, "{}@{}w", r.label, r.workers);
            assert!(r.booking_p50_us > 0.0, "{}@{}w", r.label, r.workers);
            assert!(r.booking_p999_us >= r.booking_p50_us);
            if r.label == "coarse-lock" {
                assert!(
                    r.solve_peak <= 1,
                    "coarse lock must serialize solver sections"
                );
            }
        }
        // Both engine variants exist at every worker count.
        for w in [1usize, 2] {
            assert!(rows.iter().any(|r| r.workers == w && r.label == "sharded"));
            assert!(rows
                .iter()
                .any(|r| r.workers == w && r.label == "coarse-lock"));
        }
    }

    #[test]
    fn admission_depth_smoke_is_streaming_and_extend_only() {
        let rows = admission_depth(&[2, 4], 2, 8);
        assert_eq!(rows.len(), 4); // {2,4} depths × {cached, full-resolve}
        for r in &rows {
            // The hot path streams: no candidate vectors, ever.
            assert_eq!(r.candidate_vecs, 0, "{} depth {}", r.mode, r.depth);
            assert!(r.candidates_streamed > 0);
            assert!(r.p50_us > 0.0);
            assert!(r.p99_us >= r.p50_us);
            assert!(r.p999_us >= r.p99_us);
            assert!(r.max_us > 0.0);
            match r.mode.as_str() {
                // Every admission under the solution cache must extend —
                // zero full re-solves (the CI regression gate).
                "cached-extend" => {
                    assert_eq!(r.cache_full_resolves, 0);
                    assert_eq!(r.cache_extensions, r.depth as u64);
                }
                "full-resolve" => {
                    assert_eq!(r.cache_extensions, 0);
                    assert_eq!(r.cache_full_resolves, r.depth as u64);
                }
                other => panic!("unexpected mode {other}"),
            }
        }
        // The ablation pays more solver nodes at equal depth.
        let ext = rows
            .iter()
            .find(|r| r.mode == "cached-extend" && r.depth == 4);
        let full = rows
            .iter()
            .find(|r| r.mode == "full-resolve" && r.depth == 4);
        assert!(full.unwrap().solver_nodes > ext.unwrap().solver_nodes);
    }

    #[test]
    fn obs_overhead_ab_produces_comparable_means() {
        let row = obs_overhead(8, 1, 8);
        assert_eq!(row.depth, 8);
        assert!(row.enabled_mean_us > 0.0);
        assert!(row.disabled_mean_us > 0.0);
        // No bound on the percentage here — a loaded test host makes it
        // noisy; the reproduce run at depth 128 is where the ≤5% gate
        // applies.
        assert!(row.overhead_percent.is_finite());
    }

    #[test]
    fn read_path_smoke_is_clone_free_and_faster_than_the_reference() {
        let rows = read_path(&[64, 256], &[0, 4], 10);
        assert_eq!(rows.len(), 8); // {64,256} sizes × {0,4} depths × {peek,possible}
        for r in &rows {
            // The acceptance gate: the view phase never clones.
            assert_eq!(r.db_clones, 0, "{} {}x{}", r.mode, r.db_rows, r.depth);
            assert!(r.view_latency_us > 0.0);
            assert!(r.view_p50_us > 0.0);
            assert!(r.view_p999_us >= r.view_p50_us);
            assert!(r.clone_latency_us > 0.0);
            if r.mode == "possible" && r.depth > 0 {
                assert!(r.worlds_enumerated > 0, "possible must fork worlds");
            }
            if r.mode == "peek" {
                assert_eq!(r.worlds_enumerated, 0, "peek never enumerates");
            }
        }
        // At the larger size the clone reference pays O(db) per read and
        // the view does not: the peek speedup must be decisive.
        let big_peek = rows
            .iter()
            .find(|r| r.mode == "peek" && r.db_rows == 256 && r.depth == 4)
            .unwrap();
        assert!(
            big_peek.speedup > 1.0,
            "view peek slower than cloning: {:.2}x",
            big_peek.speedup
        );
    }

    #[test]
    fn fig9_smoke_reads_hurt_coordination() {
        let flights = FlightsConfig {
            flights: 2,
            rows_per_flight: 4,
        };
        let rows = fig8_fig9_mixed(flights, 24, &[0, 50], &[61], 5);
        let at0 = rows.iter().find(|r| r.read_percent == 0).unwrap();
        let at50 = rows.iter().find(|r| r.read_percent == 50).unwrap();
        assert!(at50.coordination_percent <= at0.coordination_percent);
        assert!(at50.read_seconds > 0.0);
    }
}
