//! A minimal JSON writer for machine-readable bench output.
//!
//! The workspace builds offline (no `serde`/`serde_json`), and the bench
//! harness only ever *emits* JSON — so a tiny value tree with a correct
//! serializer is all that is needed. Numbers are emitted via Rust's
//! shortest-roundtrip float formatting; non-finite floats become `null`
//! (JSON has no representation for them).

use std::fmt;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Array from values.
    pub fn arr(values: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(values.into_iter().collect())
    }

    /// Pretty-print with two-space indentation and a trailing newline —
    /// the shape diff tools and `jq` both like.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 9e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent + 1);
            }),
            Json::Obj(pairs) => write_seq(out, indent, '{', '}', pairs.len(), |out, i| {
                write_escaped(out, &pairs[i].0);
                out.push_str(": ");
                pairs[i].1.write(out, indent + 1);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    if len == 0 {
        out.push(open);
        out.push(close);
        return;
    }
    out.push(open);
    for i in 0..len {
        out.push('\n');
        out.push_str(&"  ".repeat(indent + 1));
        item(out, i);
        if i + 1 < len {
            out.push(',');
        }
    }
    out.push('\n');
    out.push_str(&"  ".repeat(indent));
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Shorthand: number from anything convertible to `f64`.
pub fn num(n: impl Into<f64>) -> Json {
    Json::Num(n.into())
}

/// Shorthand: string value.
pub fn str(s: impl Into<String>) -> Json {
    Json::Str(s.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_nested_structures() {
        let j = Json::obj([
            ("name", str("fig5")),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::arr([num(1), num(2.5)])),
            ("empty", Json::arr([])),
        ]);
        let text = j.pretty();
        assert!(text.starts_with("{\n"));
        assert!(text.contains("\"name\": \"fig5\""));
        assert!(text.contains("\"xs\": [\n"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.contains("2.5"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn integers_print_without_fraction_and_escapes_are_valid() {
        assert_eq!(num(1e6).pretty(), "1000000\n");
        assert_eq!(num(0.125).pretty(), "0.125\n");
        assert_eq!(Json::Num(f64::NAN).pretty(), "null\n");
        assert_eq!(
            str("a\"b\\c\nd\u{1}").pretty(),
            "\"a\\\"b\\\\c\\nd\\u0001\"\n"
        );
    }
}
