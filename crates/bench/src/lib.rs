//! # qdb-bench
//!
//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§5) as text series. See `src/bin/reproduce.rs` for
//! the command-line entry point and `benches/` for the Criterion
//! microbenchmarks.

pub mod connscale;
pub mod experiments;
pub mod json;
pub mod replbench;
pub mod report;
pub mod stamp;

pub use connscale::{connection_scale, ConnScaleConfig, ConnScaleOutcome, HotPhase};
pub use experiments::{
    admission_depth, fig5_fig6_order_of_arrival, fig7_table2_scalability, fig8_fig9_mixed,
    paper_orders, phase_transition, table1_max_pending, AdmissionDepthRow, Fig5Row, MixedRow,
    PhaseRow, ScalabilityRow,
};
pub use replbench::{replication_scale, ReplPoint, ReplScaleConfig, ReplScaleOutcome};
pub use report::{downsample, format_series, format_table};
pub use stamp::{git_commit, iso8601_now};
