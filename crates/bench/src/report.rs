//! Plain-text rendering of experiment results (the "figures" are printed
//! as aligned data series suitable for EXPERIMENTS.md and for plotting).

/// Render a table with a header row; columns are aligned on width.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", cell, width = widths[i]));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Render an (x, y…) series block with a title line, one sample per line.
pub fn format_series(title: &str, header: &[&str], points: &[Vec<f64>]) -> String {
    let mut out = format!("# {title}\n");
    out.push_str(&header.join("\t"));
    out.push('\n');
    for p in points {
        let cells: Vec<String> = p.iter().map(|v| format!("{v:.3}")).collect();
        out.push_str(&cells.join("\t"));
        out.push('\n');
    }
    out
}

/// Downsample a cumulative series to at most `n` evenly spaced points
/// (keeps figures readable at paper scale).
pub fn downsample(series: &[u64], n: usize) -> Vec<(usize, u64)> {
    if series.is_empty() || n == 0 {
        return Vec::new();
    }
    let step = (series.len().max(n) / n).max(1);
    let mut out: Vec<(usize, u64)> = series
        .iter()
        .enumerate()
        .filter(|(i, _)| i % step == 0)
        .map(|(i, &v)| (i + 1, v))
        .collect();
    let last = series.len() - 1;
    if out.last().map(|&(i, _)| i != last + 1).unwrap_or(true) {
        out.push((last + 1, series[last]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = format_table(
            &["order", "max"],
            &[
                vec!["Alternate".into(), "1".into()],
                vec!["Random".into(), "51".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("order"));
        assert!(lines[2].ends_with('1'));
    }

    #[test]
    fn series_rendering() {
        let s = format_series("fig", &["x", "y"], &[vec![1.0, 2.0], vec![2.0, 4.5]]);
        assert!(s.starts_with("# fig\n"));
        assert!(s.contains("2.000\t4.500"));
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let series: Vec<u64> = (0..100).collect();
        let d = downsample(&series, 10);
        assert!(d.len() <= 12);
        assert_eq!(d.first().unwrap().0, 1);
        assert_eq!(d.last().unwrap(), &(100, 99));
        let empty: Vec<u64> = vec![];
        assert!(downsample(&empty, 5).is_empty());
    }
}
