//! Criterion bench for the mixed workload (Figures 8 & 9): read-heavy vs
//! update-heavy mixes at a reduced scale (480 ops over 4 flights). The
//! paper-scale sweep is produced by `reproduce fig8`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdb_core::QuantumDbConfig;
use qdb_workload::{run_quantum, ArrivalOrder, FlightsConfig, RunConfig};

fn bench_mixed(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_mixed_workload");
    group.sample_size(10);
    let flights = FlightsConfig {
        flights: 4,
        rows_per_flight: 40, // 120 seats per flight: capacity for the 0%-reads mix
    };
    let total_ops = 480usize;
    for read_pct in [0usize, 30, 60, 90] {
        group.bench_with_input(
            BenchmarkId::new("reads_pct", read_pct),
            &read_pct,
            |b, &pct| {
                let n_reads = total_ops * pct / 100;
                let pairs_per_flight = ((total_ops - n_reads) / 2) / flights.flights;
                let cfg = RunConfig {
                    flights,
                    pairs_per_flight,
                    order: ArrivalOrder::Random { seed: 0xC1DE },
                    n_reads,
                    seed: 0xC1DE,
                    engine: QuantumDbConfig::with_k(30),
                };
                b.iter(|| run_quantum(&cfg).total);
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mixed);
criterion_main!(benches);
