//! Microbenchmarks for the substrate layers: unification, composition,
//! conjunctive evaluation, solver admission/grounding — the pieces whose
//! costs drive the macro figures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdb_logic::{compose, mgu, parse_transaction, ResourceTransaction};
use qdb_solver::{CachedSolution, Solver, TxnSpec};
use qdb_storage::{tuple, ConjunctiveQuery, Database, PatTerm, Pattern, Schema, ValueType};

fn seats_db(rows: usize) -> Database {
    let mut db = Database::new();
    db.create_table(Schema::new(
        "Available",
        vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
    ))
    .unwrap();
    db.create_table(Schema::new(
        "Bookings",
        vec![
            ("name", ValueType::Str),
            ("flight", ValueType::Int),
            ("seat", ValueType::Str),
        ],
    ))
    .unwrap();
    db.table_mut("Available").unwrap().create_index(0).unwrap();
    for r in 1..=rows {
        for c in ["A", "B", "C"] {
            db.insert("Available", tuple![1, format!("{r}{c}").as_str()])
                .unwrap();
        }
    }
    db
}

fn booking(name: &str) -> ResourceTransaction {
    parse_transaction(&format!(
        "-Available(f, s), +Bookings('{name}', f, s) :-1 Available(f, s)"
    ))
    .unwrap()
}

fn bench_unification(c: &mut Criterion) {
    let t =
        parse_transaction("-A(f1, s1), +B(M, f1, s1) :-1 A(f1, s1), B(G, f1, s2)?, Adj(s1, s2)?")
            .unwrap();
    let a = &t.body[0].atom;
    let b = &t.updates[0].atom;
    c.bench_function("mgu_flat_atoms", |bench| {
        bench.iter(|| mgu(std::hint::black_box(a), std::hint::black_box(b)));
    });
}

fn bench_composition(c: &mut Criterion) {
    let mut group = c.benchmark_group("compose_sequence");
    for n in [4usize, 16, 61] {
        let txns: Vec<ResourceTransaction> = (0..n).map(|i| booking(&format!("U{i}"))).collect();
        let refs: Vec<&ResourceTransaction> = txns.iter().collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &refs, |bench, refs| {
            bench.iter(|| compose(std::hint::black_box(refs)));
        });
    }
    group.finish();
}

fn bench_query_eval(c: &mut Criterion) {
    let db = seats_db(50);
    let q = ConjunctiveQuery::new(vec![Pattern::new(
        "Available",
        vec![PatTerm::val(1), PatTerm::Var(0)],
    )])
    .with_limit(1);
    c.bench_function("limit1_indexed_scan", |bench| {
        bench.iter(|| q.eval(std::hint::black_box(&db)).unwrap());
    });
}

fn bench_solver_admission(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_admission");
    for pending in [1usize, 16, 40] {
        let db = seats_db(50);
        let txns: Vec<ResourceTransaction> =
            (0..pending).map(|i| booking(&format!("U{i}"))).collect();
        let refs: Vec<&ResourceTransaction> = txns.iter().collect();
        let mut solver = Solver::default();
        let cache = CachedSolution::resolve(&mut solver, &db, &refs)
            .unwrap()
            .unwrap();
        let newcomer = booking("NEW");
        group.bench_with_input(
            BenchmarkId::new("cache_extend", pending),
            &pending,
            |bench, _| {
                bench.iter(|| {
                    let mut c2 = cache.clone();
                    let ok = c2.try_extend(&mut solver, &db, &refs, &newcomer).unwrap();
                    assert!(ok);
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full_resolve", pending),
            &pending,
            |bench, _| {
                let mut all: Vec<&ResourceTransaction> = refs.clone();
                all.push(&newcomer);
                bench.iter(|| {
                    CachedSolution::resolve(&mut solver, &db, &all)
                        .unwrap()
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_verify(c: &mut Criterion) {
    let db = seats_db(50);
    let txns: Vec<ResourceTransaction> = (0..40).map(|i| booking(&format!("U{i}"))).collect();
    let refs: Vec<&ResourceTransaction> = txns.iter().collect();
    let mut solver = Solver::default();
    let cache = CachedSolution::resolve(&mut solver, &db, &refs)
        .unwrap()
        .unwrap();
    let specs: Vec<TxnSpec> = refs.iter().map(|t| TxnSpec::required_only(t)).collect();
    c.bench_function("verify_cached_solution_40", |bench| {
        bench.iter(|| solver.verify(&db, &[], &specs, &cache.valuations).unwrap());
    });
}

criterion_group!(
    benches,
    bench_unification,
    bench_composition,
    bench_query_eval,
    bench_solver_admission,
    bench_verify
);
criterion_main!(benches);
