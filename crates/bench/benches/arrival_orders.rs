//! Criterion bench for the order-of-arrival experiment (Figures 5 & 6).
//!
//! Measures one full 102-transaction run per arrival order (the paper's
//! Figure 5 x-axis compressed into a single wall-clock sample) plus the IS
//! baseline. Run `reproduce fig5` for the full cumulative series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdb_workload::{run_is, run_quantum, ArrivalOrder, FlightsConfig, RunConfig};

fn bench_orders(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_order_of_arrival");
    group.sample_size(10);
    let flights = FlightsConfig::order_of_arrival();
    let orders = [
        ArrivalOrder::Alternate,
        ArrivalOrder::Random { seed: 0xC1DE },
        ArrivalOrder::InOrder,
        ArrivalOrder::ReverseOrder,
    ];
    for order in orders {
        group.bench_with_input(
            BenchmarkId::new("quantum", order.label().replace(' ', "_")),
            &order,
            |b, &order| {
                let cfg = RunConfig::resource_only(flights, 51, order, 61);
                b.iter(|| {
                    let res = run_quantum(&cfg);
                    assert_eq!(res.aborted, 0);
                    res.total
                });
            },
        );
    }
    group.bench_function("is_random", |b| {
        let cfg = RunConfig::resource_only(flights, 51, ArrivalOrder::Random { seed: 0xC1DE }, 61);
        b.iter(|| run_is(&cfg).total);
    });
    group.finish();
}

criterion_group!(benches, bench_orders);
criterion_main!(benches);
