//! Ablation benches for the design choices called out in DESIGN.md:
//! solution cache, partitioning, atom ordering (the LIMIT-1 stand-in),
//! serializability mode and grounding policy.
//!
//! Each ablation runs the same small Random-order workload with one knob
//! flipped; coordination percentages are asserted where the knob has a
//! correctness-visible effect.

use criterion::{criterion_group, criterion_main, Criterion};
use qdb_core::{GroundingPolicy, QuantumDbConfig, Serializability};
use qdb_solver::AtomOrder;
use qdb_workload::{run_quantum, ArrivalOrder, FlightsConfig, RunConfig};

fn base_cfg() -> RunConfig {
    RunConfig::resource_only(
        FlightsConfig {
            flights: 2,
            rows_per_flight: 10,
        },
        15,
        ArrivalOrder::Random { seed: 0xC1DE },
        61,
    )
}

fn bench_ablation_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_solution_cache");
    group.sample_size(10);
    group.bench_function("cache_on", |b| {
        let cfg = base_cfg();
        b.iter(|| run_quantum(&cfg).total);
    });
    group.bench_function("cache_off", |b| {
        let mut cfg = base_cfg();
        cfg.engine.use_solution_cache = false;
        b.iter(|| run_quantum(&cfg).total);
    });
    group.finish();
}

fn bench_ablation_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_partitioning");
    group.sample_size(10);
    group.bench_function("partitioning_on", |b| {
        let cfg = base_cfg();
        b.iter(|| run_quantum(&cfg).total);
    });
    group.bench_function("partitioning_off", |b| {
        let mut cfg = base_cfg();
        cfg.engine.partitioning = false;
        b.iter(|| run_quantum(&cfg).total);
    });
    group.finish();
}

fn bench_ablation_atom_order(c: &mut Criterion) {
    // Static order is the stand-in for the paper's monolithic LIMIT-1
    // joins with a fixed join order (their optimizer_search_depth woes).
    let mut group = c.benchmark_group("ablation_atom_order");
    group.sample_size(10);
    group.bench_function("most_constrained", |b| {
        let cfg = base_cfg();
        b.iter(|| run_quantum(&cfg).total);
    });
    group.bench_function("static_order", |b| {
        let mut cfg = base_cfg();
        cfg.engine.solver_order = AtomOrder::Static;
        b.iter(|| run_quantum(&cfg).total);
    });
    group.finish();
}

fn bench_ablation_serializability(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_serializability");
    group.sample_size(10);
    let mixed = |ser: Serializability| {
        let mut cfg = base_cfg();
        cfg.engine.serializability = ser;
        cfg.n_reads = 20; // reads are where the modes diverge
        cfg
    };
    group.bench_function("semantic", |b| {
        let cfg = mixed(Serializability::Semantic);
        b.iter(|| run_quantum(&cfg).total);
    });
    group.bench_function("strict", |b| {
        let cfg = mixed(Serializability::Strict);
        b.iter(|| run_quantum(&cfg).total);
    });
    group.finish();
}

fn bench_ablation_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_grounding_policy");
    group.sample_size(10);
    for (name, policy) in [
        ("first_fit", GroundingPolicy::FirstFit),
        (
            "max_flexibility",
            GroundingPolicy::MaxFlexibility { sample: 8 },
        ),
        ("random", GroundingPolicy::Random { seed: 7, sample: 8 }),
    ] {
        group.bench_function(name, |b| {
            let mut cfg = base_cfg();
            cfg.engine.policy = policy;
            cfg.engine.k = 8; // force k-groundings so the policy matters
            cfg.engine = QuantumDbConfig {
                k: 8,
                policy,
                ..cfg.engine
            };
            b.iter(|| run_quantum(&cfg).total);
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ablation_cache,
    bench_ablation_partitioning,
    bench_ablation_atom_order,
    bench_ablation_serializability,
    bench_ablation_policy
);
criterion_main!(benches);
