//! Criterion bench for the scalability experiment (Figure 7 / Table 2).
//!
//! Benchmarks one mid-size point per k (10 flights × 150 seats, 1500
//! transactions, Random order) plus the IS baseline. The full 10→100
//! flight sweep is produced by `reproduce fig7`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdb_workload::{run_is, run_quantum, ArrivalOrder, FlightsConfig, RunConfig};

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_scalability_10_flights");
    group.sample_size(10);
    let flights = FlightsConfig::scalability(10);
    for k in [20usize, 30, 40] {
        group.bench_with_input(BenchmarkId::new("quantum_k", k), &k, |b, &k| {
            let cfg =
                RunConfig::resource_only(flights, 75, ArrivalOrder::Random { seed: 0xC1DE }, k);
            b.iter(|| run_quantum(&cfg).total);
        });
    }
    group.bench_function("is", |b| {
        let cfg = RunConfig::resource_only(flights, 75, ArrivalOrder::Random { seed: 0xC1DE }, 61);
        b.iter(|| run_is(&cfg).total);
    });
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
