//! Thin FFI shim over the handful of kernel interfaces the reactor needs:
//! `epoll` for readiness notification and `{get,set}rlimit` for the
//! file-descriptor budget.
//!
//! This follows the repo's offline-deps idiom (`bytes`, `rng`, the mutex
//! helpers): instead of pulling in the `libc` crate we declare the five
//! symbols ourselves. `std` already links the platform C library on
//! Linux, so this adds no dependency — just a typed view of what is
//! already in the address space.
//!
//! Everything here is Linux-specific by design (the readiness loop is
//! built on epoll). Porting to another unix means adding a `kqueue` or
//! `poll(2)` backend with the same [`Poller`] surface.

#[cfg(not(target_os = "linux"))]
compile_error!(
    "qdb-server's event loop is built on Linux epoll (crates/server/src/sys.rs); \
     to port it, add a kqueue/poll(2) Poller with the same API"
);

use std::io;
use std::os::fd::RawFd;
use std::os::raw::c_int;

/// Mirror of `struct epoll_event`. The kernel ABI packs it on x86-64
/// (12 bytes: `u32` events + unaligned `u64` data); other architectures
/// use natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
pub(crate) struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

pub(crate) const EPOLLIN: u32 = 0x001;
pub(crate) const EPOLLOUT: u32 = 0x004;
pub(crate) const EPOLLERR: u32 = 0x008;
pub(crate) const EPOLLHUP: u32 = 0x010;
pub(crate) const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;

const RLIMIT_NOFILE: c_int = 7;

/// Mirror of `struct rlimit` (64-bit `rlim_t` on every supported target).
#[repr(C)]
struct RLimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
}

/// One readiness event, unpacked out of the kernel's packed struct.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// The `u64` registered with the fd (the reactor's slot token).
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// `EPOLLHUP`/`EPOLLERR`/`EPOLLRDHUP` — the transport is done or
    /// half-closed; a read will observe the condition precisely.
    pub hangup: bool,
}

/// Owned epoll instance: register interest per fd, wait for readiness.
///
/// Level-triggered (the epoll default) on purpose: the reactor always
/// reads/writes to `WouldBlock`, and deregistering interest while a
/// connection is paused means no busy re-delivery.
pub(crate) struct Poller {
    epfd: RawFd,
}

impl Poller {
    pub(crate) fn new() -> io::Result<Poller> {
        // SAFETY: plain syscall, no pointers involved.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: Option<(u64, bool, bool)>) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        let evp = match interest {
            Some((token, readable, writable)) => {
                let mut events = EPOLLRDHUP;
                if readable {
                    events |= EPOLLIN;
                }
                if writable {
                    events |= EPOLLOUT;
                }
                ev.events = events;
                ev.data = token;
                &mut ev as *mut EpollEvent
            }
            None => std::ptr::null_mut(),
        };
        // SAFETY: `evp` is null (DEL) or points at `ev`, which outlives
        // the call; the kernel reads it before returning.
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, evp) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub(crate) fn add(
        &self,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, Some((token, readable, writable)))
    }

    pub(crate) fn modify(
        &self,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, Some((token, readable, writable)))
    }

    pub(crate) fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Wait up to `timeout_ms` (`-1` blocks) and append readiness events.
    pub(crate) fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        const MAX_EVENTS: usize = 1024;
        let mut raw: Vec<EpollEvent> = Vec::with_capacity(MAX_EVENTS);
        // SAFETY: the spare capacity is MAX_EVENTS epoll_event slots; the
        // kernel writes at most MAX_EVENTS entries and returns the count,
        // which bounds the set_len below.
        let n = unsafe {
            epoll_wait(
                self.epfd,
                raw.as_mut_ptr(),
                MAX_EVENTS as c_int,
                timeout_ms as c_int,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(()); // EINTR: just report no events
            }
            return Err(err);
        }
        // SAFETY: the kernel initialized the first `n` entries.
        unsafe { raw.set_len(n as usize) };
        for ev in &raw {
            // Copy fields out: the struct is packed on x86-64, so no refs.
            let bits = ev.events;
            let token = ev.data;
            events.push(Event {
                token,
                readable: bits & EPOLLIN != 0,
                writable: bits & EPOLLOUT != 0,
                hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: we own epfd and close it exactly once.
        unsafe { close(self.epfd) };
    }
}

/// Raise the process's soft `RLIMIT_NOFILE` toward `want` file
/// descriptors (capped at the hard limit) and return the resulting soft
/// limit. Used by the `connection_scale` bench, which needs ~2 fds per
/// simulated connection (client end + server end in one process).
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let mut lim = RLimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: `lim` is a valid out-pointer for the duration of the call.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.rlim_cur >= want {
        return Ok(lim.rlim_cur);
    }
    if want > lim.rlim_max {
        // Raising the hard limit needs CAP_SYS_RESOURCE; try it, and on
        // EPERM settle for the hard cap below.
        let privileged = RLimit {
            rlim_cur: want,
            rlim_max: want,
        };
        // SAFETY: valid in-pointer for the duration of the call.
        if unsafe { setrlimit(RLIMIT_NOFILE, &privileged) } == 0 {
            return Ok(want);
        }
    }
    let raised = RLimit {
        rlim_cur: want.min(lim.rlim_max),
        rlim_max: lim.rlim_max,
    };
    // SAFETY: `raised` is a valid in-pointer for the duration of the call.
    if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(raised.rlim_cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn poller_reports_readability_on_a_socketpair() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.add(b.as_raw_fd(), 42, true, false).unwrap();

        // Nothing written yet: a zero-timeout wait sees no events.
        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.iter().all(|e| e.token != 42 || !e.readable));

        a.write_all(b"x").unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 1000).unwrap();
        let ev = events.iter().find(|e| e.token == 42).expect("event");
        assert!(ev.readable);

        // Level-triggered: still readable until drained.
        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable));
        let mut buf = [0u8; 8];
        let mut bref = &b;
        assert_eq!(bref.read(&mut buf).unwrap(), 1);

        poller.delete(b.as_raw_fd()).unwrap();
        drop(a);
        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.iter().all(|e| e.token != 42));
    }

    #[test]
    fn poller_reports_writability_and_modify_switches_interest() {
        let poller = Poller::new().unwrap();
        let (a, _b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        poller.add(a.as_raw_fd(), 7, true, false).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.iter().all(|e| e.token != 7 || !e.writable));
        poller.modify(a.as_raw_fd(), 7, false, true).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.writable));
    }

    #[test]
    fn raise_nofile_limit_is_monotone() {
        let current = raise_nofile_limit(0).unwrap();
        assert!(current > 0);
        // Asking for what we already have (or less) never lowers it.
        assert_eq!(raise_nofile_limit(current).unwrap(), current);
    }
}
