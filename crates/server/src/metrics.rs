//! Server-side traffic counters.
//!
//! These complement the engine's own [`qdb_core::Metrics`]: the engine
//! counts semantic events (commits, groundings, parses), the server counts
//! wire traffic (connections, frames, bytes) and statements per class.
//! A snapshot of both travels back on every `SHOW METRICS` response, so a
//! remote client observes the full picture without a side channel.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use qdb_core::wire::ServerStats;

/// Lock-free counters for the hot paths, a small mutex-guarded map for
/// per-statement-class accounting (the class set is tiny and bounded by
/// the grammar).
#[derive(Debug, Default)]
pub struct ServerMetrics {
    connections: AtomicU64,
    frames_decoded: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    classes: Mutex<BTreeMap<&'static str, u64>>,
}

impl ServerMetrics {
    /// Record an accepted connection.
    pub fn connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request frame of `wire_len` total bytes read and decoded.
    pub fn frame_in(&self, wire_len: u64) {
        self.frames_decoded.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(wire_len, Ordering::Relaxed);
    }

    /// Record `n` bytes written to a client.
    pub fn bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one executed statement of the given class
    /// ([`qdb_logic::Statement::kind`]).
    pub fn statement(&self, class: &'static str) {
        *self
            .classes
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entry(class)
            .or_insert(0) += 1;
    }

    /// Snapshot for the wire.
    pub fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            frames_decoded: self.frames_decoded.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            statement_classes: self
                .classes
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_all_counters() {
        let m = ServerMetrics::default();
        m.connection();
        m.frame_in(100);
        m.frame_in(28);
        m.bytes_out(64);
        m.statement("SELECT");
        m.statement("SELECT");
        m.statement("INSERT");
        let s = m.snapshot();
        assert_eq!(s.connections, 1);
        assert_eq!(s.frames_decoded, 2);
        assert_eq!(s.bytes_in, 128);
        assert_eq!(s.bytes_out, 64);
        assert_eq!(s.class("SELECT"), Some(2));
        assert_eq!(s.class("INSERT"), Some(1));
        assert_eq!(s.class("GROUND"), None);
        assert_eq!(s.statements_total(), 3);
    }
}
