//! Server-side traffic counters.
//!
//! These complement the engine's own [`qdb_core::Metrics`]: the engine
//! counts semantic events (commits, groundings, parses), the server counts
//! wire traffic (connections, frames, bytes), connection lifecycle events
//! (refusals, idle reaps, backpressure stalls) and statements per class.
//! A snapshot of both travels back on every `SHOW METRICS` response, so a
//! remote client observes the full picture without a side channel.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use qdb_core::wire::ServerStats;

/// Lock-free counters for the hot paths, a small mutex-guarded map for
/// per-statement-class accounting (the class set is tiny and bounded by
/// the grammar).
#[derive(Debug, Default)]
pub struct ServerMetrics {
    connections: AtomicU64,
    frames_decoded: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    conns_open: AtomicU64,
    conns_peak: AtomicU64,
    conns_refused: AtomicU64,
    conns_idle_closed: AtomicU64,
    outbox_full_stalls: AtomicU64,
    classes: Mutex<BTreeMap<&'static str, u64>>,
}

impl ServerMetrics {
    /// Record an accepted connection (bumps the open gauge and its peak).
    pub fn connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
        let open = self.conns_open.fetch_add(1, Ordering::Relaxed) + 1;
        self.conns_peak.fetch_max(open, Ordering::Relaxed);
    }

    /// Record a connection leaving (any reason: EOF, error, reaped).
    pub fn connection_closed(&self) {
        self.conns_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Record a connection refused at the admission limit.
    pub fn connection_refused(&self) {
        self.conns_refused.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a connection reaped by the idle-timeout wheel.
    pub fn connection_idle_closed(&self) {
        self.conns_idle_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an executor stalling on a full per-connection outbox.
    pub fn outbox_full_stall(&self) {
        self.outbox_full_stalls.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request frame of `wire_len` total bytes read and decoded.
    pub fn frame_in(&self, wire_len: u64) {
        self.frames_decoded.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(wire_len, Ordering::Relaxed);
    }

    /// Record `n` bytes written to a client.
    pub fn bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one executed statement of the given class
    /// ([`qdb_logic::Statement::kind`]).
    pub fn statement(&self, class: &'static str) {
        *self
            .classes
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entry(class)
            .or_insert(0) += 1;
    }

    /// Snapshot for the wire.
    pub fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            frames_decoded: self.frames_decoded.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            conns_open: self.conns_open.load(Ordering::Relaxed),
            conns_peak: self.conns_peak.load(Ordering::Relaxed),
            conns_refused: self.conns_refused.load(Ordering::Relaxed),
            conns_idle_closed: self.conns_idle_closed.load(Ordering::Relaxed),
            outbox_full_stalls: self.outbox_full_stalls.load(Ordering::Relaxed),
            statement_classes: self
                .classes
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_all_counters() {
        let m = ServerMetrics::default();
        m.connection();
        m.frame_in(100);
        m.frame_in(28);
        m.bytes_out(64);
        m.statement("SELECT");
        m.statement("SELECT");
        m.statement("INSERT");
        let s = m.snapshot();
        assert_eq!(s.connections, 1);
        assert_eq!(s.frames_decoded, 2);
        assert_eq!(s.bytes_in, 128);
        assert_eq!(s.bytes_out, 64);
        assert_eq!(s.class("SELECT"), Some(2));
        assert_eq!(s.class("INSERT"), Some(1));
        assert_eq!(s.class("GROUND"), None);
        assert_eq!(s.statements_total(), 3);
    }

    #[test]
    fn lifecycle_gauges_track_open_peak_refused_reaped_stalled() {
        let m = ServerMetrics::default();
        m.connection();
        m.connection();
        m.connection();
        m.connection_closed();
        m.connection();
        m.connection_closed();
        m.connection_refused();
        m.connection_idle_closed();
        m.outbox_full_stall();
        m.outbox_full_stall();
        let s = m.snapshot();
        assert_eq!(s.connections, 4);
        assert_eq!(s.conns_open, 2);
        assert_eq!(s.conns_peak, 3);
        assert_eq!(s.conns_refused, 1);
        assert_eq!(s.conns_idle_closed, 1);
        assert_eq!(s.outbox_full_stalls, 2);
    }
}
