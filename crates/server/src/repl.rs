//! Server-side replication: replica serving state and the WAL puller.
//!
//! A replica server (`qdb-server --replicate-from ADDR`) owns its engine
//! through a [`ReplicaState`] instead of the usual shared session stack.
//! The puller thread polls the primary with `REPLICATE` frames, applies
//! each returned WAL segment through the choice-preserving replay in
//! [`qdb_core::ReplicaApplier`], and acknowledges its durable horizon
//! with `REPL-ACK`. Connections on a replica route every request through
//! the same state: reads execute at the replica's horizon (a `SELECT`
//! degrades to its `PEEK` form — collapsing would make local choices the
//! primary never logged), writes are refused with the typed
//! `READ_ONLY` error code so `qdb-client` can fail over to the primary,
//! and `PROMOTE` turns the node into a writable primary by recovering
//! from the locally re-logged WAL — exactly the crash-recovery path.
//!
//! Promotion also happens automatically when the primary has been
//! unreachable for longer than `--promote-after-ms`: the puller tracks
//! its last successful contact and gives up on the stream past the
//! deadline. Segments already buffered but not fully framed are
//! discarded — they were never acknowledged, so no client was told they
//! are durable.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use qdb_core::wire::{self, Reply, Request};
use qdb_core::{QuantumDb, ReplicaApplier, ReplicaTracker, Response};
use qdb_logic::{parse_statement, ReadMode, Statement};

use crate::metrics::ServerMetrics;

/// Largest WAL slice shipped per `REPLICATE` poll. Well under the frame
/// bound so a segment reply can never trip `MAX_FRAME`.
pub(crate) const REPL_SEGMENT_MAX: usize = 1 << 20;

/// Which serving personality a connection was accepted under.
#[derive(Clone)]
pub(crate) enum ConnRole {
    /// Normal server: sessions execute against the shared engine, and
    /// `REPLICATE`/`REPL-ACK` frames are answered from the WAL, with
    /// per-replica progress recorded in the tracker.
    Primary { tracker: Arc<Mutex<ReplicaTracker>> },
    /// Replica server: every request routes through the replica state.
    Replica { state: Arc<ReplicaState> },
}

/// The replica's engine behind one mutex: the puller applies segments,
/// connections read, and `PROMOTE` swaps the whole mode over.
enum ReplicaEngine {
    /// Applying the primary's stream; serves reads at its horizon.
    Following(Box<ReplicaApplier>),
    /// Promoted to primary: a fully writable engine recovered from the
    /// locally re-logged WAL.
    Promoted(Box<QuantumDb>),
    /// Replay or promotion failed; the stored message answers every
    /// subsequent request. A diverged replica must not guess.
    Failed(String),
    /// Transient marker while promotion runs (the mutex is held).
    Promoting,
}

/// Shared state of a replica server.
pub struct ReplicaState {
    engine: Mutex<ReplicaEngine>,
    source: String,
    replica_id: String,
    promoted: AtomicBool,
}

impl ReplicaState {
    pub(crate) fn new(applier: ReplicaApplier, source: String, replica_id: String) -> Self {
        ReplicaState {
            engine: Mutex::new(ReplicaEngine::Following(Box::new(applier))),
            source,
            replica_id,
            promoted: AtomicBool::new(false),
        }
    }

    /// Primary address this replica follows.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// `true` once the node has promoted (explicitly or automatically).
    pub fn is_promoted(&self) -> bool {
        self.promoted.load(Ordering::Acquire)
    }

    /// Next WAL byte to request from the primary; `None` once the node
    /// is no longer following the stream.
    fn poll_cursor(&self) -> Option<u64> {
        match &*crate::lock(&self.engine) {
            ReplicaEngine::Following(a) => Some(a.fetch_offset()),
            _ => None,
        }
    }

    /// Apply one shipped segment; returns `(applied_offset, horizon)`
    /// for the acknowledgement. An apply error poisons the replica into
    /// `Failed` — serving guesses after divergence would be worse than
    /// refusing.
    fn apply_segment(&self, start_offset: u64, bytes: &[u8]) -> Result<(u64, u64), String> {
        let mut engine = crate::lock(&self.engine);
        match &mut *engine {
            ReplicaEngine::Following(applier) => match applier.apply_segment(start_offset, bytes) {
                Ok(_) => Ok((applier.applied_offset(), applier.horizon())),
                Err(e) => {
                    let msg = format!("replication apply failed: {e}");
                    *engine = ReplicaEngine::Failed(msg.clone());
                    Err(msg)
                }
            },
            ReplicaEngine::Promoted(_) => Err("node is promoted".into()),
            ReplicaEngine::Failed(e) => Err(e.clone()),
            ReplicaEngine::Promoting => Err("promotion in progress".into()),
        }
    }

    /// Promote to primary: recover a writable engine from the locally
    /// re-logged WAL (the crash-recovery path). Idempotent once
    /// promoted.
    pub fn promote(&self) -> Result<(), String> {
        let mut engine = crate::lock(&self.engine);
        match std::mem::replace(&mut *engine, ReplicaEngine::Promoting) {
            ReplicaEngine::Following(applier) => match applier.promote() {
                Ok(db) => {
                    *engine = ReplicaEngine::Promoted(Box::new(db));
                    self.promoted.store(true, Ordering::Release);
                    Ok(())
                }
                Err(e) => {
                    let msg = format!("promotion failed: {e}");
                    *engine = ReplicaEngine::Failed(msg.clone());
                    Err(msg)
                }
            },
            promoted @ ReplicaEngine::Promoted(_) => {
                *engine = promoted;
                Ok(())
            }
            ReplicaEngine::Failed(e) => {
                *engine = ReplicaEngine::Failed(e.clone());
                Err(e)
            }
            ReplicaEngine::Promoting => unreachable!("promotion runs under the engine mutex"),
        }
    }

    /// Execute one statement under the replica's serving rules.
    pub(crate) fn execute(&self, sql: &str, server: &ServerMetrics) -> Reply {
        let parsed = match parse_statement(sql) {
            Ok(p) => p,
            Err(e) => {
                return Reply::Error {
                    code: wire::code::LOGIC,
                    message: e.to_string(),
                }
            }
        };
        if parsed.param_count() > 0 {
            return Reply::Error {
                code: wire::code::PARAMS,
                message: format!(
                    "EXECUTE carries no parameters but the statement has {} placeholder(s); use PREPARE/BIND/RUN",
                    parsed.param_count()
                ),
            };
        }
        let stmt = parsed
            .statement()
            .expect("zero placeholders checked above")
            .clone();
        server.statement(stmt.kind());
        if matches!(stmt, Statement::Promote) {
            return match self.promote() {
                Ok(()) => Reply::Engine(Response::Ack),
                Err(e) => Reply::Error {
                    code: wire::code::INVARIANT,
                    message: e,
                },
            };
        }
        let mut engine = crate::lock(&self.engine);
        match &mut *engine {
            ReplicaEngine::Following(applier) => self.execute_following(applier, stmt, server),
            ReplicaEngine::Promoted(db) => match db.execute_stmt(stmt) {
                Ok(Response::Metrics(m)) => Reply::Stats {
                    engine: m,
                    server: server.snapshot(),
                    profile: Some(Box::new(db.profile())),
                },
                Ok(r) => Reply::Engine(r),
                Err(e) => Reply::Error {
                    code: wire::code_for(&e),
                    message: e.to_string(),
                },
            },
            ReplicaEngine::Failed(e) => Reply::Error {
                code: wire::code::INVARIANT,
                message: format!("replica is out of service: {e}"),
            },
            ReplicaEngine::Promoting => unreachable!("promotion runs under the engine mutex"),
        }
    }

    fn execute_following(
        &self,
        applier: &mut ReplicaApplier,
        stmt: Statement,
        server: &ServerMetrics,
    ) -> Reply {
        let stmt = match stmt {
            // Collapsing reads would ground transactions with locally
            // made choices the primary never logged; a replica serves
            // the peek form of the same query at its horizon instead.
            Statement::Select(mut sel) => {
                if sel.mode == ReadMode::Collapse {
                    sel.mode = ReadMode::Peek;
                }
                Statement::Select(sel)
            }
            Statement::ShowReplication => {
                return Reply::Engine(Response::Replication(Box::new(applier.report())));
            }
            read @ (Statement::ShowMetrics
            | Statement::ShowPending
            | Statement::ShowProfile
            | Statement::ShowEvents { .. }) => read,
            write => {
                return Reply::Error {
                    code: wire::code::READ_ONLY,
                    message: format!(
                        "replica '{}' is read-only: {} must run on the primary at {}",
                        self.replica_id,
                        write.kind(),
                        self.source
                    ),
                };
            }
        };
        match applier.db_mut().execute_stmt(stmt) {
            Ok(Response::Metrics(m)) => Reply::Stats {
                engine: m,
                server: server.snapshot(),
                profile: Some(Box::new(applier.db().profile())),
            },
            Ok(r) => Reply::Engine(r),
            Err(e) => Reply::Error {
                code: wire::code_for(&e),
                message: e.to_string(),
            },
        }
    }
}

/// Puller knobs, split off `ServerConfig`.
pub(crate) struct PullerConfig {
    pub source: String,
    pub replica_id: String,
    /// Sleep between polls once caught up.
    pub poll_interval: Duration,
    /// Auto-promote after this long without a successful exchange with
    /// the primary. `None` leaves promotion manual (`PROMOTE`).
    pub auto_promote_after: Option<Duration>,
}

/// Sleep in small slices so shutdown and promotion stay responsive.
fn sleep_responsive(total: Duration, shutdown: &AtomicBool, state: &ReplicaState) {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline {
        if shutdown.load(Ordering::Relaxed) || state.is_promoted() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5).min(total));
    }
}

/// The replication puller loop: poll, apply, ack; reconnect with bounded
/// exponential backoff; auto-promote past the dead-stream deadline.
pub(crate) fn run_puller(state: Arc<ReplicaState>, cfg: PullerConfig, shutdown: Arc<AtomicBool>) {
    const BACKOFF_MIN: Duration = Duration::from_millis(10);
    const BACKOFF_MAX: Duration = Duration::from_secs(1);
    let mut backoff = BACKOFF_MIN;
    let mut last_contact = Instant::now();
    let mut request_id: u32 = 0;
    'reconnect: while !shutdown.load(Ordering::Relaxed) && !state.is_promoted() {
        if let Some(limit) = cfg.auto_promote_after {
            if last_contact.elapsed() >= limit {
                if let Err(e) = state.promote() {
                    eprintln!("qdb-server: auto-promotion failed: {e}");
                }
                return;
            }
        }
        let mut stream = match TcpStream::connect(&cfg.source) {
            Ok(s) => s,
            Err(_) => {
                sleep_responsive(backoff, &shutdown, &state);
                backoff = (backoff * 2).min(BACKOFF_MAX);
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        // A primary that accepts but never answers must not block
        // auto-promotion forever.
        let _ = stream.set_read_timeout(Some(cfg.poll_interval.max(Duration::from_millis(500))));
        loop {
            if shutdown.load(Ordering::Relaxed) || state.is_promoted() {
                return;
            }
            let Some(from_offset) = state.poll_cursor() else {
                return; // promoted or failed under us
            };
            request_id = request_id.wrapping_add(1);
            let poll = wire::encode_request(
                request_id,
                &Request::Replicate {
                    replica_id: cfg.replica_id.clone(),
                    from_offset,
                },
            );
            if stream.write_all(&poll).is_err() {
                continue 'reconnect;
            }
            let reply = match wire::read_frame(&mut stream) {
                Ok(Some(frame)) => wire::decode_reply(&frame),
                Ok(None) | Err(_) => {
                    sleep_responsive(backoff, &shutdown, &state);
                    backoff = (backoff * 2).min(BACKOFF_MAX);
                    continue 'reconnect;
                }
            };
            match reply {
                Ok(Reply::WalSegment {
                    start_offset,
                    bytes,
                    ..
                }) => {
                    last_contact = Instant::now();
                    backoff = BACKOFF_MIN;
                    if bytes.is_empty() {
                        sleep_responsive(cfg.poll_interval, &shutdown, &state);
                        continue;
                    }
                    let (applied_offset, horizon) = match state.apply_segment(start_offset, &bytes)
                    {
                        Ok(progress) => progress,
                        Err(e) => {
                            eprintln!("qdb-server: replication stopped: {e}");
                            return;
                        }
                    };
                    request_id = request_id.wrapping_add(1);
                    let ack = wire::encode_request(
                        request_id,
                        &Request::ReplAck {
                            replica_id: cfg.replica_id.clone(),
                            applied_offset,
                            horizon,
                        },
                    );
                    if stream.write_all(&ack).is_err() {
                        continue 'reconnect;
                    }
                    match wire::read_frame(&mut stream) {
                        Ok(Some(_)) => {}
                        Ok(None) | Err(_) => continue 'reconnect,
                    }
                }
                // The peer answered but not with a segment (it may be a
                // replica itself, mid-promotion): stay connected, retry
                // after a poll interval.
                Ok(_) => sleep_responsive(cfg.poll_interval, &shutdown, &state),
                Err(_) => continue 'reconnect,
            }
        }
    }
}
