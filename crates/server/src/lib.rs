//! # qdb-server
//!
//! The network service layer of the quantum database: a TCP server
//! speaking the [`qdb_core::wire`] protocol over plain `std::net`, putting
//! the paper's middle-tier service (§2's booking scenarios assume many
//! concurrent users against contested resources) in front of the engine.
//!
//! ## Architecture
//!
//! ```text
//!            ┌───────────────┐   accept    ┌─ reader thread (1/conn) ─┐
//! clients ──▶│ listener thrd │────────────▶│ read_frame → conn queue  │
//!            └───────────────┘             └─────────────┬────────────┘
//!                                                        │ schedule
//!                                          ┌─────────────▼────────────┐
//!                                          │  fixed worker pool (N)   │
//!                                          │  drain queue in order,   │
//!                                          │  execute via Session,    │
//!                                          │  write replies           │
//!                                          └─────────────┬────────────┘
//!                                                        ▼
//!                                               SharedQuantumDb
//! ```
//!
//! Each connection owns a server-side [`qdb_core::Session`] (prepared
//! statements, LRU statement cache) and may pipeline many frames; the
//! scheduling discipline guarantees responses come back in request order
//! per connection while different connections execute on different
//! workers. Since the engine went partition-sharded
//! ([`qdb_core::shard`]), workers are *genuinely* parallel: statements
//! touching disjoint §4 partitions run their solver searches
//! concurrently under a shared base read lock instead of serializing on
//! one engine mutex, so server throughput on disjoint workloads scales
//! with the worker count (see the `partition_scaling` experiment in
//! `qdb-bench`). Every engine error is encoded as an `ERROR` frame — a
//! bad statement can never take the server down.
//!
//! ```no_run
//! use qdb_core::{QuantumDb, QuantumDbConfig};
//! use qdb_server::{Server, ServerConfig};
//!
//! let handle = Server::spawn(&ServerConfig::default()).unwrap();
//! println!("serving on {}", handle.addr());
//! handle.shutdown();
//! ```

mod conn;
pub mod metrics;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex, PoisonError, Weak};
use std::thread::JoinHandle;

use qdb_core::wire::ServerStats;
use qdb_core::{QuantumDb, QuantumDbConfig, SharedQuantumDb};

use conn::Conn;
pub use metrics::ServerMetrics;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks a free port (loopback tests).
    pub addr: String,
    /// Worker threads executing statements (≥ 1).
    pub workers: usize,
    /// Per-connection prepared-statement (parsed-text LRU) cache capacity
    /// (`qdb-server --prepared-cache`; `0` disables caching so every
    /// EXECUTE parses).
    pub prepared_cache: usize,
    /// Engine configuration for the owned database.
    pub engine: QuantumDbConfig,
    /// JSONL trace sink path (`qdb-server --trace-out`): every finished
    /// operation is appended as one JSON line (see
    /// `docs/OBSERVABILITY.md`). `None` disables the trace.
    pub trace_out: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            prepared_cache: qdb_core::Session::DEFAULT_STMT_CACHE,
            engine: QuantumDbConfig::default(),
            trace_out: None,
        }
    }
}

enum Job {
    Conn(Arc<Conn>),
    Shutdown,
}

/// The server entry points.
pub struct Server;

impl Server {
    /// Build a fresh engine from `cfg.engine` and serve it.
    pub fn spawn(cfg: &ServerConfig) -> io::Result<ServerHandle> {
        let db = QuantumDb::new(cfg.engine.clone())
            .map_err(|e| io::Error::other(format!("engine construction: {e}")))?
            .into_shared();
        if let Some(path) = &cfg.trace_out {
            let file = std::fs::File::create(path)
                .map_err(|e| io::Error::other(format!("trace sink {path}: {e}")))?;
            db.obs()
                .set_trace(Some(Box::new(std::io::BufWriter::new(file))));
        }
        Server::spawn_inner(&cfg.addr, cfg.workers, cfg.prepared_cache, db)
    }

    /// Serve an existing shared engine (embedding: pre-install schemas and
    /// data, keep a local handle next to the network endpoint). Uses the
    /// default prepared-statement cache capacity; [`Server::spawn`] honors
    /// [`ServerConfig::prepared_cache`].
    pub fn spawn_with_db(
        addr: &str,
        workers: usize,
        db: SharedQuantumDb,
    ) -> io::Result<ServerHandle> {
        Server::spawn_inner(addr, workers, qdb_core::Session::DEFAULT_STMT_CACHE, db)
    }

    fn spawn_inner(
        addr: &str,
        workers: usize,
        prepared_cache: usize,
        db: SharedQuantumDb,
    ) -> io::Result<ServerHandle> {
        let workers = workers.max(1);
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let metrics = Arc::new(ServerMetrics::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));

        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&job_rx);
                std::thread::Builder::new()
                    .name(format!("qdb-worker-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn worker thread")
            })
            .collect();

        let conns: Arc<Mutex<Vec<Weak<Conn>>>> = Arc::new(Mutex::new(Vec::new()));
        let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let listener_handle = {
            let db = db.clone();
            let metrics = Arc::clone(&metrics);
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            let readers = Arc::clone(&readers);
            let job_tx = job_tx.clone();
            std::thread::Builder::new()
                .name("qdb-listener".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        if let Ok(reader) = accept(
                            stream,
                            &db,
                            prepared_cache,
                            &metrics,
                            &conns,
                            &job_tx,
                            &shutdown,
                        ) {
                            let mut list = lock(&readers);
                            // Reap readers whose connections already
                            // ended, so handles do not accumulate over a
                            // long-lived server's lifetime.
                            list.retain(|h: &JoinHandle<()>| !h.is_finished());
                            list.push(reader);
                        }
                    }
                })
                .expect("spawn listener thread")
        };

        Ok(ServerHandle {
            addr: local_addr,
            db,
            metrics,
            shutdown,
            job_tx,
            listener: Some(listener_handle),
            workers: worker_handles,
            conns,
            readers,
        })
    }
}

/// Set up one accepted connection: register it and start its reader
/// thread. Returns the reader's join handle.
#[allow(clippy::too_many_arguments)] // internal plumbing, one call site
fn accept(
    stream: TcpStream,
    db: &SharedQuantumDb,
    prepared_cache: usize,
    metrics: &Arc<ServerMetrics>,
    conns: &Arc<Mutex<Vec<Weak<Conn>>>>,
    job_tx: &Sender<Job>,
    shutdown: &Arc<AtomicBool>,
) -> io::Result<JoinHandle<()>> {
    let _ = stream.set_nodelay(true);
    let write = stream.try_clone()?;
    metrics.connection();
    let conn = Arc::new(Conn::new(
        stream.try_clone()?,
        write,
        qdb_core::Session::with_stmt_cache(db.clone(), prepared_cache),
        Arc::clone(metrics),
    ));
    {
        let mut list = lock(conns);
        list.retain(|w| w.strong_count() > 0); // collect dead entries
        list.push(Arc::downgrade(&conn));
    }
    let metrics = Arc::clone(metrics);
    let job_tx = job_tx.clone();
    let shutdown = Arc::clone(shutdown);
    std::thread::Builder::new()
        .name("qdb-reader".to_string())
        .spawn(move || reader_loop(stream, conn, &metrics, &job_tx, &shutdown))
}

/// A reader stops pulling frames off its socket while this many are
/// already queued for execution — backpressure propagates to the client
/// through the TCP window instead of growing server memory.
const MAX_QUEUED_FRAMES: usize = 256;

/// Decode frames off one socket until EOF/error, handing them to the pool.
fn reader_loop(
    mut stream: TcpStream,
    conn: Arc<Conn>,
    metrics: &ServerMetrics,
    job_tx: &Sender<Job>,
    shutdown: &AtomicBool,
) {
    // A clean EOF or any transport error ends the connection.
    while let Ok(Some(frame)) = qdb_core::wire::read_frame(&mut stream) {
        metrics.frame_in(frame.wire_len());
        if conn.enqueue(frame) {
            // The connection was idle: schedule it. A send error means
            // the pool is gone (shutdown) — stop reading.
            if job_tx.send(Job::Conn(Arc::clone(&conn))).is_err() {
                break;
            }
        }
        // Backpressure: a pipelining client that outruns the workers is
        // left sitting in its socket buffer until the queue drains.
        while conn.queued() >= MAX_QUEUED_FRAMES && !shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
}

/// Wait for the next job. The receiver guard is scoped to this call so
/// workers hold the lock only while waiting, never while executing.
fn next_job(rx: &Mutex<Receiver<Job>>) -> Option<Job> {
    lock(rx).recv().ok()
}

fn worker_loop(rx: &Arc<Mutex<Receiver<Job>>>) {
    while let Some(job) = next_job(rx) {
        match job {
            Job::Conn(conn) => conn.drain(),
            Job::Shutdown => break,
        }
    }
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    db: SharedQuantumDb,
    metrics: Arc<ServerMetrics>,
    shutdown: Arc<AtomicBool>,
    job_tx: Sender<Job>,
    listener: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<Weak<Conn>>>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (with the actual port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served engine — embedders can install schemas or inspect state
    /// directly while the server is live.
    pub fn db(&self) -> &SharedQuantumDb {
        &self.db
    }

    /// Snapshot of the server-side traffic counters.
    pub fn stats(&self) -> ServerStats {
        self.metrics.snapshot()
    }

    /// Block until the listener thread exits (i.e. serve forever; used by
    /// the `qdb-server` binary).
    pub fn wait(mut self) {
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
    }

    /// Stop accepting, close live connections, drain queued work, and
    /// join every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock `accept` so the listener observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
        // Close sockets → readers unblock and exit.
        for conn in lock(&self.conns).iter().filter_map(Weak::upgrade) {
            conn.close();
        }
        for reader in lock(&self.readers).drain(..) {
            let _ = reader.join();
        }
        // Sentinels queue *behind* any remaining work, so workers finish
        // in-flight statements before exiting.
        for _ in 0..self.workers.len() {
            let _ = self.job_tx.send(Job::Shutdown);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_core::wire::{self, Reply, Request};
    use qdb_core::Response;
    use std::io::Write;

    fn roundtrip(stream: &mut TcpStream, req: &Request) -> Reply {
        stream.write_all(&wire::encode_request(1, req)).unwrap();
        let frame = wire::read_frame(stream).unwrap().expect("reply frame");
        assert_eq!(frame.request_id, 1);
        wire::decode_reply(&frame).unwrap()
    }

    #[test]
    fn spawn_execute_shutdown() {
        let handle = Server::spawn(&ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let reply = roundtrip(
            &mut stream,
            &Request::Execute {
                sql: "CREATE TABLE T (a INT)".into(),
            },
        );
        assert_eq!(reply, Reply::Engine(Response::Ack));
        let reply = roundtrip(
            &mut stream,
            &Request::Execute {
                sql: "CREATE TABLE T (a INT)".into(),
            },
        );
        assert!(matches!(
            reply,
            Reply::Error {
                code: wire::code::STORAGE,
                ..
            }
        ));
        drop(stream);
        handle.shutdown();
    }

    #[test]
    fn garbage_frame_kind_gets_protocol_error_not_a_crash() {
        let handle = Server::spawn(&ServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // Hand-build a frame with an unknown kind byte.
        stream.write_all(&[5, 0, 0, 0, 0x77, 9, 0, 0, 0]).unwrap();
        let frame = wire::read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(frame.request_id, 9);
        let reply = wire::decode_reply(&frame).unwrap();
        assert!(matches!(
            reply,
            Reply::Error {
                code: wire::code::PROTOCOL,
                ..
            }
        ));
        // The connection survives for well-formed follow-ups.
        let reply = roundtrip(
            &mut stream,
            &Request::Execute {
                sql: "SHOW PENDING".into(),
            },
        );
        assert_eq!(reply, Reply::Engine(Response::Pending(vec![])));
        handle.shutdown();
    }
}
