//! # qdb-server
//!
//! The network service layer of the quantum database: a TCP server
//! speaking the [`qdb_core::wire`] protocol over plain `std::net`, putting
//! the paper's middle-tier service (§2's booking scenarios assume many
//! concurrent users against contested resources) in front of the engine.
//!
//! ## Architecture
//!
//! ```text
//!            ┌──────────── reactor thread (epoll) ────────────┐
//! clients ──▶│ non-blocking accept · read → try_frame → queue │
//!            │ flush outboxes · idle timer wheel · admission  │
//!            └───────┬────────────────────────────▲───────────┘
//!                    │ schedule (frame queue)     │ kick (full outbox,
//!                    ▼                            │  resume reads, …)
//!            ┌────────────────────────────────────┴───────────┐
//!            │ executor pool (N threads): drain one           │
//!            │ connection's frames in order, execute via      │
//!            │ Session, append replies to its bounded outbox  │
//!            └───────────────────────┬────────────────────────┘
//!                                    ▼
//!                            SharedQuantumDb
//! ```
//!
//! A single reactor thread owns every socket's readiness through a
//! vendored epoll shim (`sys`): it accepts (with an admission limit),
//! reads and frames bytes, hands decoded frames to the executor pool,
//! flushes reply bytes the executors could not write inline, and reaps
//! idle connections off a timer wheel. Executors never block on I/O and
//! the reactor never executes a statement, so one slow client — or ten
//! thousand idle ones — cannot stall the rest.
//!
//! Each connection owns a server-side [`qdb_core::Session`] (prepared
//! statements, LRU statement cache) and may pipeline many frames; the
//! scheduling discipline guarantees responses come back in request order
//! per connection while different connections execute on different
//! workers. Backpressure is explicit at both ends of a connection: reads
//! pause while its decoded-frame queue or outbox is saturated, and a
//! drainer stalls (counted in `outbox_full_stalls`) rather than buffer
//! more than [`ServerConfig::outbox_limit`] bytes toward a client that
//! has stopped reading. Every engine error is encoded as an `ERROR`
//! frame — a bad statement can never take the server down.
//!
//! ```no_run
//! use qdb_core::{QuantumDb, QuantumDbConfig};
//! use qdb_server::{Server, ServerConfig};
//!
//! let handle = Server::spawn(&ServerConfig::default()).unwrap();
//! println!("serving on {}", handle.addr());
//! handle.shutdown();
//! ```

mod conn;
pub mod metrics;
mod reactor;
pub mod repl;
pub mod sys;

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex, PoisonError, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use qdb_core::wire::ServerStats;
use qdb_core::{QuantumDb, QuantumDbConfig, SharedQuantumDb};

use conn::Conn;
pub use metrics::ServerMetrics;
use qdb_core::{ReplicaApplier, ReplicaTracker};
use reactor::{new_reactor, Notifier, ReactorConfig};
pub use repl::ReplicaState;
use repl::{run_puller, ConnRole, PullerConfig};
pub use sys::raise_nofile_limit;

pub(crate) fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The reactor stops decoding frames for a connection while this many
/// are already queued for execution — backpressure propagates to the
/// client through the TCP window instead of growing server memory.
pub(crate) const MAX_QUEUED_FRAMES: usize = 256;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks a free port (loopback tests).
    pub addr: String,
    /// Executor threads running statements (≥ 1).
    pub workers: usize,
    /// Per-connection prepared-statement (parsed-text LRU) cache capacity
    /// (`qdb-server --prepared-cache`; `0` disables caching so every
    /// EXECUTE parses).
    pub prepared_cache: usize,
    /// Engine configuration for the owned database.
    pub engine: QuantumDbConfig,
    /// JSONL trace sink path (`qdb-server --trace-out`): every finished
    /// operation is appended as one JSON line (see
    /// `docs/OBSERVABILITY.md`). `None` disables the trace.
    pub trace_out: Option<String>,
    /// Admission limit: connections accepted past this are immediately
    /// closed and counted in `conns_refused`.
    pub max_connections: usize,
    /// Reap connections with no inbound traffic for this long (timer
    /// wheel, ~1/8-timeout granularity). `None` disables reaping.
    pub idle_timeout: Option<Duration>,
    /// Per-connection outbox bound in bytes: a drainer stalls instead of
    /// buffering more than this toward a client that stopped reading
    /// (one in-flight reply may transiently exceed it).
    pub outbox_limit: usize,
    /// Serve as a replica of the primary at this address
    /// (`qdb-server --replicate-from`): pull its WAL, serve reads at the
    /// replication horizon, refuse writes with the `READ_ONLY` code.
    pub replicate_from: Option<String>,
    /// Name this replica reports to the primary (`SHOW REPLICATION`
    /// there lists per-replica lag under it).
    pub replica_id: String,
    /// How long a caught-up replica sleeps between WAL polls.
    pub repl_poll_interval: Duration,
    /// Auto-promote to primary after this long without a successful
    /// exchange with the upstream. `None` leaves promotion manual.
    pub auto_promote_after: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            prepared_cache: qdb_core::Session::DEFAULT_STMT_CACHE,
            engine: QuantumDbConfig::default(),
            trace_out: None,
            max_connections: 16_384,
            idle_timeout: None,
            outbox_limit: 256 * 1024,
            replicate_from: None,
            replica_id: "replica-1".to_string(),
            repl_poll_interval: Duration::from_millis(20),
            auto_promote_after: None,
        }
    }
}

/// Graceful-shutdown signal shared with the reactor: once active, the
/// listener is dropped and the loop runs until every connection has
/// executed its queued frames and flushed its outbox (or the deadline
/// passes).
pub(crate) struct DrainSignal {
    active: AtomicBool,
    deadline: Mutex<Option<std::time::Instant>>,
}

impl DrainSignal {
    fn new() -> Self {
        DrainSignal {
            active: AtomicBool::new(false),
            deadline: Mutex::new(None),
        }
    }

    fn arm(&self, timeout: Duration) {
        *lock(&self.deadline) = Some(std::time::Instant::now() + timeout);
        self.active.store(true, Ordering::SeqCst);
    }

    pub(crate) fn active(&self) -> bool {
        self.active.load(Ordering::SeqCst)
    }

    pub(crate) fn expired(&self) -> bool {
        matches!(*lock(&self.deadline), Some(d) if std::time::Instant::now() >= d)
    }
}

pub(crate) enum Job {
    Conn(Arc<Conn>),
    Shutdown,
}

/// The server entry points.
pub struct Server;

impl Server {
    /// Build a fresh engine from `cfg.engine` and serve it. With
    /// `cfg.replicate_from` set, the node comes up as a replica instead:
    /// its engine is fed from the primary's WAL stream and the session
    /// stack is bypassed (see [`repl::ReplicaState`]).
    pub fn spawn(cfg: &ServerConfig) -> io::Result<ServerHandle> {
        let db = QuantumDb::new(cfg.engine.clone())
            .map_err(|e| io::Error::other(format!("engine construction: {e}")))?
            .into_shared();
        if let Some(path) = &cfg.trace_out {
            let file = std::fs::File::create(path)
                .map_err(|e| io::Error::other(format!("trace sink {path}: {e}")))?;
            db.obs()
                .set_trace(Some(Box::new(std::io::BufWriter::new(file))));
        }
        Server::spawn_inner(cfg, db)
    }

    /// Serve an existing shared engine (embedding: pre-install schemas and
    /// data, keep a local handle next to the network endpoint). Uses
    /// default serving knobs except `addr` and `workers`;
    /// [`Server::spawn`] honors the full [`ServerConfig`].
    pub fn spawn_with_db(
        addr: &str,
        workers: usize,
        db: SharedQuantumDb,
    ) -> io::Result<ServerHandle> {
        let cfg = ServerConfig {
            addr: addr.to_string(),
            workers,
            ..ServerConfig::default()
        };
        Server::spawn_inner(&cfg, db)
    }

    fn spawn_inner(cfg: &ServerConfig, db: SharedQuantumDb) -> io::Result<ServerHandle> {
        let workers = cfg.workers.max(1);
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let metrics = Arc::new(ServerMetrics::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let drain = Arc::new(DrainSignal::new());
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (notifier, wake_rx) = Notifier::new()?;
        let notifier = Arc::new(notifier);
        let registry: Arc<Mutex<Vec<Weak<Conn>>>> = Arc::new(Mutex::new(Vec::new()));

        // Replica mode: a dedicated engine behind the replica state (the
        // sessions' shared engine goes unused — connections route around
        // it) plus the puller thread feeding it from the primary.
        let (role, replica, puller) = match &cfg.replicate_from {
            Some(source) => {
                let engine = QuantumDb::new(cfg.engine.clone())
                    .map_err(|e| io::Error::other(format!("replica engine: {e}")))?;
                let state = Arc::new(ReplicaState::new(
                    ReplicaApplier::new(engine),
                    source.clone(),
                    cfg.replica_id.clone(),
                ));
                let puller_cfg = PullerConfig {
                    source: source.clone(),
                    replica_id: cfg.replica_id.clone(),
                    poll_interval: cfg.repl_poll_interval,
                    auto_promote_after: cfg.auto_promote_after,
                };
                let puller_state = Arc::clone(&state);
                let puller_shutdown = Arc::clone(&shutdown);
                let handle = std::thread::Builder::new()
                    .name("qdb-repl-puller".to_string())
                    .spawn(move || run_puller(puller_state, puller_cfg, puller_shutdown))
                    .expect("spawn puller thread");
                (
                    ConnRole::Replica {
                        state: Arc::clone(&state),
                    },
                    Some(state),
                    Some(handle),
                )
            }
            None => (
                ConnRole::Primary {
                    tracker: Arc::new(Mutex::new(ReplicaTracker::new())),
                },
                None,
                None,
            ),
        };

        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&job_rx);
                std::thread::Builder::new()
                    .name(format!("qdb-worker-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn worker thread")
            })
            .collect();

        let reactor = new_reactor(
            listener,
            db.clone(),
            ReactorConfig {
                prepared_cache: cfg.prepared_cache,
                max_connections: cfg.max_connections,
                outbox_limit: cfg.outbox_limit.max(1),
                idle_timeout: cfg.idle_timeout,
            },
            Arc::clone(&metrics),
            Arc::clone(&notifier),
            wake_rx,
            Arc::clone(&shutdown),
            Arc::clone(&drain),
            job_tx.clone(),
            Arc::clone(&registry),
            role,
        )?;
        let reactor_handle = std::thread::Builder::new()
            .name("qdb-reactor".to_string())
            .spawn(move || reactor.run())
            .expect("spawn reactor thread");

        Ok(ServerHandle {
            addr: local_addr,
            db,
            metrics,
            shutdown,
            drain,
            job_tx,
            notifier,
            reactor: Some(reactor_handle),
            workers: worker_handles,
            registry,
            replica,
            puller,
        })
    }
}

/// Wait for the next job. The receiver guard is scoped to this call so
/// workers hold the lock only while waiting, never while executing.
fn next_job(rx: &Mutex<Receiver<Job>>) -> Option<Job> {
    lock(rx).recv().ok()
}

fn worker_loop(rx: &Arc<Mutex<Receiver<Job>>>) {
    while let Some(job) = next_job(rx) {
        match job {
            Job::Conn(conn) => conn.drain(),
            Job::Shutdown => break,
        }
    }
}

/// Live-connection memory accounting (see [`ServerHandle::conn_memory`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnMemory {
    /// Connections currently tracked.
    pub conns: usize,
    /// Estimated user-space bytes of per-connection state across all of
    /// them: connection struct (session + id maps headers included) plus
    /// live read-buffer and outbox capacities. Kernel socket buffers and
    /// session-cache heap allocations are not counted.
    pub bytes: u64,
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    db: SharedQuantumDb,
    metrics: Arc<ServerMetrics>,
    shutdown: Arc<AtomicBool>,
    drain: Arc<DrainSignal>,
    job_tx: Sender<Job>,
    notifier: Arc<Notifier>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    registry: Arc<Mutex<Vec<Weak<Conn>>>>,
    replica: Option<Arc<ReplicaState>>,
    puller: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the actual port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served engine — embedders can install schemas or inspect state
    /// directly while the server is live.
    pub fn db(&self) -> &SharedQuantumDb {
        &self.db
    }

    /// Snapshot of the server-side traffic counters.
    pub fn stats(&self) -> ServerStats {
        self.metrics.snapshot()
    }

    /// Sum the per-connection state estimate over live connections — the
    /// "bytes per idle connection" number the `connection_scale` bench
    /// reports.
    pub fn conn_memory(&self) -> ConnMemory {
        let mut out = ConnMemory { conns: 0, bytes: 0 };
        for conn in lock(&self.registry).iter().filter_map(Weak::upgrade) {
            out.conns += 1;
            out.bytes += conn.mem_bytes();
        }
        out
    }

    /// Block until the reactor thread exits (i.e. serve forever; used by
    /// the `qdb-server` binary).
    pub fn wait(mut self) {
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
    }

    /// The replica state when this server was spawned with
    /// `replicate_from` — promotion status and manual [`ReplicaState::promote`].
    pub fn replica(&self) -> Option<&Arc<ReplicaState>> {
        self.replica.as_ref()
    }

    /// Stop accepting, close live connections, discard queued work, and
    /// join every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Graceful shutdown: stop accepting, keep the reactor and executors
    /// running until every live connection has executed its queued
    /// frames and flushed its outbox (bounded by `timeout`), then join
    /// every thread. In-flight pipelines get their replies; idle
    /// connections are closed without them losing anything.
    pub fn shutdown_graceful(mut self, timeout: Duration) {
        if !self.shutdown.load(Ordering::SeqCst) {
            self.drain.arm(timeout);
            self.notifier.wake();
            if let Some(h) = self.reactor.take() {
                let _ = h.join();
            }
        }
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the reactor so it observes the flag; it closes the
        // listener and every connection on its way out.
        self.notifier.wake();
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        // Sentinels queue *behind* any remaining work, so workers finish
        // whatever the reactor had scheduled before exiting.
        for _ in 0..self.workers.len() {
            let _ = self.job_tx.send(Job::Shutdown);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(h) = self.puller.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_core::wire::{self, Reply, Request};
    use qdb_core::Response;
    use std::io::Write;
    use std::net::TcpStream;

    fn roundtrip(stream: &mut TcpStream, req: &Request) -> Reply {
        stream.write_all(&wire::encode_request(1, req)).unwrap();
        let frame = wire::read_frame(stream).unwrap().expect("reply frame");
        assert_eq!(frame.request_id, 1);
        wire::decode_reply(&frame).unwrap()
    }

    #[test]
    fn spawn_execute_shutdown() {
        let handle = Server::spawn(&ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let reply = roundtrip(
            &mut stream,
            &Request::Execute {
                sql: "CREATE TABLE T (a INT)".into(),
            },
        );
        assert_eq!(reply, Reply::Engine(Response::Ack));
        let reply = roundtrip(
            &mut stream,
            &Request::Execute {
                sql: "CREATE TABLE T (a INT)".into(),
            },
        );
        assert!(matches!(
            reply,
            Reply::Error {
                code: wire::code::STORAGE,
                ..
            }
        ));
        drop(stream);
        handle.shutdown();
    }

    #[test]
    fn garbage_frame_kind_gets_protocol_error_not_a_crash() {
        let handle = Server::spawn(&ServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // Hand-build a frame with an unknown kind byte.
        stream.write_all(&[5, 0, 0, 0, 0x77, 9, 0, 0, 0]).unwrap();
        let frame = wire::read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(frame.request_id, 9);
        let reply = wire::decode_reply(&frame).unwrap();
        assert!(matches!(
            reply,
            Reply::Error {
                code: wire::code::PROTOCOL,
                ..
            }
        ));
        // The connection survives for well-formed follow-ups.
        let reply = roundtrip(
            &mut stream,
            &Request::Execute {
                sql: "SHOW PENDING".into(),
            },
        );
        assert_eq!(reply, Reply::Engine(Response::Pending(vec![])));
        handle.shutdown();
    }

    fn exec(stream: &mut TcpStream, sql: &str) -> Reply {
        roundtrip(
            stream,
            &Request::Execute {
                sql: sql.to_string(),
            },
        )
    }

    fn booking_sql(user: &str, flight: i64) -> String {
        format!(
            "SELECT @s FROM Available({flight}, @s) CHOOSE 1 FOLLOWED BY \
             (DELETE ({flight}, @s) FROM Available; \
              INSERT ('{user}', {flight}, @s) INTO Bookings)"
        )
    }

    fn seed_primary(stream: &mut TcpStream) {
        assert_eq!(
            exec(stream, "CREATE TABLE Available (flight INT, seat TEXT)"),
            Reply::Engine(Response::Ack)
        );
        assert_eq!(
            exec(
                stream,
                "CREATE TABLE Bookings (name TEXT, flight INT, seat TEXT)"
            ),
            Reply::Engine(Response::Ack)
        );
        for seat in ["1A", "1B", "1C"] {
            assert_eq!(
                exec(
                    stream,
                    &format!("INSERT INTO Available VALUES (1, '{seat}')")
                ),
                Reply::Engine(Response::Written(true))
            );
        }
    }

    fn replica_of(primary: &ServerHandle) -> ServerHandle {
        Server::spawn(&ServerConfig {
            replicate_from: Some(primary.addr().to_string()),
            repl_poll_interval: Duration::from_millis(2),
            ..ServerConfig::default()
        })
        .expect("replica server")
    }

    /// Poll the primary's tracker until the named replica has acked the
    /// full WAL.
    fn await_caught_up(primary_conn: &mut TcpStream) {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            if let Reply::Engine(Response::Replication(report)) =
                exec(primary_conn, "SHOW REPLICATION")
            {
                if report
                    .replicas
                    .iter()
                    .any(|r| r.acked_offset == report.wal_len && report.wal_len > 0)
                {
                    return;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "replica never caught up"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn replica_follows_primary_serves_reads_and_refuses_writes() {
        let primary = Server::spawn(&ServerConfig::default()).unwrap();
        let mut p = TcpStream::connect(primary.addr()).unwrap();
        seed_primary(&mut p);
        assert!(matches!(
            exec(&mut p, &booking_sql("Mickey", 1)),
            Reply::Engine(Response::Committed(0))
        ));
        let replica = replica_of(&primary);
        await_caught_up(&mut p);

        let mut r = TcpStream::connect(replica.addr()).unwrap();
        // Reads serve at the horizon; the collapsing SELECT degrades to
        // its peek form (§3.2.2 option 2): answered against one possible
        // world without grounding anything, so Mickey's pending booking
        // consumes a seat in the answer but fixes nothing.
        let rows = exec(&mut r, "SELECT * FROM Available(@f, @s)");
        let Reply::Engine(Response::Rows(rows)) = rows else {
            panic!("replica SELECT answered {rows:?}");
        };
        assert_eq!(rows.len(), 2, "3 seats minus the pending booking's pick");
        // The pending transaction stays pending: no replica-side ground.
        assert_eq!(
            exec(&mut r, "SHOW PENDING"),
            Reply::Engine(Response::Pending(vec![0]))
        );
        // The replica reports its own role and upstream cursor.
        let rep = exec(&mut r, "SHOW REPLICATION");
        let Reply::Engine(Response::Replication(report)) = rep else {
            panic!("SHOW REPLICATION answered {rep:?}");
        };
        assert_eq!(report.role.to_string(), "replica");
        // Writes and prepared statements are refused with the typed
        // read-only code clients fail over on.
        for sql in [
            "INSERT INTO Available VALUES (9, '9Z')",
            "GROUND 0",
            "CHECKPOINT",
            &booking_sql("Donald", 1),
        ] {
            assert!(
                matches!(
                    exec(&mut r, sql),
                    Reply::Error {
                        code: wire::code::READ_ONLY,
                        ..
                    }
                ),
                "{sql} must be refused read-only"
            );
        }
        assert!(matches!(
            roundtrip(
                &mut r,
                &Request::Prepare {
                    stmt: 1,
                    sql: "SHOW PENDING".into()
                }
            ),
            Reply::Error {
                code: wire::code::READ_ONLY,
                ..
            }
        ));
        // The primary's tracker shows the replica at zero lag.
        let rep = exec(&mut p, "SHOW REPLICATION");
        let Reply::Engine(Response::Replication(report)) = rep else {
            panic!("SHOW REPLICATION answered {rep:?}");
        };
        assert_eq!(report.role.to_string(), "primary");
        let status = report.replicas.first().expect("one replica tracked");
        assert_eq!(status.lag_bytes, 0);
        assert_eq!(status.horizon, 0, "one pending txn, id 0");

        // Kill the primary and promote: the replica recovers a writable
        // engine from its locally re-logged WAL, pending state intact.
        primary.shutdown();
        assert_eq!(exec(&mut r, "PROMOTE"), Reply::Engine(Response::Ack));
        assert_eq!(
            exec(&mut r, "SHOW PENDING"),
            Reply::Engine(Response::Pending(vec![0])),
            "the acknowledged booking survives promotion"
        );
        assert_eq!(
            exec(&mut r, "INSERT INTO Available VALUES (9, '9Z')"),
            Reply::Engine(Response::Written(true))
        );
        assert!(replica.replica().unwrap().is_promoted());
        replica.shutdown();
    }

    #[test]
    fn replica_auto_promotes_when_the_stream_dies() {
        let primary = Server::spawn(&ServerConfig::default()).unwrap();
        let mut p = TcpStream::connect(primary.addr()).unwrap();
        seed_primary(&mut p);
        let replica = Server::spawn(&ServerConfig {
            replicate_from: Some(primary.addr().to_string()),
            repl_poll_interval: Duration::from_millis(2),
            auto_promote_after: Some(Duration::from_millis(250)),
            ..ServerConfig::default()
        })
        .unwrap();
        await_caught_up(&mut p);
        drop(p);
        primary.shutdown();
        // The puller's contact deadline fires and the node promotes by
        // itself; a write eventually succeeds on the same listener.
        let mut r = TcpStream::connect(replica.addr()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match exec(&mut r, "INSERT INTO Available VALUES (2, '2A')") {
                Reply::Engine(Response::Written(true)) => break,
                Reply::Error {
                    code: wire::code::READ_ONLY,
                    ..
                } => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "auto-promotion never happened"
                    );
                    std::thread::sleep(Duration::from_millis(20));
                }
                other => panic!("unexpected reply while waiting for promotion: {other:?}"),
            }
        }
        assert!(replica.replica().unwrap().is_promoted());
        replica.shutdown();
    }

    #[test]
    fn graceful_shutdown_answers_pipelined_work_first() {
        let handle = Server::spawn(&ServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // Warm-up roundtrip: the server has definitely installed us.
        assert_eq!(
            exec(&mut stream, "SHOW PENDING"),
            Reply::Engine(Response::Pending(vec![]))
        );
        let mut batch = Vec::new();
        for i in 0..50u32 {
            batch.extend_from_slice(&wire::encode_request(
                100 + i,
                &Request::Execute {
                    sql: "SHOW PENDING".into(),
                },
            ));
        }
        stream.write_all(&batch).unwrap();
        let drainer = std::thread::spawn(move || handle.shutdown_graceful(Duration::from_secs(10)));
        // Every pipelined request gets its reply before the server goes
        // away, in order.
        for i in 0..50u32 {
            let frame = wire::read_frame(&mut stream)
                .unwrap()
                .unwrap_or_else(|| panic!("connection closed before reply {i}"));
            assert_eq!(frame.request_id, 100 + i);
            assert_eq!(
                wire::decode_reply(&frame).unwrap(),
                Reply::Engine(Response::Pending(vec![]))
            );
        }
        drainer.join().unwrap();
        // After the drain the connection is actually closed.
        match wire::read_frame(&mut stream) {
            Ok(None) | Err(_) => {}
            Ok(Some(f)) => panic!("unexpected frame after graceful shutdown: {f:?}"),
        }
    }

    #[test]
    fn admission_limit_refuses_then_recovers() {
        let handle = Server::spawn(&ServerConfig {
            max_connections: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        // Round-trip on both admitted connections so the server has
        // definitely registered them (connect() alone only proves the
        // kernel's SYN queue accepted us).
        let mut a = TcpStream::connect(handle.addr()).unwrap();
        let mut b = TcpStream::connect(handle.addr()).unwrap();
        for s in [&mut a, &mut b] {
            let reply = roundtrip(
                s,
                &Request::Execute {
                    sql: "SHOW PENDING".into(),
                },
            );
            assert_eq!(reply, Reply::Engine(Response::Pending(vec![])));
        }
        // The third connection is accepted then immediately closed.
        let mut refused = TcpStream::connect(handle.addr()).unwrap();
        // The write itself may already fail if the reset beat us to it.
        let _ = refused.write_all(&wire::encode_request(
            1,
            &Request::Execute {
                sql: "SHOW PENDING".into(),
            },
        ));
        match wire::read_frame(&mut refused) {
            Ok(None) | Err(_) => {} // EOF or reset: refused
            Ok(Some(f)) => panic!("refused connection got a reply: {f:?}"),
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while handle.stats().conns_refused == 0 {
            assert!(std::time::Instant::now() < deadline, "refusal not counted");
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = handle.stats();
        assert_eq!(stats.conns_refused, 1);
        assert_eq!(stats.conns_open, 2);
        assert_eq!(stats.conns_peak, 2);
        // Room frees up when an admitted connection leaves.
        drop(a);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while handle.stats().conns_open > 1 {
            assert!(std::time::Instant::now() < deadline, "close not observed");
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut c = TcpStream::connect(handle.addr()).unwrap();
        let reply = roundtrip(
            &mut c,
            &Request::Execute {
                sql: "SHOW PENDING".into(),
            },
        );
        assert_eq!(reply, Reply::Engine(Response::Pending(vec![])));
        handle.shutdown();
    }
}
