//! The event loop: one thread owning every socket's readiness.
//!
//! The reactor accepts, reads, decodes, flushes, reaps, and *never*
//! executes a statement — decoded frames are handed to the executor pool
//! (see `crate::worker_loop`) so solver work cannot stall I/O. All
//! `epoll_ctl` calls happen on this thread; executors communicate
//! interest changes through [`Notifier::kick`] (a token queue plus a
//! one-byte pipe write), which sidesteps the classic fd-reuse race of
//! multi-threaded epoll registration.
//!
//! Connection slots live in a slab indexed by the epoll token's low
//! bits; the high bits carry a generation counter so a late event or
//! timer entry for a recycled slot is recognized and dropped.
//!
//! Idle connections sit on a lazy timer wheel: one entry per connection,
//! re-examined only when its deadline fires. Activity just stamps
//! [`Conn::last_active`]; a fired entry whose connection has been active
//! re-inserts itself at the new deadline, so 10k idle connections cost
//! zero per-request work and O(1) per wheel tick.

use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

use qdb_core::wire;
use qdb_core::SharedQuantumDb;

use crate::conn::Conn;
use crate::metrics::ServerMetrics;
use crate::repl::ConnRole;
use crate::sys::{Event, Poller};
use crate::{DrainSignal, Job, MAX_QUEUED_FRAMES};

/// Epoll token of the accept socket.
const TOKEN_LISTENER: u64 = 0;
/// Epoll token of the waker pipe's read end.
const TOKEN_WAKER: u64 = 1;
/// Connection tokens: `(generation << 32) | slot_index`, generation ≥ 1.
fn conn_token(idx: usize, gen: u32) -> u64 {
    ((gen as u64) << 32) | idx as u64
}

fn token_parts(token: u64) -> (usize, u32) {
    ((token & 0xffff_ffff) as usize, (token >> 32) as u32)
}

/// How executor threads (and the shutdown path) get the reactor's
/// attention: queue a token, poke the pipe.
pub(crate) struct Notifier {
    kicks: Mutex<Vec<u64>>,
    wake_tx: UnixStream,
}

impl Notifier {
    /// Returns the notifier plus the read end the reactor registers.
    pub(crate) fn new() -> io::Result<(Notifier, UnixStream)> {
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        Ok((
            Notifier {
                kicks: Mutex::new(Vec::new()),
                wake_tx,
            },
            wake_rx,
        ))
    }

    pub(crate) fn kick(&self, token: u64) {
        let first = {
            let mut kicks = crate::lock(&self.kicks);
            kicks.push(token);
            kicks.len() == 1
        };
        if first {
            self.wake();
        }
    }

    /// Wake the reactor without a target (shutdown notice). A full pipe
    /// is fine — the reactor is already due to wake.
    pub(crate) fn wake(&self) {
        use std::io::Write;
        let _ = (&self.wake_tx).write(&[1]);
    }

    fn drain(&self) -> Vec<u64> {
        std::mem::take(&mut crate::lock(&self.kicks))
    }
}

/// Reactor-side knobs, split off [`crate::ServerConfig`].
pub(crate) struct ReactorConfig {
    pub prepared_cache: usize,
    pub max_connections: usize,
    pub outbox_limit: usize,
    pub idle_timeout: Option<Duration>,
}

/// Reactor-private per-connection state (shared state lives in [`Conn`]).
struct Slot {
    conn: Arc<Conn>,
    gen: u32,
    /// Bytes read off the socket but not yet framed.
    rbuf: Vec<u8>,
    read_on: bool,
    write_on: bool,
}

/// Lazy hashed timer wheel over slot indices.
struct Wheel {
    /// `buckets[tick % len]` holds `(idx, gen)` entries due at `tick`.
    buckets: Vec<Vec<(usize, u32)>>,
    granularity_ms: u64,
    timeout_ticks: u64,
    tick: u64,
}

impl Wheel {
    fn new(timeout: Duration) -> Wheel {
        let timeout_ms = (timeout.as_millis() as u64).max(1);
        let granularity_ms = (timeout_ms / 8).clamp(5, 500);
        let timeout_ticks = timeout_ms.div_ceil(granularity_ms).max(1);
        Wheel {
            buckets: vec![Vec::new(); timeout_ticks as usize + 2],
            granularity_ms,
            timeout_ticks,
            tick: 0,
        }
    }

    /// Park an entry to fire at `due` (clamped into the wheel's span).
    fn schedule(&mut self, idx: usize, gen: u32, due: u64) {
        let len = self.buckets.len() as u64;
        let due = due.clamp(self.tick + 1, self.tick + len - 1);
        self.buckets[(due % len) as usize].push((idx, gen));
    }
}

/// The event loop state. Constructed on the spawning thread (so bind
/// errors surface synchronously), then moved onto the reactor thread.
pub(crate) struct Reactor {
    poller: Poller,
    listener: TcpListener,
    wake_rx: UnixStream,
    db: SharedQuantumDb,
    cfg: ReactorConfig,
    metrics: Arc<ServerMetrics>,
    notifier: Arc<Notifier>,
    shutdown: Arc<AtomicBool>,
    drain: Arc<DrainSignal>,
    job_tx: Sender<Job>,
    registry: Arc<Mutex<Vec<Weak<Conn>>>>,
    role: ConnRole,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    open: usize,
    next_gen: u32,
    wheel: Option<Wheel>,
    started: Instant,
}

#[allow(clippy::too_many_arguments)] // internal plumbing, one call site
pub(crate) fn new_reactor(
    listener: TcpListener,
    db: SharedQuantumDb,
    cfg: ReactorConfig,
    metrics: Arc<ServerMetrics>,
    notifier: Arc<Notifier>,
    wake_rx: UnixStream,
    shutdown: Arc<AtomicBool>,
    drain: Arc<DrainSignal>,
    job_tx: Sender<Job>,
    registry: Arc<Mutex<Vec<Weak<Conn>>>>,
    role: ConnRole,
) -> io::Result<Reactor> {
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    poller.add(listener.as_raw_fd(), TOKEN_LISTENER, true, false)?;
    poller.add(wake_rx.as_raw_fd(), TOKEN_WAKER, true, false)?;
    let wheel = cfg.idle_timeout.map(Wheel::new);
    Ok(Reactor {
        poller,
        listener,
        wake_rx,
        db,
        cfg,
        metrics,
        notifier,
        shutdown,
        drain,
        job_tx,
        registry,
        role,
        slots: Vec::new(),
        free: Vec::new(),
        open: 0,
        next_gen: 1,
        wheel,
        started: Instant::now(),
    })
}

impl Reactor {
    /// Current time in wheel ticks (0 when idle reaping is disabled).
    fn now_tick(&self) -> u64 {
        match &self.wheel {
            Some(w) => self.started.elapsed().as_millis() as u64 / w.granularity_ms,
            None => 0,
        }
    }

    pub(crate) fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        // Graceful drain: after the signal, the listener is withdrawn
        // and the loop keeps serving until two consecutive passes see no
        // connection activity with every connection finished (queued
        // frames executed, outboxes flushed). Epoll is level-triggered,
        // so bytes already in a socket buffer surface as an event in the
        // intervening wait — quiescence cannot be declared over them.
        let mut draining = false;
        let mut quiescent = 0u32;
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            if !draining && self.drain.active() {
                draining = true;
                let _ = self.poller.delete(self.listener.as_raw_fd());
            }
            let timeout_ms = if draining {
                10
            } else {
                match &self.wheel {
                    Some(w) => w.granularity_ms.min(500) as i32,
                    None => 500,
                }
            };
            events.clear();
            if self.poller.wait(&mut events, timeout_ms).is_err() {
                break; // unrecoverable (EBADF etc.); teardown below
            }
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let mut conn_activity = false;
            for ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.drain_waker(),
                    token => {
                        conn_activity = true;
                        self.conn_event(token, ev.readable, ev.writable, ev.hangup);
                    }
                }
            }
            // Kicks are drained every pass, not only on waker events:
            // an executor may have kicked while we were already awake.
            conn_activity |= self.process_kicks();
            self.advance_wheel();
            if draining {
                if self.drain.expired() {
                    break;
                }
                if !conn_activity && self.all_finished() {
                    quiescent += 1;
                    if quiescent >= 2 {
                        break;
                    }
                } else {
                    quiescent = 0;
                }
            }
        }
        self.teardown();
    }

    /// Every live connection has executed its queued frames and flushed
    /// its outbox (idle clients count as finished).
    fn all_finished(&self) -> bool {
        self.slots.iter().flatten().all(|slot| slot.conn.finished())
    }

    // -- accept --------------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.open >= self.cfg.max_connections {
                        // Admission control: accept-then-close is the only
                        // refusal a TCP listener can express; the client
                        // observes an immediate reset/EOF.
                        self.metrics.connection_refused();
                        drop(stream);
                        continue;
                    }
                    if self.install(stream).is_err() {
                        continue;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                // Transient per-connection failures (ECONNABORTED) and fd
                // exhaustion both land here: stop this round, retry on
                // the next readiness event.
                Err(_) => break,
            }
        }
    }

    fn install(&mut self, stream: TcpStream) -> io::Result<()> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        let gen = self.next_gen;
        self.next_gen = self.next_gen.wrapping_add(1).max(1);
        let token = conn_token(idx, gen);
        let fd = stream.as_raw_fd();
        let conn = Arc::new(Conn::new(
            stream,
            token,
            qdb_core::Session::with_stmt_cache(self.db.clone(), self.cfg.prepared_cache),
            self.role.clone(),
            Arc::clone(&self.metrics),
            Arc::clone(&self.notifier),
            self.cfg.outbox_limit,
        ));
        if let Err(e) = self.poller.add(fd, token, true, false) {
            self.free.push(idx);
            return Err(e);
        }
        let now = self.now_tick();
        conn.touch(now);
        {
            let mut list = crate::lock(&self.registry);
            list.retain(|w| w.strong_count() > 0); // collect dead entries
            list.push(Arc::downgrade(&conn));
        }
        if let Some(wheel) = &mut self.wheel {
            wheel.schedule(idx, gen, now + wheel.timeout_ticks);
        }
        self.slots[idx] = Some(Slot {
            conn,
            gen,
            rbuf: Vec::new(),
            read_on: true,
            write_on: false,
        });
        self.open += 1;
        self.metrics.connection();
        Ok(())
    }

    // -- wakeups -------------------------------------------------------

    fn drain_waker(&mut self) {
        let mut sink = [0u8; 64];
        let mut rx = &self.wake_rx;
        while matches!(rx.read(&mut sink), Ok(n) if n > 0) {}
    }

    fn process_kicks(&mut self) -> bool {
        let mut any = false;
        for token in self.notifier.drain() {
            let (idx, gen) = token_parts(token);
            let Some(Some(slot)) = self.slots.get(idx) else {
                continue;
            };
            if slot.gen != gen {
                continue;
            }
            any = true;
            slot.conn.begin_kick();
            self.flush_conn(idx);
            // A resumed read may have buffered frames waiting to decode.
            self.read_conn(idx);
            self.finish_conn_pass(idx);
        }
        any
    }

    // -- per-connection events -----------------------------------------

    fn conn_event(&mut self, token: u64, readable: bool, writable: bool, hangup: bool) {
        let (idx, gen) = token_parts(token);
        match self.slots.get(idx) {
            Some(Some(slot)) if slot.gen == gen => {}
            _ => return, // late event for a recycled slot
        }
        if writable {
            self.flush_conn(idx);
        }
        if readable || hangup {
            self.read_conn(idx);
        }
        self.finish_conn_pass(idx);
    }

    /// Drive the socket's read side: decode buffered bytes, then read
    /// more, until saturation, `WouldBlock`, EOF, or error.
    fn read_conn(&mut self, idx: usize) {
        const CHUNK: usize = 16 * 1024;
        let now = self.now_tick();
        let outbox_limit = self.cfg.outbox_limit;
        let metrics = Arc::clone(&self.metrics);
        let job_tx = self.job_tx.clone();
        let Some(Some(slot)) = self.slots.get_mut(idx) else {
            return;
        };
        let conn = Arc::clone(&slot.conn);
        loop {
            // 1. Frame off everything already buffered (also the resume
            //    path after a pause: no fresh readable event replays
            //    bytes we are already holding).
            let mut off = 0;
            while conn.queued() < MAX_QUEUED_FRAMES {
                match wire::try_frame(&slot.rbuf[off..]) {
                    Ok(Some((frame, used))) => {
                        off += used;
                        metrics.frame_in(frame.wire_len());
                        if conn.enqueue(frame) {
                            let _ = job_tx.send(Job::Conn(Arc::clone(&conn)));
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        // A corrupt length prefix is unrecoverable: no
                        // resync point exists in the stream.
                        conn.mark_dead();
                        break;
                    }
                }
            }
            slot.rbuf.drain(..off);
            if conn.dead() || conn.peer_eof() {
                break;
            }
            // 2. Saturated? Stop reading; `finish_conn_pass` drops the
            //    read interest (explicit backpressure).
            let (queued, outbox) = conn.pressure();
            if queued >= MAX_QUEUED_FRAMES || outbox >= outbox_limit {
                break;
            }
            // 3. Pull the next chunk off the socket.
            let old = slot.rbuf.len();
            slot.rbuf.resize(old + CHUNK, 0);
            let mut stream = conn.stream();
            match stream.read(&mut slot.rbuf[old..]) {
                Ok(0) => {
                    slot.rbuf.truncate(old);
                    conn.set_peer_eof();
                    break;
                }
                Ok(n) => {
                    slot.rbuf.truncate(old + n);
                    conn.touch(now);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    slot.rbuf.truncate(old);
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    slot.rbuf.truncate(old);
                }
                Err(_) => {
                    slot.rbuf.truncate(old);
                    conn.mark_dead();
                    break;
                }
            }
        }
        // Idle connections hold no read buffer at all.
        if slot.rbuf.is_empty() && slot.rbuf.capacity() > 0 {
            slot.rbuf = Vec::new();
        }
        conn.set_rbuf_bytes(slot.rbuf.capacity());
    }

    fn flush_conn(&mut self, idx: usize) {
        let Some(Some(slot)) = self.slots.get(idx) else {
            return;
        };
        let conn = Arc::clone(&slot.conn);
        if conn.flush() {
            let _ = self.job_tx.send(Job::Conn(conn));
        }
    }

    /// Close-or-retune epilogue run after any activity on a slot.
    fn finish_conn_pass(&mut self, idx: usize) {
        let Some(Some(slot)) = self.slots.get(idx) else {
            return;
        };
        let conn = Arc::clone(&slot.conn);
        if conn.dead() || (conn.peer_eof() && conn.finished()) {
            self.close_conn(idx, false);
            return;
        }
        let (queued, outbox_len) = conn.pressure();
        let paused = queued >= MAX_QUEUED_FRAMES || outbox_len >= self.cfg.outbox_limit;
        conn.set_read_paused(paused);
        let want_read = !paused && !conn.peer_eof();
        let want_write = outbox_len > 0;
        let fd = conn.stream().as_raw_fd();
        let token = conn.token();
        let Some(Some(slot)) = self.slots.get_mut(idx) else {
            return;
        };
        if slot.read_on != want_read || slot.write_on != want_write {
            slot.read_on = want_read;
            slot.write_on = want_write;
            if self
                .poller
                .modify(fd, token, want_read, want_write)
                .is_err()
            {
                conn.mark_dead();
                self.close_conn(idx, false);
            }
        }
    }

    fn close_conn(&mut self, idx: usize, idle: bool) {
        let Some(entry) = self.slots.get_mut(idx) else {
            return;
        };
        let Some(slot) = entry.take() else {
            return;
        };
        let _ = self.poller.delete(slot.conn.stream().as_raw_fd());
        slot.conn.close();
        self.free.push(idx);
        self.open -= 1;
        self.metrics.connection_closed();
        if idle {
            self.metrics.connection_idle_closed();
        }
        // The fd itself closes when the last Arc<Conn> drops (a worker
        // may still hold one mid-drain; its writes are discarded).
    }

    // -- idle reaping --------------------------------------------------

    fn advance_wheel(&mut self) {
        let Some(mut wheel) = self.wheel.take() else {
            return;
        };
        let now = self.started.elapsed().as_millis() as u64 / wheel.granularity_ms;
        let len = wheel.buckets.len() as u64;
        while wheel.tick < now {
            wheel.tick += 1;
            let bucket = std::mem::take(&mut wheel.buckets[(wheel.tick % len) as usize]);
            for (idx, gen) in bucket {
                match self.slots.get(idx) {
                    Some(Some(slot)) if slot.gen == gen => {}
                    _ => continue, // connection already gone
                }
                let conn = Arc::clone(&self.slots[idx].as_ref().unwrap().conn);
                let due = conn.last_active() + wheel.timeout_ticks;
                if due <= wheel.tick {
                    self.close_conn(idx, true);
                } else {
                    wheel.schedule(idx, gen, due);
                }
            }
        }
        self.wheel = Some(wheel);
    }

    // -- shutdown ------------------------------------------------------

    fn teardown(&mut self) {
        for entry in &mut self.slots {
            if let Some(slot) = entry.take() {
                let _ = self.poller.delete(slot.conn.stream().as_raw_fd());
                slot.conn.close();
                self.metrics.connection_closed();
            }
        }
        self.open = 0;
    }
}
