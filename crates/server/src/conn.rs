//! Per-connection state and request handling.
//!
//! Each accepted socket gets one [`Conn`]: a server-side
//! [`Session`] (with its prepared-statement LRU), the connection's
//! prepared/bound id maps, a frame queue, and a write half. A dedicated
//! reader thread decodes frames into the queue; execution happens on the
//! shared worker pool. Per-connection ordering is preserved by the
//! `scheduled` flag: a connection is enqueued on the pool at most once at
//! a time, and the worker that picks it up drains its queue sequentially.

use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use qdb_core::wire::{self, Frame, Reply, Request};
use qdb_core::{Bound, Response, Session};

use crate::metrics::ServerMetrics;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Frames waiting to be executed, plus the scheduling flag that keeps one
/// worker at a time draining them (per-connection order).
#[derive(Default)]
struct FrameQueue {
    frames: VecDeque<Frame>,
    scheduled: bool,
}

/// Statement state of one connection: the session plus the client-id maps.
struct StmtState {
    session: Session,
    prepared: BTreeMap<u32, qdb_core::Prepared>,
    bound: BTreeMap<u32, Bound>,
}

/// One client connection.
pub(crate) struct Conn {
    stream: TcpStream,
    write: Mutex<TcpStream>,
    queue: Mutex<FrameQueue>,
    stmts: Mutex<StmtState>,
    metrics: Arc<ServerMetrics>,
}

impl Conn {
    /// Wrap an accepted stream. `write` is a `try_clone` of the socket so
    /// the reader thread keeps the original for its blocking reads.
    pub(crate) fn new(
        stream: TcpStream,
        write: TcpStream,
        session: Session,
        metrics: Arc<ServerMetrics>,
    ) -> Self {
        Conn {
            stream,
            write: Mutex::new(write),
            queue: Mutex::new(FrameQueue::default()),
            stmts: Mutex::new(StmtState {
                session,
                prepared: BTreeMap::new(),
                bound: BTreeMap::new(),
            }),
            metrics,
        }
    }

    /// Tear the socket down (unblocks the reader thread's pending read).
    pub(crate) fn close(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    /// Enqueue a decoded frame; returns `true` when the connection was
    /// idle and must now be handed to the worker pool.
    pub(crate) fn enqueue(&self, frame: Frame) -> bool {
        let mut q = lock(&self.queue);
        q.frames.push_back(frame);
        if q.scheduled {
            false
        } else {
            q.scheduled = true;
            true
        }
    }

    /// Frames waiting to execute (the reader throttles on this so a fast
    /// pipelining client cannot grow server memory without bound).
    pub(crate) fn queued(&self) -> usize {
        lock(&self.queue).frames.len()
    }

    /// Drain the frame queue, executing each request in arrival order.
    /// Runs on a worker thread; returns when the queue is empty (the
    /// reader will reschedule on the next frame).
    pub(crate) fn drain(self: &Arc<Self>) {
        loop {
            let frame = {
                let mut q = lock(&self.queue);
                match q.frames.pop_front() {
                    Some(f) => f,
                    None => {
                        q.scheduled = false;
                        return;
                    }
                }
            };
            let reply = self.handle_frame(&frame);
            // Bounded: an oversized result degrades into a typed error
            // frame instead of a transport failure at the client.
            let bytes = wire::encode_reply_bounded(frame.request_id, &reply);
            let ok = {
                let mut w = lock(&self.write);
                w.write_all(&bytes).and_then(|_| w.flush()).is_ok()
            };
            if ok {
                self.metrics.bytes_out(bytes.len() as u64);
            }
            // A failed write means the client is gone; keep draining so
            // the queue empties and the connection can be collected.
        }
    }

    fn handle_frame(&self, frame: &Frame) -> Reply {
        match wire::decode_request(frame) {
            Ok(request) => self.handle_request(request),
            Err(e) => Reply::Error {
                code: wire::code::PROTOCOL,
                message: e.to_string(),
            },
        }
    }

    fn handle_request(&self, request: Request) -> Reply {
        let mut stmts = lock(&self.stmts);
        match request {
            Request::Execute { sql } => {
                // The session's statement cache makes repeated EXECUTE of
                // identical text parse once, and hands us the statement
                // class for per-class accounting.
                let prepared = match stmts.session.prepare(&sql) {
                    Ok(p) => p,
                    Err(e) => return engine_error(e),
                };
                if prepared.param_count() > 0 {
                    return Reply::Error {
                        code: wire::code::PARAMS,
                        message: format!(
                            "EXECUTE carries no parameters but the statement has {} placeholder(s); use PREPARE/BIND/RUN",
                            prepared.param_count()
                        ),
                    };
                }
                self.metrics.statement(prepared.kind());
                self.respond(&stmts, prepared.run())
            }
            Request::Prepare { stmt, sql } => match stmts.session.prepare(&sql) {
                Ok(p) => {
                    let params = p.param_count() as u32;
                    // Client-assigned ids: re-preparing under the same id
                    // replaces the old statement (like SQL `PREPARE`).
                    stmts.prepared.insert(stmt, p);
                    Reply::Prepared { stmt, params }
                }
                Err(e) => engine_error(e),
            },
            Request::Bind {
                stmt,
                bound,
                params,
            } => {
                let Some(prepared) = stmts.prepared.get(&stmt) else {
                    return unknown_id("statement", stmt);
                };
                match prepared.bind(&params) {
                    Ok(b) => {
                        stmts.bound.insert(bound, b);
                        Reply::Bound { bound }
                    }
                    Err(e) => engine_error(e),
                }
            }
            Request::Run { bound } => {
                let Some(b) = stmts.bound.remove(&bound) else {
                    return unknown_id("bound statement", bound);
                };
                self.metrics.statement(b.statement().kind());
                self.respond(&stmts, b.run())
            }
        }
    }

    /// Map an execution outcome onto the wire, attaching server stats and
    /// the engine's latency histogram summaries to `SHOW METRICS`
    /// responses.
    fn respond(&self, stmts: &StmtState, result: qdb_core::Result<Response>) -> Reply {
        match result {
            Ok(Response::Metrics(engine)) => Reply::Stats {
                engine,
                server: self.metrics.snapshot(),
                profile: Some(Box::new(stmts.session.shared().profile())),
            },
            Ok(r) => Reply::Engine(r),
            Err(e) => engine_error(e),
        }
    }
}

fn engine_error(e: qdb_core::EngineError) -> Reply {
    Reply::Error {
        code: wire::code_for(&e),
        message: e.to_string(),
    }
}

fn unknown_id(what: &str, id: u32) -> Reply {
    Reply::Error {
        code: wire::code::UNKNOWN_ID,
        message: format!("no {what} with id {id} on this connection"),
    }
}
