//! Per-connection state and request handling.
//!
//! Each accepted socket gets one [`Conn`]: a server-side
//! [`Session`] (with its prepared-statement LRU), the connection's
//! prepared/bound id maps, a queue of decoded frames, and a bounded
//! outbox of encoded reply bytes. The reactor thread owns the socket's
//! readiness and its read buffer; executors drain the frame queue.
//!
//! Two disciplines keep the PR 2 contracts intact under the event loop:
//!
//! * **Ordering** — the `scheduled` flag enqueues a connection on the
//!   executor pool at most once at a time, and the worker that picks it
//!   up drains its frames sequentially, appending each reply to the
//!   outbox in completion order. The outbox is flushed front-first, so
//!   responses leave in request order per connection.
//! * **Backpressure** — before popping the next frame, the drainer
//!   checks the outbox; at or above [`Conn::outbox_limit`] it sets
//!   `stalled` and returns *without* clearing `scheduled`. Ownership of
//!   rescheduling passes to the reactor, which re-enqueues the
//!   connection once a flush brings the outbox under the low watermark.
//!   Both transitions happen under the outbox mutex, so a wakeup can
//!   never be missed.

use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use qdb_core::wire::{self, Frame, Reply, Request};
use qdb_core::{Bound, Response, Session};

use crate::metrics::ServerMetrics;
use crate::reactor::Notifier;
use crate::repl::{ConnRole, REPL_SEGMENT_MAX};
use crate::MAX_QUEUED_FRAMES;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Frames waiting to be executed, plus the scheduling flag that keeps one
/// worker at a time draining them (per-connection order).
#[derive(Default)]
struct FrameQueue {
    frames: VecDeque<Frame>,
    scheduled: bool,
}

/// Encoded reply bytes not yet accepted by the socket. `head` is the
/// flush cursor into `buf`; compaction happens when the cursor clears
/// the buffer or grows large.
#[derive(Default)]
struct Outbox {
    buf: Vec<u8>,
    head: usize,
    /// A drainer stopped because the outbox hit the limit; the reactor
    /// owns rescheduling (set/cleared only under this mutex).
    stalled: bool,
    /// The transport is gone: discard writes instead of buffering them.
    closed: bool,
}

impl Outbox {
    fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    fn compact(&mut self) {
        if self.head == self.buf.len() {
            self.buf.clear();
            self.head = 0;
        } else if self.head > 64 * 1024 {
            self.buf.drain(..self.head);
            self.head = 0;
        }
    }
}

/// Statement state of one connection: the session plus the client-id maps.
struct StmtState {
    session: Session,
    prepared: BTreeMap<u32, qdb_core::Prepared>,
    bound: BTreeMap<u32, Bound>,
}

/// One client connection.
pub(crate) struct Conn {
    stream: TcpStream,
    token: u64,
    queue: Mutex<FrameQueue>,
    outbox: Mutex<Outbox>,
    stmts: Mutex<StmtState>,
    role: ConnRole,
    metrics: Arc<ServerMetrics>,
    notifier: Arc<Notifier>,
    outbox_limit: usize,
    /// Reactor deregistered `EPOLLIN` (queue or outbox saturated);
    /// drainers kick once pressure drops so reading resumes.
    read_paused: AtomicBool,
    /// Transport failed (read/write error or protocol-level corruption);
    /// the reactor closes the connection at the next opportunity.
    dead: AtomicBool,
    /// Peer half-closed its write side; finish in-flight work, flush,
    /// then close.
    peer_eof: AtomicBool,
    /// Reactor-side dedup so a burst of kicks queues one entry.
    kicked: AtomicBool,
    /// Idle clock: reactor tick of the last inbound read.
    last_active_tick: AtomicU64,
    /// Capacity of the reactor-owned read buffer (memory accounting).
    rbuf_bytes: AtomicUsize,
    /// Capacity of the outbox buffer (memory accounting).
    outbox_bytes: AtomicUsize,
}

impl Conn {
    pub(crate) fn new(
        stream: TcpStream,
        token: u64,
        session: Session,
        role: ConnRole,
        metrics: Arc<ServerMetrics>,
        notifier: Arc<Notifier>,
        outbox_limit: usize,
    ) -> Self {
        Conn {
            stream,
            token,
            queue: Mutex::new(FrameQueue::default()),
            outbox: Mutex::new(Outbox::default()),
            stmts: Mutex::new(StmtState {
                session,
                prepared: BTreeMap::new(),
                bound: BTreeMap::new(),
            }),
            role,
            metrics,
            notifier,
            outbox_limit,
            read_paused: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            peer_eof: AtomicBool::new(false),
            kicked: AtomicBool::new(false),
            last_active_tick: AtomicU64::new(0),
            rbuf_bytes: AtomicUsize::new(0),
            outbox_bytes: AtomicUsize::new(0),
        }
    }

    pub(crate) fn stream(&self) -> &TcpStream {
        &self.stream
    }

    pub(crate) fn token(&self) -> u64 {
        self.token
    }

    /// Ask the reactor to look at this connection (flush, interest
    /// update, close check). Deduplicated until the reactor services it.
    pub(crate) fn kick(&self) {
        if !self.kicked.swap(true, Ordering::AcqRel) {
            self.notifier.kick(self.token);
        }
    }

    /// Reactor: about to service a kick — accept new ones from here on.
    pub(crate) fn begin_kick(&self) {
        self.kicked.store(false, Ordering::Release);
    }

    pub(crate) fn mark_dead(&self) {
        self.dead.store(true, Ordering::Release);
    }

    pub(crate) fn dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    pub(crate) fn set_peer_eof(&self) {
        self.peer_eof.store(true, Ordering::Release);
    }

    pub(crate) fn peer_eof(&self) -> bool {
        self.peer_eof.load(Ordering::Acquire)
    }

    pub(crate) fn set_read_paused(&self, paused: bool) {
        self.read_paused.store(paused, Ordering::Release);
    }

    pub(crate) fn touch(&self, tick: u64) {
        self.last_active_tick.store(tick, Ordering::Relaxed);
    }

    pub(crate) fn last_active(&self) -> u64 {
        self.last_active_tick.load(Ordering::Relaxed)
    }

    pub(crate) fn set_rbuf_bytes(&self, n: usize) {
        self.rbuf_bytes.store(n, Ordering::Relaxed);
    }

    /// Estimated user-space bytes of state held for this connection:
    /// struct (queue/outbox/session headers inline) plus the two live
    /// buffers. Excludes kernel socket buffers and session-cache heap.
    pub(crate) fn mem_bytes(&self) -> u64 {
        (std::mem::size_of::<Conn>()
            + self.rbuf_bytes.load(Ordering::Relaxed)
            + self.outbox_bytes.load(Ordering::Relaxed)) as u64
    }

    /// Tear the connection down: wake the peer's blocked I/O, discard
    /// queued work, and release buffered memory. Safe against a worker
    /// mid-drain — the `closed` flag makes its writes no-ops and its
    /// next pop observes the emptied queue.
    pub(crate) fn close(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        {
            let mut ob = lock(&self.outbox);
            ob.closed = true;
            ob.stalled = false;
            ob.buf = Vec::new();
            ob.head = 0;
        }
        self.outbox_bytes.store(0, Ordering::Relaxed);
        lock(&self.queue).frames.clear();
    }

    /// Enqueue a decoded frame; returns `true` when the connection was
    /// idle and must now be handed to the executor pool.
    pub(crate) fn enqueue(&self, frame: Frame) -> bool {
        let mut q = lock(&self.queue);
        q.frames.push_back(frame);
        if q.scheduled {
            false
        } else {
            q.scheduled = true;
            true
        }
    }

    /// Frames waiting to execute (the reactor pauses reads on this so a
    /// fast pipelining client cannot grow server memory without bound).
    pub(crate) fn queued(&self) -> usize {
        lock(&self.queue).frames.len()
    }

    /// (queued frames, outbox bytes) — the reactor's saturation inputs.
    pub(crate) fn pressure(&self) -> (usize, usize) {
        (self.queued(), lock(&self.outbox).len())
    }

    /// All work done and flushed: safe to close after peer EOF.
    pub(crate) fn finished(&self) -> bool {
        {
            let q = lock(&self.queue);
            if !q.frames.is_empty() || q.scheduled {
                return false;
            }
        }
        lock(&self.outbox).len() == 0
    }

    /// Reactor: write as much of the outbox as the socket accepts.
    /// Returns `true` when a stalled drainer crossed back under the low
    /// watermark and must be re-enqueued on the executor pool.
    pub(crate) fn flush(&self) -> bool {
        let mut ob = lock(&self.outbox);
        self.flush_locked(&mut ob);
        // Low watermark at half the limit: resuming the drainer only
        // after real room opens up avoids a stall/unstall flutter at the
        // boundary.
        let resched = ob.stalled && ob.len() < (self.outbox_limit / 2).max(1);
        if resched {
            ob.stalled = false;
        }
        resched
    }

    /// Write `buf[head..]` until done or `WouldBlock`. Any other error
    /// marks the connection dead and empties the outbox. Called with the
    /// outbox mutex held — every socket write goes through here, which
    /// is what keeps reactor and executor writes from interleaving.
    fn flush_locked(&self, ob: &mut Outbox) {
        if ob.closed {
            return;
        }
        let mut stream = &self.stream;
        while ob.head < ob.buf.len() {
            match stream.write(&ob.buf[ob.head..]) {
                Ok(0) => {
                    self.mark_dead();
                    break;
                }
                Ok(n) => {
                    ob.head += n;
                    self.metrics.bytes_out(n as u64);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.mark_dead();
                    break;
                }
            }
        }
        if self.dead() {
            ob.closed = true;
            ob.buf = Vec::new();
            ob.head = 0;
        } else {
            ob.compact();
        }
        self.outbox_bytes
            .store(ob.buf.capacity(), Ordering::Relaxed);
    }

    /// Append one encoded reply and opportunistically flush from the
    /// executor, so an unsaturated connection never waits for the
    /// reactor to write. Kicks the reactor when bytes are left over (it
    /// must arm `EPOLLOUT`).
    fn send_reply(&self, bytes: &[u8]) {
        let remaining = {
            let mut ob = lock(&self.outbox);
            if ob.closed {
                return;
            }
            ob.buf.extend_from_slice(bytes);
            self.flush_locked(&mut ob);
            ob.len()
        };
        if remaining > 0 || self.dead() {
            self.kick();
        }
    }

    /// Drain the frame queue, executing each request in arrival order.
    /// Runs on an executor thread; returns when the queue is empty (the
    /// reactor reschedules on the next frame) or when the outbox is full
    /// (the reactor reschedules after draining it — see the module doc).
    pub(crate) fn drain(self: &Arc<Self>) {
        loop {
            {
                let mut ob = lock(&self.outbox);
                if !ob.closed && ob.len() >= self.outbox_limit {
                    ob.stalled = true;
                    drop(ob);
                    self.metrics.outbox_full_stall();
                    self.kick();
                    return; // still `scheduled`; reactor re-enqueues
                }
            }
            let frame = {
                let mut q = lock(&self.queue);
                match q.frames.pop_front() {
                    Some(f) => f,
                    None => {
                        q.scheduled = false;
                        drop(q);
                        // The reactor may now need to unpause reads or
                        // close out a half-closed connection.
                        if self.read_paused.load(Ordering::Acquire)
                            || self.peer_eof()
                            || self.dead()
                        {
                            self.kick();
                        }
                        return;
                    }
                }
            };
            let reply = self.handle_frame(&frame);
            // Bounded: an oversized result degrades into a typed error
            // frame instead of a transport failure at the client.
            let bytes = wire::encode_reply_bounded(frame.request_id, &reply);
            self.send_reply(&bytes);
            // Unpause reads early once the queue has real room again.
            if self.read_paused.load(Ordering::Acquire) && self.queued() < MAX_QUEUED_FRAMES / 2 {
                self.kick();
            }
        }
    }

    fn handle_frame(&self, frame: &Frame) -> Reply {
        match wire::decode_request(frame) {
            Ok(request) => self.handle_request(request),
            Err(e) => Reply::Error {
                code: wire::code::PROTOCOL,
                message: e.to_string(),
            },
        }
    }

    fn handle_request(&self, request: Request) -> Reply {
        // Replication frames and replica serving bypass the session: a
        // replica's engine lives behind its `ReplicaState`, and the
        // primary answers stream polls straight from the WAL.
        match &self.role {
            ConnRole::Replica { state } => match request {
                Request::Execute { sql } => state.execute(&sql, &self.metrics),
                Request::Prepare { .. } | Request::Bind { .. } | Request::Run { .. } => {
                    Reply::Error {
                        code: wire::code::READ_ONLY,
                        message: format!(
                            "prepared statements are not available on a replica; connect to the primary at {}",
                            state.source()
                        ),
                    }
                }
                Request::Replicate { .. } | Request::ReplAck { .. } => Reply::Error {
                    code: wire::code::READ_ONLY,
                    message: "this node is itself a replica; replicate from the primary".into(),
                },
            },
            ConnRole::Primary { tracker } => match request {
                Request::Replicate {
                    replica_id,
                    from_offset,
                } => {
                    let db = lock(&self.stmts).session.shared().clone();
                    let (primary_wal_len, last_txn_id, bytes) =
                        db.wal_stream_from(from_offset, REPL_SEGMENT_MAX);
                    lock(tracker).observe_poll(&replica_id, from_offset, primary_wal_len);
                    Reply::WalSegment {
                        start_offset: from_offset.min(primary_wal_len),
                        primary_wal_len,
                        last_txn_id,
                        bytes,
                    }
                }
                Request::ReplAck {
                    replica_id,
                    applied_offset,
                    horizon,
                } => {
                    let wal_len = lock(&self.stmts).session.shared().wal_size();
                    lock(tracker).observe_ack(&replica_id, applied_offset, horizon, wal_len);
                    Reply::Engine(Response::Ack)
                }
                other => self.handle_session_request(other),
            },
        }
    }

    /// Live replication status for `SHOW REPLICATION` on a primary: the
    /// engine alone would answer with an empty tracker, so the server
    /// substitutes the per-replica state it actually observes.
    fn replication_report(&self, stmts: &StmtState) -> Reply {
        let ConnRole::Primary { tracker } = &self.role else {
            unreachable!("replica requests never reach the session path");
        };
        let db = stmts.session.shared();
        let report = lock(tracker).report(db.wal_size(), db.last_txn_id());
        Reply::Engine(Response::Replication(Box::new(report)))
    }

    fn handle_session_request(&self, request: Request) -> Reply {
        let mut stmts = lock(&self.stmts);
        match request {
            Request::Replicate { .. } | Request::ReplAck { .. } => {
                unreachable!("replication frames handled before the session path")
            }
            Request::Execute { sql } => {
                // The session's statement cache makes repeated EXECUTE of
                // identical text parse once, and hands us the statement
                // class for per-class accounting.
                let prepared = match stmts.session.prepare(&sql) {
                    Ok(p) => p,
                    Err(e) => return engine_error(e),
                };
                if prepared.param_count() > 0 {
                    return Reply::Error {
                        code: wire::code::PARAMS,
                        message: format!(
                            "EXECUTE carries no parameters but the statement has {} placeholder(s); use PREPARE/BIND/RUN",
                            prepared.param_count()
                        ),
                    };
                }
                self.metrics.statement(prepared.kind());
                if prepared.kind() == "SHOW REPLICATION" {
                    return self.replication_report(&stmts);
                }
                self.respond(&stmts, prepared.run())
            }
            Request::Prepare { stmt, sql } => match stmts.session.prepare(&sql) {
                Ok(p) => {
                    let params = p.param_count() as u32;
                    // Client-assigned ids: re-preparing under the same id
                    // replaces the old statement (like SQL `PREPARE`).
                    stmts.prepared.insert(stmt, p);
                    Reply::Prepared { stmt, params }
                }
                Err(e) => engine_error(e),
            },
            Request::Bind {
                stmt,
                bound,
                params,
            } => {
                let Some(prepared) = stmts.prepared.get(&stmt) else {
                    return unknown_id("statement", stmt);
                };
                match prepared.bind(&params) {
                    Ok(b) => {
                        stmts.bound.insert(bound, b);
                        Reply::Bound { bound }
                    }
                    Err(e) => engine_error(e),
                }
            }
            Request::Run { bound } => {
                let Some(b) = stmts.bound.remove(&bound) else {
                    return unknown_id("bound statement", bound);
                };
                self.metrics.statement(b.statement().kind());
                if b.statement().kind() == "SHOW REPLICATION" {
                    return self.replication_report(&stmts);
                }
                self.respond(&stmts, b.run())
            }
        }
    }

    /// Map an execution outcome onto the wire, attaching server stats and
    /// the engine's latency histogram summaries to `SHOW METRICS`
    /// responses.
    fn respond(&self, stmts: &StmtState, result: qdb_core::Result<Response>) -> Reply {
        match result {
            Ok(Response::Metrics(engine)) => Reply::Stats {
                engine,
                server: self.metrics.snapshot(),
                profile: Some(Box::new(stmts.session.shared().profile())),
            },
            Ok(r) => Reply::Engine(r),
            Err(e) => engine_error(e),
        }
    }
}

fn engine_error(e: qdb_core::EngineError) -> Reply {
    Reply::Error {
        code: wire::code_for(&e),
        message: e.to_string(),
    }
}

fn unknown_id(what: &str, id: u32) -> Reply {
    Reply::Error {
        code: wire::code::UNKNOWN_ID,
        message: format!("no {what} with id {id} on this connection"),
    }
}
