//! The `qdb-server` binary: serve a quantum database over TCP.
//!
//! ```text
//! qdb-server [--addr HOST:PORT] [--workers N] [--k N]
//!            [--prepared-cache N] [--no-partitioning]
//!            [--slow-log MICROS] [--trace-out PATH]
//!            [--max-conns N] [--idle-timeout-ms MS] [--outbox-limit BYTES]
//! ```
//!
//! Defaults: `--addr 127.0.0.1:5433`, `--workers 4`, `--prepared-cache
//! 128` (per-connection prepared-statement LRU entries; `0` disables
//! statement caching), engine defaults (k = 61, partitioning and solution
//! cache on). `--slow-log N` promotes any operation over N microseconds
//! into the engine's slow-op log; `--trace-out PATH` appends every
//! finished operation to PATH as JSONL (see `docs/OBSERVABILITY.md`).
//! Serving knobs: `--max-conns` is the admission limit (default 16384;
//! further connections are refused and counted), `--idle-timeout-ms`
//! reaps connections with no inbound traffic for that long (default
//! 30000; `0` disables), `--outbox-limit` bounds the per-connection
//! reply buffer in bytes (default 262144). The
//! process serves until killed; state is in-memory (a WAL-backed mode
//! rides on the embedding API — see `Server::spawn_with_db`).

use qdb_core::QuantumDbConfig;
use qdb_server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: qdb-server [--addr HOST:PORT] [--workers N] [--k N] \
         [--prepared-cache N] [--no-partitioning] [--slow-log MICROS] \
         [--trace-out PATH] [--max-conns N] [--idle-timeout-ms MS] \
         [--outbox-limit BYTES] [--replicate-from HOST:PORT] \
         [--replica-id NAME] [--repl-poll-ms MS] [--promote-after-ms MS]"
    );
    std::process::exit(2);
}

fn parse_args() -> ServerConfig {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:5433".to_string(),
        engine: QuantumDbConfig::default(),
        // A standing network service defends itself against slowloris
        // clients by default; embedders opt in via ServerConfig.
        idle_timeout: Some(std::time::Duration::from_millis(30_000)),
        ..ServerConfig::default()
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--addr" => {
                cfg.addr = value(i);
                i += 1;
            }
            "--workers" => {
                cfg.workers = value(i).parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--k" => {
                cfg.engine.k = value(i).parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--prepared-cache" => {
                cfg.prepared_cache = value(i).parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--no-partitioning" => cfg.engine.partitioning = false,
            "--slow-log" => {
                cfg.engine.slow_op_threshold_us = value(i).parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--trace-out" => {
                cfg.trace_out = Some(value(i));
                i += 1;
            }
            "--max-conns" => {
                cfg.max_connections = value(i).parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--idle-timeout-ms" => {
                let ms: u64 = value(i).parse().unwrap_or_else(|_| usage());
                cfg.idle_timeout = (ms > 0).then(|| std::time::Duration::from_millis(ms));
                i += 1;
            }
            "--outbox-limit" => {
                cfg.outbox_limit = value(i).parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--replicate-from" => {
                cfg.replicate_from = Some(value(i));
                i += 1;
            }
            "--replica-id" => {
                cfg.replica_id = value(i);
                i += 1;
            }
            "--repl-poll-ms" => {
                let ms: u64 = value(i).parse().unwrap_or_else(|_| usage());
                cfg.repl_poll_interval = std::time::Duration::from_millis(ms.max(1));
                i += 1;
            }
            "--promote-after-ms" => {
                let ms: u64 = value(i).parse().unwrap_or_else(|_| usage());
                cfg.auto_promote_after = (ms > 0).then(|| std::time::Duration::from_millis(ms));
                i += 1;
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    cfg
}

fn main() {
    let cfg = parse_args();
    let workers = cfg.workers;
    let handle = match Server::spawn(&cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("qdb-server: cannot serve on {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    match &cfg.replicate_from {
        Some(source) => println!(
            "qdb-server replica '{}' of {} listening on {} ({} workers, read-only until promoted)",
            cfg.replica_id,
            source,
            handle.addr(),
            workers
        ),
        None => println!(
            "qdb-server listening on {} ({} workers, k={}, max {} conns)",
            handle.addr(),
            workers,
            cfg.engine.k,
            cfg.max_connections
        ),
    }
    handle.wait();
}
