//! Minimal drop-in for the subset of the [`bytes`](https://crates.io/crates/bytes)
//! crate API that the storage and logic codecs use.
//!
//! The workspace builds fully offline, so the real crate cannot be
//! fetched; this local package shadows it with compatible semantics:
//! little-endian get/put accessors, `copy_to_slice` advancing the cursor,
//! and `Buf` implemented for `&[u8]` by shrinking the slice from the
//! front. Swapping back to the real crate is a one-line `Cargo.toml`
//! change — no call site mentions anything beyond this shared surface.

use std::ops::Deref;

/// Read-side cursor abstraction (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Copy `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain (as the real crate
    /// does) — decoders bounds-check with [`Buf::remaining`] first.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Consume a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.len() >= dst.len(),
            "copy_to_slice: need {} bytes, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write-side abstraction (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Growable byte buffer (subset of `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freeze into an immutable read cursor.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// Copy out as a plain vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Immutable buffer with a read cursor (subset of `bytes::Bytes`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Bytes left in view (same as [`Buf::remaining`]).
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of the unconsumed bytes, cursor at its start.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.data[self.pos + range.start..self.pos + range.end].to_vec(),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice: need {} bytes, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_bytesmut_and_freeze() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_i64_le(-42);
        buf.put_u64_le(u64::MAX);
        buf.put_slice(b"hi");
        assert_eq!(buf.len(), 1 + 4 + 8 + 8 + 2);

        let mut frozen = buf.clone().freeze();
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_i64_le(), -42);
        assert_eq!(frozen.get_u64_le(), u64::MAX);
        let mut tail = [0u8; 2];
        frozen.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"hi");
        assert_eq!(frozen.remaining(), 0);

        // The slice impl advances by reslicing, same values out.
        let v = buf.to_vec();
        let mut slice: &[u8] = &v;
        assert_eq!(slice.get_u8(), 7);
        assert_eq!(slice.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(slice.remaining(), v.len() - 5);
    }

    #[test]
    #[should_panic(expected = "copy_to_slice")]
    fn overread_panics_like_the_real_crate() {
        let mut slice: &[u8] = &[1, 2];
        let _ = slice.get_u32_le();
    }
}
