//! Atomic log-bucketed latency histograms.
//!
//! A [`Histogram`] is 64 `AtomicU64` buckets over nanoseconds where bucket
//! `i` covers `[2^i, 2^(i+1))` (bucket 0 also absorbs 0 ns). Recording is
//! one relaxed `fetch_add` per bucket plus running count/sum/max — no
//! locks, no allocation — so it is safe to call from every hot path of
//! both engines concurrently. Reads go through [`Histogram::snapshot`],
//! which yields a plain [`HistSnapshot`] that can be merged with others
//! and queried for percentiles.
//!
//! Percentiles are bucket-resolution: a reported pXX is the upper bound of
//! the bucket containing the true pXX (clamped to the observed maximum),
//! so it is always ≥ the true value and within 2× of it. That is exactly
//! the fidelity a latency report needs and what the property tests pin
//! against a sorted-vector reference.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two buckets (covers the full `u64` nanosecond range).
pub const BUCKETS: usize = 64;

/// Bucket index for a nanosecond value: `floor(log2(ns))`, with 0 and 1 ns
/// both landing in bucket 0.
pub fn bucket_index(ns: u64) -> usize {
    if ns <= 1 {
        0
    } else {
        63 - ns.leading_zeros() as usize
    }
}

/// Largest nanosecond value bucket `i` can hold.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// A lock-free log-bucketed histogram over nanoseconds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one nanosecond observation. Lock-free; relaxed ordering is
    /// enough because snapshots only need eventual per-bucket consistency.
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Record a [`Duration`] (saturating at `u64::MAX` ns).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total observations recorded so far (relaxed read).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Copy the current state into a mergeable, queryable snapshot.
    ///
    /// Under concurrent recording the bucket array, sum and max are read
    /// independently, so a snapshot is a consistent *approximation* — each
    /// field individually reflects some recent state.
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets: [u64; BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        HistSnapshot {
            count: buckets.iter().sum(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Shorthand for `snapshot().summary()`.
    pub fn summary(&self) -> HistSummary {
        self.snapshot().summary()
    }

    /// Zero every bucket and the running sum/max.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`Histogram`], mergeable and queryable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket observation counts.
    pub buckets: [u64; BUCKETS],
    /// Total observations (sum of `buckets`).
    pub count: u64,
    /// Sum of all observed nanosecond values.
    pub sum: u64,
    /// Largest observed nanosecond value.
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// Fold another snapshot into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The `p`-th percentile (`0.0 < p <= 1.0`) in nanoseconds: the upper
    /// bound of the bucket holding the `ceil(p·count)`-th smallest
    /// observation, clamped to the observed maximum. Returns 0 for an
    /// empty snapshot.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper_bound(i).min(self.max.max(1));
            }
        }
        self.max
    }

    /// Mean observation in nanoseconds (0 for an empty snapshot).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Reduce to the fixed percentile set reports and the wire carry.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            p50_ns: self.percentile(0.50),
            p90_ns: self.percentile(0.90),
            p99_ns: self.percentile(0.99),
            p999_ns: self.percentile(0.999),
            max_ns: self.max,
        }
    }
}

/// The fixed percentile set every report and wire frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistSummary {
    /// Total observations.
    pub count: u64,
    /// Median, nanoseconds (bucket upper bound).
    pub p50_ns: u64,
    /// 90th percentile, nanoseconds.
    pub p90_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th percentile, nanoseconds.
    pub p999_ns: u64,
    /// Largest observation, nanoseconds.
    pub max_ns: u64,
}

impl HistSummary {
    /// Render a percentile field in microseconds for human-facing tables.
    pub fn us(ns: u64) -> f64 {
        ns as f64 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// splitmix64 — the workspace's stock tiny deterministic generator.
    struct TestRng(u64);

    impl TestRng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn bucket_bounds_partition_the_u64_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), 63);
        for i in 0..BUCKETS {
            let hi = bucket_upper_bound(i);
            assert_eq!(bucket_index(hi), i, "upper bound stays in bucket {i}");
            if i < 63 {
                assert_eq!(bucket_index(hi + 1), i + 1);
            }
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_ns, 0);
        assert_eq!(s.p999_ns, 0);
        assert_eq!(s.max_ns, 0);
        assert_eq!(h.snapshot().mean(), 0.0);
    }

    /// Property: across randomized distributions, every reported
    /// percentile lands in the same bucket as the true percentile from a
    /// sorted-vector reference, never under-reports it, and stays within
    /// one bucket (2×) of it. Merging two histograms must agree with
    /// recording the concatenated stream.
    #[test]
    fn percentiles_track_a_sorted_vec_reference() {
        let mut rng = TestRng(0xC1D2_2013);
        for case in 0..40u32 {
            let n = 1 + (rng.next() % 3000) as usize;
            let h = Histogram::new();
            let mut vals = Vec::with_capacity(n);
            for _ in 0..n {
                // Mix of scales: sub-µs, µs, ms, and heavy-tail seconds.
                let v = match rng.next() % 4 {
                    0 => rng.next() % 1_000,
                    1 => rng.next() % 1_000_000,
                    2 => rng.next() % 1_000_000_000,
                    _ => rng.next() % 60_000_000_000,
                };
                h.record(v);
                vals.push(v);
            }
            vals.sort_unstable();
            let snap = h.snapshot();
            assert_eq!(snap.count, n as u64, "case {case}");
            assert_eq!(snap.max, *vals.last().unwrap(), "case {case}");
            assert_eq!(snap.sum, vals.iter().sum::<u64>(), "case {case}");
            for &p in &[0.5, 0.9, 0.99, 0.999, 1.0] {
                let reported = snap.percentile(p);
                let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
                let truth = vals[rank - 1];
                assert_eq!(
                    bucket_index(reported),
                    bucket_index(truth),
                    "case {case}: p{p} reported {reported} vs true {truth}"
                );
                assert!(reported >= truth, "case {case}: p{p} under-reported");
                assert!(
                    reported <= truth.saturating_mul(2).max(1),
                    "case {case}: p{p} off by more than one bucket"
                );
            }
        }
    }

    #[test]
    fn merged_snapshots_match_the_concatenated_stream() {
        let mut rng = TestRng(7);
        let (a, b, both) = (Histogram::new(), Histogram::new(), Histogram::new());
        for i in 0..2000u64 {
            let v = rng.next() % 1_000_000;
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
            both.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
        assert_eq!(merged.summary(), both.summary());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + i % 512);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 80_000);
        assert_eq!(h.snapshot().count, 80_000);
    }

    #[test]
    fn reset_empties_the_histogram() {
        let h = Histogram::new();
        h.record(42);
        h.record(4200);
        assert_eq!(h.count(), 2);
        h.reset();
        assert_eq!(h.summary(), HistSummary::default());
    }
}
