//! The flight recorder: a fixed-capacity lock-free ring of span events.
//!
//! Writers claim a global slot index with one `fetch_add`, then publish
//! the event through a per-slot sequence lock: the slot's `seq` word holds
//! `2g+2` once the event for global index `g` is fully written, and `2g+1`
//! while the write is in flight. Readers accept a slot only when `seq`
//! reads the same stable value before and after the field loads, so a
//! torn event can never be observed.
//!
//! Overwrite policy: the ring keeps the most recent `capacity` events.
//! A writer that laps a *still-in-flight* write (possible only when the
//! whole ring wraps within one write's duration) drops its own event and
//! bumps `dropped` rather than tearing the slot — recency is best-effort,
//! integrity is not.

use crate::Outcome;
use std::sync::atomic::{AtomicU64, Ordering};

/// One structured span event in the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Monotonic timestamp ([`crate::now_ns`]) when the span *started*.
    pub ts_ns: u64,
    /// Transaction id the span belongs to (`u64::MAX` when none).
    pub txn_id: u64,
    /// Partition id the span touched (`u64::MAX` when none).
    pub partition_id: u64,
    /// Event kind code: a [`crate::Phase`] below [`crate::STMT_CODE_BASE`],
    /// a statement class at or above it (see [`crate::kind_name`]).
    pub kind: u8,
    /// How the span ended.
    pub outcome: Outcome,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

impl SpanEvent {
    /// Sentinel for "no transaction / no partition".
    pub const NONE: u64 = u64::MAX;

    /// Display name of [`SpanEvent::kind`].
    pub fn kind_name(&self) -> &'static str {
        crate::kind_name(self.kind)
    }
}

/// One seqlock-protected slot. Every field is an independent atomic; the
/// `seq` word orders the publication (no `unsafe`, no uninitialised reads).
#[derive(Debug)]
struct Slot {
    /// 0 = never written; `2g+1` = write for global index `g` in flight;
    /// `2g+2` = event for global index `g` is stable.
    seq: AtomicU64,
    ts: AtomicU64,
    txn: AtomicU64,
    partition: AtomicU64,
    /// Packed `kind << 8 | outcome`.
    kind_outcome: AtomicU64,
    dur: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            ts: AtomicU64::new(0),
            txn: AtomicU64::new(0),
            partition: AtomicU64::new(0),
            kind_outcome: AtomicU64::new(0),
            dur: AtomicU64::new(0),
        }
    }
}

/// Fixed-capacity lock-free ring buffer of [`SpanEvent`]s.
#[derive(Debug)]
pub struct EventRing {
    slots: Box<[Slot]>,
    /// Next global write index.
    cursor: AtomicU64,
    /// Events dropped by the lap-protection CAS (see module docs).
    dropped: AtomicU64,
    mask: u64,
}

impl EventRing {
    /// Default flight-recorder depth.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Create a ring holding the most recent `capacity` events (rounded up
    /// to a power of two, minimum 2).
    pub fn new(capacity: usize) -> EventRing {
        let cap = capacity.max(2).next_power_of_two();
        EventRing {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            cursor: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            mask: (cap - 1) as u64,
        }
    }

    /// Ring capacity (power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever pushed (including any later overwritten).
    pub fn pushed(&self) -> u64 {
        self.cursor.load(Ordering::SeqCst)
    }

    /// Events dropped to avoid tearing a lapped in-flight slot.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::SeqCst)
    }

    /// Publish an event. Lock-free: one `fetch_add` plus per-slot seqlock
    /// stores; never blocks, never tears.
    pub fn push(&self, ev: SpanEvent) {
        let g = self.cursor.fetch_add(1, Ordering::SeqCst);
        let slot = &self.slots[(g & self.mask) as usize];
        let cap = self.slots.len() as u64;
        let prev_stable = if g >= cap { 2 * (g - cap) + 2 } else { 0 };
        // Claim the slot only if its previous generation is stable. If the
        // previous writer is still mid-write we have lapped the whole ring
        // within one write — drop our event instead of tearing theirs.
        if slot
            .seq
            .compare_exchange(prev_stable, 2 * g + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            self.dropped.fetch_add(1, Ordering::SeqCst);
            return;
        }
        slot.ts.store(ev.ts_ns, Ordering::SeqCst);
        slot.txn.store(ev.txn_id, Ordering::SeqCst);
        slot.partition.store(ev.partition_id, Ordering::SeqCst);
        slot.kind_outcome
            .store((ev.kind as u64) << 8 | ev.outcome as u64, Ordering::SeqCst);
        slot.dur.store(ev.dur_ns, Ordering::SeqCst);
        slot.seq.store(2 * g + 2, Ordering::SeqCst);
    }

    /// The most recent `limit` stable events, oldest first. Slots being
    /// overwritten mid-read are skipped, never returned torn.
    pub fn recent(&self, limit: usize) -> Vec<SpanEvent> {
        let cur = self.cursor.load(Ordering::SeqCst);
        let cap = self.slots.len() as u64;
        let oldest = cur.saturating_sub(cap);
        let mut out = Vec::with_capacity(limit.min(cap as usize));
        let mut g = cur;
        while g > oldest && out.len() < limit {
            g -= 1;
            let slot = &self.slots[(g & self.mask) as usize];
            let stable = 2 * g + 2;
            if slot.seq.load(Ordering::SeqCst) != stable {
                continue; // in flight or already a newer generation
            }
            let ev = SpanEvent {
                ts_ns: slot.ts.load(Ordering::SeqCst),
                txn_id: slot.txn.load(Ordering::SeqCst),
                partition_id: slot.partition.load(Ordering::SeqCst),
                kind: (slot.kind_outcome.load(Ordering::SeqCst) >> 8) as u8,
                outcome: Outcome::from_u8((slot.kind_outcome.load(Ordering::SeqCst) & 0xFF) as u8),
                dur_ns: slot.dur.load(Ordering::SeqCst),
            };
            // Re-check: if the slot moved on while we read, discard.
            if slot.seq.load(Ordering::SeqCst) == stable {
                out.push(ev);
            }
        }
        out.reverse();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(kind: u8, txn: u64, dur: u64) -> SpanEvent {
        SpanEvent {
            ts_ns: crate::now_ns(),
            txn_id: txn,
            partition_id: SpanEvent::NONE,
            kind,
            outcome: Outcome::Ok,
            dur_ns: dur,
        }
    }

    #[test]
    fn capacity_rounds_up_and_bounds_retention() {
        let ring = EventRing::new(5);
        assert_eq!(ring.capacity(), 8);
        for i in 0..20 {
            ring.push(ev(0, i, i));
        }
        let recent = ring.recent(100);
        assert_eq!(recent.len(), 8, "only the last capacity events remain");
        let txns: Vec<u64> = recent.iter().map(|e| e.txn_id).collect();
        assert_eq!(txns, (12..20).collect::<Vec<_>>(), "oldest first");
        assert_eq!(ring.recent(3).len(), 3);
        assert_eq!(ring.recent(3)[2].txn_id, 19, "limit keeps the newest");
    }

    #[test]
    fn empty_ring_reports_nothing() {
        let ring = EventRing::new(16);
        assert!(ring.recent(10).is_empty());
        assert_eq!(ring.pushed(), 0);
    }

    /// 8 writers hammer a small ring; every event a reader observes must
    /// be internally consistent (writer id encoded in every field), and
    /// the capacity bound must hold throughout.
    #[test]
    fn eight_writers_produce_no_torn_events() {
        let ring = Arc::new(EventRing::new(64));
        let writers: Vec<_> = (0..8u64)
            .map(|w| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        // Every field encodes (writer, i) so tearing is
                        // detectable from any mismatched pair.
                        ring.push(SpanEvent {
                            ts_ns: w * 1_000_000 + i,
                            txn_id: w * 1_000_000 + i,
                            partition_id: w,
                            kind: w as u8,
                            outcome: Outcome::Ok,
                            dur_ns: w * 1_000_000 + i,
                        });
                    }
                })
            })
            .collect();
        let reader = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut seen = 0usize;
                for _ in 0..200 {
                    let events = ring.recent(64);
                    assert!(events.len() <= 64, "capacity bound violated");
                    for e in &events {
                        assert_eq!(e.ts_ns, e.txn_id, "torn event: ts vs txn");
                        assert_eq!(e.ts_ns, e.dur_ns, "torn event: ts vs dur");
                        assert_eq!(e.ts_ns / 1_000_000, e.partition_id, "torn writer id");
                        assert_eq!(e.kind as u64, e.partition_id, "torn kind");
                    }
                    seen += events.len();
                    std::thread::yield_now();
                }
                seen
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        assert!(reader.join().unwrap() > 0, "reader saw some events");
        assert_eq!(
            ring.pushed(),
            40_000,
            "every push claimed a distinct global index"
        );
        let final_events = ring.recent(64);
        assert!(final_events.len() + ring.dropped() as usize >= 1);
        assert!(final_events.len() <= 64);
    }
}
